//! Codec shootout: all five encoder models on one clip at an equivalent
//! quality/speed point — the comparison behind the paper's Fig. 1/2.
//!
//! ```text
//! cargo run --release --example codec_shootout [clip] [crf]
//! ```

use vstress::codecs::CodecId;
use vstress::table::Table;
use vstress::workbench::{characterize, equivalent_params, RunSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clip = args
        .first()
        .map(|s| {
            // Leak is fine in a short-lived example binary.
            &*Box::leak(s.clone().into_boxed_str())
        })
        .unwrap_or("game1");
    let crf: u8 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(35);

    let mut table = Table::new(
        format!("codec shootout — {clip}, AV1-family CRF {crf}, preset-4-equivalent"),
        &["codec", "instructions", "seconds", "IPC", "PSNR dB", "SSIM", "kbps", "retiring"],
    );
    for codec in CodecId::ALL {
        let params = equivalent_params(codec, crf, 4);
        let spec = RunSpec::quick(clip, codec, params);
        // SSIM needs the reconstruction; run the encode directly too.
        let source = vstress::video::vbench::clip(clip)
            .expect("clip validated above")
            .synthesize(&spec.fidelity);
        let encoder = vstress::codecs::Encoder::new(codec, params).expect("params validated");
        let out = encoder.encode(&source, &mut vstress::trace::NullProbe).expect("encode");
        let recon =
            vstress::video::Clip::from_frames("recon", out.recon.clone(), source.fps()).unwrap();
        let ssim = vstress::video::metrics::sequence_ssim(&source, &recon).unwrap_or(0.0);
        match characterize(&spec) {
            Ok(run) => table.push_row(vec![
                codec.name().to_owned(),
                format!("{:.3e}", run.core.instructions as f64),
                format!("{:.4}", run.seconds),
                format!("{:.2}", run.core.ipc()),
                format!("{:.2}", run.mean_psnr),
                format!("{:.3}", ssim),
                format!("{:.1}", run.bitrate_kbps),
                format!("{:.2}", run.core.topdown().retiring),
            ]),
            Err(e) => {
                eprintln!("{codec}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!("{table}");
    println!(
        "The AV1-family models burn far more instructions at similar IPC —\n\
         the paper's central finding: the slowdown is algorithmic, not\n\
         microarchitectural."
    );
}
