//! Branch-predictor lab: capture a mid-run branch trace from an encode
//! (the paper's Pin + CBP methodology) and race the whole predictor zoo
//! on it — the four paper configurations plus the extra baselines.
//!
//! ```text
//! cargo run --release --example branch_predictor_lab [clip | trace.vbt]
//! ```
//!
//! Pass a `.vbt` file (from `vstress-transcode trace`) to replay a stored
//! trace instead of capturing one.

use vstress::bpred::{
    harness, Bimodal, BranchPredictor, Gshare, Perceptron, Tage, TageWithLoop, Tournament,
    TwoLevelLocal,
};
use vstress::codecs::{CodecId, Encoder, EncoderParams};
use vstress::table::Table;
use vstress::trace::{BranchWindowProbe, CountingProbe, Probe};
use vstress::video::vbench::{self, FidelityConfig};

fn main() {
    let clip_name = std::env::args().nth(1).unwrap_or_else(|| "game2".to_owned());
    let (trace, window_instrs) = if clip_name.ends_with(".vbt") {
        let file = std::fs::File::open(&clip_name).unwrap_or_else(|e| {
            eprintln!("{clip_name}: {e}");
            std::process::exit(1);
        });
        let trace = vstress::trace::io::read_branch_trace(std::io::BufReader::new(file))
            .unwrap_or_else(|e| {
                eprintln!("{clip_name}: {e}");
                std::process::exit(1);
            });
        let n = trace.len() as u64;
        println!("loaded {} branches from {clip_name}", trace.len());
        (trace, n.max(1))
    } else {
        let spec = match vbench::clip(&clip_name) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(1);
            }
        };
        let clip = spec.synthesize(&FidelityConfig::smoke());
        let encoder = Encoder::new(CodecId::SvtAv1, EncoderParams::new(63, 8)).unwrap();

        // Pass 1: place the window halfway through the run (paper protocol).
        let mut counter = CountingProbe::new();
        encoder.encode(&clip, &mut counter).unwrap();
        let total = counter.retired();

        // Pass 2: capture the branch window.
        let mut window = BranchWindowProbe::mid_run(total, (total / 2).max(1));
        encoder.encode(&clip, &mut window).unwrap();
        let window_instrs = window.window_retired().max(1);
        let trace = window.into_records();
        println!(
            "captured {} branches from a {}-instruction window ({} total retired)",
            trace.len(),
            window_instrs,
            total
        );
        (trace, window_instrs)
    };

    let mut zoo: Vec<Box<dyn BranchPredictor>> = vec![
        Box::new(Bimodal::with_budget_bytes(2 << 10)),
        Box::new(TwoLevelLocal::new(10, 10)),
        Box::new(Tournament::with_budget_bytes(8 << 10)),
        Box::new(Gshare::with_budget_bytes(2 << 10)),
        Box::new(Gshare::with_budget_bytes(32 << 10)),
        Box::new(Perceptron::with_budget_bytes(8 << 10)),
        Box::new(Tage::seznec_8kb()),
        Box::new(TageWithLoop::seznec_8kb()),
        Box::new(Tage::seznec_64kb()),
    ];

    let mut table = Table::new(
        format!("predictor zoo on {clip_name} (SVT-AV1, preset 8, CRF 63)"),
        &["predictor", "budget KB", "miss rate %", "MPKI"],
    );
    for p in &mut zoo {
        let stats = harness::run_with_window(p, &trace, window_instrs);
        table.push_row(vec![
            p.label(),
            format!("{:.1}", p.storage_bits() as f64 / 8.0 / 1024.0),
            format!("{:.2}", stats.miss_rate() * 100.0),
            format!("{:.3}", stats.mpki()),
        ]);
    }
    println!("{table}");
    println!(
        "Expect the paper's two findings: bigger tables beat smaller ones\n\
         within a family, and TAGE's geometric histories beat gshare."
    );
}
