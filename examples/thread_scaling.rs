//! Thread-scaling demo, two ways:
//!
//! 1. the paper's methodology — task graphs from an instrumented encode,
//!    scheduled on 1..=8 modelled cores (Figs. 12–15);
//! 2. a *real* parallel batch encode across clips using crossbeam scoped
//!    threads, to show the encoders are plain `Send` Rust values.
//!
//! ```text
//! cargo run --release --example thread_scaling
//! ```

use std::time::Instant;
use vstress::codecs::taskgraph::build_task_graph;
use vstress::codecs::{CodecId, Encoder, EncoderParams};
use vstress::sched::speedup_curve;
use vstress::table::Table;
use vstress::trace::{CountingProbe, NullProbe};
use vstress::video::vbench::{self, FidelityConfig};

fn main() {
    // --- Part 1: modelled scalability (paper Figs. 12–15) ---
    let clip = vbench::clip("game1").unwrap().synthesize(&FidelityConfig::smoke());
    let mut table =
        Table::new("modelled speedup vs threads (game1)", &["codec", "1", "2", "4", "8"]);
    for codec in [CodecId::SvtAv1, CodecId::Libaom, CodecId::X264, CodecId::X265] {
        let params = match codec {
            CodecId::X264 => EncoderParams::new(40, 5),
            CodecId::X265 => EncoderParams::new(40, 4),
            _ => EncoderParams::new(50, 6),
        };
        let encoder = Encoder::new(codec, params).unwrap();
        let mut probe = CountingProbe::new();
        let out = encoder.encode(&clip, &mut probe).unwrap();
        let graph = build_task_graph(codec, &out.tasks);
        let curve = speedup_curve(&graph, 8);
        table.push_row(vec![
            codec.name().to_owned(),
            format!("{:.2}", curve[0]),
            format!("{:.2}", curve[1]),
            format!("{:.2}", curve[3]),
            format!("{:.2}", curve[7]),
        ]);
    }
    println!("{table}");

    // --- Part 2: real wall-clock parallelism over a clip batch ---
    // Standard-fidelity clips so per-clip work dwarfs thread start-up.
    let names = ["desktop", "bike", "cat", "holi", "game2", "girl", "cricket", "hall"];
    let clips: Vec<_> = names
        .iter()
        .map(|n| vbench::clip(n).unwrap().synthesize(&FidelityConfig::default()))
        .collect();
    let encoder = Encoder::new(CodecId::LibvpxVp9, EncoderParams::new(45, 6)).unwrap();

    let serial_t0 = Instant::now();
    for c in &clips {
        encoder.encode(c, &mut NullProbe).unwrap();
    }
    let serial = serial_t0.elapsed();

    let parallel_t0 = Instant::now();
    let results =
        vstress::codecs::encode_batch(&encoder, &clips, 8).expect("batch encode succeeds");
    let parallel = parallel_t0.elapsed();
    assert_eq!(results.len(), clips.len());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "real batch encode of {} clips on {} host core(s): serial {:.2?}, parallel {:.2?} ({:.2}x)",
        clips.len(),
        cores,
        serial,
        parallel,
        serial.as_secs_f64() / parallel.as_secs_f64().max(1e-9)
    );
    println!(
        "(wall-clock speedup tracks the host's core count; the modelled\n\
         study above is what reproduces the paper's 12-core results)"
    );
}
