//! Quickstart: encode one vbench clip with the SVT-AV1 model, decode it
//! back, and print the characterization the paper's methodology would
//! produce for this run.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vstress::codecs::{CodecId, Decoder, Encoder, EncoderParams};
use vstress::trace::NullProbe;
use vstress::workbench::{characterize, RunSpec};

fn main() {
    // 1. Fully characterized encode: instruction mix, top-down, MPKI.
    let spec = RunSpec::quick("game1", CodecId::SvtAv1, EncoderParams::new(35, 4));
    let run = characterize(&spec).expect("game1 is a vbench clip");

    println!("clip:          {}", run.clip);
    println!("codec:         {}", run.codec);
    println!("crf/preset:    {}/{}", run.params.crf, run.params.preset);
    println!("instructions:  {:.3e}", run.core.instructions as f64);
    println!("modelled time: {:.4} s", run.seconds);
    println!("IPC:           {:.2}", run.core.ipc());
    println!("PSNR:          {:.2} dB", run.mean_psnr);
    println!("bitrate:       {:.1} kbps", run.bitrate_kbps);

    println!("\nmodelled counters (perf-stat style):\n{}", run.core);
    println!("hot kernels:\n{}", run.profile);

    // 2. Prove the bitstream is real: decode and compare reconstructions.
    let clip = vstress::video::vbench::clip("game1").unwrap().synthesize(&spec.fidelity);
    let encoder = Encoder::new(spec.codec, spec.params).unwrap();
    let out = encoder.encode(&clip, &mut NullProbe).unwrap();
    let decoded = Decoder::new().decode(&out.bitstream, &mut NullProbe).unwrap();
    let matches = decoded.frames.iter().zip(&out.recon).all(|(d, r)| d == r);
    println!(
        "decode check:  {} frames, bit-exact reconstruction = {}",
        decoded.frames.len(),
        matches
    );
}
