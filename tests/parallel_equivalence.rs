//! The parallel executor's contract: fanning characterizations out over
//! worker threads changes wall-clock time and nothing else.
//!
//! Results at 1, 2 and 4 workers must be bit-identical to the serial
//! path, and the run cache must serve repeated specs without re-encoding.

use std::sync::Arc;
use vstress::codecs::{CodecId, EncoderParams};
use vstress::exec::{run_all, RunCache};
use vstress::workbench::{characterize, equivalent_params, CharacterizationRun, RunSpec};

/// A small but heterogeneous spec batch: three codecs, two quality
/// points, pipeline and counting-only modes, with one duplicated spec.
fn spec_batch() -> Vec<RunSpec> {
    let mut specs = vec![
        RunSpec::quick("cat", CodecId::SvtAv1, EncoderParams::new(35, 6)),
        RunSpec::quick("cat", CodecId::X264, equivalent_params(CodecId::X264, 35, 6)),
        RunSpec::quick("desktop", CodecId::LibvpxVp9, EncoderParams::new(50, 7)),
        RunSpec::quick("cat", CodecId::SvtAv1, EncoderParams::new(35, 6)).counting_only(),
    ];
    // Duplicate of specs[0]: exercises the cache under contention.
    specs.push(specs[0].clone());
    specs
}

fn assert_bit_identical(a: &CharacterizationRun, b: &CharacterizationRun, what: &str) {
    assert_eq!(a.core.instructions, b.core.instructions, "{what}: instructions");
    assert_eq!(a.core.branches, b.core.branches, "{what}: branches");
    assert_eq!(a.core.branch_mispredicts, b.core.branch_mispredicts, "{what}: mispredicts");
    assert_eq!(a.total_bits, b.total_bits, "{what}: bitstream bits");
    assert_eq!(a.mix, b.mix, "{what}: instruction mix");
    assert_eq!(a.core.cycles, b.core.cycles, "{what}: cycles");
}

#[test]
fn executor_is_bit_identical_to_serial_at_every_width() {
    let specs = spec_batch();
    let serial: Vec<CharacterizationRun> = specs.iter().map(|s| characterize(s).unwrap()).collect();
    for workers in [1, 2, 4] {
        let cache = RunCache::new();
        let runs = run_all(&cache, workers, &specs).unwrap();
        assert_eq!(runs.len(), specs.len());
        for (i, (run, want)) in runs.iter().zip(&serial).enumerate() {
            assert_bit_identical(run, want, &format!("{workers} workers, spec {i}"));
        }
    }
}

#[test]
fn cache_hit_returns_the_identical_run_without_reencoding() {
    let specs = spec_batch();
    let cache = RunCache::new();
    let runs = run_all(&cache, 4, &specs).unwrap();
    let stats = cache.stats();
    // Five specs, four distinct keys: exactly four encodes happened, and
    // the duplicate was served from the cache at any interleaving.
    assert_eq!(stats.run_misses, 4, "distinct specs each encode once");
    assert_eq!(stats.run_hits, 1, "the duplicate spec must hit");
    assert!(
        Arc::ptr_eq(&runs[0], &runs[4]),
        "a cache hit returns the cached run itself, not a recomputation"
    );
    // Asking again re-encodes nothing at all.
    let again = cache.run(&specs[0]).unwrap();
    assert_eq!(cache.stats().run_misses, 4);
    assert!(Arc::ptr_eq(&again, &runs[0]));
}

#[test]
fn clip_synthesis_is_shared_across_runs() {
    let specs = spec_batch();
    let cache = RunCache::new();
    run_all(&cache, 2, &specs).unwrap();
    let stats = cache.stats();
    // Two distinct (clip, fidelity) keys: "cat" and "desktop".
    assert_eq!(stats.clip_misses, 2, "each clip synthesized exactly once");
}
