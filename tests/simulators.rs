//! Cross-crate simulator integration: instrumented encodes driving the
//! branch predictors, cache hierarchy, and pipeline model together.

use vstress::bpred::{harness::OnlinePredictor, Gshare, Tage};
use vstress::cache::{Hierarchy, HierarchyConfig};
use vstress::codecs::{CodecId, Encoder, EncoderParams};
use vstress::pipeline::CoreModel;
use vstress::trace::record::NullSink;
use vstress::trace::{CountingProbe, Probe, SinkProbe, TeeProbe};
use vstress::video::vbench::{self, FidelityConfig};

fn clip() -> vstress::video::Clip {
    vbench::clip("game2").unwrap().synthesize(&FidelityConfig::smoke())
}

#[test]
fn online_predictor_attached_to_an_encode() {
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(40, 6)).unwrap();
    let mut probe =
        SinkProbe::new(OnlinePredictor::new(Gshare::with_budget_bytes(8 << 10)), NullSink);
    enc.encode(&clip(), &mut probe).unwrap();
    let retired = probe.retired();
    let stats = probe.branch_sink().stats(retired);
    assert!(stats.branches > 10_000, "branches {}", stats.branches);
    assert!(stats.miss_rate() > 0.001 && stats.miss_rate() < 0.2, "{}", stats.miss_rate());
    assert!(stats.mpki() > 0.0);
}

#[test]
fn cache_hierarchy_attached_to_an_encode() {
    let enc = Encoder::new(CodecId::X264, EncoderParams::new(26, 5)).unwrap();
    let mut probe = SinkProbe::new(NullSink, Hierarchy::new(HierarchyConfig::broadwell_scaled(16)));
    enc.encode(&clip(), &mut probe).unwrap();
    let stats = probe.memory_sink().stats();
    assert!(stats.l1d.accesses > 100_000);
    assert!(stats.l1d.misses > 0);
    assert!(stats.l1d.hits > stats.l1d.misses, "encoders should mostly hit L1");
    // Inclusive-ish flow: L2 sees roughly the L1 misses.
    assert!(stats.l2.accesses <= stats.l1d.misses + stats.l1i.misses + stats.l1d.writebacks);
}

#[test]
fn tee_probe_keeps_counting_and_model_consistent() {
    let enc = Encoder::new(CodecId::LibvpxVp9, EncoderParams::new(45, 4)).unwrap();
    let mut probe = TeeProbe::new(CountingProbe::new(), CoreModel::broadwell_scaled(16));
    enc.encode(&clip(), &mut probe).unwrap();
    let (counting, model) = probe.into_parts();
    let report = model.into_report();
    assert_eq!(
        counting.mix().total(),
        report.instructions,
        "both probes must retire the identical stream"
    );
    assert_eq!(counting.mix().branch, report.branches);
}

#[test]
fn predictor_quality_ordering_holds_on_real_encoder_branches() {
    // Collect the branch trace once, replay through three predictors.
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(50, 8)).unwrap();
    let mut probe = SinkProbe::new(Vec::new(), NullSink);
    enc.encode(&clip(), &mut probe).unwrap();
    let (_, trace, _) = probe.into_parts();
    assert!(trace.len() > 50_000, "trace too small: {}", trace.len());
    let g2 = vstress::bpred::run(&mut Gshare::with_budget_bytes(2 << 10), &trace);
    let t64 = vstress::bpred::run(&mut Tage::seznec_64kb(), &trace);
    assert!(
        t64.miss_rate() < g2.miss_rate(),
        "tage-64KB {} must beat gshare-2KB {}",
        t64.miss_rate(),
        g2.miss_rate()
    );
}

#[test]
fn hot_kernel_profile_identifies_search_as_dominant() {
    use vstress::trace::Kernel;
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(20, 2)).unwrap();
    let mut probe = CountingProbe::new();
    enc.encode(&clip(), &mut probe).unwrap();
    let top = probe.profile().top(3);
    assert!(!top.is_empty());
    // At a slow preset the search kernels (SAD / motion search / SATD)
    // must dominate the profile — the "hot function" result the paper's
    // gprof step feeds into trace placement.
    let search_kernels = [Kernel::Sad, Kernel::MotionSearch, Kernel::Satd];
    assert!(
        search_kernels.contains(&top[0].0),
        "hottest kernel should be part of the search: {:?}",
        top
    );
    let search_share: f64 = probe
        .profile()
        .top(Kernel::ALL.len())
        .iter()
        .filter(|(k, _, _)| search_kernels.contains(k))
        .map(|(_, _, pct)| *pct)
        .sum();
    assert!(search_share > 30.0, "search share {search_share}%");
}

#[test]
fn decode_runs_on_the_pipeline_model_too() {
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(35, 6)).unwrap();
    let out = enc.encode(&clip(), &mut vstress::trace::NullProbe).unwrap();
    let mut probe = CoreModel::broadwell_scaled(16);
    let dec = vstress::codecs::Decoder::new().decode(&out.bitstream, &mut probe).unwrap();
    assert!(!dec.frames.is_empty());
    let report = probe.into_report();
    assert!(report.instructions > 0);
    assert!(report.ipc() > 0.5 && report.ipc() <= 4.0, "decode IPC {}", report.ipc());
}
