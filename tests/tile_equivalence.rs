//! The probe-merge contract, adversarially: splitting an encode across
//! tile/wavefront workers must change *nothing observable* — not the
//! bitstream, not the reconstruction, not the task trace, and not a
//! single probe event (branch PCs included) in the canonically merged
//! stream.
//!
//! The geometries are chosen to be awkward on purpose: odd-ball frame
//! sizes that leave partial superblocks at the right and bottom borders
//! (so motion candidates straddle tile/row boundaries and get clamped),
//! plus enough rows/columns to give every codec's decomposition — SVT
//! segments, x26x wavefront chunks, libaom/vp9 tile groups — more than
//! one chain to race.

use std::collections::HashMap;
use vstress::codecs::{CodecId, EncoderParams};
use vstress_codecs::Encoder;
use vstress_trace::{CountingProbe, EventBatch, Probe, ProbeEvent, RecordingProbe};
use vstress_video::synth::{SceneClass, SynthParams};
use vstress_video::Clip;

/// Canonicalizes data addresses by first-touch page renaming — the same
/// remap the pipeline model applies. The synthetic allocator
/// (`probe_addr::alloc`) hands every plane a fresh page base from a
/// process-global counter, so two encodes in one process differ by page
/// *bases* while agreeing on page structure and sub-page offsets; after
/// renaming, equal streams mean equal memory behaviour. Branch PCs and
/// every non-memory event are compared verbatim.
fn canonicalize(batch: &EventBatch) -> Vec<ProbeEvent> {
    const PAGE_SHIFT: u64 = 12;
    let mut pages: HashMap<u64, u64> = HashMap::new();
    let mut rename = |addr: u64| -> u64 {
        let next = pages.len() as u64;
        let id = *pages.entry(addr >> PAGE_SHIFT).or_insert(next);
        (id << PAGE_SHIFT) | (addr & ((1 << PAGE_SHIFT) - 1))
    };
    batch
        .events()
        .iter()
        .map(|e| match *e {
            ProbeEvent::Load { addr, bytes } => ProbeEvent::Load { addr: rename(addr), bytes },
            ProbeEvent::Store { addr, bytes } => ProbeEvent::Store { addr: rename(addr), bytes },
            other => other,
        })
        .collect()
}

/// A tiny deterministic LCG so geometry/param draws need no test-only
/// dependency on the rand shim's API.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn pick<T: Copy>(&mut self, options: &[T]) -> T {
        options[self.next() as usize % options.len()]
    }
}

/// Synthesizes a clip whose luma dimensions are even but deliberately
/// *not* superblock multiples, so border superblocks are partial.
fn awkward_clip(rng: &mut Lcg, frames: usize) -> Clip {
    // Widths/heights cover 2–4 superblock columns/rows at size 32 (and
    // more at 16), always with a ragged border on at least one axis.
    let width = rng.pick(&[70, 82, 98, 110]);
    let height = rng.pick(&[38, 46, 58, 66]);
    let class = rng.pick(&[SceneClass::Game, SceneClass::Action, SceneClass::Screen]);
    let params = SynthParams {
        width,
        height,
        frame_count: frames,
        fps: 30.0,
        entropy: 3.0 + (rng.next() % 40) as f64 / 10.0,
        class,
        seed: rng.next(),
    };
    params.synthesize("awkward").expect("even dimensions synthesize")
}

/// One fully recorded encode: every probe event in merge order, plus
/// the complete encode result.
fn recorded_encode(
    codec: CodecId,
    params: EncoderParams,
    clip: &Clip,
    tile_workers: usize,
) -> (EventBatch, vstress_codecs::EncodeResult, u64) {
    let encoder = Encoder::new(codec, params).expect("valid params");
    let mut counting = CountingProbe::new();
    let mut rec = RecordingProbe::new(&mut counting);
    let out = encoder.encode_with(clip, &mut rec, tile_workers).expect("encode succeeds");
    let batch = rec.into_batch();
    (batch, out, counting.retired())
}

#[test]
fn tile_merge_is_byte_identical_to_the_serial_stream() {
    let mut rng = Lcg(0x5eed_1e57);
    // Each codec exercises a different decomposition shape; VP9 shares
    // libaom's tile builder, so the aom case covers both.
    for codec in [CodecId::SvtAv1, CodecId::X264, CodecId::X265, CodecId::Libaom] {
        let clip = awkward_clip(&mut rng, 2);
        let params = EncoderParams::new(rng.pick(&[25, 40]), rng.pick(&[5, 7]));
        let (serial_events, serial_out, serial_retired) = recorded_encode(codec, params, &clip, 1);
        assert!(!serial_events.is_empty(), "{codec:?}: serial encode must record events");
        let serial_canon = canonicalize(&serial_events);
        for workers in [2usize, 4] {
            let (events, out, retired) = recorded_encode(codec, params, &clip, workers);
            // The merged stream — ops, addresses (up to first-touch page
            // renaming), branch PCs, taken bits, kernel switches — must
            // match event for event.
            assert_eq!(events.len(), serial_events.len(), "{codec:?} @ {workers}: event count");
            assert_eq!(
                canonicalize(&events),
                serial_canon,
                "{codec:?} @ {workers} workers: merged probe stream diverged"
            );
            assert_eq!(retired, serial_retired, "{codec:?} @ {workers} workers: retired count");
            assert_eq!(
                out.bitstream, serial_out.bitstream,
                "{codec:?} @ {workers} workers: bitstream"
            );
            assert_eq!(out.recon, serial_out.recon, "{codec:?} @ {workers} workers: recon");
            assert_eq!(out.tasks, serial_out.tasks, "{codec:?} @ {workers} workers: task trace");
            assert_eq!(
                out.frame_bits, serial_out.frame_bits,
                "{codec:?} @ {workers} workers: frame bits"
            );
        }
    }
}

#[test]
fn captured_stream_is_tile_worker_invariant() {
    // The capture-once layer's licence to drop `tile_workers` from its
    // cache key: a recorded capture — the packed canonical event stream
    // byte-for-byte, chunk boundaries included, plus every
    // stream-independent measurement — must not depend on how many
    // workers ran the encode. A capture recorded at any worker count may
    // then serve replays for every other count.
    use vstress::workbench::{capture_encode, RunSpec};
    let serial = capture_encode(&RunSpec::quick("cat", CodecId::X264, EncoderParams::new(35, 4)))
        .expect("serial capture");
    let tiled = capture_encode(
        &RunSpec::quick("cat", CodecId::X264, EncoderParams::new(35, 4)).with_tile_workers(4),
    )
    .expect("tiled capture");
    assert_eq!(serial.stream.events(), tiled.stream.events(), "event count diverged");
    assert_eq!(
        serial.stream.chunks(),
        tiled.stream.chunks(),
        "packed canonical stream diverged across tile-worker counts"
    );
    assert_eq!(serial, tiled, "captured measurements diverged across tile-worker counts");
}

#[test]
fn dead_probe_path_reaches_the_same_encode() {
    // Without a live probe the workers take the memoized fast path; the
    // artifacts (not the instrumentation, which is deliberately absent)
    // must still be worker-count invariant and equal to the instrumented
    // encode's.
    let mut rng = Lcg(0xabad_cafe);
    for codec in [CodecId::SvtAv1, CodecId::X265] {
        let clip = awkward_clip(&mut rng, 2);
        let params = EncoderParams::new(35, 6);
        let encoder = Encoder::new(codec, params).expect("valid params");
        let (_, live_out, _) = recorded_encode(codec, params, &clip, 3);
        for workers in [1usize, 2, 4] {
            let mut null = vstress_trace::NullProbe;
            let out = encoder.encode_with(&clip, &mut null, workers).expect("encode succeeds");
            assert_eq!(out.bitstream, live_out.bitstream, "{codec:?} @ {workers} workers (dead)");
            assert_eq!(out.recon, live_out.recon, "{codec:?} @ {workers} workers (dead)");
        }
    }
}
