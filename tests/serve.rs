//! End-to-end tests of the serve pipeline: fixed-seed determinism,
//! bounded-queue overload shedding, and graceful drain on shutdown.

use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use vstress::serve::{generate, serve, IngressPolicy, ServeConfig, TrafficConfig};

/// A cheap job schedule for library-level tests (tiny frames, bottom
/// ladder rung only).
fn cheap_jobs(seed: u64, n: usize) -> Vec<vstress::serve::JobSpec> {
    let mut cfg = TrafficConfig::quick(seed, n);
    cfg.frame_count = 2;
    cfg.ladder = vec![(32, 1)];
    generate(&cfg)
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vstress-serve-test-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn overload_sheds_via_bounded_queue_and_still_drains() {
    let jobs = cheap_jobs(21, 16);
    let cfg = ServeConfig {
        workers: 1,
        ingress_capacity: 1,
        stage_capacity: 2,
        ingress: IngressPolicy::Reject,
        pace: 0.0,
        ..ServeConfig::default()
    };
    let report = serve(&cfg, &jobs, &AtomicBool::new(false));
    // Unpaced injection against a capacity-1 queue and one worker must
    // shed: the worker cannot complete 15 encodes in the microseconds
    // the ingress loop needs to flood the queue.
    assert!(!report.rejected.is_empty(), "expected overload rejections");
    for r in &report.rejected {
        assert!(r.reason.contains("ingress queue full (capacity 1)"), "{}", r.reason);
    }
    // Conservation: every offered job is accounted for exactly once.
    let accepted = report.offered - report.rejected.len() - report.shed_on_shutdown.len();
    assert_eq!(report.completed.len() + report.failed.len(), accepted);
    assert!(report.drained, "queues must drain even under overload");
    // The bound held: the ingress queue never grew past its capacity.
    assert!(report.gauges.ingress.max_depth <= 1);
    assert_eq!(report.gauges.ingress.rejected as usize, report.rejected.len());
}

#[test]
fn pre_raised_shutdown_sheds_everything_and_drains() {
    let jobs = cheap_jobs(3, 8);
    let shutdown = AtomicBool::new(true);
    let report = serve(&ServeConfig::default(), &jobs, &shutdown);
    assert_eq!(report.shed_on_shutdown.len(), 8, "nothing may be admitted after shutdown");
    assert!(report.completed.is_empty());
    assert!(report.drained);
}

#[test]
fn mid_run_shutdown_drains_admitted_work() {
    // Paced arrivals (~40ms apart) with a shutdown raised mid-schedule:
    // some jobs are admitted and must complete; the rest are shed.
    let mut cfg = TrafficConfig::quick(17, 40);
    cfg.frame_count = 2;
    cfg.ladder = vec![(32, 1)];
    cfg.mean_gap_us = 40_000;
    let jobs = generate(&cfg);
    let shutdown = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&shutdown);
    let stopper = std::thread::spawn(move || {
        std::thread::sleep(std::time::Duration::from_millis(150));
        flag.store(true, Ordering::Release);
    });
    let serve_cfg = ServeConfig { workers: 2, pace: 1.0, ..ServeConfig::default() };
    let report = serve(&serve_cfg, &jobs, &shutdown);
    stopper.join().unwrap();
    assert!(report.drained, "graceful shutdown must drain queued work");
    assert!(!report.shed_on_shutdown.is_empty(), "late arrivals must be shed");
    let accepted = report.offered - report.shed_on_shutdown.len() - report.rejected.len();
    assert_eq!(report.completed.len() + report.failed.len(), accepted);
}

#[test]
fn serve_binary_fixed_seed_summary_is_deterministic_and_store_resumable() {
    let bin = env!("CARGO_BIN_EXE_vstress-serve");
    let store = temp_dir("store");
    let run = |workers: &str| {
        Command::new(bin)
            .args(["--seed", "7", "--jobs", "5", "--workers", workers])
            .args(["--store", store.to_str().unwrap()])
            .output()
            .expect("spawn vstress-serve")
    };
    let first = run("2");
    assert!(first.status.success(), "stderr: {}", String::from_utf8_lossy(&first.stderr));
    let second = run("1");
    assert!(second.status.success(), "stderr: {}", String::from_utf8_lossy(&second.stderr));
    // Same fixed seed ⇒ byte-identical job-level summary, at a
    // different worker count and from a cold in-process cache.
    assert_eq!(
        String::from_utf8_lossy(&first.stdout),
        String::from_utf8_lossy(&second.stdout),
        "job-level summary must be deterministic"
    );
    let err2 = String::from_utf8_lossy(&second.stderr);
    assert!(err2.contains("drained cleanly"), "{err2}");
    // The warm store served every encode: zero store misses.
    assert!(
        err2.lines().any(|l| l.contains("store") && l.contains(" hits, 0 misses")),
        "second run must be store-served: {err2}"
    );
    std::fs::remove_dir_all(store).ok();
}

#[test]
fn serve_binary_stdin_eof_triggers_graceful_drain() {
    let bin = env!("CARGO_BIN_EXE_vstress-serve");
    // 60 paced jobs ~300ms apart would take ~18s; closing stdin after
    // ~1s must shed the tail and still exit 0 with a clean drain.
    let mut child = Command::new(bin)
        .args(["--seed", "9", "--jobs", "60", "--stdin", "--pace", "1"])
        .args(["--mean-gap-ms", "300", "--workers", "2"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn vstress-serve");
    std::thread::sleep(std::time::Duration::from_millis(1000));
    drop(child.stdin.take()); // EOF = shutdown request
    let out = child.wait_with_output().expect("wait for vstress-serve");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "stderr: {err}");
    assert!(err.contains("drained cleanly"), "{err}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let shed: usize = stdout
        .lines()
        .find_map(|l| l.strip_prefix("shed "))
        .expect("summary has a shed line")
        .parse()
        .unwrap();
    assert!(shed > 0, "the tail of the schedule must have been shed:\n{stdout}");
}
