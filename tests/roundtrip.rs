//! Cross-crate encode → decode round-trip integration tests.
//!
//! The strongest correctness anchor in the workbench: for every codec
//! model, the decoder must reproduce the encoder's reconstruction
//! bit-for-bit from the bitstream alone, across parameter corners and
//! content classes.

use vstress::codecs::{CodecId, Decoder, Encoder, EncoderParams};
use vstress::trace::NullProbe;
use vstress::video::vbench::{self, FidelityConfig};

fn assert_roundtrip(codec: CodecId, crf: u8, preset: u8, clip_name: &str) {
    let clip = vbench::clip(clip_name).unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(codec, EncoderParams::new(crf, preset)).unwrap();
    let out = enc.encode(&clip, &mut NullProbe).unwrap();
    let dec = Decoder::new().decode(&out.bitstream, &mut NullProbe).unwrap();
    assert_eq!(dec.header.codec, codec);
    assert_eq!(dec.frames.len(), out.recon.len());
    for (i, (d, r)) in dec.frames.iter().zip(&out.recon).enumerate() {
        assert_eq!(d, r, "{codec} crf {crf} preset {preset} {clip_name}: frame {i} differs");
    }
}

#[test]
fn all_codecs_roundtrip_at_mid_quality() {
    for codec in CodecId::ALL {
        let crf = codec.max_crf() / 2;
        let preset = codec.max_preset() / 2;
        assert_roundtrip(codec, crf, preset, "bike");
    }
}

#[test]
fn quality_extremes_roundtrip() {
    // Finest and coarsest quantizers (most and least coefficient volume).
    assert_roundtrip(CodecId::SvtAv1, 0, 8, "cat");
    assert_roundtrip(CodecId::SvtAv1, 63, 8, "cat");
    assert_roundtrip(CodecId::X264, 0, 9, "cat");
    assert_roundtrip(CodecId::X264, 51, 0, "cat");
}

#[test]
fn preset_extremes_roundtrip() {
    // Slowest presets exercise exhaustive ME, extra quant passes and the
    // full partition grammar.
    assert_roundtrip(CodecId::SvtAv1, 40, 0, "desktop");
    assert_roundtrip(CodecId::LibvpxVp9, 40, 0, "desktop");
    assert_roundtrip(CodecId::X265, 30, 9, "desktop");
}

#[test]
fn content_classes_roundtrip() {
    for clip in ["desktop", "game3", "holi", "chicken"] {
        assert_roundtrip(CodecId::Libaom, 35, 5, clip);
    }
}

#[test]
fn decoded_quality_matches_encoder_report() {
    // The decoder's frames, compared to the source, must yield the same
    // PSNR the encoder reported for its reconstruction.
    let clip = vbench::clip("girl").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(30, 6)).unwrap();
    let out = enc.encode(&clip, &mut NullProbe).unwrap();
    let dec = Decoder::new().decode(&out.bitstream, &mut NullProbe).unwrap();
    for (i, (src, d)) in clip.frames().iter().zip(&dec.frames).enumerate() {
        let psnr = vstress::video::metrics::frame_psnr(src, d).unwrap();
        assert!(
            (psnr - out.frame_psnr[i]).abs() < 1e-9,
            "frame {i}: decoder PSNR {psnr} vs encoder-reported {}",
            out.frame_psnr[i]
        );
    }
}

#[test]
fn bitstream_is_compact() {
    // Sanity: encoded size beats raw size by a wide margin at high CRF.
    let clip = vbench::clip("hall").unwrap().synthesize(&FidelityConfig::smoke());
    let raw_bits = clip.total_samples() as u64 * 8;
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(55, 8)).unwrap();
    let out = enc.encode(&clip, &mut NullProbe).unwrap();
    assert!(
        out.total_bits() * 4 < raw_bits,
        "compression too weak: {} vs raw {}",
        out.total_bits(),
        raw_bits
    );
}

#[test]
fn corrupt_streams_fail_cleanly() {
    let clip = vbench::clip("bike").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::X264, EncoderParams::new(26, 5)).unwrap();
    let out = enc.encode(&clip, &mut NullProbe).unwrap();
    // Header corruptions must error; payload corruptions must not panic.
    let mut bad_magic = out.bitstream.clone();
    bad_magic[0] ^= 0xff;
    assert!(Decoder::new().decode(&bad_magic, &mut NullProbe).is_err());
    let mut truncated = out.bitstream.clone();
    truncated.truncate(10);
    assert!(Decoder::new().decode(&truncated, &mut NullProbe).is_err());
    // Bit-flips in the payload may decode to garbage but never panic.
    let mut flipped = out.bitstream;
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x55;
    let _ = Decoder::new().decode(&flipped, &mut NullProbe);
}
