//! Persistent run-store integration tests: cross-process reuse,
//! corruption recovery, and schema-version invalidation.
//!
//! "Cross-process" is modelled by dropping every piece of in-memory
//! state (the `RunCache` and the `RunStore` handle) and reopening the
//! same directory with fresh ones — exactly what a second
//! `vstress-repro --store` invocation does.

use std::path::PathBuf;
use std::sync::Arc;
use vstress::codecs::{CodecId, EncoderParams};
use vstress::workbench::RunSpec;
use vstress::{RunCache, RunStore};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstress-store-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> RunSpec {
    RunSpec::quick("cat", CodecId::X264, EncoderParams::new(30, 5))
}

/// A cache with all process state dropped, reattached to `root`.
fn fresh_cache(root: &PathBuf) -> RunCache {
    RunCache::with_store(Arc::new(RunStore::open(root).unwrap()))
}

#[test]
fn reloaded_run_is_bit_identical() {
    let root = tmp_root("roundtrip");

    // Process 1: compute and persist.
    let first = fresh_cache(&root);
    let computed = first.run(&spec()).unwrap();
    let s = first.stats();
    // Two misses: the run entry and the capture's stream entry.
    assert_eq!((s.store_hits, s.store_misses), (0, 2));
    assert_eq!(s.encodes, 1);
    drop(first);

    // Process 2: a brand-new cache + store over the same directory must
    // serve the run from disk, bit-identically, without encoding.
    let second = fresh_cache(&root);
    let reloaded = second.run(&spec()).unwrap();
    assert_eq!(*reloaded, *computed, "reloaded run must be bit-identical");
    let s = second.stats();
    assert_eq!((s.store_hits, s.store_misses), (1, 0));
    assert_eq!(s.clip_misses, 0, "a store-served run never synthesizes the clip");
    assert_eq!(s.encodes, 0, "a warm store means zero encodes");
    assert_eq!(s.stream_captures, 0, "…and zero stream recaptures");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn window_and_cost_layers_reload() {
    let root = tmp_root("layers");

    let first = fresh_cache(&root);
    let window = first.branch_window(&spec(), 10_000).unwrap();
    let cost = first.encode_decode_cost(&spec()).unwrap();
    let s = first.stats();
    // Window, cost and the shared stream entry miss; the cost derivation
    // reuses the window's in-memory capture, so one encode serves both.
    assert_eq!((s.store_hits, s.store_misses), (0, 3));
    assert_eq!(s.encodes, 1);
    drop(first);

    let second = fresh_cache(&root);
    assert_eq!(*second.branch_window(&spec(), 10_000).unwrap(), *window);
    assert_eq!(*second.encode_decode_cost(&spec()).unwrap(), *cost);
    let s = second.stats();
    // The capture's stream was persisted too, but a full window or cost
    // hit never needs it: both lookups are pure store hits.
    assert_eq!((s.store_hits, s.store_misses), (2, 0));
    assert_eq!(s.clip_misses, 0);
    assert_eq!(s.encodes, 0);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn truncated_entry_is_quarantined_and_recomputed() {
    let root = tmp_root("corruption");

    let first = fresh_cache(&root);
    let computed = first.run(&spec()).unwrap();
    drop(first);

    // Truncate the single stored run entry in place.
    let store = RunStore::open(&root).unwrap();
    let run_dir = store.dir().join("run");
    let entries: Vec<PathBuf> = std::fs::read_dir(&run_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "entry"))
        .collect();
    assert_eq!(entries.len(), 1);
    let text = std::fs::read_to_string(&entries[0]).unwrap();
    std::fs::write(&entries[0], &text[..text.len() / 3]).unwrap();
    drop(store);

    // The next process recovers: quarantine + recompute, not a failure.
    let second = fresh_cache(&root);
    let recomputed = second.run(&spec()).unwrap();
    assert_eq!(*recomputed, *computed, "recompute must reproduce the run");
    let s = second.stats();
    assert_eq!(s.store_quarantined, 1);
    // The run entry misses (quarantined), but the stream entry from
    // process 1 is intact and serves the recompute — capture once.
    assert_eq!((s.store_hits, s.store_misses), (1, 1));
    assert_eq!(s.encodes, 0, "the persisted stream makes the recompute encode-free");
    assert!(entries[0].exists(), "the recomputed entry is re-stored at the same address");
    let quarantined: Vec<PathBuf> = std::fs::read_dir(&run_dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.to_string_lossy().ends_with(".quarantined"))
        .collect();
    assert_eq!(quarantined.len(), 1, "the evidence stays inspectable");

    // And the recomputed entry serves the third process from disk.
    let third = fresh_cache(&root);
    assert_eq!(*third.run(&spec()).unwrap(), *computed);
    assert_eq!(third.stats().store_hits, 1);

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn schema_version_bump_invalidates_old_entries() {
    let root = tmp_root("schema");

    // Persist under the current schema version.
    let current = fresh_cache(&root);
    current.run(&spec()).unwrap();
    drop(current);

    // A future schema version sees an empty store (different directory)
    // and recomputes without touching the old entries.
    let next_version = vstress::SCHEMA_VERSION + 1;
    let bumped =
        RunCache::with_store(Arc::new(RunStore::open_with_version(&root, next_version).unwrap()));
    bumped.run(&spec()).unwrap();
    let s = bumped.stats();
    assert_eq!((s.store_hits, s.store_misses), (0, 2));
    assert_eq!(s.store_quarantined, 0, "absent is not corrupt");
    drop(bumped);

    // Both version directories now hold their own entry; the old one is
    // still valid for the old version.
    let old_again = fresh_cache(&root);
    old_again.run(&spec()).unwrap();
    assert_eq!(old_again.stats().store_hits, 1);

    let _ = std::fs::remove_dir_all(&root);
}
