//! End-to-end assertions of the paper's headline findings, run at the
//! quick experiment profile. Each test names the claim it pins down.

use vstress::codecs::{CodecId, EncoderParams};
use vstress::experiments::{crf_sweep, runtime_quality, threads, ExperimentConfig};
use vstress::workbench::{characterize, RunSpec};

fn cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::quick();
    c.clips = vec!["game1"];
    c.crf_points = vec![10, 60];
    c
}

/// Standard-fidelity single-clip config for the cache/top-down trend
/// claims: at smoke fidelity the scaled caches sit right at the working
/// set's capacity knee and the CRF trend drowns in noise, so these two
/// claims are checked at the fidelity EXPERIMENTS.md reports.
fn trend_cfg() -> ExperimentConfig {
    let mut c = ExperimentConfig::paper();
    c.clips = vec!["game1"];
    c.crf_points = vec![10, 60];
    c
}

/// "Runtime of AV1 encoders such as SVT-AV1 is higher than other encoders
/// … primarily because AV1 encoders need more work and thus require a
/// larger number of instructions to encode the same video."
#[test]
fn claim_av1_slowdown_is_instruction_count_not_ipc() {
    // Standard fidelity: the tiny smoke clips leave too little work for
    // the IPC comparison to be meaningful.
    let svt = characterize(&RunSpec::standard("game1", CodecId::SvtAv1, EncoderParams::new(35, 4)))
        .unwrap();
    let x264 = characterize(&RunSpec::standard("game1", CodecId::X264, EncoderParams::new(28, 5)))
        .unwrap();
    // Instruction gap is an order of magnitude...
    let instr_gap = svt.core.instructions as f64 / x264.core.instructions as f64;
    assert!(instr_gap > 8.0, "instruction gap: {instr_gap}");
    // ...while the IPC gap is small — the microarchitecture is not the
    // cause (the paper's headline finding).
    let ipc_gap = (svt.core.ipc() / x264.core.ipc()).max(x264.core.ipc() / svt.core.ipc());
    assert!(ipc_gap < 1.5, "IPC should be comparable: {} vs {}", svt.core.ipc(), x264.core.ipc());
    assert!(
        instr_gap > ipc_gap * 5.0,
        "work, not efficiency, must explain the gap: {instr_gap} vs {ipc_gap}"
    );
    // And the runtime gap tracks the instruction gap.
    assert!(svt.seconds > x264.seconds * 6.0);
}

/// "The AV1 workloads only achieve 50-60% of the potential throughput …
/// the percentage of wasted pipeline slots is roughly 40-50 percent."
#[test]
fn claim_retiring_is_roughly_half() {
    for crf in [15u8, 55] {
        let run =
            characterize(&RunSpec::quick("game1", CodecId::SvtAv1, EncoderParams::new(crf, 4)))
                .unwrap();
        let retiring = run.core.topdown().retiring;
        assert!(
            (0.38..0.68).contains(&retiring),
            "crf {crf}: retiring {retiring} outside the paper band"
        );
    }
}

/// "As CRF decreases, the runtime of the encoder increases largely
/// because of increasing instruction count." (Fig. 4)
#[test]
fn claim_crf_changes_work_not_efficiency() {
    let pts = crf_sweep::crf_sweep(&cfg()).unwrap();
    let lo = &pts[0].run; // CRF 15
    let hi = &pts[1].run; // CRF 55
    let instr_ratio = lo.core.instructions as f64 / hi.core.instructions as f64;
    let ipc_ratio = lo.core.ipc() / hi.core.ipc();
    // At smoke fidelity the tiny clips leave less prunable work; the
    // full-strength ratio (~4x) is asserted at standard fidelity by
    // claim_topdown_and_cache_trends.
    assert!(instr_ratio > 1.35, "work must fall with CRF: {instr_ratio}");
    assert!((0.8..1.25).contains(&ipc_ratio), "IPC must stay within ~±20%: {ipc_ratio}");
    // Runtime tracks instructions, not IPC.
    let time_ratio = lo.seconds / hi.seconds;
    assert!(
        (time_ratio / instr_ratio - 1.0).abs() < 0.4,
        "time ratio {time_ratio} should track instruction ratio {instr_ratio}"
    );
}

/// Figs. 5 and 6 at standard fidelity, from one sweep:
///
/// * "Backend slots account for more wasted pipeline slots than the
///   frontend and bad-speculation … increasing CRF tends to increase the
///   overall proportion of backend-bound slots but decrease the proportion
///   of frontend-bound slots."
/// * "as CRF increased, cache performance tended to deteriorate" (L1D/L2),
///   while "the LLC accounted for many fewer misses per kilo instruction".
///
/// The assertions target the memory-bound component directly — that is the
/// mechanism the paper names — with margins robust to the small run-to-run
/// jitter that live buffer addresses introduce (see tests/determinism.rs).
#[test]
fn claim_topdown_and_cache_trends() {
    let pts = crf_sweep::crf_sweep(&trend_cfg()).unwrap();
    let lo = &pts[0].run.core;
    let hi = &pts[1].run.core;
    let lo_td = lo.topdown();
    let hi_td = hi.topdown();
    // Fig. 4 at standard fidelity: work falls several-fold with CRF while
    // IPC barely moves.
    let instr_ratio = lo.instructions as f64 / hi.instructions as f64;
    assert!(instr_ratio > 2.5, "work must fall substantially with CRF: {instr_ratio}");
    let ipc_ratio = lo.ipc() / hi.ipc();
    assert!((0.85..1.2).contains(&ipc_ratio), "IPC must stay flat: {ipc_ratio}");
    // Fig. 6a: branch MPKI falls with CRF.
    assert!(
        hi.branch_mpki() < lo.branch_mpki(),
        "branch MPKI must fall with CRF: {} vs {}",
        lo.branch_mpki(),
        hi.branch_mpki()
    );
    for (label, td) in [("low CRF", &lo_td), ("high CRF", &hi_td)] {
        assert!(td.backend > td.bad_speculation, "{label}: backend vs bad-spec {td:?}");
    }
    // Backend-memory pressure grows with CRF; the frontend share does not.
    assert!(
        hi_td.backend_memory > lo_td.backend_memory * 1.1,
        "memory-bound slots must grow with CRF: {lo_td:?} vs {hi_td:?}"
    );
    assert!(
        hi_td.frontend < lo_td.frontend + 0.03,
        "frontend must not grow with CRF: {lo_td:?} vs {hi_td:?}"
    );
    // The sum of frontend+backend stays roughly constant (paper's note).
    let sum_lo = lo_td.frontend + lo_td.backend;
    let sum_hi = hi_td.frontend + hi_td.backend;
    assert!((sum_lo - sum_hi).abs() < 0.15, "fe+be drifted: {sum_lo} vs {sum_hi}");
    // Cache pressure: L1D MPKI rises; LLC stays far below L1D.
    assert!(
        hi.l1d_mpki() > lo.l1d_mpki() * 1.1,
        "L1D MPKI must rise with CRF: {} vs {}",
        lo.l1d_mpki(),
        hi.l1d_mpki()
    );
    assert!(hi.llc_mpki() < hi.l1d_mpki() / 5.0);
}

/// Fig. 1: SVT-AV1's runtime exceeds every other encoder at every CRF.
#[test]
fn claim_fig01_ordering() {
    let (_, points) = runtime_quality::fig01_runtime_vs_crf(&cfg()).unwrap();
    for &crf in &[10u8, 60] {
        let get = |codec| {
            points.iter().find(|p| p.codec == codec && p.crf == crf).map(|p| p.seconds).unwrap()
        };
        let svt = get(CodecId::SvtAv1);
        for other in [CodecId::Libaom, CodecId::LibvpxVp9, CodecId::X264, CodecId::X265] {
            assert!(
                svt >= get(other),
                "crf {crf}: SVT {svt}s must be slowest (vs {other}: {}s)",
                get(other)
            );
        }
    }
}

/// Figs. 12–16: SVT-AV1 ≈ 6x at 8 threads, x265 worst (~1.3x), and only
/// x265 becomes markedly more backend-bound with threads.
#[test]
fn claim_thread_scaling_shapes() {
    let c = cfg();
    let (_, results) = threads::fig12_15_thread_scaling(&c).unwrap();
    let r = &results[0];
    let at8 = |codec| {
        r.curves.iter().find(|(cc, _)| *cc == codec).map(|(_, v)| *v.last().unwrap()).unwrap()
    };
    assert!(at8(CodecId::SvtAv1) > 4.5, "SVT at 8 threads: {}", at8(CodecId::SvtAv1));
    assert!(at8(CodecId::X265) < 2.0, "x265 at 8 threads: {}", at8(CodecId::X265));
    assert!(at8(CodecId::SvtAv1) > at8(CodecId::X264));
    assert!(at8(CodecId::X264) > at8(CodecId::X265));
}
