//! Tentpole oracle for the capture-once / simulate-many pipeline: a
//! characterization derived from a persisted probe event stream must be
//! **bit-identical** to the fused live path — not approximately equal.
//! Every optimization in the replay loop (batched chunk drains, cached
//! per-kernel scalars, the incremental fetch walk, cache way hints) is
//! licensed by these tests.
//!
//! Bit-identity of the f64 fields is asserted through `serde::to_string`:
//! the JSON text renders every float exactly (shortest round-trip), so
//! equal strings mean equal bits, while `assert_eq!` on the structs alone
//! would accept `-0.0 == 0.0` and ULP-level drift hidden by display
//! rounding.

use vstress::bpred::Tage;
use vstress::cache::HierarchyConfig;
use vstress::codecs::{CodecId, Encoder};
use vstress::pipeline::{CoreConfig, CoreModel};
use vstress::trace::stream::chunk_channel;
use vstress::trace::BranchWindowProbe;
use vstress::workbench::{
    capture_encode_with, characterize_clip, characterize_from_capture, clip_for, equivalent_params,
    run_from_parts, RunSpec,
};

/// Every codec family the workbench models, at the same quality point.
const CODECS: [CodecId; 4] = [CodecId::SvtAv1, CodecId::X264, CodecId::X265, CodecId::Libaom];

fn spec_for(codec: CodecId) -> RunSpec {
    RunSpec::quick("cat", codec, equivalent_params(codec, 35, 4))
}

/// The tentpole guarantee: for every codec family, replaying a captured
/// stream through a fresh core model reproduces the fused live
/// characterization bit-for-bit — mix, profile, cycles, top-down slots,
/// cache stats, everything.
#[test]
fn capture_replay_is_bit_identical_to_live_for_every_codec() {
    for codec in CODECS {
        let spec = spec_for(codec);
        let clip = clip_for(&spec).unwrap();
        let live = characterize_clip(&spec, &clip).unwrap();
        let cap = capture_encode_with(&spec, &clip, None).unwrap();
        let replayed = characterize_from_capture(&spec, &cap);
        assert_eq!(live, replayed, "{codec:?}: replay diverged from live");
        assert_eq!(
            serde::to_string(&live),
            serde::to_string(&replayed),
            "{codec:?}: f64 bits diverged between live and replay"
        );
    }
}

/// The overlapped capture pipeline — encode feeding chunks through a
/// bounded channel into a concurrently draining core model — must land
/// on the same bits as a serial replay of the finished stream.
#[test]
fn channel_overlapped_consume_matches_serial_replay() {
    let spec = spec_for(CodecId::SvtAv1);
    let clip = clip_for(&spec).unwrap();
    let (cap, core) = std::thread::scope(|scope| {
        let (tx, rx) = chunk_channel(8);
        let divisor = spec.cache_divisor;
        let consumer = scope.spawn(move || {
            let mut core = CoreModel::broadwell_scaled(divisor);
            while let Some(chunk) = rx.recv() {
                core.consume_chunk(&chunk);
            }
            core
        });
        let cap = capture_encode_with(&spec, &clip, Some(tx)).unwrap();
        (cap, consumer.join().unwrap())
    });
    let overlapped = run_from_parts(&spec, &cap, core);
    let serial = characterize_from_capture(&spec, &cap);
    assert_eq!(overlapped, serial);
    assert_eq!(serde::to_string(&overlapped), serde::to_string(&serial));
}

/// Stream replay is predictor-agnostic: both shipped TAGE geometries,
/// driven live as the encode's probe, match a replay of the captured
/// stream through the same geometry bit-for-bit. (The default gshare
/// geometry is covered by the all-codec test above.)
#[test]
fn capture_replay_is_bit_identical_for_both_tage_geometries() {
    let spec = spec_for(CodecId::SvtAv1);
    let clip = clip_for(&spec).unwrap();
    let cap = capture_encode_with(&spec, &clip, None).unwrap();
    type MkTage = fn() -> Tage;
    let geometries: [(&str, MkTage); 2] =
        [("tage-8KB", Tage::seznec_8kb), ("tage-64KB", Tage::seznec_64kb)];
    for (label, mk) in geometries {
        let mut live = CoreModel::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell_scaled(spec.cache_divisor),
            mk(),
        );
        let encoder = Encoder::new(spec.codec, spec.params).unwrap();
        encoder.encode_with(&clip, &mut live, 1).unwrap();
        let mut replay = CoreModel::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell_scaled(spec.cache_divisor),
            mk(),
        );
        replay.consume_stream(&cap.stream);
        let live = live.into_report();
        let replay = replay.into_report();
        assert_eq!(live, replay, "{label}: replay diverged from live");
        assert_eq!(
            serde::to_string(&live),
            serde::to_string(&replay),
            "{label}: f64 bits diverged"
        );
    }
}

/// The CBP study's mid-run branch window, sliced out of a captured
/// stream, must equal the window a dedicated live probe pass would have
/// captured — same records, same covered-instruction count.
#[test]
fn branch_window_from_stream_matches_live_probe_pass() {
    let spec = spec_for(CodecId::X265);
    let clip = clip_for(&spec).unwrap();
    let cap = capture_encode_with(&spec, &clip, None).unwrap();
    let total = cap.mix.total();
    let window = total / 4;

    let mut live = BranchWindowProbe::mid_run(total, window);
    let encoder = Encoder::new(spec.codec, spec.params).unwrap();
    encoder.encode_with(&clip, &mut live, 1).unwrap();

    let mut replayed = BranchWindowProbe::mid_run(total, window);
    cap.stream.replay(&mut replayed);

    assert_eq!(live.window_retired(), replayed.window_retired());
    assert_eq!(live.records(), replayed.records());
    assert!(!replayed.records().is_empty());
}

/// A persisted stream — serialized, reloaded, replayed — produces the
/// same characterization as the in-memory capture it came from: the
/// store's `stream` entries really do stand in for re-encoding.
#[test]
fn persisted_stream_reproduces_the_characterization() {
    let spec = spec_for(CodecId::X264);
    let clip = clip_for(&spec).unwrap();
    let cap = capture_encode_with(&spec, &clip, None).unwrap();
    let text = serde::to_string(&cap);
    let reloaded = serde::from_str::<vstress::workbench::CapturedEncode>(&text).unwrap();
    assert_eq!(cap, reloaded);
    let from_memory = characterize_from_capture(&spec, &cap);
    let from_disk = characterize_from_capture(&spec, &reloaded);
    assert_eq!(from_memory, from_disk);
    assert_eq!(serde::to_string(&from_memory), serde::to_string(&from_disk));
}
