//! Regression tests for the binaries' command-line parsing.
//!
//! These invoke the *built binaries* (via `CARGO_BIN_EXE_*`), because
//! the bugs they pin lived in the binaries' hand-rolled parsers, not in
//! the library: `--csv --threads 4` used to create a directory named
//! `--threads`, a trailing `--csv` was silently ignored, and unknown
//! flags (the typo `--thread 4`, `--paperr`) were silently skipped.
//! Usage errors must exit with code 2 and say what was wrong; runtime
//! errors keep exit code 1.

use std::path::Path;
use std::process::{Command, Output};

const REPRO: &str = env!("CARGO_BIN_EXE_vstress-repro");
const TRANSCODE: &str = env!("CARGO_BIN_EXE_vstress-transcode");
const SERVE: &str = env!("CARGO_BIN_EXE_vstress-serve");

/// Runs `bin` with `args` in a fresh temp dir (so stray files created
/// by a regression are visible and isolated) and returns the output
/// plus the temp dir path.
fn run_in_tempdir(bin: &str, args: &[&str]) -> (Output, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!(
        "vstress-cli-test-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(bin).args(args).current_dir(&dir).output().expect("spawn binary");
    (out, dir)
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn repro_csv_with_flag_like_value_is_rejected() {
    let (out, dir) = run_in_tempdir(REPRO, &["--csv", "--threads", "4"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--csv"), "stderr: {}", stderr_of(&out));
    // The old bug: a directory literally named `--threads`.
    assert!(!dir.join("--threads").exists(), "must not create a flag-named directory");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_trailing_csv_is_rejected() {
    let (out, dir) = run_in_tempdir(REPRO, &["table1", "--csv"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("--csv needs a DIR"), "stderr: {}", stderr_of(&out));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_threads_validation() {
    for bad in [&["--threads", "--csv"][..], &["--threads", "0"], &["--threads", "abc"]] {
        let (out, dir) = run_in_tempdir(REPRO, bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}: {}", stderr_of(&out));
        assert!(stderr_of(&out).contains("--threads"), "args {bad:?}: {}", stderr_of(&out));
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn repro_unknown_flags_are_rejected_with_usage() {
    for (args, expect) in [(&["--thread", "4"][..], "--thread"), (&["--paperr"][..], "--paperr")] {
        let (out, dir) = run_in_tempdir(REPRO, args);
        let err = stderr_of(&out);
        assert_eq!(out.status.code(), Some(2), "args {args:?}: {err}");
        assert!(err.contains(&format!("unknown flag: {expect}")), "{err}");
        // The usage message lists the valid flags.
        assert!(err.contains("--threads") && err.contains("--paper"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn repro_unknown_experiment_still_rejected() {
    let (out, dir) = run_in_tempdir(REPRO, &["figxx"]);
    assert_eq!(out.status.code(), Some(2));
    let err = stderr_of(&out);
    assert!(err.contains("unknown experiment: figxx"), "{err}");
    assert!(err.contains("valid experiments:"), "{err}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_equals_spelling_works() {
    // Regression: `--threads=4` used to be rejected as `unknown flag:
    // --threads=4` because the lookup matched the whole token. table1
    // is catalogue-only, so the accepted spelling also runs cheaply.
    let (out, dir) = run_in_tempdir(REPRO, &["table1", "--threads=4"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert!(!out.stdout.is_empty());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_empty_equals_value_is_rejected() {
    let (out, dir) = run_in_tempdir(REPRO, &["table1", "--threads="]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    assert!(stderr_of(&out).contains("--threads needs a N"), "stderr: {}", stderr_of(&out));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_inline_value_on_switch_is_rejected() {
    let (out, dir) = run_in_tempdir(REPRO, &["table1", "--quick=1"]);
    assert_eq!(out.status.code(), Some(2), "stderr: {}", stderr_of(&out));
    let err = stderr_of(&out);
    assert!(err.contains("--quick") && err.contains("switch takes no value"), "{err}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn repro_happy_path_table1() {
    // table1 is pure catalogue output — cheap enough for a CLI test.
    let (out, dir) = run_in_tempdir(REPRO, &["table1"]);
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr_of(&out));
    assert!(!out.stdout.is_empty());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn transcode_store_value_validation() {
    for bad in [&["trace", "--store"][..], &["trace", "--store", "--quick"]] {
        let (out, dir) = run_in_tempdir(TRANSCODE, bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}: {}", stderr_of(&out));
        assert!(stderr_of(&out).contains("--store needs a DIR"), "{}", stderr_of(&out));
        std::fs::remove_dir_all(dir).ok();
    }
}

#[test]
fn transcode_unknown_flag_is_rejected() {
    let (out, dir) = run_in_tempdir(TRANSCODE, &["encode", "clip:cat", "out.vst", "--fast"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unknown flag: --fast"), "{}", stderr_of(&out));
    assert!(!Path::new(&dir).join("out.vst").exists());
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn transcode_missing_subcommand_is_a_runtime_error() {
    let (out, dir) = run_in_tempdir(TRANSCODE, &[]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stderr_of(&out).contains("usage"), "{}", stderr_of(&out));
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn serve_flag_validation() {
    for bad in [
        &["--jobs", "0"][..],
        &["--jobs"],
        &["--jobs", "--seed"],
        &["--pace", "-1"],
        &["--workers", "none"],
        &["--unknown-flag"],
    ] {
        let (out, dir) = run_in_tempdir(SERVE, bad);
        assert_eq!(out.status.code(), Some(2), "args {bad:?}: {}", stderr_of(&out));
        std::fs::remove_dir_all(dir).ok();
    }
    // Positionals are rejected too.
    let (out, dir) = run_in_tempdir(SERVE, &["fig01"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr_of(&out).contains("unexpected argument"), "{}", stderr_of(&out));
    std::fs::remove_dir_all(dir).ok();
}
