//! Determinism guarantees: every workbench result must be bit-identical
//! across runs — the property that makes the experiments reproducible.

use vstress::codecs::{CodecId, Encoder, EncoderParams};
use vstress::pipeline::CoreModel;
use vstress::trace::{CountingProbe, NullProbe, TeeProbe};
use vstress::video::vbench::{self, FidelityConfig};

#[test]
fn clip_synthesis_is_bit_identical_across_runs() {
    let a = vbench::clip("holi").unwrap().synthesize(&FidelityConfig::smoke());
    let b = vbench::clip("holi").unwrap().synthesize(&FidelityConfig::smoke());
    for (fa, fb) in a.frames().iter().zip(b.frames()) {
        assert_eq!(fa, fb);
    }
}

#[test]
fn bitstreams_are_bit_identical_across_runs() {
    let clip = vbench::clip("game3").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(33, 5)).unwrap();
    let a = enc.encode(&clip, &mut NullProbe).unwrap();
    let b = enc.encode(&clip, &mut NullProbe).unwrap();
    assert_eq!(a.bitstream, b.bitstream);
    assert_eq!(a.frame_bits, b.frame_bits);
}

#[test]
fn instrumentation_does_not_change_the_bitstream() {
    // Heisenberg check: probing must never alter encoder decisions.
    let clip = vbench::clip("funny").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::X265, EncoderParams::new(30, 5)).unwrap();
    let plain = enc.encode(&clip, &mut NullProbe).unwrap();
    let mut probe = TeeProbe::new(CountingProbe::new(), CoreModel::broadwell_scaled(16));
    let probed = enc.encode(&clip, &mut probe).unwrap();
    assert_eq!(plain.bitstream, probed.bitstream);
    assert_eq!(plain.frame_psnr, probed.frame_psnr);
}

#[test]
fn pipeline_reports_are_fully_deterministic() {
    // The instruction/branch stream is bit-deterministic, and since the
    // probes report synthetic page-aligned addresses (see
    // `vstress_trace::probe_addr`) the cache statistics are too: address
    // streams are a pure function of the encode, not of allocator state
    // or ASLR, so every derived statistic reproduces exactly.
    let clip = vbench::clip("presentation").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::Libaom, EncoderParams::new(44, 6)).unwrap();
    let run = |clip: &vstress::video::Clip| {
        let mut model = CoreModel::broadwell_scaled(16);
        enc.encode(clip, &mut model).unwrap();
        model.into_report()
    };
    let a = run(&clip);
    let b = run(&clip);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(a.branches, b.branches);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
    assert_eq!(a.cache.l1d.misses, b.cache.l1d.misses);
    assert_eq!(a.cache.l2.misses, b.cache.l2.misses);
    assert_eq!(a.cache.llc.misses, b.cache.llc.misses);
    assert_eq!(a.cycles, b.cycles, "cycles: {} vs {}", a.cycles, b.cycles);
}

#[test]
fn task_traces_are_identical_across_runs() {
    let clip = vbench::clip("cricket").unwrap().synthesize(&FidelityConfig::smoke());
    let enc = Encoder::new(CodecId::X264, EncoderParams::new(20, 3)).unwrap();
    let mut p1 = CountingProbe::new();
    let mut p2 = CountingProbe::new();
    let a = enc.encode(&clip, &mut p1).unwrap();
    let b = enc.encode(&clip, &mut p2).unwrap();
    assert_eq!(a.tasks, b.tasks);
}

#[test]
fn different_seeds_give_different_content_same_format() {
    let mut f1 = FidelityConfig::smoke();
    let mut f2 = FidelityConfig::smoke();
    f1.seed = 1;
    f2.seed = 2;
    let a = vbench::clip("bike").unwrap().synthesize(&f1);
    let b = vbench::clip("bike").unwrap().synthesize(&f2);
    assert_eq!(a.dimensions(), b.dimensions());
    assert_ne!(a.frames()[0], b.frames()[0]);
    // Both still encode fine.
    let enc = Encoder::new(CodecId::X264, EncoderParams::new(26, 5)).unwrap();
    assert!(enc.encode(&a, &mut NullProbe).is_ok());
    assert!(enc.encode(&b, &mut NullProbe).is_ok());
}
