//! Model outputs: cycles, IPC, top-down slots, resource stalls.

use vstress_cache::HierarchyStats;

/// Top-down slot fractions (they sum to 1).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TopDownSlots {
    /// Slots that retired useful uops.
    pub retiring: f64,
    /// Slots wasted on wrong-path work and recovery.
    pub bad_speculation: f64,
    /// Slots starved because the frontend supplied no uops.
    pub frontend: f64,
    /// Slots stalled in the backend (memory + core).
    pub backend: f64,
    /// Memory subcomponent of `backend`.
    pub backend_memory: f64,
    /// Core (execution-resource) subcomponent of `backend`.
    pub backend_core: f64,
}

/// Stall-cycle counters per back-end structure (paper Fig. 6e–6h).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ResourceStalls {
    /// Cycles stalled with the reorder buffer full.
    pub rob: f64,
    /// Cycles stalled with the reservation station full.
    pub rs: f64,
    /// Cycles stalled with the load queue full.
    pub lq: f64,
    /// Cycles stalled with the store queue full.
    pub sq: f64,
}

/// Aggregate result of modelling one instrumented run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreReport {
    /// Retired instructions.
    pub instructions: u64,
    /// Modelled core cycles.
    pub cycles: f64,
    /// Pipeline width used for slot accounting.
    pub width: u32,
    /// Retired branches.
    pub branches: u64,
    /// Mispredicted branches.
    pub branch_mispredicts: u64,
    /// Slot counts per category (slots, not fractions).
    pub slots_retiring: f64,
    /// Wasted slots: bad speculation.
    pub slots_bad_spec: f64,
    /// Wasted slots: frontend-bound.
    pub slots_frontend: f64,
    /// Wasted slots: backend memory-bound.
    pub slots_backend_mem: f64,
    /// Wasted slots: backend core-bound.
    pub slots_backend_core: f64,
    /// Resource-stall cycle counters.
    pub resource_stalls: ResourceStalls,
    /// Cache-hierarchy statistics (includes the modelled I-cache).
    pub cache: HierarchyStats,
    /// Data-side miss events attributed to the kernel active at miss time
    /// (indexed by [`vstress_trace::Kernel::index`]).
    pub misses_by_kernel: [u64; 15],
}

impl CoreReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles <= 0.0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles
        }
    }

    /// Branch misprediction rate in `[0, 1]`.
    pub fn branch_miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.branches as f64
        }
    }

    /// Branch mispredicts per kilo-instruction.
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.branch_mispredicts as f64 / self.instructions as f64 * 1000.0
        }
    }

    /// L1D misses per kilo-instruction.
    pub fn l1d_mpki(&self) -> f64 {
        self.cache.l1d.mpki(self.instructions)
    }

    /// L2 misses per kilo-instruction.
    pub fn l2_mpki(&self) -> f64 {
        self.cache.l2.mpki(self.instructions)
    }

    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        self.cache.llc.mpki(self.instructions)
    }

    /// Normalized top-down fractions.
    ///
    /// Total slots are `width * cycles`; the four top categories are
    /// normalized onto them so the result always sums to 1.
    pub fn topdown(&self) -> TopDownSlots {
        let total = self.slots_retiring
            + self.slots_bad_spec
            + self.slots_frontend
            + self.slots_backend_mem
            + self.slots_backend_core;
        if total <= 0.0 {
            return TopDownSlots {
                retiring: 0.0,
                bad_speculation: 0.0,
                frontend: 0.0,
                backend: 0.0,
                backend_memory: 0.0,
                backend_core: 0.0,
            };
        }
        let backend_memory = self.slots_backend_mem / total;
        let backend_core = self.slots_backend_core / total;
        TopDownSlots {
            retiring: self.slots_retiring / total,
            bad_speculation: self.slots_bad_spec / total,
            frontend: self.slots_frontend / total,
            backend: backend_memory + backend_core,
            backend_memory,
            backend_core,
        }
    }
}

impl std::fmt::Display for CoreReport {
    /// `perf stat`-style rendering of the modelled counters.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let td = self.topdown();
        writeln!(f, "{:>16}  instructions", self.instructions)?;
        writeln!(f, "{:>16.0}  cycles               # {:.2} IPC", self.cycles, self.ipc())?;
        writeln!(
            f,
            "{:>16}  branches             # {:.2}% miss rate, {:.2} MPKI",
            self.branches,
            self.branch_miss_rate() * 100.0,
            self.branch_mpki()
        )?;
        writeln!(
            f,
            "{:>16}  L1D misses           # {:.2} MPKI",
            self.cache.l1d.misses,
            self.l1d_mpki()
        )?;
        writeln!(
            f,
            "{:>16}  L2 misses            # {:.2} MPKI",
            self.cache.l2.misses,
            self.l2_mpki()
        )?;
        writeln!(
            f,
            "{:>16}  LLC misses           # {:.3} MPKI",
            self.cache.llc.misses,
            self.llc_mpki()
        )?;
        writeln!(
            f,
            "        top-down: retiring {:.1}%  bad-spec {:.1}%  frontend {:.1}%  backend {:.1}% (mem {:.1}% / core {:.1}%)",
            td.retiring * 100.0,
            td.bad_speculation * 100.0,
            td.frontend * 100.0,
            td.backend * 100.0,
            td.backend_memory * 100.0,
            td.backend_core * 100.0
        )?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> CoreReport {
        CoreReport {
            instructions: 1000,
            cycles: 500.0,
            width: 4,
            branches: 100,
            branch_mispredicts: 5,
            slots_retiring: 1000.0,
            slots_bad_spec: 100.0,
            slots_frontend: 300.0,
            slots_backend_mem: 400.0,
            slots_backend_core: 200.0,
            resource_stalls: ResourceStalls::default(),
            cache: HierarchyStats::default(),
            misses_by_kernel: [0; 15],
        }
    }

    #[test]
    fn ipc_and_rates() {
        let r = report();
        assert!((r.ipc() - 2.0).abs() < 1e-12);
        assert!((r.branch_miss_rate() - 0.05).abs() < 1e-12);
        assert!((r.branch_mpki() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn topdown_sums_to_one() {
        let td = report().topdown();
        assert!((td.retiring + td.bad_speculation + td.frontend + td.backend - 1.0).abs() < 1e-12);
        assert!((td.backend - (td.backend_memory + td.backend_core)).abs() < 1e-12);
        assert!((td.retiring - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_contains_the_headline_counters() {
        let s = format!("{}", report());
        assert!(s.contains("instructions"));
        assert!(s.contains("IPC"));
        assert!(s.contains("top-down"));
        assert!(s.contains("retiring 50.0%"));
    }

    #[test]
    fn degenerate_report_is_safe() {
        let mut r = report();
        r.instructions = 0;
        r.cycles = 0.0;
        r.branches = 0;
        r.slots_retiring = 0.0;
        r.slots_bad_spec = 0.0;
        r.slots_frontend = 0.0;
        r.slots_backend_mem = 0.0;
        r.slots_backend_core = 0.0;
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.branch_miss_rate(), 0.0);
        assert_eq!(r.topdown().retiring, 0.0);
    }
}
