//! Core-model parameters.

use vstress_trace::Kernel;

/// Parameters of the interval core model.
///
/// Defaults model the paper's Intel Xeon E5-2650 v4 (Broadwell): 4-wide,
/// 192-entry ROB, 60-entry unified reservation station, 72-entry load
/// queue, 42-entry store queue. The *exposure* fields encode how much of
/// each miss latency an out-of-order window fails to hide; they are the
/// calibrated quantities of the model (see DESIGN.md §5, pipeline notes).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CoreConfig {
    /// Pipeline width in slots per cycle (dispatch = retire width).
    pub width: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Reservation-station entries.
    pub rs: u32,
    /// Load-queue entries.
    pub lq: u32,
    /// Store-queue entries.
    pub sq: u32,
    /// Full branch-mispredict pipeline-restart penalty in cycles.
    pub mispredict_penalty: u32,
    /// Fraction of the mispredict penalty attributed to bad speculation
    /// (wrong-path slots + recovery); the remainder is the fetch-refill
    /// bubble, attributed to frontend latency — matching Intel's top-down
    /// event mapping.
    pub mispredict_bad_spec_fraction: f64,
    /// Fraction of an L2-hit load's extra latency left exposed (most is
    /// hidden by the OoO window).
    pub exposure_l2: f64,
    /// Fraction of an LLC-hit load's extra latency left exposed.
    pub exposure_llc: f64,
    /// Fraction of a DRAM load's latency left exposed.
    pub exposure_mem: f64,
    /// Store-miss exposure multiplier relative to loads (stores retire
    /// from the store buffer and rarely stall the pipe).
    pub store_exposure_scale: f64,
    /// Instruction distance within which consecutive load misses are
    /// considered overlapping (memory-level parallelism window; on the
    /// order of the ROB reach).
    pub mlp_window: u64,
    /// Maximum modelled memory-level parallelism.
    pub max_mlp: u32,
    /// Fraction of in-flight uops assumed dependent on an outstanding
    /// miss (drives reservation-station pressure during stalls).
    pub dependent_fraction: f64,
    /// I-cache miss exposure (fetch bubbles are hard to hide).
    pub exposure_icache: f64,
    /// Mean instruction length in bytes for fetch-stream synthesis.
    pub inst_bytes: u64,
}

impl Default for CoreConfig {
    fn default() -> Self {
        Self::broadwell()
    }
}

impl CoreConfig {
    /// The paper's evaluation core (Xeon E5-2650 v4, Broadwell).
    pub fn broadwell() -> Self {
        CoreConfig {
            width: 4,
            rob: 192,
            rs: 60,
            lq: 72,
            sq: 42,
            mispredict_penalty: 16,
            mispredict_bad_spec_fraction: 0.65,
            exposure_l2: 0.6,
            exposure_llc: 0.8,
            exposure_mem: 0.9,
            store_exposure_scale: 0.25,
            mlp_window: 72,
            max_mlp: 4,
            dependent_fraction: 0.35,
            exposure_icache: 0.9,
            inst_bytes: 4,
        }
    }

    /// Sustained instruction-level parallelism the scheduler extracts for
    /// code of kernel `k`, in instructions per cycle.
    ///
    /// Leaf SIMD loops are dispatch-limited (ILP ≈ width); the adaptive
    /// binary range coder carries a loop-borne dependency (ILP < 1.5);
    /// mode-decision control code sits in between. These limits are what
    /// bounds video encoders to IPC ≈ 2 on a 4-wide machine even with low
    /// miss rates — the paper's central "retiring ≈ 50%" observation.
    pub fn kernel_ilp(&self, k: Kernel) -> f64 {
        match k {
            Kernel::Sad | Kernel::Satd => 3.3,
            Kernel::FwdTransform | Kernel::InvTransform => 3.0,
            Kernel::Quant | Kernel::Dequant => 2.8,
            Kernel::IntraPred | Kernel::InterPred => 2.8,
            Kernel::MotionSearch => 2.4,
            Kernel::Deblock => 2.6,
            Kernel::EntropyCoder => 1.35,
            Kernel::ModeDecision => 1.9,
            Kernel::RateControl => 2.1,
            Kernel::FrameSetup => 2.8,
            Kernel::Packetize => 2.4,
            // `Kernel` is non_exhaustive; future kernels default to the
            // dispatch-limited rate.
            _ => 2.8,
        }
    }

    /// Validates the parameters.
    ///
    /// # Panics
    ///
    /// Panics on zero width/structures or out-of-range fractions.
    pub fn validate(&self) {
        assert!(self.width >= 1 && self.width <= 16);
        assert!(self.rob > 0 && self.rs > 0 && self.lq > 0 && self.sq > 0);
        for f in [
            self.mispredict_bad_spec_fraction,
            self.exposure_l2,
            self.exposure_llc,
            self.exposure_mem,
            self.store_exposure_scale,
            self.dependent_fraction,
            self.exposure_icache,
        ] {
            assert!((0.0..=1.0).contains(&f), "fractions must be in [0,1], got {f}");
        }
        assert!(self.max_mlp >= 1);
        assert!(self.inst_bytes >= 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_validates() {
        CoreConfig::broadwell().validate();
    }

    #[test]
    fn ilp_never_exceeds_width() {
        let c = CoreConfig::broadwell();
        for k in Kernel::ALL {
            let ilp = c.kernel_ilp(k);
            assert!(ilp >= 1.0 && ilp <= c.width as f64, "{k}: {ilp}");
        }
    }

    #[test]
    fn entropy_coder_is_the_serial_bottleneck() {
        let c = CoreConfig::broadwell();
        let entropy = c.kernel_ilp(Kernel::EntropyCoder);
        for k in Kernel::ALL {
            if k != Kernel::EntropyCoder {
                assert!(c.kernel_ilp(k) > entropy);
            }
        }
    }

    #[test]
    #[should_panic(expected = "fractions")]
    fn bad_fraction_panics() {
        let mut c = CoreConfig::broadwell();
        c.exposure_mem = 1.5;
        c.validate();
    }
}
