//! The streaming interval core model.

use crate::config::CoreConfig;
use crate::report::{CoreReport, ResourceStalls};
use vstress_bpred::{BranchPredictor, Gshare};
use vstress_cache::{Hierarchy, HierarchyConfig, ServiceLevel};
use vstress_trace::{Kernel, Probe, ProbeEvent};

/// An interval-model out-of-order core consuming an instrumented encode.
///
/// `CoreModel` implements [`Probe`], so an encoder run against it is
/// "executed on" the modelled machine: every abstract instruction advances
/// the pipeline at the kernel's ILP-limited rate, branch outcomes train an
/// embedded predictor (default: an 8 KB TAGE, standing in for Broadwell's
/// branch unit), data addresses walk the cache hierarchy, and a synthetic
/// fetch stream walks each kernel's code region through the L1I.
///
/// Call [`CoreModel::into_report`] when the run completes.
#[derive(Debug)]
pub struct CoreModel<B: BranchPredictor = Gshare> {
    config: CoreConfig,
    hierarchy: Hierarchy,
    predictor: B,

    retired: u64,
    cycles: f64,
    loads: u64,
    stores: u64,
    branches: u64,
    mispredicts: u64,

    slots_retiring: f64,
    slots_bad_spec: f64,
    slots_frontend: f64,
    slots_backend_mem: f64,
    slots_backend_core: f64,
    stalls: ResourceStalls,

    kernel: Kernel,
    /// `1 / kernel_ilp(kernel)` — cycles per instruction at the current
    /// kernel's ILP limit.
    cur_cost: f64,
    /// Per-kernel `cur_cost` values, precomputed in [`CoreModel::new`]
    /// with the identical expression so a kernel switch is a table load
    /// instead of a match plus an f64 division.
    cost_table: [f64; Kernel::ALL.len()],
    /// Bytes fetched so far per kernel (monotonic; wraps over the kernel's
    /// current hot window to model loop re-execution).
    fetch_bytes: [u64; Kernel::ALL.len()],

    /// Memory-level-parallelism window state.
    last_miss_at: u64,
    cur_mlp: u32,

    /// First-touch page remapping of probe addresses (see
    /// [`AddressCanonicalizer`]).
    canon: AddressCanonicalizer,

    /// L1D misses attributed to the kernel active at miss time.
    misses_by_kernel: [u64; Kernel::ALL.len()],
}

/// Hot-window geometry of the synthetic fetch stream: kernels execute
/// out of a 3 KiB window of their code region. The window slides to the
/// next 4 KiB after `WINDOW_PERIOD_BYTES` of fetched instruction bytes,
/// modelling the phase behaviour of real encoder code (a mode-decision
/// phase exercises one tool's code paths, then moves on). The period is
/// calibrated to land whole-run L1I MPKI in the low single digits, as
/// measured for SVT-AV1-class encoders.
const WINDOW_LINES: u64 = 48;
/// Fetched bytes per kernel before its hot window advances.
const WINDOW_PERIOD_BYTES: u64 = 256 << 10;

impl CoreModel<Gshare> {
    /// The paper's machine: Broadwell core parameters, full-size Broadwell
    /// cache hierarchy, and a 32 KB gshare standing in for the host branch
    /// unit (calibrated so whole-run miss rates land in the paper's
    /// 2–3.5% band; the ablation benches swap in TAGE).
    pub fn broadwell() -> Self {
        Self::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell(),
            Gshare::with_budget_bytes(32 << 10),
        )
    }

    /// Broadwell core with the data caches scaled by `divisor` to match
    /// reduced-fidelity clips (see
    /// [`HierarchyConfig::broadwell_scaled`]).
    pub fn broadwell_scaled(divisor: usize) -> Self {
        Self::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell_scaled(divisor),
            Gshare::with_budget_bytes(32 << 10),
        )
    }
}

impl<B: BranchPredictor> CoreModel<B> {
    /// Builds a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new(config: CoreConfig, hierarchy: HierarchyConfig, predictor: B) -> Self {
        config.validate();
        hierarchy.validate();
        let kernel = Kernel::FrameSetup;
        let mut cost_table = [0.0f64; Kernel::ALL.len()];
        for k in Kernel::ALL {
            cost_table[k.index()] = 1.0 / config.kernel_ilp(k).min(config.width as f64);
        }
        let cur_cost = cost_table[kernel.index()];
        CoreModel {
            hierarchy: Hierarchy::new(hierarchy),
            predictor,
            retired: 0,
            cycles: 0.0,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredicts: 0,
            slots_retiring: 0.0,
            slots_bad_spec: 0.0,
            slots_frontend: 0.0,
            slots_backend_mem: 0.0,
            slots_backend_core: 0.0,
            stalls: ResourceStalls::default(),
            kernel,
            cur_cost,
            cost_table,
            fetch_bytes: [0; Kernel::ALL.len()],
            last_miss_at: 0,
            cur_mlp: 1,
            canon: AddressCanonicalizer::new(),
            misses_by_kernel: [0; Kernel::ALL.len()],
            config,
        }
    }

    /// Finishes the run and produces the report.
    pub fn into_report(self) -> CoreReport {
        CoreReport {
            instructions: self.retired,
            cycles: self.cycles,
            width: self.config.width,
            branches: self.branches,
            branch_mispredicts: self.mispredicts,
            slots_retiring: self.slots_retiring,
            slots_bad_spec: self.slots_bad_spec,
            slots_frontend: self.slots_frontend,
            slots_backend_mem: self.slots_backend_mem,
            slots_backend_core: self.slots_backend_core,
            resource_stalls: self.stalls,
            cache: self.hierarchy.stats(),
            misses_by_kernel: self.misses_by_kernel,
        }
    }

    /// Instructions retired so far (also available through
    /// [`Probe::retired`]).
    pub fn instructions(&self) -> u64 {
        self.retired
    }

    /// Retires `n` instructions at the current kernel's ILP rate and
    /// attributes base slots.
    #[inline]
    fn advance(&mut self, n: u64) {
        let w = self.config.width as f64;
        self.retired += n;
        let base = n as f64 * self.cur_cost;
        self.cycles += base;
        self.slots_retiring += n as f64;
        // Slots above the ideal width-limited schedule that the ILP limit
        // wastes are core-bound backend stalls (execution resources /
        // dependency chains).
        self.slots_backend_core += (base - n as f64 / w).max(0.0) * w;
        self.fetch(n);
    }

    /// Walks the synthetic fetch stream `n` instructions forward within
    /// the current kernel's hot window.
    #[inline]
    fn fetch(&mut self, n: u64) {
        let idx = self.kernel.index();
        let before = self.fetch_bytes[idx];
        let after = before + n * self.config.inst_bytes;
        self.fetch_bytes[idx] = after;
        let first_line = before / 64;
        let last_line = after / 64;
        if first_line == last_line {
            return;
        }
        let footprint_lines = (self.kernel.code_footprint() / 64).max(1);
        let window_lines = WINDOW_LINES.min(footprint_lines);
        let window_base = (after / WINDOW_PERIOD_BYTES * window_lines) % footprint_lines;
        let base = self.kernel.code_base();
        let w = self.config.width as f64;
        for line in (first_line + 1)..=last_line {
            let addr = base + ((window_base + line % window_lines) % footprint_lines) * 64;
            let level = self.hierarchy.fetch(addr);
            if level > ServiceLevel::L1 {
                let raw = (self.hierarchy.latency(level) - self.hierarchy.latency(ServiceLevel::L1))
                    as f64;
                let exposed = raw * self.config.exposure_icache;
                self.cycles += exposed;
                self.slots_frontend += exposed * w;
            }
        }
    }

    /// Charges a data-side miss stall and the associated resource pressure.
    fn memory_stall(&mut self, level: ServiceLevel, is_store: bool) {
        if level <= ServiceLevel::L1 {
            return;
        }
        // Overlapping misses share latency (memory-level parallelism).
        if self.retired - self.last_miss_at <= self.config.mlp_window {
            self.cur_mlp = (self.cur_mlp + 1).min(self.config.max_mlp);
        } else {
            self.cur_mlp = 1;
        }
        self.last_miss_at = self.retired;

        self.misses_by_kernel[self.kernel.index()] += 1;
        let raw = (self.hierarchy.latency(level) - self.hierarchy.latency(ServiceLevel::L1)) as f64;
        let exposure = match level {
            ServiceLevel::L2 => self.config.exposure_l2,
            ServiceLevel::Llc => self.config.exposure_llc,
            _ => self.config.exposure_mem,
        };
        let mut exposed = raw * exposure / self.cur_mlp as f64;
        if is_store {
            exposed *= self.config.store_exposure_scale;
        }
        let w = self.config.width as f64;
        self.cycles += exposed;
        self.slots_backend_mem += exposed * w;

        // Structure pressure during the stall: the frontend keeps
        // dispatching until a queue fills. Clamp each structure's share.
        let inflight = exposed * w;
        let clamp = |x: f64| x.clamp(0.0, 1.0);
        let (load_frac, store_frac) = if self.retired > 1000 {
            (self.loads as f64 / self.retired as f64, self.stores as f64 / self.retired as f64)
        } else {
            (0.26, 0.13)
        };
        self.stalls.rs +=
            exposed * clamp(inflight * self.config.dependent_fraction / self.config.rs as f64);
        self.stalls.lq += exposed * clamp(inflight * load_frac / self.config.lq as f64);
        self.stalls.sq += exposed * clamp(inflight * store_frac / self.config.sq as f64);
        self.stalls.rob += exposed * clamp(inflight / self.config.rob as f64) * 0.5;
    }
}

impl<B: BranchPredictor> Probe for CoreModel<B> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.kernel = k;
        self.cur_cost = self.cost_table[k.index()];
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.advance(1);
        self.loads += 1;
        let addr = self.canon.canon(addr);
        let level = self.hierarchy.load(addr, bytes);
        self.memory_stall(level, false);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.advance(1);
        self.stores += 1;
        let addr = self.canon.canon(addr);
        let level = self.hierarchy.store(addr, bytes);
        self.memory_stall(level, true);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.advance(1);
        self.branches += 1;
        let guess = self.predictor.predict(pc);
        self.predictor.update(pc, taken, guess);
        if guess != taken {
            self.mispredicts += 1;
            let w = self.config.width as f64;
            let penalty = self.config.mispredict_penalty as f64;
            let bad = penalty * self.config.mispredict_bad_spec_fraction;
            let fe = penalty - bad;
            self.cycles += penalty;
            self.slots_bad_spec += bad * w;
            self.slots_frontend += fe * w;
        }
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.retired
    }

    /// Batched event drain for memo replay and recorded traces.
    ///
    /// Observably identical to per-event dispatch — `alu`/`avx`/`sse` all
    /// reduce to `advance(n)` (the batch is *not* coalesced: f64 addition
    /// is non-associative, so each event performs its own `advance`
    /// arithmetic), and a `SetKernel` repeating the current kernel is
    /// skipped because `set_kernel` writes only `kernel` and `cur_cost`,
    /// both pure functions of `k`. What the loop saves is the per-event
    /// call overhead and redundant kernel-cost updates, which dominate
    /// replayed streams (recorded batches re-declare their kernel far
    /// more often than they switch it).
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        for &e in events {
            match e {
                ProbeEvent::SetKernel(k) => {
                    if k != self.kernel {
                        self.kernel = k;
                        self.cur_cost = self.cost_table[k.index()];
                    }
                }
                ProbeEvent::Alu(n) | ProbeEvent::Avx(n) | ProbeEvent::Sse(n) => self.advance(n),
                ProbeEvent::Load { addr, bytes } => self.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => self.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => self.branch(pc, taken),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaled() -> CoreModel {
        CoreModel::broadwell_scaled(16)
    }

    #[test]
    fn pure_simd_loop_reaches_high_ipc() {
        let mut m = scaled();
        m.set_kernel(Kernel::Sad);
        // Tight loop over one cache-resident buffer with predictable branch.
        for i in 0..20_000u64 {
            m.avx(3);
            m.load(0x100_000 + (i % 32) * 64, 32);
            m.branch(0x5000_0000_0010, i % 64 != 63);
        }
        let r = m.into_report();
        assert!(r.ipc() > 2.2, "cache-resident SIMD should run fast, got {}", r.ipc());
        assert!(r.topdown().retiring > 0.55);
    }

    #[test]
    fn memory_streaming_is_backend_bound() {
        let mut m = scaled();
        m.set_kernel(Kernel::FrameSetup);
        // Stream a working set far larger than the scaled LLC.
        for i in 0..400_000u64 {
            m.load(0x1000_0000 + i * 64, 32);
            m.alu(1);
        }
        let r = m.into_report();
        let td = r.topdown();
        assert!(
            td.backend_memory > td.frontend && td.backend_memory > td.bad_speculation,
            "streaming must be memory bound: {td:?}"
        );
        assert!(r.ipc() < 2.0, "streaming IPC must sink, got {}", r.ipc());
    }

    #[test]
    fn random_branches_cause_bad_speculation() {
        let mut m = scaled();
        m.set_kernel(Kernel::ModeDecision);
        let mut x = 1u64;
        for _ in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            m.alu(4);
            m.branch(0x5000_0000_0100, (x >> 62) & 1 == 1);
        }
        let r = m.into_report();
        assert!(r.branch_miss_rate() > 0.3, "unpredictable branch: {}", r.branch_miss_rate());
        let td = r.topdown();
        assert!(td.bad_speculation > 0.1, "bad spec must show: {td:?}");
    }

    #[test]
    fn entropy_kernel_is_core_bound() {
        let mut m = scaled();
        m.set_kernel(Kernel::EntropyCoder);
        for i in 0..20_000u64 {
            m.alu(4);
            m.branch(0x5000_0000_0200, i % 2 == 0);
        }
        let r = m.into_report();
        let td = r.topdown();
        assert!(td.backend_core > 0.2, "serial kernel must be core bound: {td:?}");
    }

    #[test]
    fn big_code_footprint_stresses_the_frontend() {
        // ModeDecision's 48KB footprint exceeds the scaled L1I.
        let run = |kernel: Kernel| {
            let mut m = scaled();
            m.set_kernel(kernel);
            for i in 0..200_000u64 {
                m.alu(2);
                m.branch(0x5000_0000_0300, i % 8 != 0);
            }
            m.into_report().topdown().frontend
        };
        let big = run(Kernel::ModeDecision);
        let small = run(Kernel::Sad);
        assert!(big > small, "large code must be more frontend bound: {big} vs {small}");
    }

    #[test]
    fn mlp_reduces_per_miss_cost() {
        // Two equal-miss-count runs: one with misses bunched (overlapping),
        // one with misses separated by long compute (serialized).
        let mut bunched = scaled();
        bunched.set_kernel(Kernel::FrameSetup);
        for i in 0..4000u64 {
            bunched.load(0x2000_0000 + i * 64, 32);
        }
        for _ in 0..4000u64 {
            bunched.alu(200);
        }
        let mut spread = scaled();
        spread.set_kernel(Kernel::FrameSetup);
        for i in 0..4000u64 {
            spread.load(0x2000_0000 + i * 64, 32);
            spread.alu(200);
        }
        let b = bunched.into_report();
        let s = spread.into_report();
        assert_eq!(b.instructions, s.instructions);
        assert!(
            b.cycles < s.cycles,
            "overlapped misses must cost less: {} vs {}",
            b.cycles,
            s.cycles
        );
    }

    #[test]
    fn resource_stalls_follow_memory_pressure() {
        let mut m = scaled();
        m.set_kernel(Kernel::FrameSetup);
        for i in 0..100_000u64 {
            m.load(0x3000_0000 + i * 64, 32);
            m.alu(1);
        }
        let r = m.into_report();
        assert!(r.resource_stalls.rs > 0.0);
        assert!(
            r.resource_stalls.rob < r.resource_stalls.rs,
            "ROB (192) must stall less than RS (60): {:?}",
            r.resource_stalls
        );
    }

    /// The batched drain must be invisible: a pseudo-random event stream
    /// (kernel switches, repeated same-kernel declarations, loads/stores
    /// with page locality, biased branches) driven per event and via one
    /// `drain_batch` call must produce bit-identical reports — every f64
    /// accumulator included, which is why the drain must not coalesce
    /// compute events (f64 addition is non-associative).
    #[test]
    fn drain_batch_is_bit_identical_to_per_event_dispatch() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut events = Vec::new();
        for _ in 0..120_000 {
            match step() % 12 {
                0 => events
                    .push(ProbeEvent::SetKernel(Kernel::ALL[step() as usize % Kernel::ALL.len()])),
                1 => {
                    // Re-declaring the current kernel is the common case in
                    // recorded batches; the drain's skip path must be
                    // equivalent to the full set_kernel.
                    let k = Kernel::ALL[step() as usize % Kernel::ALL.len()];
                    events.push(ProbeEvent::SetKernel(k));
                    events.push(ProbeEvent::SetKernel(k));
                }
                2..=4 => events.push(ProbeEvent::Alu(1 + step() % 8)),
                5 => events.push(ProbeEvent::Avx(1 + step() % 4)),
                6 => events.push(ProbeEvent::Sse(1 + step() % 4)),
                7 | 8 => events.push(ProbeEvent::Load {
                    addr: 0x10_0000 + step() % (1 << 20),
                    bytes: 1 + (step() % 64) as u32,
                }),
                9 => events.push(ProbeEvent::Store {
                    addr: 0x30_0000 + step() % (1 << 18),
                    bytes: 1 + (step() % 64) as u32,
                }),
                _ => events.push(ProbeEvent::Branch {
                    pc: 0x5000_0000_0000 + (step() % 64) * 16,
                    taken: step() % 3 == 0,
                }),
            }
        }

        let mut per_event = scaled();
        for &e in &events {
            match e {
                ProbeEvent::SetKernel(k) => per_event.set_kernel(k),
                ProbeEvent::Alu(n) => per_event.alu(n),
                ProbeEvent::Avx(n) => per_event.avx(n),
                ProbeEvent::Sse(n) => per_event.sse(n),
                ProbeEvent::Load { addr, bytes } => per_event.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => per_event.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => per_event.branch(pc, taken),
            }
        }
        let mut batched = scaled();
        batched.drain_batch(&events);
        assert_eq!(per_event.into_report(), batched.into_report());
    }

    #[test]
    fn report_slot_identity() {
        let mut m = scaled();
        m.set_kernel(Kernel::Quant);
        for i in 0..10_000u64 {
            m.avx(2);
            m.load(0x100_000 + (i % 1024) * 64, 32);
            m.store(0x200_000 + (i % 1024) * 64, 32);
            m.branch(0x5000_0000_0400, i % 4 != 0);
        }
        let r = m.into_report();
        assert_eq!(r.instructions, 10_000 * 5);
        let td = r.topdown();
        let sum = td.retiring + td.bad_speculation + td.frontend + td.backend;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.ipc() <= r.width as f64 + 1e-9);
    }
}

/// First-touch page canonicalization of data addresses.
///
/// The probes report live host addresses, whose *page bases* depend on
/// allocator state and ASLR — realistic, but it makes cache statistics
/// jitter between processes. Remapping each 4 KiB page to a sequential
/// canonical page in first-touch order preserves all intra-page locality
/// and stride structure while making inter-buffer placement a pure
/// function of the (deterministic) access sequence.
#[derive(Debug)]
pub(crate) struct AddressCanonicalizer {
    /// Open-addressed (page -> canonical page) table; power-of-two size.
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    next_page: u64,
}

const PAGE_BITS: u32 = 12;
const EMPTY: u64 = u64::MAX;

impl AddressCanonicalizer {
    pub(crate) fn new() -> Self {
        AddressCanonicalizer {
            keys: vec![EMPTY; 1 << 12],
            vals: vec![0; 1 << 12],
            len: 0,
            // Start canonical data pages well away from the synthetic
            // code regions.
            next_page: 0x0000_2000_0000_0000 >> PAGE_BITS,
        }
    }

    #[inline]
    pub(crate) fn canon(&mut self, addr: u64) -> u64 {
        let page = addr >> PAGE_BITS;
        let mask = self.keys.len() as u64 - 1;
        let mut i = (page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40 & mask) as usize;
        loop {
            let k = self.keys[i];
            if k == page {
                return (self.vals[i] << PAGE_BITS) | (addr & ((1 << PAGE_BITS) - 1));
            }
            if k == EMPTY {
                let canonical = self.next_page;
                self.next_page += 1;
                self.keys[i] = page;
                self.vals[i] = canonical;
                self.len += 1;
                if self.len * 2 > self.keys.len() {
                    self.grow();
                }
                return (canonical << PAGE_BITS) | (addr & ((1 << PAGE_BITS) - 1));
            }
            i = (i + 1) & mask as usize;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let new_cap = old_keys.len() * 2;
        self.keys = vec![EMPTY; new_cap];
        self.vals = vec![0; new_cap];
        let mask = new_cap as u64 - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40 & mask) as usize;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask as usize;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod canon_tests {
    use super::*;

    #[test]
    fn preserves_page_offsets() {
        let mut c = AddressCanonicalizer::new();
        let a = c.canon(0x7fff_1234_5678);
        assert_eq!(a & 0xfff, 0x678);
        // Same page, different offset: same canonical page.
        let b = c.canon(0x7fff_1234_5000);
        assert_eq!(a >> 12, b >> 12);
    }

    #[test]
    fn first_touch_order_defines_layout() {
        let mut c1 = AddressCanonicalizer::new();
        let mut c2 = AddressCanonicalizer::new();
        // Two different host layouts, same access sequence positions.
        let seq1 = [0x111_0000u64, 0x999_0000, 0x111_0040];
        let seq2 = [0xabc_0000u64, 0x222_0000, 0xabc_0040];
        let m1: Vec<u64> = seq1.iter().map(|&a| c1.canon(a)).collect();
        let m2: Vec<u64> = seq2.iter().map(|&a| c2.canon(a)).collect();
        assert_eq!(m1, m2, "canonical stream depends only on the sequence");
    }

    #[test]
    fn table_grows_past_initial_capacity() {
        let mut c = AddressCanonicalizer::new();
        let mut seen = std::collections::HashSet::new();
        for i in 0..20_000u64 {
            let a = c.canon(i << 12 | 7);
            assert!(seen.insert(a >> 12), "canonical pages must be unique");
        }
    }
}
