//! The streaming interval core model.

use crate::config::CoreConfig;
use crate::report::{CoreReport, ResourceStalls};
use vstress_bpred::{BranchPredictor, Gshare};
use vstress_cache::{Hierarchy, HierarchyConfig, ServiceLevel};
use vstress_trace::stream::decode_chunk;
use vstress_trace::{AddressCanonicalizer, EventStream, Kernel, Probe, ProbeEvent};

/// An interval-model out-of-order core consuming an instrumented encode.
///
/// `CoreModel` implements [`Probe`], so an encoder run against it is
/// "executed on" the modelled machine: every abstract instruction advances
/// the pipeline at the kernel's ILP-limited rate, branch outcomes train an
/// embedded predictor (default: an 8 KB TAGE, standing in for Broadwell's
/// branch unit), data addresses walk the cache hierarchy, and a synthetic
/// fetch stream walks each kernel's code region through the L1I.
///
/// Call [`CoreModel::into_report`] when the run completes.
#[derive(Debug)]
pub struct CoreModel<B: BranchPredictor = Gshare> {
    config: CoreConfig,
    hierarchy: Hierarchy,
    predictor: B,

    retired: u64,
    cycles: f64,
    loads: u64,
    stores: u64,
    branches: u64,
    mispredicts: u64,

    slots_bad_spec: f64,
    slots_frontend: f64,
    slots_backend_mem: f64,
    slots_backend_core: f64,
    stalls: ResourceStalls,

    kernel: Kernel,
    /// `1 / kernel_ilp(kernel)` — cycles per instruction at the current
    /// kernel's ILP limit.
    cur_cost: f64,
    /// `(cur_cost - 1.0 / width).max(0.0) * width` — the backend-core
    /// slot charge of a *single* instruction at the current kernel.
    /// Loads, stores, and branches always advance by one, so caching
    /// this removes an f64 division from the per-event path; the value
    /// is computed with the exact expression [`CoreModel::advance`]
    /// would evaluate for `n == 1`, so the accumulated slots are
    /// bit-identical.
    cur_core1: f64,
    /// Per-kernel `cur_cost` values, precomputed in [`CoreModel::new`]
    /// with the identical expression so a kernel switch is a table load
    /// instead of a match plus an f64 division.
    cost_table: [f64; Kernel::ALL.len()],
    /// Per-kernel `cur_core1` values (same precomputation contract).
    core1_table: [f64; Kernel::ALL.len()],
    /// Bytes fetched so far per kernel (monotonic; wraps over the kernel's
    /// current hot window to model loop re-execution).
    fetch_bytes: [u64; Kernel::ALL.len()],
    /// `fetch_bytes[kernel.index()]` cached in a scalar so the per-event
    /// fetch walk avoids an indexed read-modify-write; written back to
    /// the table on every kernel switch.
    cur_fetch: u64,
    /// Per-kernel `(code_footprint() / 64).max(1)` — code size in lines.
    fp_lines_table: [u64; Kernel::ALL.len()],
    /// Per-kernel `WINDOW_LINES.min(fp_lines)` — hot-window size in lines.
    win_lines_table: [u64; Kernel::ALL.len()],
    /// Per-kernel `code_base()`.
    code_base_table: [u64; Kernel::ALL.len()],
    cur_fp_lines: u64,
    cur_win_lines: u64,
    cur_code_base: u64,
    /// `cur_fetch / WINDOW_PERIOD_BYTES` at the last window-base refresh.
    cur_period: u64,
    /// `(cur_period * cur_win_lines) % cur_fp_lines` — the hot window's
    /// first line within the kernel's footprint.
    cur_window_base: u64,
    /// `(cur_fetch / 64) % cur_win_lines` — the last fetched line's
    /// offset within the hot window. Crossed lines are consecutive
    /// within a kernel, so this is maintained by increment-and-wrap;
    /// both non-constant divisions the fetch walk used to pay per line
    /// crossing reduce to a compare (the values are identical: the
    /// offset is always in `[0, win_lines)` before the increment, and
    /// `window_base + offset < 2 * fp_lines`, so one conditional
    /// subtract is exactly the modulo).
    cur_line_mod: u64,

    /// Memory-level-parallelism window state.
    last_miss_at: u64,
    cur_mlp: u32,

    /// First-touch page remapping of live probe addresses (see
    /// [`AddressCanonicalizer`]). The stream-replay path bypasses it:
    /// captured streams are canonical already.
    canon: AddressCanonicalizer,

    /// L1D misses attributed to the kernel active at miss time.
    misses_by_kernel: [u64; Kernel::ALL.len()],
}

/// Hot-window geometry of the synthetic fetch stream: kernels execute
/// out of a 3 KiB window of their code region. The window slides to the
/// next 4 KiB after `WINDOW_PERIOD_BYTES` of fetched instruction bytes,
/// modelling the phase behaviour of real encoder code (a mode-decision
/// phase exercises one tool's code paths, then moves on). The period is
/// calibrated to land whole-run L1I MPKI in the low single digits, as
/// measured for SVT-AV1-class encoders.
const WINDOW_LINES: u64 = 48;
/// Fetched bytes per kernel before its hot window advances.
const WINDOW_PERIOD_BYTES: u64 = 256 << 10;

impl CoreModel<Gshare> {
    /// The paper's machine: Broadwell core parameters, full-size Broadwell
    /// cache hierarchy, and a 32 KB gshare standing in for the host branch
    /// unit (calibrated so whole-run miss rates land in the paper's
    /// 2–3.5% band; the ablation benches swap in TAGE).
    pub fn broadwell() -> Self {
        Self::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell(),
            Gshare::with_budget_bytes(32 << 10),
        )
    }

    /// Broadwell core with the data caches scaled by `divisor` to match
    /// reduced-fidelity clips (see
    /// [`HierarchyConfig::broadwell_scaled`]).
    pub fn broadwell_scaled(divisor: usize) -> Self {
        Self::new(
            CoreConfig::broadwell(),
            HierarchyConfig::broadwell_scaled(divisor),
            Gshare::with_budget_bytes(32 << 10),
        )
    }
}

impl<B: BranchPredictor> CoreModel<B> {
    /// Builds a model from explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if either configuration is invalid.
    pub fn new(config: CoreConfig, hierarchy: HierarchyConfig, predictor: B) -> Self {
        config.validate();
        hierarchy.validate();
        let kernel = Kernel::FrameSetup;
        let mut cost_table = [0.0f64; Kernel::ALL.len()];
        let mut core1_table = [0.0f64; Kernel::ALL.len()];
        let mut fp_lines_table = [0u64; Kernel::ALL.len()];
        let mut win_lines_table = [0u64; Kernel::ALL.len()];
        let mut code_base_table = [0u64; Kernel::ALL.len()];
        let w = config.width as f64;
        for k in Kernel::ALL {
            let cost = 1.0 / config.kernel_ilp(k).min(w);
            cost_table[k.index()] = cost;
            // advance(1) evaluates (1.0 * cost - 1.0 / w).max(0.0) * w;
            // 1.0 * cost is exactly cost, so this is that expression.
            core1_table[k.index()] = (cost - 1.0 / w).max(0.0) * w;
            let fp = (k.code_footprint() / 64).max(1);
            fp_lines_table[k.index()] = fp;
            win_lines_table[k.index()] = WINDOW_LINES.min(fp);
            code_base_table[k.index()] = k.code_base();
        }
        let cur_cost = cost_table[kernel.index()];
        let cur_core1 = core1_table[kernel.index()];
        let cur_fp_lines = fp_lines_table[kernel.index()];
        let cur_win_lines = win_lines_table[kernel.index()];
        let cur_code_base = code_base_table[kernel.index()];
        CoreModel {
            hierarchy: Hierarchy::new(hierarchy),
            predictor,
            retired: 0,
            cycles: 0.0,
            loads: 0,
            stores: 0,
            branches: 0,
            mispredicts: 0,
            slots_bad_spec: 0.0,
            slots_frontend: 0.0,
            slots_backend_mem: 0.0,
            slots_backend_core: 0.0,
            stalls: ResourceStalls::default(),
            kernel,
            cur_cost,
            cur_core1,
            cost_table,
            core1_table,
            fetch_bytes: [0; Kernel::ALL.len()],
            cur_fetch: 0,
            fp_lines_table,
            win_lines_table,
            code_base_table,
            cur_fp_lines,
            cur_win_lines,
            cur_code_base,
            // cur_fetch = 0: period 0, window base (0 * wl) % fp = 0,
            // line offset (0 / 64) % wl = 0.
            cur_period: 0,
            cur_window_base: 0,
            cur_line_mod: 0,
            last_miss_at: 0,
            cur_mlp: 1,
            canon: AddressCanonicalizer::new(),
            misses_by_kernel: [0; Kernel::ALL.len()],
            config,
        }
    }

    /// Finishes the run and produces the report.
    pub fn into_report(self) -> CoreReport {
        CoreReport {
            instructions: self.retired,
            cycles: self.cycles,
            width: self.config.width,
            branches: self.branches,
            branch_mispredicts: self.mispredicts,
            // Retiring slots accumulate exactly `n as f64` per advance:
            // every partial sum is an integer, integer-valued f64
            // addition is exact below 2^53, so the accumulator always
            // equals `retired` — report the counter instead of paying an
            // f64 add per event. (An encode retiring 2^53 instructions
            // is ~10^7 CPU-years; the conversion here is exact.)
            slots_retiring: self.retired as f64,
            slots_bad_spec: self.slots_bad_spec,
            slots_frontend: self.slots_frontend,
            slots_backend_mem: self.slots_backend_mem,
            slots_backend_core: self.slots_backend_core,
            resource_stalls: self.stalls,
            cache: self.hierarchy.stats(),
            misses_by_kernel: self.misses_by_kernel,
        }
    }

    /// Instructions retired so far (also available through
    /// [`Probe::retired`]).
    pub fn instructions(&self) -> u64 {
        self.retired
    }

    /// Switches the active kernel, refreshing the cached per-kernel
    /// scalars. All three dispatch surfaces (live probe, stream sink,
    /// batched drain) funnel through here so the `cur_*` caches stay
    /// coherent with `kernel`.
    #[inline]
    fn switch_kernel(&mut self, k: Kernel) {
        self.fetch_bytes[self.kernel.index()] = self.cur_fetch;
        self.kernel = k;
        let idx = k.index();
        self.cur_cost = self.cost_table[idx];
        self.cur_core1 = self.core1_table[idx];
        self.cur_fetch = self.fetch_bytes[idx];
        self.cur_fp_lines = self.fp_lines_table[idx];
        self.cur_win_lines = self.win_lines_table[idx];
        self.cur_code_base = self.code_base_table[idx];
        self.cur_period = self.cur_fetch / WINDOW_PERIOD_BYTES;
        self.cur_window_base = (self.cur_period * self.cur_win_lines) % self.cur_fp_lines;
        self.cur_line_mod = (self.cur_fetch / 64) % self.cur_win_lines;
    }

    /// Retires `n` instructions at the current kernel's ILP rate and
    /// attributes base slots.
    #[inline]
    fn advance(&mut self, n: u64) {
        if n == 1 {
            // The dominant case (every load, store, and branch): the
            // n == 1 arithmetic reduces to the precomputed per-kernel
            // scalars — `1.0 * cur_cost` is exactly `cur_cost` and
            // `cur_core1` caches `(cur_cost - 1.0 / w).max(0.0) * w` —
            // so this path skips the f64 division bit-exactly.
            self.retired += 1;
            self.cycles += self.cur_cost;
            // Adding an exact +0.0 to the non-negative accumulator is the
            // identity, so width-limited kernels (cur_core1 == 0.0) skip
            // the add bit-exactly.
            if self.cur_core1 != 0.0 {
                self.slots_backend_core += self.cur_core1;
            }
            self.fetch(1);
            return;
        }
        let w = self.config.width as f64;
        self.retired += n;
        let base = n as f64 * self.cur_cost;
        self.cycles += base;
        // Slots above the ideal width-limited schedule that the ILP limit
        // wastes are core-bound backend stalls (execution resources /
        // dependency chains).
        self.slots_backend_core += (base - n as f64 / w).max(0.0) * w;
        self.fetch(n);
    }

    /// Walks the synthetic fetch stream `n` instructions forward within
    /// the current kernel's hot window.
    #[inline]
    fn fetch(&mut self, n: u64) {
        let before = self.cur_fetch;
        let after = before + n * self.config.inst_bytes;
        self.cur_fetch = after;
        if before / 64 == after / 64 {
            return;
        }
        self.fetch_lines(before / 64, after / 64, after);
    }

    /// The line-crossing tail of [`CoreModel::fetch`] (an
    /// `inst_bytes = 4` stream crosses a line once per 16 instructions).
    ///
    /// The fetched address is
    /// `base + ((window_base + line % win_lines) % fp_lines) * 64` with
    /// `window_base = (after / WINDOW_PERIOD_BYTES * win_lines) % fp_lines`.
    /// Both modulos are by per-kernel, non-constant divisors; rather than
    /// dividing per crossed line, the state is carried incrementally:
    /// crossed lines are consecutive within a kernel, so
    /// `line % win_lines` is the previous offset plus one with a wrap at
    /// `win_lines`, and `window_base` only changes when `after` crosses a
    /// `WINDOW_PERIOD_BYTES` boundary (or on a kernel switch, which
    /// recomputes all of it from `cur_fetch`). The addresses produced are
    /// identical to the direct-modulo form — this is integer arithmetic,
    /// not a float approximation.
    #[inline]
    fn fetch_lines(&mut self, first_line: u64, last_line: u64, after: u64) {
        let period = after / WINDOW_PERIOD_BYTES;
        if period != self.cur_period {
            self.cur_period = period;
            self.cur_window_base = (period * self.cur_win_lines) % self.cur_fp_lines;
        }
        let w = self.config.width as f64;
        for _ in first_line..last_line {
            self.cur_line_mod += 1;
            if self.cur_line_mod == self.cur_win_lines {
                self.cur_line_mod = 0;
            }
            let mut slot = self.cur_window_base + self.cur_line_mod;
            if slot >= self.cur_fp_lines {
                slot -= self.cur_fp_lines;
            }
            let addr = self.cur_code_base + slot * 64;
            let level = self.hierarchy.fetch(addr);
            if level > ServiceLevel::L1 {
                let raw = (self.hierarchy.latency(level) - self.hierarchy.latency(ServiceLevel::L1))
                    as f64;
                let exposed = raw * self.config.exposure_icache;
                self.cycles += exposed;
                self.slots_frontend += exposed * w;
            }
        }
    }

    /// Drains a captured event stream into the model.
    ///
    /// The stream must come from a
    /// [`StreamRecorder`](vstress_trace::StreamRecorder) capture: its
    /// data addresses are already canonical, so this path skips the
    /// live-probe canonicalization while performing the identical model
    /// arithmetic — the resulting [`CoreReport`] is bit-identical to
    /// driving the model live with the raw event sequence (pinned by
    /// `stream_replay_is_bit_identical_to_live_dispatch` below and the
    /// full-encode oracle in `tests/stream_equivalence.rs`).
    pub fn consume_stream(&mut self, stream: &EventStream) {
        for chunk in stream.chunks() {
            self.consume_chunk(chunk);
        }
    }

    /// Drains one packed chunk of a captured stream (see
    /// [`CoreModel::consume_stream`]). Chunks must be fed in stream
    /// order; this is the consumer half of the capture/simulate
    /// pipeline, draining a [`vstress_trace::ChunkRx`] while the encode
    /// is still producing.
    pub fn consume_chunk(&mut self, chunk: &[u8]) {
        decode_chunk(chunk, &mut CanonicalSink(self));
    }

    /// Charges a data-side miss stall and the associated resource pressure.
    #[inline]
    fn memory_stall(&mut self, level: ServiceLevel, is_store: bool) {
        if level <= ServiceLevel::L1 {
            return;
        }
        self.memory_stall_miss(level, is_store);
    }

    /// The miss half of [`CoreModel::memory_stall`], outlined so the
    /// ubiquitous L1-hit check above stays inline at every call site.
    fn memory_stall_miss(&mut self, level: ServiceLevel, is_store: bool) {
        // Overlapping misses share latency (memory-level parallelism).
        if self.retired - self.last_miss_at <= self.config.mlp_window {
            self.cur_mlp = (self.cur_mlp + 1).min(self.config.max_mlp);
        } else {
            self.cur_mlp = 1;
        }
        self.last_miss_at = self.retired;

        self.misses_by_kernel[self.kernel.index()] += 1;
        let raw = (self.hierarchy.latency(level) - self.hierarchy.latency(ServiceLevel::L1)) as f64;
        let exposure = match level {
            ServiceLevel::L2 => self.config.exposure_l2,
            ServiceLevel::Llc => self.config.exposure_llc,
            _ => self.config.exposure_mem,
        };
        let mut exposed = raw * exposure / self.cur_mlp as f64;
        if is_store {
            exposed *= self.config.store_exposure_scale;
        }
        let w = self.config.width as f64;
        self.cycles += exposed;
        self.slots_backend_mem += exposed * w;

        // Structure pressure during the stall: the frontend keeps
        // dispatching until a queue fills. Clamp each structure's share.
        let inflight = exposed * w;
        let clamp = |x: f64| x.clamp(0.0, 1.0);
        let (load_frac, store_frac) = if self.retired > 1000 {
            (self.loads as f64 / self.retired as f64, self.stores as f64 / self.retired as f64)
        } else {
            (0.26, 0.13)
        };
        self.stalls.rs +=
            exposed * clamp(inflight * self.config.dependent_fraction / self.config.rs as f64);
        self.stalls.lq += exposed * clamp(inflight * load_frac / self.config.lq as f64);
        self.stalls.sq += exposed * clamp(inflight * store_frac / self.config.sq as f64);
        self.stalls.rob += exposed * clamp(inflight / self.config.rob as f64) * 0.5;
    }
}

/// The stream-replay adaptor: identical event handling to the live
/// [`Probe`] impl on [`CoreModel`], minus address canonicalization
/// (replayed addresses are canonical by construction, and
/// canonicalization is idempotent, so the hierarchy sees the same
/// addresses either way).
struct CanonicalSink<'a, B: BranchPredictor>(&'a mut CoreModel<B>);

impl<B: BranchPredictor> Probe for CanonicalSink<'_, B> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        // Capture drops redundant redeclarations, so every arriving
        // switch is (or is indistinguishable from) a real one.
        self.0.switch_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.0.advance(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.0.advance(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.0.advance(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        let m = &mut *self.0;
        m.advance(1);
        m.loads += 1;
        let level = m.hierarchy.load(addr, bytes);
        m.memory_stall(level, false);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        let m = &mut *self.0;
        m.advance(1);
        m.stores += 1;
        let level = m.hierarchy.store(addr, bytes);
        m.memory_stall(level, true);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.0.branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.0.retired
    }
}

impl<B: BranchPredictor> std::fmt::Debug for CanonicalSink<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CanonicalSink")
    }
}

impl<B: BranchPredictor> Probe for CoreModel<B> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.switch_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.advance(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.advance(1);
        self.loads += 1;
        let addr = self.canon.canon(addr);
        let level = self.hierarchy.load(addr, bytes);
        self.memory_stall(level, false);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.advance(1);
        self.stores += 1;
        let addr = self.canon.canon(addr);
        let level = self.hierarchy.store(addr, bytes);
        self.memory_stall(level, true);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.advance(1);
        self.branches += 1;
        let guess = self.predictor.predict(pc);
        self.predictor.update(pc, taken, guess);
        if guess != taken {
            self.mispredicts += 1;
            let w = self.config.width as f64;
            let penalty = self.config.mispredict_penalty as f64;
            let bad = penalty * self.config.mispredict_bad_spec_fraction;
            let fe = penalty - bad;
            self.cycles += penalty;
            self.slots_bad_spec += bad * w;
            self.slots_frontend += fe * w;
        }
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.retired
    }

    /// Batched event drain for memo replay and recorded traces.
    ///
    /// Observably identical to per-event dispatch — `alu`/`avx`/`sse` all
    /// reduce to `advance(n)` (the batch is *not* coalesced: f64 addition
    /// is non-associative, so each event performs its own `advance`
    /// arithmetic), and a `SetKernel` repeating the current kernel is
    /// skipped because `switch_kernel` only installs values that are
    /// pure functions of `k` (plus a write-back/reload of the fetch
    /// scalar that is the identity when `k` is unchanged). What the
    /// loop saves is the per-event
    /// call overhead and redundant kernel-cost updates, which dominate
    /// replayed streams (recorded batches re-declare their kernel far
    /// more often than they switch it).
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        for &e in events {
            match e {
                ProbeEvent::SetKernel(k) => {
                    if k != self.kernel {
                        self.switch_kernel(k);
                    }
                }
                ProbeEvent::Alu(n) | ProbeEvent::Avx(n) | ProbeEvent::Sse(n) => self.advance(n),
                ProbeEvent::Load { addr, bytes } => self.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => self.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => self.branch(pc, taken),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaled() -> CoreModel {
        CoreModel::broadwell_scaled(16)
    }

    #[test]
    fn pure_simd_loop_reaches_high_ipc() {
        let mut m = scaled();
        m.set_kernel(Kernel::Sad);
        // Tight loop over one cache-resident buffer with predictable branch.
        for i in 0..20_000u64 {
            m.avx(3);
            m.load(0x100_000 + (i % 32) * 64, 32);
            m.branch(0x5000_0000_0010, i % 64 != 63);
        }
        let r = m.into_report();
        assert!(r.ipc() > 2.2, "cache-resident SIMD should run fast, got {}", r.ipc());
        assert!(r.topdown().retiring > 0.55);
    }

    #[test]
    fn memory_streaming_is_backend_bound() {
        let mut m = scaled();
        m.set_kernel(Kernel::FrameSetup);
        // Stream a working set far larger than the scaled LLC.
        for i in 0..400_000u64 {
            m.load(0x1000_0000 + i * 64, 32);
            m.alu(1);
        }
        let r = m.into_report();
        let td = r.topdown();
        assert!(
            td.backend_memory > td.frontend && td.backend_memory > td.bad_speculation,
            "streaming must be memory bound: {td:?}"
        );
        assert!(r.ipc() < 2.0, "streaming IPC must sink, got {}", r.ipc());
    }

    #[test]
    fn random_branches_cause_bad_speculation() {
        let mut m = scaled();
        m.set_kernel(Kernel::ModeDecision);
        let mut x = 1u64;
        for _ in 0..50_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            m.alu(4);
            m.branch(0x5000_0000_0100, (x >> 62) & 1 == 1);
        }
        let r = m.into_report();
        assert!(r.branch_miss_rate() > 0.3, "unpredictable branch: {}", r.branch_miss_rate());
        let td = r.topdown();
        assert!(td.bad_speculation > 0.1, "bad spec must show: {td:?}");
    }

    #[test]
    fn entropy_kernel_is_core_bound() {
        let mut m = scaled();
        m.set_kernel(Kernel::EntropyCoder);
        for i in 0..20_000u64 {
            m.alu(4);
            m.branch(0x5000_0000_0200, i % 2 == 0);
        }
        let r = m.into_report();
        let td = r.topdown();
        assert!(td.backend_core > 0.2, "serial kernel must be core bound: {td:?}");
    }

    #[test]
    fn big_code_footprint_stresses_the_frontend() {
        // ModeDecision's 48KB footprint exceeds the scaled L1I.
        let run = |kernel: Kernel| {
            let mut m = scaled();
            m.set_kernel(kernel);
            for i in 0..200_000u64 {
                m.alu(2);
                m.branch(0x5000_0000_0300, i % 8 != 0);
            }
            m.into_report().topdown().frontend
        };
        let big = run(Kernel::ModeDecision);
        let small = run(Kernel::Sad);
        assert!(big > small, "large code must be more frontend bound: {big} vs {small}");
    }

    #[test]
    fn mlp_reduces_per_miss_cost() {
        // Two equal-miss-count runs: one with misses bunched (overlapping),
        // one with misses separated by long compute (serialized).
        let mut bunched = scaled();
        bunched.set_kernel(Kernel::FrameSetup);
        for i in 0..4000u64 {
            bunched.load(0x2000_0000 + i * 64, 32);
        }
        for _ in 0..4000u64 {
            bunched.alu(200);
        }
        let mut spread = scaled();
        spread.set_kernel(Kernel::FrameSetup);
        for i in 0..4000u64 {
            spread.load(0x2000_0000 + i * 64, 32);
            spread.alu(200);
        }
        let b = bunched.into_report();
        let s = spread.into_report();
        assert_eq!(b.instructions, s.instructions);
        assert!(
            b.cycles < s.cycles,
            "overlapped misses must cost less: {} vs {}",
            b.cycles,
            s.cycles
        );
    }

    #[test]
    fn resource_stalls_follow_memory_pressure() {
        let mut m = scaled();
        m.set_kernel(Kernel::FrameSetup);
        for i in 0..100_000u64 {
            m.load(0x3000_0000 + i * 64, 32);
            m.alu(1);
        }
        let r = m.into_report();
        assert!(r.resource_stalls.rs > 0.0);
        assert!(
            r.resource_stalls.rob < r.resource_stalls.rs,
            "ROB (192) must stall less than RS (60): {:?}",
            r.resource_stalls
        );
    }

    /// The batched drain must be invisible: a pseudo-random event stream
    /// (kernel switches, repeated same-kernel declarations, loads/stores
    /// with page locality, biased branches) driven per event and via one
    /// `drain_batch` call must produce bit-identical reports — every f64
    /// accumulator included, which is why the drain must not coalesce
    /// compute events (f64 addition is non-associative).
    #[test]
    fn drain_batch_is_bit_identical_to_per_event_dispatch() {
        let mut x = 0x1234_5678_9abc_def0u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut events = Vec::new();
        for _ in 0..120_000 {
            match step() % 12 {
                0 => events
                    .push(ProbeEvent::SetKernel(Kernel::ALL[step() as usize % Kernel::ALL.len()])),
                1 => {
                    // Re-declaring the current kernel is the common case in
                    // recorded batches; the drain's skip path must be
                    // equivalent to the full set_kernel.
                    let k = Kernel::ALL[step() as usize % Kernel::ALL.len()];
                    events.push(ProbeEvent::SetKernel(k));
                    events.push(ProbeEvent::SetKernel(k));
                }
                2..=4 => events.push(ProbeEvent::Alu(1 + step() % 8)),
                5 => events.push(ProbeEvent::Avx(1 + step() % 4)),
                6 => events.push(ProbeEvent::Sse(1 + step() % 4)),
                7 | 8 => events.push(ProbeEvent::Load {
                    addr: 0x10_0000 + step() % (1 << 20),
                    bytes: 1 + (step() % 64) as u32,
                }),
                9 => events.push(ProbeEvent::Store {
                    addr: 0x30_0000 + step() % (1 << 18),
                    bytes: 1 + (step() % 64) as u32,
                }),
                _ => events.push(ProbeEvent::Branch {
                    pc: 0x5000_0000_0000 + (step() % 64) * 16,
                    taken: step() % 3 == 0,
                }),
            }
        }

        let mut per_event = scaled();
        for &e in &events {
            match e {
                ProbeEvent::SetKernel(k) => per_event.set_kernel(k),
                ProbeEvent::Alu(n) => per_event.alu(n),
                ProbeEvent::Avx(n) => per_event.avx(n),
                ProbeEvent::Sse(n) => per_event.sse(n),
                ProbeEvent::Load { addr, bytes } => per_event.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => per_event.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => per_event.branch(pc, taken),
            }
        }
        let mut batched = scaled();
        batched.drain_batch(&events);
        assert_eq!(per_event.into_report(), batched.into_report());
    }

    /// The capture/replay round trip must be invisible: recording a raw
    /// event stream through a `StreamRecorder` (which canonicalizes
    /// addresses and drops redundant kernel redeclarations) and draining
    /// it via `consume_stream` must produce a report bit-identical to
    /// driving the model live with the raw events (whose own
    /// canonicalizer assigns the same pages in the same first-touch
    /// order).
    #[test]
    fn stream_replay_is_bit_identical_to_live_dispatch() {
        use vstress_trace::StreamRecorder;
        let mut x = 0x0fed_cba9_8765_4321u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut live = scaled();
        let mut rec = StreamRecorder::new().with_chunk_target(16 << 10);
        for _ in 0..150_000 {
            match step() % 12 {
                0 | 1 => {
                    let k = Kernel::ALL[step() as usize % Kernel::ALL.len()];
                    live.set_kernel(k);
                    rec.set_kernel(k);
                }
                2..=4 => {
                    let n = 1 + step() % 40;
                    live.alu(n);
                    rec.alu(n);
                }
                5 => {
                    let n = 1 + step() % 6;
                    live.avx(n);
                    rec.avx(n);
                }
                6 => {
                    let n = 1 + step() % 4;
                    live.sse(n);
                    rec.sse(n);
                }
                7 | 8 => {
                    let (a, b) = (0x7f12_0000_0000 + step() % (1 << 22), 1 << (step() % 7));
                    live.load(a, b);
                    rec.load(a, b);
                }
                9 => {
                    let (a, b) = (0x7f34_0000_0000 + step() % (1 << 20), 13);
                    live.store(a, b);
                    rec.store(a, b);
                }
                _ => {
                    let (pc, t) = (0x5000_0000_0000 + (step() % 64) * 16, step() % 3 == 0);
                    live.branch(pc, t);
                    rec.branch(pc, t);
                }
            }
        }
        let (stream, _) = rec.finish();
        let mut replayed = scaled();
        stream.replay(&mut CanonicalSink(&mut replayed));
        let mut chunked = scaled();
        chunked.consume_stream(&stream);
        let live = live.into_report();
        assert_eq!(live, replayed.into_report());
        assert_eq!(live, chunked.into_report());
    }

    #[test]
    fn report_slot_identity() {
        let mut m = scaled();
        m.set_kernel(Kernel::Quant);
        for i in 0..10_000u64 {
            m.avx(2);
            m.load(0x100_000 + (i % 1024) * 64, 32);
            m.store(0x200_000 + (i % 1024) * 64, 32);
            m.branch(0x5000_0000_0400, i % 4 != 0);
        }
        let r = m.into_report();
        assert_eq!(r.instructions, 10_000 * 5);
        let td = r.topdown();
        let sum = td.retiring + td.bad_speculation + td.frontend + td.backend;
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(r.ipc() <= r.width as f64 + 1e-9);
    }
}
