//! Out-of-order core modelling and top-down analysis — the stand-in for
//! Linux `perf` counters plus Intel's top-down method on the paper's
//! Xeon E5-2650 v4 (Broadwell).
//!
//! # Modelling approach
//!
//! A cycle-accurate OoO simulator is neither necessary nor appropriate
//! here: the paper's Figs. 4–6, 11 and 16 report *slot-accounting
//! aggregates* (retiring / bad-speculation / frontend-bound /
//! backend-bound fractions, IPC, MPKI, and resource-stall counters), all
//! of which are first-order functions of the event streams the encoders
//! produce. We therefore use an **interval model** (in the tradition of
//! interval simulation / Sniper): the core retires instructions at a
//! width-limited base rate, modulated by per-kernel ILP limits, and each
//! miss event (branch mispredict, I-cache miss, data-cache miss) inserts
//! a penalty interval whose wasted slots are attributed to the proper
//! top-down category. The model consumes the instrumented encoders'
//! operation stream directly by implementing
//! [`Probe`](vstress_trace::Probe).
//!
//! The approximations and their calibration are documented on
//! [`CoreConfig`]; every penalty/exposure parameter is a config field so
//! the ablation benches can vary them.
//!
//! ```
//! use vstress_pipeline::CoreModel;
//! use vstress_trace::{Kernel, Probe};
//!
//! let mut core = CoreModel::broadwell();
//! core.set_kernel(Kernel::Sad);
//! for i in 0..1000u64 {
//!     core.avx(4);
//!     core.load(0x10_0000 + (i % 64) * 64, 32);
//!     core.branch(0x5000_0000_0000, i % 16 != 0);
//! }
//! let report = core.into_report();
//! assert!(report.ipc() > 0.5 && report.ipc() <= 4.0);
//! let td = report.topdown();
//! let sum = td.retiring + td.bad_speculation + td.frontend + td.backend;
//! assert!((sum - 1.0).abs() < 1e-9);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod config;
pub mod model;
pub mod report;

pub use config::CoreConfig;
pub use model::CoreModel;
pub use report::{CoreReport, ResourceStalls, TopDownSlots};
