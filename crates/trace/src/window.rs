//! Mid-run branch-trace window capture.
//!
//! The paper's predictor study (Figs. 8–10) evaluates CBP predictors on
//! branch traces "taken from an interval of 1 billion instructions roughly
//! halfway through the encoding run". [`BranchWindowProbe`] reproduces that
//! protocol: it counts retired instructions, stays dormant for a configured
//! skip distance, then records every branch outcome until the window's
//! instruction budget is exhausted.

use crate::kernel::Kernel;
use crate::probe::Probe;
use crate::record::BranchRecord;

/// A probe that records the branch stream of one mid-run instruction window.
#[derive(Debug, Clone)]
pub struct BranchWindowProbe {
    skip: u64,
    window: u64,
    retired: u64,
    records: Vec<BranchRecord>,
}

impl BranchWindowProbe {
    /// Captures branches retired in `[skip, skip + window)` instructions.
    pub fn new(skip: u64, window: u64) -> Self {
        BranchWindowProbe { skip, window, retired: 0, records: Vec::new() }
    }

    /// Convenience for the paper's protocol: a window of `window`
    /// instructions starting halfway through a run whose total length is
    /// estimated at `total_estimate` instructions.
    pub fn mid_run(total_estimate: u64, window: u64) -> Self {
        let mid = total_estimate / 2;
        Self::new(mid.saturating_sub(window / 2), window)
    }

    /// Whether the window has been fully captured (further events are
    /// ignored, so the caller may stop early).
    pub fn is_complete(&self) -> bool {
        self.retired >= self.skip + self.window
    }

    /// Instructions retired inside the window so far.
    pub fn window_retired(&self) -> u64 {
        self.retired.saturating_sub(self.skip).min(self.window)
    }

    /// Branch records captured so far.
    pub fn records(&self) -> &[BranchRecord] {
        &self.records
    }

    /// Consumes the probe, returning the captured branch trace.
    pub fn into_records(self) -> Vec<BranchRecord> {
        self.records
    }

    #[inline]
    fn in_window(&self) -> bool {
        self.retired >= self.skip && self.retired < self.skip + self.window
    }
}

impl Probe for BranchWindowProbe {
    #[inline]
    fn set_kernel(&mut self, _k: Kernel) {}

    #[inline]
    fn alu(&mut self, n: u64) {
        self.retired += n;
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.retired += n;
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.retired += n;
    }

    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u32) {
        self.retired += 1;
    }

    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u32) {
        self.retired += 1;
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        if self.in_window() {
            self.records.push(BranchRecord { pc, taken });
        }
        self.retired += 1;
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.retired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_window_branches_are_recorded() {
        // Window covers retired counts [10, 20).
        let mut p = BranchWindowProbe::new(10, 10);
        for i in 0..30u64 {
            p.branch(0x1000 + i * 4, i % 2 == 0);
        }
        assert_eq!(p.records().len(), 10);
        assert_eq!(p.records()[0].pc, 0x1000 + 10 * 4);
        assert!(p.is_complete());
    }

    #[test]
    fn non_branch_instructions_advance_the_clock() {
        let mut p = BranchWindowProbe::new(5, 100);
        p.alu(3);
        p.load(0, 4);
        p.branch(0xa0, true); // retired == 4 < 5: before the window
        assert!(p.records().is_empty());
        p.store(0, 4); // retired 5..6 enters window
        p.branch(0xb0, false);
        assert_eq!(p.records().len(), 1);
        assert_eq!(p.records()[0].pc, 0xb0);
    }

    #[test]
    fn mid_run_centers_the_window() {
        let p = BranchWindowProbe::mid_run(1000, 100);
        assert_eq!(p.skip, 450);
        assert_eq!(p.window, 100);
        // Estimate smaller than the window still yields a valid probe.
        let p2 = BranchWindowProbe::mid_run(10, 100);
        assert_eq!(p2.skip, 0);
    }

    #[test]
    fn window_retired_saturates() {
        let mut p = BranchWindowProbe::new(2, 3);
        assert_eq!(p.window_retired(), 0);
        p.alu(4);
        assert_eq!(p.window_retired(), 2);
        p.alu(100);
        assert_eq!(p.window_retired(), 3);
    }

    #[test]
    fn into_records_hands_back_trace() {
        let mut p = BranchWindowProbe::new(0, 10);
        p.branch(0x4, true);
        let recs = p.into_records();
        assert_eq!(recs, vec![BranchRecord { pc: 0x4, taken: true }]);
    }
}
