//! Instruction-mix accounting (the paper's Table 2 and Fig. 3 categories).

use std::ops::{Add, AddAssign};

/// Instruction classes reported by the paper's Pin-based mix analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OpClass {
    /// Conditional and unconditional branches.
    Branch,
    /// Memory reads (scalar or vector).
    Load,
    /// Memory writes (scalar or vector).
    Store,
    /// 256-bit vector compute (the paper's "AVX" column).
    Avx,
    /// 128-bit vector compute (the paper's "SSE" column).
    Sse,
    /// Everything else: scalar ALU, moves, address generation.
    Other,
}

impl OpClass {
    /// All classes in Table 2 column order.
    pub const ALL: [OpClass; 6] = [
        OpClass::Branch,
        OpClass::Load,
        OpClass::Store,
        OpClass::Avx,
        OpClass::Sse,
        OpClass::Other,
    ];

    /// Column label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            OpClass::Branch => "Branch",
            OpClass::Load => "Load",
            OpClass::Store => "Store",
            OpClass::Avx => "AVX",
            OpClass::Sse => "SSE",
            OpClass::Other => "Other",
        }
    }
}

/// Retired-instruction counts per [`OpClass`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OpMix {
    /// Branch instructions.
    pub branch: u64,
    /// Load instructions.
    pub load: u64,
    /// Store instructions.
    pub store: u64,
    /// 256-bit vector compute instructions.
    pub avx: u64,
    /// 128-bit vector compute instructions.
    pub sse: u64,
    /// Remaining (scalar) instructions.
    pub other: u64,
}

impl OpMix {
    /// A mix with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total retired instructions.
    #[inline]
    pub fn total(&self) -> u64 {
        self.branch + self.load + self.store + self.avx + self.sse + self.other
    }

    /// Count for one class.
    pub fn count(&self, class: OpClass) -> u64 {
        match class {
            OpClass::Branch => self.branch,
            OpClass::Load => self.load,
            OpClass::Store => self.store,
            OpClass::Avx => self.avx,
            OpClass::Sse => self.sse,
            OpClass::Other => self.other,
        }
    }

    /// Percentage of total instructions for one class (0 if empty).
    pub fn percent(&self, class: OpClass) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.count(class) as f64 / total as f64 * 100.0
        }
    }

    /// Adds `n` instructions of `class`.
    #[inline]
    pub fn bump(&mut self, class: OpClass, n: u64) {
        match class {
            OpClass::Branch => self.branch += n,
            OpClass::Load => self.load += n,
            OpClass::Store => self.store += n,
            OpClass::Avx => self.avx += n,
            OpClass::Sse => self.sse += n,
            OpClass::Other => self.other += n,
        }
    }
}

impl Add for OpMix {
    type Output = OpMix;

    fn add(self, rhs: OpMix) -> OpMix {
        OpMix {
            branch: self.branch + rhs.branch,
            load: self.load + rhs.load,
            store: self.store + rhs.store,
            avx: self.avx + rhs.avx,
            sse: self.sse + rhs.sse,
            other: self.other + rhs.other,
        }
    }
}

impl AddAssign for OpMix {
    fn add_assign(&mut self, rhs: OpMix) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for OpMix {
    fn sum<I: Iterator<Item = OpMix>>(iter: I) -> OpMix {
        iter.fold(OpMix::default(), Add::add)
    }
}

impl std::fmt::Display for OpMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1e} insts |", self.total() as f64)?;
        for class in OpClass::ALL {
            write!(f, " {} {:.1}%", class.label(), self.percent(class))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_hundred() {
        let mut m = OpMix::new();
        m.bump(OpClass::Branch, 6);
        m.bump(OpClass::Load, 26);
        m.bump(OpClass::Store, 14);
        m.bump(OpClass::Avx, 32);
        m.bump(OpClass::Sse, 1);
        m.bump(OpClass::Other, 21);
        let total: f64 = OpClass::ALL.iter().map(|&c| m.percent(c)).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert_eq!(m.total(), 100);
    }

    #[test]
    fn empty_mix_is_safe() {
        let m = OpMix::new();
        assert_eq!(m.total(), 0);
        assert_eq!(m.percent(OpClass::Load), 0.0);
    }

    #[test]
    fn addition_accumulates() {
        let mut a = OpMix::new();
        a.bump(OpClass::Load, 5);
        let mut b = OpMix::new();
        b.bump(OpClass::Load, 3);
        b.bump(OpClass::Avx, 2);
        let c = a + b;
        assert_eq!(c.load, 8);
        assert_eq!(c.avx, 2);
        a += b;
        assert_eq!(a, c);
        let summed: OpMix = [a, b].into_iter().sum();
        assert_eq!(summed.load, 11);
    }

    #[test]
    fn display_is_nonempty() {
        let m = OpMix::new();
        assert!(!format!("{m}").is_empty());
    }
}
