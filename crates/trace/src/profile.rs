//! Per-kernel instruction attribution — the gprof substitute.

use crate::kernel::Kernel;

/// Flat profile: retired-instruction counts per encoder kernel.
///
/// Reproduces the role of GNU gprof in the paper's methodology: locating
/// the hot functions that deserve trace windows and closer study.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HotKernelProfile {
    counts: [u64; Kernel::ALL.len()],
}

impl HotKernelProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` instructions to kernel `k`.
    #[inline]
    pub fn add(&mut self, k: Kernel, n: u64) {
        self.counts[k.index()] += n;
    }

    /// Instruction count attributed to kernel `k`.
    pub fn count(&self, k: Kernel) -> u64 {
        self.counts[k.index()]
    }

    /// Total attributed instructions.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Merges another profile into this one.
    pub fn merge(&mut self, other: &HotKernelProfile) {
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
    }

    /// The `n` hottest kernels as `(kernel, instructions, percent)`,
    /// hottest first. Kernels with zero count are omitted.
    pub fn top(&self, n: usize) -> Vec<(Kernel, u64, f64)> {
        let total = self.total();
        let mut rows: Vec<(Kernel, u64)> =
            Kernel::ALL.iter().map(|&k| (k, self.count(k))).filter(|&(_, c)| c > 0).collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows.truncate(n);
        rows.into_iter()
            .map(|(k, c)| (k, c, if total == 0 { 0.0 } else { c as f64 / total as f64 * 100.0 }))
            .collect()
    }
}

impl std::fmt::Display for HotKernelProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<16} {:>14} {:>7}", "kernel", "instructions", "%")?;
        for (k, c, pct) in self.top(Kernel::ALL.len()) {
            writeln!(f, "{:<16} {:>14} {:>6.2}%", k.name(), c, pct)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut p = HotKernelProfile::new();
        p.add(Kernel::Sad, 100);
        p.add(Kernel::Sad, 50);
        p.add(Kernel::Quant, 25);
        assert_eq!(p.count(Kernel::Sad), 150);
        assert_eq!(p.total(), 175);
    }

    #[test]
    fn top_orders_descending_and_skips_zero() {
        let mut p = HotKernelProfile::new();
        p.add(Kernel::EntropyCoder, 10);
        p.add(Kernel::ModeDecision, 90);
        let top = p.top(5);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, Kernel::ModeDecision);
        assert!((top[0].2 - 90.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_elementwise() {
        let mut a = HotKernelProfile::new();
        a.add(Kernel::Sad, 1);
        let mut b = HotKernelProfile::new();
        b.add(Kernel::Sad, 2);
        b.add(Kernel::Deblock, 3);
        a.merge(&b);
        assert_eq!(a.count(Kernel::Sad), 3);
        assert_eq!(a.count(Kernel::Deblock), 3);
    }

    #[test]
    fn display_contains_kernel_names() {
        let mut p = HotKernelProfile::new();
        p.add(Kernel::Satd, 5);
        assert!(format!("{p}").contains("satd"));
    }
}
