//! Probe event recording and replay.
//!
//! The distortion memo in the partition search (see
//! `vstress-codecs::frame_coder`) reuses the *result* of a leaf
//! evaluation whose inputs it has seen before — but the characterization
//! contract is that the model-visible event stream is identical whether
//! or not a result was memoized. [`RecordingProbe`] captures the exact
//! event batch a computation emits (every event, in order, with its
//! arguments) while forwarding it unchanged to the live probe;
//! [`EventBatch::replay`] re-emits that batch on a memo hit, so the
//! downstream simulators observe precisely the stream the recomputation
//! would have produced.
//!
//! The same machinery doubles as a test oracle: two kernels are
//! probe-equivalent iff they record equal batches (`tests/` in
//! `vstress-codecs` pin the optimized kernels against naive references
//! this way).

use crate::kernel::Kernel;
use crate::probe::Probe;

/// One probe event with its full argument list.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// [`Probe::set_kernel`].
    SetKernel(Kernel),
    /// [`Probe::alu`].
    Alu(u64),
    /// [`Probe::avx`].
    Avx(u64),
    /// [`Probe::sse`].
    Sse(u64),
    /// [`Probe::load`].
    Load {
        /// Synthetic data address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// [`Probe::store`].
    Store {
        /// Synthetic data address.
        addr: u64,
        /// Access width in bytes.
        bytes: u32,
    },
    /// [`Probe::branch`].
    Branch {
        /// Synthetic site program counter.
        pc: u64,
        /// Outcome.
        taken: bool,
    },
}

/// An ordered batch of recorded probe events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventBatch {
    events: Vec<ProbeEvent>,
}

impl EventBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events in emission order.
    pub fn events(&self) -> &[ProbeEvent] {
        &self.events
    }

    /// Moves `other`'s events to the end of this batch, leaving `other`
    /// empty — the canonical-merge building block: per-unit batches
    /// recorded on worker threads are concatenated in canonical
    /// (tile-major, row-major within tile) order to reconstruct the
    /// serial probe stream.
    pub fn append(&mut self, other: &mut EventBatch) {
        self.events.append(&mut other.events);
    }

    /// Concatenates `batches` in the given (canonical) order into one
    /// stream. `concat` of per-unit recordings equals one recording of
    /// the units run back-to-back — the merge contract the tile
    /// equivalence oracle pins.
    pub fn concat<'a, I: IntoIterator<Item = &'a EventBatch>>(batches: I) -> EventBatch {
        let mut out = EventBatch::new();
        for b in batches {
            out.events.extend_from_slice(&b.events);
        }
        out
    }

    /// Re-emits every recorded event, in order, into `probe`.
    ///
    /// Delegates to [`Probe::drain_batch`], so probes with a specialized
    /// batch drain (the pipeline model hoists its per-event kernel-cost
    /// lookups) get it automatically; for everything else the default
    /// drain dispatches the events one by one, exactly as this method
    /// always has.
    pub fn replay<P: Probe>(&self, probe: &mut P) {
        probe.drain_batch(&self.events);
    }
}

/// A probe adapter that records every event while forwarding it to the
/// wrapped probe.
///
/// The wrapped probe sees the identical stream it would see without the
/// recorder; [`RecordingProbe::into_batch`] then yields the captured
/// [`EventBatch`] for later replay or comparison.
#[derive(Debug)]
pub struct RecordingProbe<'a, P: Probe> {
    inner: &'a mut P,
    batch: EventBatch,
}

impl<'a, P: Probe> RecordingProbe<'a, P> {
    /// Wraps `inner`, recording everything forwarded to it.
    pub fn new(inner: &'a mut P) -> Self {
        RecordingProbe { inner, batch: EventBatch::new() }
    }

    /// Stops recording and returns the captured batch.
    pub fn into_batch(self) -> EventBatch {
        self.batch
    }
}

impl<P: Probe> Probe for RecordingProbe<'_, P> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.batch.events.push(ProbeEvent::SetKernel(k));
        self.inner.set_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.batch.events.push(ProbeEvent::Alu(n));
        self.inner.alu(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.batch.events.push(ProbeEvent::Avx(n));
        self.inner.avx(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.batch.events.push(ProbeEvent::Sse(n));
        self.inner.sse(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.batch.events.push(ProbeEvent::Load { addr, bytes });
        self.inner.load(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.batch.events.push(ProbeEvent::Store { addr, bytes });
        self.inner.store(addr, bytes);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.batch.events.push(ProbeEvent::Branch { pc, taken });
        self.inner.branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.inner.retired()
    }

    #[inline]
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        // Record the whole slice, then hand the wrapped probe one batched
        // drain: the captured batch and the inner probe's final state are
        // identical to per-event push-and-forward.
        self.batch.events.extend_from_slice(events);
        self.inner.drain_batch(events);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::{CountingProbe, NullProbe};

    fn drive<P: Probe>(p: &mut P) {
        p.set_kernel(Kernel::Sad);
        p.alu(3);
        p.avx(2);
        p.load(0x1000, 32);
        p.store(0x2000, 8);
        p.branch(0x500, true);
        p.sse(1);
    }

    #[test]
    fn recorder_forwards_and_captures_in_order() {
        let mut counting = CountingProbe::new();
        let mut rec = RecordingProbe::new(&mut counting);
        drive(&mut rec);
        let batch = rec.into_batch();
        assert_eq!(counting.retired(), 9, "forwarded stream must be unchanged");
        assert_eq!(batch.len(), 7);
        assert_eq!(batch.events()[0], ProbeEvent::SetKernel(Kernel::Sad));
        assert_eq!(batch.events()[4], ProbeEvent::Store { addr: 0x2000, bytes: 8 });
    }

    #[test]
    fn replay_reproduces_the_identical_stream() {
        let mut null = NullProbe;
        let mut rec = RecordingProbe::new(&mut null);
        drive(&mut rec);
        let batch = rec.into_batch();

        // Replay into a second recorder: the re-recorded batch must be
        // event-for-event equal (the memo-hit fidelity contract).
        let mut direct = CountingProbe::new();
        let mut rerec = RecordingProbe::new(&mut direct);
        batch.replay(&mut rerec);
        assert_eq!(rerec.into_batch(), batch);

        let mut reference = CountingProbe::new();
        drive(&mut reference);
        assert_eq!(direct.mix(), reference.mix());
        assert_eq!(direct.profile().count(Kernel::Sad), reference.profile().count(Kernel::Sad));
    }

    #[test]
    fn drain_batch_equals_per_event_dispatch() {
        let mut null = NullProbe;
        let mut rec = RecordingProbe::new(&mut null);
        drive(&mut rec);
        let batch = rec.into_batch();

        let mut direct = CountingProbe::new();
        drive(&mut direct);
        let mut drained = CountingProbe::new();
        drained.drain_batch(batch.events());
        assert_eq!(direct, drained, "one drain call must equal per-event dispatch");
    }

    #[test]
    fn tee_drain_feeds_both_sides_identically() {
        use crate::probe::TeeProbe;
        let mut null = NullProbe;
        let mut rec = RecordingProbe::new(&mut null);
        drive(&mut rec);
        let batch = rec.into_batch();

        let mut per_event = TeeProbe::new(CountingProbe::new(), CountingProbe::new());
        drive(&mut per_event);
        let mut batched = TeeProbe::new(CountingProbe::new(), CountingProbe::new());
        batched.drain_batch(batch.events());
        let (pa, pb) = per_event.into_parts();
        let (ba, bb) = batched.into_parts();
        assert_eq!(pa, ba);
        assert_eq!(pb, bb);
    }

    #[test]
    fn recording_drain_captures_and_forwards() {
        let mut null = NullProbe;
        let mut rec = RecordingProbe::new(&mut null);
        drive(&mut rec);
        let batch = rec.into_batch();

        let mut inner = CountingProbe::new();
        let mut rerec = RecordingProbe::new(&mut inner);
        rerec.drain_batch(batch.events());
        assert_eq!(rerec.into_batch(), batch, "batched drain must capture the full stream");
        let mut reference = CountingProbe::new();
        drive(&mut reference);
        assert_eq!(inner, reference, "batched drain must forward the full stream");
    }

    #[test]
    fn concat_of_split_recordings_equals_one_recording() {
        // Record the same work twice: once as a single stream, once as
        // two per-"unit" batches merged in order.
        let mut null = NullProbe;
        let mut whole = RecordingProbe::new(&mut null);
        drive(&mut whole);
        drive(&mut whole);
        let whole = whole.into_batch();

        let mut a = RecordingProbe::new(&mut null);
        drive(&mut a);
        let a = a.into_batch();
        let mut b = RecordingProbe::new(&mut null);
        drive(&mut b);
        let mut b = b.into_batch();

        assert_eq!(EventBatch::concat([&a, &b]), whole);
        let mut merged = a;
        merged.append(&mut b);
        assert_eq!(merged, whole);
        assert!(b.is_empty(), "append drains the source batch");
    }

    #[test]
    fn liveness_reporting() {
        assert!(!NullProbe.is_live());
        assert!(CountingProbe::new().is_live());
        let mut null = NullProbe;
        assert!(RecordingProbe::new(&mut null).is_live());
        let r: &mut NullProbe = &mut null;
        assert!(!r.is_live(), "&mut forwards liveness");
    }
}
