//! Instrumentation substrate for the `vstress` workbench — the stand-in for
//! Intel Pin.
//!
//! The paper instruments native encoder binaries with Pin to obtain
//! instruction mixes (its Table 2 / Fig. 3), branch traces for the CBP
//! predictor study (Figs. 8–10) and hot-function profiles (via gprof). Our
//! encoder models are Rust programs, so instead of binary instrumentation
//! the hot kernels are compiled against the [`Probe`] trait and report their
//! dynamic operation stream directly:
//!
//! * every retired abstract instruction, classified into the same categories
//!   the paper reports (branch / load / store / AVX / SSE / other),
//! * synthetic, deterministic data addresses (see [`probe_addr`]) with the
//!   live buffers' layout and strides, for cache simulation,
//! * stable per-site program counters for branch-predictor simulation,
//!   generated at compile time by [`site_pc!`].
//!
//! A [`probe::NullProbe`] monomorphizes to nothing, so un-instrumented
//! encodes run at full speed; [`probe::CountingProbe`] gathers the
//! instruction mix; [`probe::SinkProbe`] additionally streams branch and
//! memory events into downstream simulators (branch predictors, caches, the
//! pipeline model); [`window::BranchWindowProbe`] captures the paper's
//! "1B instructions roughly halfway through the run" branch-trace windows.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod event;
pub mod io;
pub mod kernel;
pub mod mix;
pub mod probe;
pub mod probe_addr;
pub mod profile;
pub mod record;
pub mod stream;
pub mod window;

pub use event::{EventBatch, ProbeEvent, RecordingProbe};
pub use kernel::Kernel;
pub use mix::{OpClass, OpMix};
pub use probe::{CountingProbe, NullProbe, Probe, SinkProbe, TeeProbe};
pub use profile::HotKernelProfile;
pub use record::{BranchRecord, MemAccess};
pub use stream::{AddressCanonicalizer, ChunkRx, ChunkTx, EventStream, StreamRecorder};
pub use window::BranchWindowProbe;

/// Computes a stable 64-bit synthetic program counter for a static branch
/// site from `file!()`, `line!()` and `column!()`.
///
/// Pin reports the real virtual address of each branch instruction; our
/// equivalent must be (a) unique per static site and (b) identical across
/// runs so that predictor tables warm the same entries. A compile-time
/// FNV-1a hash of the source location satisfies both.
///
/// ```
/// use vstress_trace::site_pc;
/// let a = site_pc!();
/// let b = site_pc!();
/// assert_ne!(a, b); // different columns/lines hash differently
/// ```
#[macro_export]
macro_rules! site_pc {
    () => {{
        const PC: u64 = $crate::fnv1a(file!().as_bytes())
            ^ ((line!() as u64) << 32 | column!() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        // Keep PCs in a "text-segment-like" range and 4-byte aligned, as
        // real branch addresses would be.
        (PC & 0x0000_0fff_ffff_fffc) | 0x0000_5000_0000_0000
    }};
}

/// Compile-time FNV-1a hash used by [`site_pc!`].
#[must_use]
pub const fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut i = 0;
    while i < bytes.len() {
        hash ^= bytes[i] as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    hash
}

#[cfg(test)]
mod tests {
    #[test]
    fn site_pc_is_stable_and_distinct() {
        let a = site_pc!();
        let a2 = site_pc!();
        assert_ne!(a, a2, "distinct sites must hash differently");
        fn inner() -> u64 {
            site_pc!()
        }
        assert_eq!(inner(), inner(), "one site must be stable across executions");
    }

    #[test]
    fn site_pc_is_aligned_and_canonical() {
        let pc = site_pc!();
        assert_eq!(pc % 4, 0);
        assert_eq!(pc >> 44, 0x5);
    }

    #[test]
    fn fnv1a_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(super::fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(super::fnv1a(b"a"), super::fnv1a(b"b"));
    }
}
