//! The [`Probe`] trait and its basic implementations.

use crate::event::ProbeEvent;
use crate::kernel::Kernel;
use crate::mix::{OpClass, OpMix};
use crate::profile::HotKernelProfile;
use crate::record::{BranchSink, MemAccess, MemSink};

/// Receiver for the dynamic operation stream of an instrumented encoder.
///
/// Encoder kernels are generic over `P: Probe`; every abstract retired
/// instruction is reported through exactly one of these methods. All
/// methods are expected to be `#[inline]`-friendly — with [`NullProbe`] the
/// whole instrumentation layer compiles away.
///
/// Batched variants (`alu(n)`, `avx(n)`, …) exist because leaf SIMD loops
/// retire thousands of identical compute instructions between interesting
/// events; batching keeps instrumentation overhead proportional to the
/// *event* rate rather than the instruction rate.
pub trait Probe {
    /// Declares that subsequent operations execute in kernel `k`
    /// (profiling attribution and instruction-fetch modelling).
    fn set_kernel(&mut self, k: Kernel);

    /// `n` scalar ALU / address-generation / move instructions
    /// (Table 2 "Other").
    fn alu(&mut self, n: u64);

    /// `n` 256-bit vector compute instructions (Table 2 "AVX").
    fn avx(&mut self, n: u64);

    /// `n` 128-bit vector compute instructions (Table 2 "SSE").
    fn sse(&mut self, n: u64);

    /// One load of `bytes` bytes at `addr`.
    fn load(&mut self, addr: u64, bytes: u32);

    /// One store of `bytes` bytes at `addr`.
    fn store(&mut self, addr: u64, bytes: u32);

    /// One conditional branch at static site `pc` resolving to `taken`.
    fn branch(&mut self, pc: u64, taken: bool);

    /// Total retired instructions so far (0 for non-counting probes).
    fn retired(&self) -> u64 {
        0
    }

    /// Whether this probe actually observes events.
    ///
    /// `false` means every report is a no-op ([`NullProbe`]), so callers
    /// may skip work whose *only* purpose is probe fidelity — e.g. the
    /// partition-search memo skips recording replay batches when the
    /// probe is dead, because replaying into a dead probe is itself a
    /// no-op. Model-visible behaviour must not depend on this value.
    fn is_live(&self) -> bool {
        true
    }

    /// Consumes a recorded event batch in one call.
    ///
    /// Semantically this *is* dispatching every event, in order, through
    /// the corresponding method — the default body does exactly that, and
    /// any override must remain observably identical. The hook exists so
    /// replay-heavy consumers (memo replay into the pipeline model, branch
    /// window replay) can hoist per-event overhead — virtual dispatch,
    /// kernel/latency lookups — out of the loop. Because default trait
    /// methods are monomorphized per implementing type, even the default
    /// body turns one dynamically-dispatched call per *event* into one per
    /// *batch* when the probe is behind `&mut dyn`.
    #[inline]
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        for &e in events {
            match e {
                ProbeEvent::SetKernel(k) => self.set_kernel(k),
                ProbeEvent::Alu(n) => self.alu(n),
                ProbeEvent::Avx(n) => self.avx(n),
                ProbeEvent::Sse(n) => self.sse(n),
                ProbeEvent::Load { addr, bytes } => self.load(addr, bytes),
                ProbeEvent::Store { addr, bytes } => self.store(addr, bytes),
                ProbeEvent::Branch { pc, taken } => self.branch(pc, taken),
            }
        }
    }
}

impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        (**self).set_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        (**self).alu(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        (**self).avx(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        (**self).sse(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        (**self).load(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        (**self).store(addr, bytes);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        (**self).branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        (**self).retired()
    }

    #[inline]
    fn is_live(&self) -> bool {
        (**self).is_live()
    }

    #[inline]
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        // Explicit forward so the referent's own override (not the default
        // per-event loop over forwarding methods) handles the batch.
        (**self).drain_batch(events);
    }
}

/// A probe that does nothing; instrumentation compiles away entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline]
    fn set_kernel(&mut self, _k: Kernel) {}

    #[inline]
    fn alu(&mut self, _n: u64) {}

    #[inline]
    fn avx(&mut self, _n: u64) {}

    #[inline]
    fn sse(&mut self, _n: u64) {}

    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u32) {}

    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u32) {}

    #[inline]
    fn branch(&mut self, _pc: u64, _taken: bool) {}

    #[inline]
    fn is_live(&self) -> bool {
        false
    }

    #[inline]
    fn drain_batch(&mut self, _events: &[ProbeEvent]) {}
}

/// Counts the instruction mix and per-kernel totals (Pin's `insmix` +
/// gprof's flat profile, combined).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingProbe {
    mix: OpMix,
    profile: HotKernelProfile,
    kernel: Option<Kernel>,
}

impl CountingProbe {
    /// Creates a probe with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The instruction mix counted so far.
    pub fn mix(&self) -> OpMix {
        self.mix
    }

    /// The per-kernel profile counted so far.
    pub fn profile(&self) -> &HotKernelProfile {
        &self.profile
    }

    #[inline]
    fn attribute(&mut self, n: u64) {
        if let Some(k) = self.kernel {
            self.profile.add(k, n);
        }
    }
}

impl Probe for CountingProbe {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.kernel = Some(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.mix.bump(OpClass::Other, n);
        self.attribute(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.mix.bump(OpClass::Avx, n);
        self.attribute(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.mix.bump(OpClass::Sse, n);
        self.attribute(n);
    }

    #[inline]
    fn load(&mut self, _addr: u64, _bytes: u32) {
        self.mix.bump(OpClass::Load, 1);
        self.attribute(1);
    }

    #[inline]
    fn store(&mut self, _addr: u64, _bytes: u32) {
        self.mix.bump(OpClass::Store, 1);
        self.attribute(1);
    }

    #[inline]
    fn branch(&mut self, _pc: u64, _taken: bool) {
        self.mix.bump(OpClass::Branch, 1);
        self.attribute(1);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.mix.total()
    }
}

/// Counts like [`CountingProbe`] and additionally streams branch outcomes
/// into a [`BranchSink`] and memory accesses into a [`MemSink`].
///
/// This is the composition used for "perf + simulators attached": the
/// branch sink is typically a functional branch predictor and the memory
/// sink a cache hierarchy.
#[derive(Debug, Default)]
pub struct SinkProbe<B, M> {
    counting: CountingProbe,
    branches: B,
    memory: M,
}

impl<B: BranchSink, M: MemSink> SinkProbe<B, M> {
    /// Wraps the given sinks.
    pub fn new(branches: B, memory: M) -> Self {
        SinkProbe { counting: CountingProbe::new(), branches, memory }
    }

    /// The instruction mix counted so far.
    pub fn mix(&self) -> OpMix {
        self.counting.mix()
    }

    /// The per-kernel profile counted so far.
    pub fn profile(&self) -> &HotKernelProfile {
        self.counting.profile()
    }

    /// Borrows the branch sink.
    pub fn branch_sink(&self) -> &B {
        &self.branches
    }

    /// Borrows the memory sink.
    pub fn memory_sink(&self) -> &M {
        &self.memory
    }

    /// Consumes the probe and returns `(mix, branch sink, memory sink)`.
    pub fn into_parts(self) -> (OpMix, B, M) {
        (self.counting.mix(), self.branches, self.memory)
    }
}

impl<B: BranchSink, M: MemSink> Probe for SinkProbe<B, M> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.counting.set_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.counting.alu(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.counting.avx(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.counting.sse(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.counting.load(addr, bytes);
        self.memory.observe_access(MemAccess { addr, bytes, is_store: false });
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.counting.store(addr, bytes);
        self.memory.observe_access(MemAccess { addr, bytes, is_store: true });
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.counting.branch(pc, taken);
        self.branches.observe_branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.counting.retired()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{BranchRecord, NullSink};

    fn drive<P: Probe>(p: &mut P) {
        p.set_kernel(Kernel::Sad);
        p.alu(3);
        p.avx(2);
        p.sse(1);
        p.load(0x1000, 32);
        p.store(0x2000, 32);
        p.branch(0x500, true);
    }

    #[test]
    fn null_probe_counts_nothing() {
        let mut p = NullProbe;
        drive(&mut p);
        assert_eq!(p.retired(), 0);
    }

    #[test]
    fn counting_probe_tallies_mix() {
        let mut p = CountingProbe::new();
        drive(&mut p);
        let m = p.mix();
        assert_eq!(m.other, 3);
        assert_eq!(m.avx, 2);
        assert_eq!(m.sse, 1);
        assert_eq!(m.load, 1);
        assert_eq!(m.store, 1);
        assert_eq!(m.branch, 1);
        assert_eq!(p.retired(), 9);
        assert_eq!(p.profile().count(Kernel::Sad), 9);
    }

    #[test]
    fn sink_probe_forwards_events() {
        let mut p = SinkProbe::new(Vec::<BranchRecord>::new(), Vec::new());
        drive(&mut p);
        let (mix, branches, mems) = p.into_parts();
        assert_eq!(mix.total(), 9);
        assert_eq!(branches, vec![BranchRecord { pc: 0x500, taken: true }]);
        assert_eq!(mems.len(), 2);
        assert!(!mems[0].is_store);
        assert!(mems[1].is_store);
    }

    #[test]
    fn sink_probe_with_null_sinks() {
        let mut p = SinkProbe::new(NullSink, NullSink);
        drive(&mut p);
        assert_eq!(p.retired(), 9);
    }

    #[test]
    fn mut_ref_probe_forwards() {
        let mut p = CountingProbe::new();
        {
            let mut r: &mut CountingProbe = &mut p;
            drive(&mut r);
        }
        assert_eq!(p.retired(), 9);
    }
}

/// Forwards every event to two probes (e.g. a [`CountingProbe`] for the
/// instruction mix plus a pipeline model for cycles).
#[derive(Debug, Default)]
pub struct TeeProbe<A, B> {
    first: A,
    second: B,
}

impl<A: Probe, B: Probe> TeeProbe<A, B> {
    /// Combines two probes.
    pub fn new(first: A, second: B) -> Self {
        TeeProbe { first, second }
    }

    /// Borrows the first probe.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// Borrows the second probe.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Consumes the tee and returns both probes.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Probe, B: Probe> Probe for TeeProbe<A, B> {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.first.set_kernel(k);
        self.second.set_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.first.alu(n);
        self.second.alu(n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.first.avx(n);
        self.second.avx(n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.first.sse(n);
        self.second.sse(n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.first.load(addr, bytes);
        self.second.load(addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.first.store(addr, bytes);
        self.second.store(addr, bytes);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.first.branch(pc, taken);
        self.second.branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.first.retired().max(self.second.retired())
    }

    #[inline]
    fn is_live(&self) -> bool {
        self.first.is_live() || self.second.is_live()
    }

    #[inline]
    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        // Each side sees the identical event sequence; the sides are
        // independent, so draining them one after the other is observably
        // the same as interleaving per event — and lets each side use its
        // own specialized drain.
        self.first.drain_batch(events);
        self.second.drain_batch(events);
    }
}

#[cfg(test)]
mod tee_tests {
    use super::*;

    #[test]
    fn tee_forwards_to_both() {
        let mut tee = TeeProbe::new(CountingProbe::new(), CountingProbe::new());
        tee.set_kernel(Kernel::Quant);
        tee.alu(3);
        tee.load(0x100, 4);
        tee.branch(0x5000, true);
        assert_eq!(tee.first().retired(), 5);
        assert_eq!(tee.second().retired(), 5);
        let (a, b) = tee.into_parts();
        assert_eq!(a.mix(), b.mix());
    }
}
