//! Branch-trace file I/O — the analogue of the CBP framework's trace
//! files, so captured windows can be stored, shared and replayed without
//! re-running the encoder.
//!
//! Format: magic `VBT1`, a varint record count, then one varint per
//! branch: `(zigzag(pc_delta) << 1) | taken`, with `pc_delta` relative to
//! the previous record's PC. Hot loops re-visit the same sites, so deltas
//! are tiny and the encoding lands near one byte per branch.

use crate::record::BranchRecord;
use std::io::{self, Read, Write};

const MAGIC: [u8; 4] = *b"VBT1";

fn write_varint<W: Write>(mut w: W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            w.write_all(&[byte])?;
            return Ok(());
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(mut r: R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "varint overflow"));
        }
    }
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Writes a branch trace.
///
/// ```
/// use vstress_trace::io::{read_branch_trace, write_branch_trace};
/// use vstress_trace::record::BranchRecord;
///
/// let trace = vec![BranchRecord { pc: 0x5000, taken: true }; 4];
/// let mut bytes = Vec::new();
/// write_branch_trace(&trace, &mut bytes)?;
/// assert_eq!(read_branch_trace(std::io::Cursor::new(&bytes))?, trace);
/// # Ok::<(), std::io::Error>(())
/// ```
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_branch_trace<W: Write>(records: &[BranchRecord], mut out: W) -> io::Result<()> {
    out.write_all(&MAGIC)?;
    write_varint(&mut out, records.len() as u64)?;
    let mut prev_pc = 0u64;
    for r in records {
        let delta = r.pc as i64 - prev_pc as i64;
        write_varint(&mut out, (zigzag(delta) << 1) | r.taken as u64)?;
        prev_pc = r.pc;
    }
    Ok(())
}

/// Reads a branch trace written by [`write_branch_trace`].
///
/// # Errors
///
/// Returns `InvalidData` for a bad magic or corrupt varints, and
/// `UnexpectedEof` for truncation.
pub fn read_branch_trace<R: Read>(mut input: R) -> io::Result<Vec<BranchRecord>> {
    let mut magic = [0u8; 4];
    input.read_exact(&mut magic)?;
    if magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not a VBT1 branch trace"));
    }
    let count = read_varint(&mut input)?;
    if count > 1 << 34 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible record count"));
    }
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    let mut prev_pc = 0u64;
    for _ in 0..count {
        let v = read_varint(&mut input)?;
        let taken = v & 1 == 1;
        let delta = unzigzag(v >> 1);
        let pc = (prev_pc as i64 + delta) as u64;
        records.push(BranchRecord { pc, taken });
        prev_pc = pc;
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_trace(n: usize) -> Vec<BranchRecord> {
        let mut x = 0x1357_9bdfu64;
        (0..n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                BranchRecord {
                    pc: 0x5000_0000_0000 + ((x >> 20) % 64) * 4,
                    taken: (x >> 60).is_multiple_of(3),
                }
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_order_and_values() {
        let trace = synthetic_trace(10_000);
        let mut bytes = Vec::new();
        write_branch_trace(&trace, &mut bytes).unwrap();
        let back = read_branch_trace(std::io::Cursor::new(&bytes)).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn encoding_is_compact_for_hot_sites() {
        let trace = synthetic_trace(10_000);
        let mut bytes = Vec::new();
        write_branch_trace(&trace, &mut bytes).unwrap();
        let per_record = bytes.len() as f64 / trace.len() as f64;
        assert!(per_record < 2.5, "bytes per branch {per_record}");
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut bytes = Vec::new();
        write_branch_trace(&[], &mut bytes).unwrap();
        assert!(read_branch_trace(std::io::Cursor::new(&bytes)).unwrap().is_empty());
    }

    #[test]
    fn garbage_and_truncation_are_errors() {
        assert!(read_branch_trace(std::io::Cursor::new(b"nope".to_vec())).is_err());
        let trace = synthetic_trace(100);
        let mut bytes = Vec::new();
        write_branch_trace(&trace, &mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(read_branch_trace(std::io::Cursor::new(&bytes)).is_err());
    }

    #[test]
    fn varint_edge_values() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX >> 2] {
            let mut b = Vec::new();
            write_varint(&mut b, v).unwrap();
            assert_eq!(read_varint(std::io::Cursor::new(&b)).unwrap(), v);
        }
        assert_eq!(unzigzag(zigzag(-5)), -5);
        assert_eq!(unzigzag(zigzag(i64::MAX >> 1)), i64::MAX >> 1);
    }
}
