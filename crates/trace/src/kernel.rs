//! Hot-kernel identities for profiling and instruction-fetch modelling.

/// The hot kernels of a block-based video encoder.
///
/// Kernels serve two purposes:
///
/// 1. **Profiling attribution** — the gprof-substitute
///    [`crate::profile::HotKernelProfile`] accumulates instruction counts per
///    kernel, reproducing the paper's "find hot functions" step.
/// 2. **Instruction-fetch modelling** — each kernel is assigned a synthetic
///    code region ([`Kernel::code_base`]) and a static code footprint
///    ([`Kernel::code_footprint`]), so the pipeline model can synthesize a
///    realistic instruction-fetch address stream (small hot loops hit in the
///    L1I; hopping between many kernels, as RDO does, misses).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[repr(u8)]
#[non_exhaustive]
pub enum Kernel {
    /// Frame-level setup: padding, plane management, downsampling.
    FrameSetup,
    /// Sum of absolute differences between candidate blocks.
    Sad,
    /// Sum of absolute transformed differences (Hadamard cost).
    Satd,
    /// Full-pel and sub-pel motion-vector search control.
    MotionSearch,
    /// Motion compensation / inter prediction sample generation.
    InterPred,
    /// Intra prediction sample generation.
    IntraPred,
    /// Forward transform (DCT family).
    FwdTransform,
    /// Inverse transform.
    InvTransform,
    /// Quantization.
    Quant,
    /// Dequantization.
    Dequant,
    /// Adaptive binary range encoding/decoding.
    EntropyCoder,
    /// Partition search and mode-decision control (RDO driver).
    ModeDecision,
    /// In-loop deblocking filter.
    Deblock,
    /// Rate control and lambda/Q adaptation.
    RateControl,
    /// Bitstream packaging outside the arithmetic coder.
    Packetize,
}

impl Kernel {
    /// All kernels, in declaration order.
    pub const ALL: [Kernel; 15] = [
        Kernel::FrameSetup,
        Kernel::Sad,
        Kernel::Satd,
        Kernel::MotionSearch,
        Kernel::InterPred,
        Kernel::IntraPred,
        Kernel::FwdTransform,
        Kernel::InvTransform,
        Kernel::Quant,
        Kernel::Dequant,
        Kernel::EntropyCoder,
        Kernel::ModeDecision,
        Kernel::Deblock,
        Kernel::RateControl,
        Kernel::Packetize,
    ];

    /// Stable index of this kernel in [`Kernel::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name used in profiles and reports.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::FrameSetup => "frame_setup",
            Kernel::Sad => "sad",
            Kernel::Satd => "satd",
            Kernel::MotionSearch => "motion_search",
            Kernel::InterPred => "inter_pred",
            Kernel::IntraPred => "intra_pred",
            Kernel::FwdTransform => "fwd_transform",
            Kernel::InvTransform => "inv_transform",
            Kernel::Quant => "quant",
            Kernel::Dequant => "dequant",
            Kernel::EntropyCoder => "entropy_coder",
            Kernel::ModeDecision => "mode_decision",
            Kernel::Deblock => "deblock",
            Kernel::RateControl => "rate_control",
            Kernel::Packetize => "packetize",
        }
    }

    /// Base address of the kernel's synthetic code region.
    ///
    /// Regions are spaced 256 KiB apart in a text-segment-like range so no
    /// two kernels share instruction-cache lines.
    #[inline]
    pub fn code_base(self) -> u64 {
        0x0000_4000_0000_0000 + (self.index() as u64) * (256 << 10)
    }

    /// Static code footprint in bytes.
    ///
    /// Leaf SIMD kernels are tight loops (small footprint, L1I-resident);
    /// control-heavy kernels such as mode decision and the entropy coder
    /// span far more code, which is what makes real encoders' frontends
    /// stall when RDO hops between tools.
    pub fn code_footprint(self) -> u64 {
        match self {
            Kernel::Sad | Kernel::Satd => 2 << 10,
            Kernel::FwdTransform | Kernel::InvTransform => 6 << 10,
            Kernel::Quant | Kernel::Dequant => 3 << 10,
            Kernel::IntraPred => 10 << 10,
            Kernel::InterPred => 12 << 10,
            Kernel::MotionSearch => 16 << 10,
            Kernel::Deblock => 8 << 10,
            Kernel::EntropyCoder => 24 << 10,
            Kernel::ModeDecision => 48 << 10,
            Kernel::RateControl => 8 << 10,
            Kernel::FrameSetup => 6 << 10,
            Kernel::Packetize => 4 << 10,
        }
    }
}

impl std::fmt::Display for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, k) in Kernel::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn code_regions_do_not_overlap() {
        for (i, a) in Kernel::ALL.iter().enumerate() {
            for b in &Kernel::ALL[i + 1..] {
                let (lo, hi) = if a.code_base() < b.code_base() { (a, b) } else { (b, a) };
                assert!(
                    lo.code_base() + lo.code_footprint() <= hi.code_base(),
                    "{lo} overlaps {hi}"
                );
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = Kernel::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Kernel::ALL.len());
    }
}
