//! Synthetic, deterministic data addresses for probe instrumentation.
//!
//! The probes originally reported live host addresses. Page *bases* are
//! handled by the pipeline model's first-touch canonicalization, but the
//! sub-page offset (`addr & 0xfff`) survives it — and that offset depends
//! on allocator state and ASLR, so cache set/line mapping (and therefore
//! every simulated miss count) jittered between runs and thread counts.
//!
//! Every probed buffer now carries an address from this module instead:
//!
//! * Long-lived pixel buffers ([`Plane`](../../vstress_video) data) call
//!   [`alloc`], which hands out globally unique, page-aligned regions
//!   from an atomic counter, with a guard page between regions.
//! * Per-call scratch (transform tmp, predictor buffers, residuals,
//!   coder state) uses the [`fixed`] class addresses — mirroring how a
//!   real encoder reuses the same hot stack slots and scratch arenas on
//!   every invocation.
//!
//! The absolute values never matter (canonicalization remaps pages by
//! first touch). What matters is that addresses are unique per logical
//! buffer, page-aligned, and a pure function of deterministic program
//! state — which makes a characterization a pure function of its spec,
//! regardless of process layout or worker interleaving.

use std::sync::atomic::{AtomicU64, Ordering};

/// Synthetic page size (matches the canonicalizer's 4 KiB pages).
pub const PAGE: u64 = 4096;

/// Start of the dynamically allocated region space.
const ALLOC_BASE: u64 = 0x7800_0000_0000;

static NEXT: AtomicU64 = AtomicU64::new(ALLOC_BASE);

/// Reserves a unique page-aligned synthetic region of at least `bytes`
/// bytes (plus a guard page) and returns its base address.
pub fn alloc(bytes: usize) -> u64 {
    let span = ((bytes as u64).max(1).div_ceil(PAGE) + 1) * PAGE;
    NEXT.fetch_add(span, Ordering::Relaxed)
}

/// Fixed addresses for per-call scratch classes.
///
/// Real encoders run their leaf kernels against the same few hot scratch
/// buffers (stack tiles, thread-local arenas) over and over; one stable
/// address per logical class reproduces exactly that reuse pattern. The
/// classes are spaced 64 MiB apart so no realistic buffer bleeds into a
/// neighbor.
pub mod fixed {
    const BASE: u64 = 0x7000_0000_0000;
    const SPACING: u64 = 1 << 26;

    /// Range encoder/decoder state (low/range/cache registers).
    pub const CODER_STATE: u64 = BASE;
    /// Range encoder output byte stream.
    pub const ENTROPY_OUT: u64 = BASE + SPACING;
    /// Range decoder input byte stream.
    pub const ENTROPY_IN: u64 = BASE + 2 * SPACING;
    /// Transform pass intermediate (`tmp`) tile.
    pub const TRANSFORM_TMP: u64 = BASE + 3 * SPACING;
    /// SATD 4x4 butterfly tile.
    pub const SATD_TILE: u64 = BASE + 4 * SPACING;
    /// Residual / coefficient scratch (i32, row-major).
    pub const RESIDUAL: u64 = BASE + 5 * SPACING;
    /// Predictor pixel scratch (u8, row-major).
    pub const PRED: u64 = BASE + 6 * SPACING;
    /// Quantized-level scratch (i32, row-major).
    pub const QUANT_LEVELS: u64 = BASE + 7 * SPACING;
    /// Motion-search bookkeeping (candidate cost table).
    pub const SEARCH_STATE: u64 = BASE + 8 * SPACING;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_unique_page_aligned_disjoint_regions() {
        let a = alloc(10_000);
        let b = alloc(1);
        let c = alloc(0);
        assert_eq!(a % PAGE, 0);
        assert_eq!(b % PAGE, 0);
        assert_eq!(c % PAGE, 0);
        // Regions are disjoint including a guard page.
        assert!(b >= a + 10_000 + PAGE);
        assert!(c > b);
    }

    #[test]
    fn fixed_classes_are_page_aligned_and_distinct() {
        let all = [
            fixed::CODER_STATE,
            fixed::ENTROPY_OUT,
            fixed::ENTROPY_IN,
            fixed::TRANSFORM_TMP,
            fixed::SATD_TILE,
            fixed::RESIDUAL,
            fixed::PRED,
            fixed::QUANT_LEVELS,
            fixed::SEARCH_STATE,
        ];
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
        for a in all {
            assert_eq!(a % PAGE, 0);
        }
    }
}
