//! Trace record types shared by the simulators.

/// One dynamic conditional-branch execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BranchRecord {
    /// Synthetic program counter of the static branch site (see
    /// [`crate::site_pc!`]).
    pub pc: u64,
    /// Resolved direction.
    pub taken: bool,
}

/// One dynamic data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct MemAccess {
    /// Virtual byte address (real address of the live Rust buffer).
    pub addr: u64,
    /// Access size in bytes.
    pub bytes: u32,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

/// Consumer of dynamic branch outcomes.
///
/// Implemented by branch predictors, trace collectors and the pipeline
/// model. `Vec<BranchRecord>` implements this for easy collection.
pub trait BranchSink {
    /// Observes one executed branch.
    fn observe_branch(&mut self, pc: u64, taken: bool);
}

impl BranchSink for Vec<BranchRecord> {
    #[inline]
    fn observe_branch(&mut self, pc: u64, taken: bool) {
        self.push(BranchRecord { pc, taken });
    }
}

/// Consumer of dynamic memory accesses.
///
/// Implemented by cache simulators and trace collectors; `Vec<MemAccess>`
/// implements this for easy collection.
pub trait MemSink {
    /// Observes one executed load or store.
    fn observe_access(&mut self, access: MemAccess);
}

impl MemSink for Vec<MemAccess> {
    #[inline]
    fn observe_access(&mut self, access: MemAccess) {
        self.push(access);
    }
}

/// A sink that discards everything (useful to instantiate
/// [`crate::SinkProbe`] with only one live side).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl BranchSink for NullSink {
    #[inline]
    fn observe_branch(&mut self, _pc: u64, _taken: bool) {}
}

impl MemSink for NullSink {
    #[inline]
    fn observe_access(&mut self, _access: MemAccess) {}
}

impl<B: BranchSink + ?Sized> BranchSink for &mut B {
    #[inline]
    fn observe_branch(&mut self, pc: u64, taken: bool) {
        (**self).observe_branch(pc, taken);
    }
}

impl<M: MemSink + ?Sized> MemSink for &mut M {
    #[inline]
    fn observe_access(&mut self, access: MemAccess) {
        (**self).observe_access(access);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sinks_collect() {
        let mut branches: Vec<BranchRecord> = Vec::new();
        branches.observe_branch(0x100, true);
        branches.observe_branch(0x104, false);
        assert_eq!(branches.len(), 2);
        assert!(branches[0].taken);

        let mut mems: Vec<MemAccess> = Vec::new();
        mems.observe_access(MemAccess { addr: 64, bytes: 32, is_store: false });
        assert_eq!(mems[0].bytes, 32);
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink;
        s.observe_branch(1, true);
        s.observe_access(MemAccess { addr: 0, bytes: 1, is_store: true });
    }

    #[test]
    fn mut_ref_forwards() {
        let mut v: Vec<BranchRecord> = Vec::new();
        {
            let r = &mut v;
            r.observe_branch(7, true);
        }
        assert_eq!(v.len(), 1);
    }
}
