//! Capture-once / simulate-many event streams.
//!
//! [`crate::event::EventBatch`] records short probe bursts (a leaf memo's
//! worth) as materialized `ProbeEvent`s; that representation costs 16
//! bytes per event, which is untenable for a full encode (tens of
//! millions of events per clip). [`EventStream`] is the full-run form:
//! the identical event sequence packed into chunked byte buffers at
//! ~1–3 bytes per event, with data addresses already canonicalized (see
//! [`AddressCanonicalizer`]), so one *recording* encode — driven against
//! a [`StreamRecorder`] instead of a live simulator — can later feed any
//! number of simulations via [`EventStream::replay`].
//!
//! # Wire format (version [`STREAM_FORMAT_VERSION`])
//!
//! Each chunk is a self-contained byte string. Every event starts with
//! one opcode byte: the low 3 bits select the operation, the high 5 bits
//! carry a small inline payload; larger payloads follow as LEB128
//! varints. Memory addresses and branch PCs are delta-encoded (zigzag
//! varints) against the previous address / PC *within the chunk*; both
//! baselines reset to zero at a chunk boundary, so chunks can be decoded
//! independently and streamed through a bounded [`chunk_channel`] while
//! the producing encode is still running.
//!
//! | op | meaning    | inline arg (5 bits)           | trailing varints |
//! |----|------------|-------------------------------|------------------|
//! | 0  | set_kernel | kernel index in [`Kernel::ALL`] | —              |
//! | 1  | alu        | `n` if < 31, else 31          | `n` (if escaped) |
//! | 2  | avx        | `n` if < 31, else 31          | `n` (if escaped) |
//! | 3  | sse        | `n` if < 31, else 31          | `n` (if escaped) |
//! | 4  | load       | `log2(bytes)+1` or 0          | `bytes` (if 0), zigzag addr delta |
//! | 5  | store      | `log2(bytes)+1` or 0          | `bytes` (if 0), zigzag addr delta |
//! | 6  | branch     | taken flag                    | zigzag PC delta  |
//!
//! # Replay contract
//!
//! Replaying a stream into any [`Probe`] dispatches the recorded events
//! in order with their original arguments, with exactly one observable
//! normalization: a `set_kernel` redeclaring the *current* kernel is
//! dropped at capture time. Every shipped probe treats a redundant
//! kernel declaration as a no-op (it is not a retired instruction and
//! `set_kernel` state is a pure function of its argument), so this is
//! invisible — the equivalence oracles in `tests/stream_equivalence.rs`
//! pin it down to f64 bit level against the fused live path.

use crate::kernel::Kernel;
use crate::probe::{CountingProbe, Probe};
use crate::ProbeEvent;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Bump when the packed chunk encoding changes. Persisted streams embed
/// this version; a mismatch on load is a hard deserialization error (the
/// store quarantines the entry and recaptures).
pub const STREAM_FORMAT_VERSION: u32 = 1;

/// Flush threshold for completed chunks (bytes). Chunks are cut at event
/// boundaries, so actual chunks run slightly past this.
const CHUNK_TARGET: usize = 1 << 20;

const OP_SET_KERNEL: u8 = 0;
const OP_ALU: u8 = 1;
const OP_AVX: u8 = 2;
const OP_SSE: u8 = 3;
const OP_LOAD: u8 = 4;
const OP_STORE: u8 = 5;
const OP_BRANCH: u8 = 6;

/// Inline-arg escape value for compute events.
const COMPUTE_ESCAPE: u64 = 31;

#[inline]
fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads one LEB128 varint, advancing the cursor slice past it. Slice
/// patterns keep the loop free of index bounds checks.
///
/// # Panics
///
/// Panics if the varint runs past the end of the cursor.
#[inline]
fn read_varint(rest: &mut &[u8]) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    while let [b, tail @ ..] = *rest {
        *rest = tail;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
    panic!("truncated varint in packed chunk");
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// `log2(bytes) + 1` for the power-of-two widths the probes emit
/// (1..=64), or 0 to signal an escaped explicit width.
#[inline]
fn width_code(bytes: u32) -> u8 {
    if bytes.is_power_of_two() && bytes <= 64 {
        bytes.trailing_zeros() as u8 + 1
    } else {
        0
    }
}

/// First-touch page canonicalization of data addresses.
///
/// The probes report live host addresses, whose *page bases* depend on
/// allocator state and ASLR — realistic, but it makes cache statistics
/// jitter between processes. Remapping each 4 KiB page to a sequential
/// canonical page in first-touch order preserves all intra-page locality
/// and stride structure while making inter-buffer placement a pure
/// function of the (deterministic) access sequence.
///
/// Canonicalization is **idempotent across instances**: canonical pages
/// are handed out sequentially from a fixed base, so feeding an
/// already-canonical stream through a fresh canonicalizer maps every
/// address to itself. That is what lets [`StreamRecorder`] canonicalize
/// at capture time and the pipeline model skip its own canonicalization
/// on the replay path while remaining bit-identical to the live run.
#[derive(Debug)]
pub struct AddressCanonicalizer {
    /// Open-addressed (page -> canonical page) table; power-of-two size.
    keys: Vec<u64>,
    vals: Vec<u64>,
    len: usize,
    next_page: u64,
    /// One-entry lookup cache: probe streams touch the same page in long
    /// runs, so most lookups short-circuit here. Pure memoization — the
    /// mapping is unaffected.
    last_page: u64,
    last_canonical: u64,
}

const PAGE_BITS: u32 = 12;
const EMPTY: u64 = u64::MAX;

impl Default for AddressCanonicalizer {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressCanonicalizer {
    /// An empty mapping; the first page touched becomes the base page.
    pub fn new() -> Self {
        AddressCanonicalizer {
            keys: vec![EMPTY; 1 << 12],
            vals: vec![0; 1 << 12],
            len: 0,
            // Start canonical data pages well away from the synthetic
            // code regions.
            next_page: 0x0000_2000_0000_0000 >> PAGE_BITS,
            last_page: EMPTY,
            last_canonical: 0,
        }
    }

    /// Maps `addr` to its canonical address, assigning the next
    /// sequential canonical page on first touch.
    #[inline]
    pub fn canon(&mut self, addr: u64) -> u64 {
        let page = addr >> PAGE_BITS;
        if page == self.last_page {
            return (self.last_canonical << PAGE_BITS) | (addr & ((1 << PAGE_BITS) - 1));
        }
        self.canon_slow(addr, page)
    }

    fn canon_slow(&mut self, addr: u64, page: u64) -> u64 {
        let mask = self.keys.len() as u64 - 1;
        let mut i = (page.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40 & mask) as usize;
        loop {
            let k = self.keys[i];
            if k == page {
                self.last_page = page;
                self.last_canonical = self.vals[i];
                return (self.vals[i] << PAGE_BITS) | (addr & ((1 << PAGE_BITS) - 1));
            }
            if k == EMPTY {
                let canonical = self.next_page;
                self.next_page += 1;
                self.keys[i] = page;
                self.vals[i] = canonical;
                self.len += 1;
                if self.len * 2 > self.keys.len() {
                    self.grow();
                }
                self.last_page = page;
                self.last_canonical = canonical;
                return (canonical << PAGE_BITS) | (addr & ((1 << PAGE_BITS) - 1));
            }
            i = (i + 1) & mask as usize;
        }
    }

    fn grow(&mut self) {
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; 0]);
        let old_vals = std::mem::take(&mut self.vals);
        let new_cap = old_keys.len() * 2;
        self.keys = vec![EMPTY; new_cap];
        self.vals = vec![0; new_cap];
        let mask = new_cap as u64 - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = (k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40 & mask) as usize;
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask as usize;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

/// A full-run probe event sequence in packed chunked form.
///
/// Produced by [`StreamRecorder::finish`]; consumed by
/// [`EventStream::replay`] (all chunks, in order, into one probe) or
/// chunk-by-chunk via [`decode_chunk`]. Chunks are shared (`Arc`) so a
/// stream can be fanned out to concurrent consumers without copying.
#[derive(Clone, PartialEq, Eq)]
pub struct EventStream {
    chunks: Vec<Arc<[u8]>>,
    events: u64,
}

impl std::fmt::Debug for EventStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventStream")
            .field("events", &self.events)
            .field("chunks", &self.chunks.len())
            .field("packed_bytes", &self.packed_bytes())
            .finish()
    }
}

impl EventStream {
    /// Number of packed events (after redundant-`set_kernel` dropping).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The packed chunks in stream order.
    pub fn chunks(&self) -> &[Arc<[u8]>] {
        &self.chunks
    }

    /// Total packed size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.chunks.iter().map(|c| c.len()).sum()
    }

    /// Re-emits every recorded event, in order, into `probe`.
    pub fn replay<P: Probe>(&self, probe: &mut P) {
        for chunk in &self.chunks {
            decode_chunk(chunk, probe);
        }
    }
}

/// Decodes one packed chunk, dispatching each event into `probe`.
///
/// Address and PC deltas are chunk-local, so any chunk of a stream can
/// be decoded on its own; replaying a whole stream is [`decode_chunk`]
/// over its chunks in order.
///
/// # Panics
///
/// Panics on a malformed chunk (truncated varint, opcode past the
/// event table). Persisted chunks are checksummed by the store, so this
/// only fires on in-process memory corruption or a format bug.
pub fn decode_chunk<P: Probe>(bytes: &[u8], probe: &mut P) {
    let mut rest = bytes;
    let mut prev_addr = 0u64;
    let mut prev_pc = 0u64;
    // A slice-pattern cursor: each step peels the opcode byte and varint
    // payloads off the front, so the loop carries no index arithmetic or
    // per-byte bounds checks.
    while let [b, tail @ ..] = rest {
        let b = *b;
        rest = tail;
        let arg = u64::from(b >> 3);
        match b & 0x7 {
            OP_ALU => {
                let n = if arg == COMPUTE_ESCAPE { read_varint(&mut rest) } else { arg };
                probe.alu(n);
            }
            OP_LOAD => {
                let width =
                    if arg == 0 { read_varint(&mut rest) as u32 } else { 1u32 << (arg - 1) };
                let addr = (prev_addr as i64).wrapping_add(unzigzag(read_varint(&mut rest))) as u64;
                prev_addr = addr;
                probe.load(addr, width);
            }
            OP_STORE => {
                let width =
                    if arg == 0 { read_varint(&mut rest) as u32 } else { 1u32 << (arg - 1) };
                let addr = (prev_addr as i64).wrapping_add(unzigzag(read_varint(&mut rest))) as u64;
                prev_addr = addr;
                probe.store(addr, width);
            }
            OP_BRANCH => {
                let pc = (prev_pc as i64).wrapping_add(unzigzag(read_varint(&mut rest))) as u64;
                prev_pc = pc;
                probe.branch(pc, arg & 1 == 1);
            }
            OP_AVX => {
                let n = if arg == COMPUTE_ESCAPE { read_varint(&mut rest) } else { arg };
                probe.avx(n);
            }
            OP_SSE => {
                let n = if arg == COMPUTE_ESCAPE { read_varint(&mut rest) } else { arg };
                probe.sse(n);
            }
            OP_SET_KERNEL => probe.set_kernel(Kernel::ALL[arg as usize]),
            _ => unreachable!("3-bit opcode"),
        }
    }
}

/// A live probe that packs the full event sequence into an
/// [`EventStream`] while keeping the standard counting summary.
///
/// The recorder embeds a [`CountingProbe`] fed the *unmodified* event
/// sequence — the instruction mix and hot-kernel profile it yields are
/// exactly what a plain counting encode would have produced — and in
/// parallel packs the canonicalized sequence into chunks. It reports
/// [`Probe::is_live`] so encoders take their fully-instrumented paths.
///
/// With a sink attached ([`StreamRecorder::with_sink`]), each completed
/// chunk is also pushed into a bounded [`chunk_channel`], letting a
/// consumer thread simulate the head of the stream while the tail is
/// still being encoded.
#[derive(Debug)]
pub struct StreamRecorder {
    counting: CountingProbe,
    canon: AddressCanonicalizer,
    chunk: Vec<u8>,
    chunks: Vec<Arc<[u8]>>,
    chunk_target: usize,
    prev_addr: u64,
    prev_pc: u64,
    last_kernel: Option<Kernel>,
    events: u64,
    sink: Option<ChunkTx>,
}

impl Default for StreamRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamRecorder {
    /// A recorder accumulating chunks in memory.
    pub fn new() -> Self {
        StreamRecorder {
            counting: CountingProbe::new(),
            canon: AddressCanonicalizer::new(),
            chunk: Vec::with_capacity(CHUNK_TARGET + 64),
            chunks: Vec::new(),
            chunk_target: CHUNK_TARGET,
            prev_addr: 0,
            prev_pc: 0,
            last_kernel: None,
            events: 0,
            sink: None,
        }
    }

    /// A recorder that additionally streams each completed chunk into
    /// `tx` (the producer half of a [`chunk_channel`]). The final
    /// partial chunk is sent by [`StreamRecorder::finish`], which also
    /// closes the channel.
    pub fn with_sink(tx: ChunkTx) -> Self {
        let mut r = Self::new();
        r.sink = Some(tx);
        r
    }

    /// Overrides the chunk flush threshold (bytes). Testing and tuning
    /// knob; the default is 1 MiB.
    pub fn with_chunk_target(mut self, bytes: usize) -> Self {
        self.chunk_target = bytes.max(1);
        self
    }

    /// Finalizes the stream: flushes the partial chunk, closes the sink
    /// (if any) and returns the packed stream plus the counting summary
    /// of the full run.
    pub fn finish(mut self) -> (EventStream, CountingProbe) {
        if !self.chunk.is_empty() {
            self.flush_chunk();
        }
        drop(self.sink.take());
        (EventStream { chunks: self.chunks, events: self.events }, self.counting)
    }

    fn flush_chunk(&mut self) {
        let filled = std::mem::replace(
            &mut self.chunk,
            Vec::with_capacity(self.chunk_target.min(CHUNK_TARGET) + 64),
        );
        let chunk: Arc<[u8]> = filled.into();
        if let Some(tx) = &self.sink {
            tx.send(Arc::clone(&chunk));
        }
        self.chunks.push(chunk);
        self.prev_addr = 0;
        self.prev_pc = 0;
    }

    #[inline]
    fn maybe_flush(&mut self) {
        if self.chunk.len() >= self.chunk_target {
            self.flush_chunk();
        }
    }

    #[inline]
    fn rec_compute(&mut self, op: u8, n: u64) {
        self.events += 1;
        if n < COMPUTE_ESCAPE {
            self.chunk.push(op | (n as u8) << 3);
        } else {
            self.chunk.push(op | (COMPUTE_ESCAPE as u8) << 3);
            push_varint(&mut self.chunk, n);
        }
        self.maybe_flush();
    }

    #[inline]
    fn rec_mem(&mut self, op: u8, addr: u64, bytes: u32) {
        self.events += 1;
        let addr = self.canon.canon(addr);
        let code = width_code(bytes);
        self.chunk.push(op | code << 3);
        if code == 0 {
            push_varint(&mut self.chunk, u64::from(bytes));
        }
        push_varint(&mut self.chunk, zigzag((addr as i64).wrapping_sub(self.prev_addr as i64)));
        self.prev_addr = addr;
        self.maybe_flush();
    }

    #[inline]
    fn rec_branch(&mut self, pc: u64, taken: bool) {
        self.events += 1;
        self.chunk.push(OP_BRANCH | (taken as u8) << 3);
        push_varint(&mut self.chunk, zigzag((pc as i64).wrapping_sub(self.prev_pc as i64)));
        self.prev_pc = pc;
        self.maybe_flush();
    }

    #[inline]
    fn rec_set_kernel(&mut self, k: Kernel) {
        if self.last_kernel == Some(k) {
            return;
        }
        self.last_kernel = Some(k);
        self.events += 1;
        self.chunk.push(OP_SET_KERNEL | (k.index() as u8) << 3);
        self.maybe_flush();
    }
}

impl Probe for StreamRecorder {
    #[inline]
    fn set_kernel(&mut self, k: Kernel) {
        self.counting.set_kernel(k);
        self.rec_set_kernel(k);
    }

    #[inline]
    fn alu(&mut self, n: u64) {
        self.counting.alu(n);
        self.rec_compute(OP_ALU, n);
    }

    #[inline]
    fn avx(&mut self, n: u64) {
        self.counting.avx(n);
        self.rec_compute(OP_AVX, n);
    }

    #[inline]
    fn sse(&mut self, n: u64) {
        self.counting.sse(n);
        self.rec_compute(OP_SSE, n);
    }

    #[inline]
    fn load(&mut self, addr: u64, bytes: u32) {
        self.counting.load(addr, bytes);
        self.rec_mem(OP_LOAD, addr, bytes);
    }

    #[inline]
    fn store(&mut self, addr: u64, bytes: u32) {
        self.counting.store(addr, bytes);
        self.rec_mem(OP_STORE, addr, bytes);
    }

    #[inline]
    fn branch(&mut self, pc: u64, taken: bool) {
        self.counting.branch(pc, taken);
        self.rec_branch(pc, taken);
    }

    #[inline]
    fn retired(&self) -> u64 {
        self.counting.retired()
    }

    fn drain_batch(&mut self, events: &[ProbeEvent]) {
        self.counting.drain_batch(events);
        for &e in events {
            match e {
                ProbeEvent::SetKernel(k) => self.rec_set_kernel(k),
                ProbeEvent::Alu(n) => self.rec_compute(OP_ALU, n),
                ProbeEvent::Avx(n) => self.rec_compute(OP_AVX, n),
                ProbeEvent::Sse(n) => self.rec_compute(OP_SSE, n),
                ProbeEvent::Load { addr, bytes } => self.rec_mem(OP_LOAD, addr, bytes),
                ProbeEvent::Store { addr, bytes } => self.rec_mem(OP_STORE, addr, bytes),
                ProbeEvent::Branch { pc, taken } => self.rec_branch(pc, taken),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded chunk channel (capture/simulate pipelining).
// ---------------------------------------------------------------------------

struct ChannelState {
    queue: VecDeque<Arc<[u8]>>,
    tx_closed: bool,
    rx_closed: bool,
}

struct ChannelInner {
    state: Mutex<ChannelState>,
    capacity: usize,
    /// Signalled when the queue drains below capacity (or rx hangs up).
    space: Condvar,
    /// Signalled when a chunk arrives (or tx hangs up).
    ready: Condvar,
}

impl ChannelInner {
    fn lock(&self) -> std::sync::MutexGuard<'_, ChannelState> {
        // A panicked peer cannot leave the queue logically torn: every
        // critical section is a push/pop plus flag writes.
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Creates a bounded producer/consumer channel for stream chunks.
///
/// The producer side blocks once `capacity` chunks are queued, bounding
/// the memory between a recording encode and the simulation draining it;
/// the consumer blocks while the queue is empty. Dropping either side
/// unblocks the other (the producer's sends then discard silently — the
/// recorder still accumulates the full stream in memory).
pub fn chunk_channel(capacity: usize) -> (ChunkTx, ChunkRx) {
    let inner = Arc::new(ChannelInner {
        state: Mutex::new(ChannelState {
            queue: VecDeque::new(),
            tx_closed: false,
            rx_closed: false,
        }),
        capacity: capacity.max(1),
        space: Condvar::new(),
        ready: Condvar::new(),
    });
    (ChunkTx { inner: Arc::clone(&inner) }, ChunkRx { inner })
}

/// Producer half of a [`chunk_channel`].
pub struct ChunkTx {
    inner: Arc<ChannelInner>,
}

impl std::fmt::Debug for ChunkTx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("ChunkTx")
            .field("queued", &state.queue.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

/// Consumer half of a [`chunk_channel`].
pub struct ChunkRx {
    inner: Arc<ChannelInner>,
}

impl std::fmt::Debug for ChunkRx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.lock();
        f.debug_struct("ChunkRx")
            .field("queued", &state.queue.len())
            .field("capacity", &self.inner.capacity)
            .finish()
    }
}

impl ChunkTx {
    /// Enqueues `chunk`, blocking while the channel is full. If the
    /// consumer is gone the chunk is dropped.
    pub fn send(&self, chunk: Arc<[u8]>) {
        let mut state = self.inner.lock();
        while state.queue.len() >= self.inner.capacity && !state.rx_closed {
            state = self.inner.space.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if state.rx_closed {
            return;
        }
        state.queue.push_back(chunk);
        drop(state);
        self.inner.ready.notify_one();
    }
}

impl Drop for ChunkTx {
    fn drop(&mut self) {
        self.inner.lock().tx_closed = true;
        self.inner.ready.notify_all();
    }
}

impl ChunkRx {
    /// Dequeues the next chunk, blocking while the channel is empty.
    /// Returns `None` once the producer has closed and the queue is
    /// drained.
    pub fn recv(&self) -> Option<Arc<[u8]>> {
        let mut state = self.inner.lock();
        loop {
            if let Some(chunk) = state.queue.pop_front() {
                drop(state);
                self.inner.space.notify_one();
                return Some(chunk);
            }
            if state.tx_closed {
                return None;
            }
            state = self.inner.ready.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
}

impl Drop for ChunkRx {
    fn drop(&mut self) {
        self.inner.lock().rx_closed = true;
        self.inner.space.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Persistence (serde shim wire format).
// ---------------------------------------------------------------------------

/// Hex-encodes bytes for the serde shim's length-prefixed string token —
/// the shim has no raw-bytes path, so binary payloads (stream chunks,
/// captured bitstreams) travel as lowercase hex.
pub fn hex_encode(bytes: &[u8]) -> String {
    const HEX: &[u8; 16] = b"0123456789abcdef";
    let mut out = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(HEX[(b >> 4) as usize] as char);
        out.push(HEX[(b & 0xf) as usize] as char);
    }
    out
}

/// Inverse of [`hex_encode`]; rejects odd lengths and non-hex digits.
///
/// # Errors
///
/// Returns a [`serde::Error`] describing the malformed input.
pub fn hex_decode(text: &str) -> Result<Vec<u8>, serde::Error> {
    let raw = text.as_bytes();
    if !raw.len().is_multiple_of(2) {
        return Err(serde::Error::new("odd-length hex chunk"));
    }
    let nibble = |c: u8| -> Result<u8, serde::Error> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(serde::Error::new("bad hex digit in chunk")),
        }
    };
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push(nibble(pair[0])? << 4 | nibble(pair[1])?);
    }
    Ok(out)
}

impl serde::Serialize for EventStream {
    fn serialize(&self, s: &mut serde::Serializer) {
        s.write_u64(u64::from(STREAM_FORMAT_VERSION));
        s.write_u64(self.events);
        s.write_seq_len(self.chunks.len());
        for chunk in &self.chunks {
            // The shim's string token is length-prefixed UTF-8, so packed
            // bytes travel as hex rather than raw.
            s.write_str(&hex_encode(chunk));
        }
    }
}

impl<'de> serde::Deserialize<'de> for EventStream {
    fn deserialize(d: &mut serde::Deserializer<'de>) -> Result<Self, serde::Error> {
        let version = d.read_u64()?;
        if version != u64::from(STREAM_FORMAT_VERSION) {
            return Err(serde::Error::new(format!(
                "event stream format v{version} (current is v{STREAM_FORMAT_VERSION})"
            )));
        }
        let events = d.read_u64()?;
        let n = d.read_seq_len()?;
        let mut chunks = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            chunks.push(hex_decode(d.read_str()?)?.into());
        }
        Ok(EventStream { chunks, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NullProbe;
    use crate::RecordingProbe;

    /// A deterministic pseudo-random event mix resembling an encode
    /// stream: kernel phases with redundant redeclarations, page-local
    /// loads/stores with occasional far jumps, biased branches, mostly
    /// small compute bursts.
    fn drive<P: Probe>(p: &mut P, n: usize) {
        let mut x = 0x243f_6a88_85a3_08d3u64;
        let mut step = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for i in 0..n {
            if i % 97 == 0 {
                p.set_kernel(Kernel::ALL[step() as usize % Kernel::ALL.len()]);
                // Redundant redeclaration: must be dropped by capture.
                if i % 194 == 0 {
                    p.set_kernel(Kernel::ALL[step() as usize % Kernel::ALL.len()]);
                }
            }
            match step() % 10 {
                0..=2 => p.alu(1 + step() % 40),
                3 => p.avx(1 + step() % 6),
                4 => p.sse(1 + step() % 4),
                5..=6 => p.load(0x7f00_1000_0000 + (step() % (1 << 22)), 1 << (step() % 7)),
                7 => p.store(0x7f00_2000_0000 + (step() % (1 << 20)), 13),
                _ => p.branch(0x5000_0000_0000 + (step() % 64) * 4, step() % 3 == 0),
            }
        }
    }

    fn capture(n: usize, chunk_target: usize) -> (EventStream, CountingProbe) {
        let mut rec = StreamRecorder::new().with_chunk_target(chunk_target);
        drive(&mut rec, n);
        rec.finish()
    }

    /// Canonicalizes an `EventBatch`'s addresses the same way the
    /// recorder does, for comparisons against replayed streams.
    fn canonical_events(events: &[ProbeEvent]) -> Vec<ProbeEvent> {
        let mut canon = AddressCanonicalizer::new();
        events
            .iter()
            .map(|&e| match e {
                ProbeEvent::Load { addr, bytes } => {
                    ProbeEvent::Load { addr: canon.canon(addr), bytes }
                }
                ProbeEvent::Store { addr, bytes } => {
                    ProbeEvent::Store { addr: canon.canon(addr), bytes }
                }
                other => other,
            })
            .collect()
    }

    /// Drops `SetKernel` events that redeclare the current kernel —
    /// the one normalization capture applies.
    fn dedup_kernels(events: &[ProbeEvent]) -> Vec<ProbeEvent> {
        let mut last = None;
        events
            .iter()
            .filter(|e| match e {
                ProbeEvent::SetKernel(k) => {
                    if last == Some(*k) {
                        false
                    } else {
                        last = Some(*k);
                        true
                    }
                }
                _ => true,
            })
            .copied()
            .collect()
    }

    #[test]
    fn replay_reproduces_the_canonical_deduped_sequence() {
        let mut null = NullProbe;
        let mut reference = RecordingProbe::new(&mut null);
        drive(&mut reference, 50_000);
        let expect = dedup_kernels(&canonical_events(reference.into_batch().events()));

        let (stream, _) = capture(50_000, 4096);
        assert!(stream.chunks().len() > 1, "multi-chunk coverage");
        assert_eq!(stream.events(), expect.len() as u64);

        let mut null = NullProbe;
        let mut replayed = RecordingProbe::new(&mut null);
        stream.replay(&mut replayed);
        assert_eq!(replayed.into_batch().events(), expect.as_slice());
    }

    #[test]
    fn embedded_counting_matches_a_plain_counting_run() {
        let mut reference = CountingProbe::new();
        drive(&mut reference, 30_000);
        let (_, counting) = capture(30_000, 1 << 20);
        assert_eq!(counting, reference);
    }

    #[test]
    fn replayed_counting_matches_despite_kernel_dedup() {
        // Replaying the deduped stream into a fresh CountingProbe must
        // reproduce mix and profile exactly: attribution only depends on
        // the *current* kernel, not on how often it is redeclared.
        let mut reference = CountingProbe::new();
        drive(&mut reference, 30_000);
        let (stream, _) = capture(30_000, 1 << 14);
        let mut replayed = CountingProbe::new();
        stream.replay(&mut replayed);
        assert_eq!(replayed, reference);
    }

    #[test]
    fn chunk_boundaries_do_not_change_the_decoded_sequence() {
        let (one, _) = capture(40_000, usize::MAX >> 1);
        let (many, _) = capture(40_000, 512);
        assert_eq!(one.chunks().len(), 1);
        assert!(many.chunks().len() > 10);
        assert_eq!(one.events(), many.events());

        let mut null = NullProbe;
        let mut a = RecordingProbe::new(&mut null);
        one.replay(&mut a);
        let a = a.into_batch();
        let mut null = NullProbe;
        let mut b = RecordingProbe::new(&mut null);
        many.replay(&mut b);
        assert_eq!(a, b.into_batch());
    }

    #[test]
    fn drain_batch_capture_equals_per_event_capture() {
        let mut null = NullProbe;
        let mut rec = RecordingProbe::new(&mut null);
        drive(&mut rec, 20_000);
        let batch = rec.into_batch();

        let mut per_event = StreamRecorder::new().with_chunk_target(8192);
        drive(&mut per_event, 20_000);
        let (a, ca) = per_event.finish();

        let mut batched = StreamRecorder::new().with_chunk_target(8192);
        batched.drain_batch(batch.events());
        let (b, cb) = batched.finish();
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn canonical_streams_are_canon_idempotent() {
        // The recorder emits canonical addresses; feeding them through a
        // fresh canonicalizer must be the identity. This is the property
        // that lets replay consumers skip canonicalization.
        let (stream, _) = capture(20_000, 1 << 20);
        struct Check {
            canon: AddressCanonicalizer,
        }
        impl Probe for Check {
            fn set_kernel(&mut self, _k: Kernel) {}
            fn alu(&mut self, _n: u64) {}
            fn avx(&mut self, _n: u64) {}
            fn sse(&mut self, _n: u64) {}
            fn load(&mut self, addr: u64, _bytes: u32) {
                assert_eq!(self.canon.canon(addr), addr);
            }
            fn store(&mut self, addr: u64, _bytes: u32) {
                assert_eq!(self.canon.canon(addr), addr);
            }
            fn branch(&mut self, _pc: u64, _taken: bool) {}
        }
        impl std::fmt::Debug for Check {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str("Check")
            }
        }
        let mut check = Check { canon: AddressCanonicalizer::new() };
        stream.replay(&mut check);
    }

    #[test]
    fn serde_roundtrip_preserves_the_stream() {
        let (stream, _) = capture(25_000, 2048);
        let text = serde::to_string(&stream);
        let back: EventStream = serde::from_str(&text).unwrap();
        assert_eq!(back, stream);
    }

    #[test]
    fn serde_rejects_future_format_versions() {
        let (stream, _) = capture(100, 1 << 20);
        let text = serde::to_string(&stream);
        // The first token is the format version.
        let bumped = text.replacen(
            &format!("u{STREAM_FORMAT_VERSION} "),
            &format!("u{} ", STREAM_FORMAT_VERSION + 1),
            1,
        );
        assert!(serde::from_str::<EventStream>(&bumped).is_err());
    }

    #[test]
    fn wide_payloads_escape_correctly() {
        let mut rec = StreamRecorder::new();
        rec.set_kernel(Kernel::Packetize);
        rec.alu(1_000_000);
        rec.avx(u64::MAX >> 3);
        rec.load(0x1234, 48); // non-power-of-two width
        rec.store(u64::MAX >> 8, 3);
        rec.branch(0, false);
        rec.branch(u64::MAX >> 4, true);
        let (stream, _) = rec.finish();

        let mut null = NullProbe;
        let mut out = RecordingProbe::new(&mut null);
        stream.replay(&mut out);
        let events = out.into_batch();
        assert_eq!(events.events()[1], ProbeEvent::Alu(1_000_000));
        assert_eq!(events.events()[2], ProbeEvent::Avx(u64::MAX >> 3));
        match events.events()[3] {
            ProbeEvent::Load { bytes, .. } => assert_eq!(bytes, 48),
            e => panic!("expected load, got {e:?}"),
        }
    }

    #[test]
    fn chunk_channel_streams_the_capture() {
        let (tx, rx) = chunk_channel(2);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::new();
            let mut replayed = CountingProbe::new();
            while let Some(chunk) = rx.recv() {
                decode_chunk(&chunk, &mut replayed);
                seen.push(chunk);
            }
            (seen, replayed)
        });
        let mut rec = StreamRecorder::with_sink(tx).with_chunk_target(1024);
        drive(&mut rec, 30_000);
        let (stream, counting) = rec.finish();
        let (seen, replayed) = consumer.join().unwrap();
        assert_eq!(seen.len(), stream.chunks().len());
        assert!(seen.iter().zip(stream.chunks()).all(|(a, b)| a == b));
        assert_eq!(replayed, counting, "streamed replay equals the full capture");
    }

    #[test]
    fn dropped_receiver_does_not_wedge_the_recorder() {
        let (tx, rx) = chunk_channel(1);
        drop(rx);
        let mut rec = StreamRecorder::with_sink(tx).with_chunk_target(256);
        drive(&mut rec, 10_000);
        let (stream, _) = rec.finish();
        assert!(stream.events() > 0, "capture survives a vanished consumer");
    }

    #[test]
    fn empty_stream_roundtrips() {
        let (stream, counting) = StreamRecorder::new().finish();
        assert_eq!(stream.events(), 0);
        assert!(stream.chunks().is_empty());
        assert_eq!(counting.retired(), 0);
        let back: EventStream = serde::from_str(&serde::to_string(&stream)).unwrap();
        assert_eq!(back, stream);
    }

    mod canon {
        use super::*;

        #[test]
        fn preserves_page_offsets() {
            let mut c = AddressCanonicalizer::new();
            let a = c.canon(0x7fff_1234_5678);
            assert_eq!(a & 0xfff, 0x678);
            // Same page, different offset: same canonical page.
            let b = c.canon(0x7fff_1234_5000);
            assert_eq!(a >> 12, b >> 12);
        }

        #[test]
        fn first_touch_order_defines_layout() {
            let mut c1 = AddressCanonicalizer::new();
            let mut c2 = AddressCanonicalizer::new();
            // Two different host layouts, same access sequence positions.
            let seq1 = [0x111_0000u64, 0x999_0000, 0x111_0040];
            let seq2 = [0xabc_0000u64, 0x222_0000, 0xabc_0040];
            let m1: Vec<u64> = seq1.iter().map(|&a| c1.canon(a)).collect();
            let m2: Vec<u64> = seq2.iter().map(|&a| c2.canon(a)).collect();
            assert_eq!(m1, m2, "canonical stream depends only on the sequence");
        }

        #[test]
        fn table_grows_past_initial_capacity() {
            let mut c = AddressCanonicalizer::new();
            let mut seen = std::collections::HashSet::new();
            for i in 0..20_000u64 {
                let a = c.canon(i << 12 | 7);
                assert!(seen.insert(a >> 12), "canonical pages must be unique");
            }
        }

        #[test]
        fn canonicalization_is_idempotent() {
            let mut first = AddressCanonicalizer::new();
            let mut second = AddressCanonicalizer::new();
            let mut x = 1u64;
            for _ in 0..50_000 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let canonical = first.canon(x >> 8);
                assert_eq!(second.canon(canonical), canonical);
            }
        }
    }
}
