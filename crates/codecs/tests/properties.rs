//! Property-based tests of the coding substrate's invariants.

use proptest::prelude::*;
use vstress_codecs::bitstream::FrameContexts;
use vstress_codecs::entropy::{decode_uvlc, encode_uvlc, Context, RangeDecoder, RangeEncoder};
use vstress_codecs::frame_coder::{decode_tu, encode_tu, zigzag, CoderState};
use vstress_codecs::quant::Quantizer;
use vstress_codecs::transform;
use vstress_trace::NullProbe;

proptest! {
    /// The range coder round-trips any bin sequence under any context mix.
    #[test]
    fn range_coder_roundtrips(bins in prop::collection::vec((0u8..4, any::<bool>()), 1..2000)) {
        let mut enc = RangeEncoder::new();
        let mut ctxs: Vec<Context> = (0..4).map(Context::new).collect();
        let mut p = NullProbe;
        for &(c, bin) in &bins {
            enc.encode(&mut p, &mut ctxs[c as usize], bin);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctxs: Vec<Context> = (0..4).map(Context::new).collect();
        for (i, &(c, bin)) in bins.iter().enumerate() {
            prop_assert_eq!(dec.decode(&mut p, &mut ctxs[c as usize]), bin, "bin {}", i);
        }
    }

    /// Bypass literals round-trip any value at any width.
    #[test]
    fn literals_roundtrip(values in prop::collection::vec((any::<u32>(), 1u32..=32), 1..200)) {
        let mut enc = RangeEncoder::new();
        let mut p = NullProbe;
        for &(v, n) in &values {
            let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
            enc.encode_literal(&mut p, masked, n);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        for &(v, n) in &values {
            let masked = if n == 32 { v } else { v & ((1 << n) - 1) };
            prop_assert_eq!(dec.decode_literal(&mut p, n), masked);
        }
    }

    /// UVLC round-trips arbitrary u32 values.
    #[test]
    fn uvlc_roundtrips(values in prop::collection::vec(any::<u32>(), 1..100)) {
        let mut enc = RangeEncoder::new();
        let mut ctxs = [Context::new(1), Context::new(2), Context::new(3)];
        let mut p = NullProbe;
        for &v in &values {
            encode_uvlc(&mut enc, &mut p, &mut ctxs, v);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctxs = [Context::new(1), Context::new(2), Context::new(3)];
        for &v in &values {
            prop_assert_eq!(decode_uvlc(&mut dec, &mut p, &mut ctxs), v);
        }
    }

    /// Transform-unit coefficient coding round-trips any level pattern at
    /// every coding TU size.
    #[test]
    fn tu_coding_roundtrips(
        size_idx in 0usize..3,
        seed in any::<u64>(),
        density in 0u32..100,
    ) {
        let n = [4usize, 8, 16][size_idx];
        let mut x = seed | 1;
        let mut levels = vec![0i32; n * n];
        for l in levels.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if (x >> 32) % 100 < density as u64 {
                *l = ((x >> 16) % 63) as i32 - 31;
            }
        }
        let mut enc = RangeEncoder::new();
        let mut ctxs = FrameContexts::new();
        let mut p = NullProbe;
        encode_tu(&mut enc, &mut p, &mut ctxs, n, &levels, true);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctxs = FrameContexts::new();
        let mut out = vec![0i32; n * n];
        decode_tu(&mut dec, &mut p, &mut ctxs, n, &mut out, true);
        prop_assert_eq!(out, levels);
    }

    /// Zigzag is a permutation for every size it will ever be asked for.
    #[test]
    fn zigzag_is_permutation(n in prop::sample::select(vec![4usize, 8, 16, 32])) {
        let mut z = zigzag(n).into_owned();
        z.sort_unstable();
        prop_assert!(z.iter().enumerate().all(|(i, &v)| i == v));
    }

    /// Forward/inverse DCT round-trip error is bounded by rounding for any
    /// pixel-range residual.
    #[test]
    fn transform_roundtrip_error_bounded(
        n in prop::sample::select(vec![4usize, 8, 16, 32]),
        seed in any::<u64>(),
    ) {
        let mut x = seed | 1;
        let src: Vec<i32> = (0..n * n)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                ((x >> 33) % 511) as i32 - 255
            })
            .collect();
        let mut coeffs = vec![0i32; n * n];
        let mut recon = vec![0i32; n * n];
        transform::forward(&mut NullProbe, n, &src, &mut coeffs);
        transform::inverse(&mut NullProbe, n, &coeffs, &mut recon);
        for (a, b) in src.iter().zip(&recon) {
            prop_assert!((a - b).abs() <= 2, "error {} at size {}", (a - b).abs(), n);
        }
    }

    /// Quantize/dequantize error never exceeds one quantization step, and
    /// quantization is odd-symmetric.
    #[test]
    fn quantizer_error_bounded(qindex in 4u8..=96, coeff in -100_000i32..100_000) {
        let q = Quantizer::from_qindex(qindex);
        let rec = q.dequantize(q.quantize(coeff));
        prop_assert!((rec - coeff).abs() <= q.qstep(), "err {} step {}", rec - coeff, q.qstep());
        prop_assert_eq!(q.quantize(-coeff), -q.quantize(coeff));
    }

    /// Coarser quantizers never produce more nonzero levels on the same
    /// coefficients.
    #[test]
    fn quantizer_monotone_in_coarseness(seed in any::<u64>()) {
        let mut x = seed | 1;
        let coeffs: Vec<i32> = (0..64)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) % 2001) as i32 - 1000
            })
            .collect();
        let mut out = vec![0i32; 64];
        let mut prev_nonzero = usize::MAX;
        for qindex in [8u8, 32, 64, 96] {
            let q = Quantizer::from_qindex(qindex);
            let nz = q.quantize_block(&mut NullProbe, &coeffs, &mut out);
            prop_assert!(nz <= prev_nonzero, "qindex {}: {} > {}", qindex, nz, prev_nonzero);
            prev_nonzero = nz;
        }
    }
}

#[test]
fn coder_state_default_matches_new() {
    // Both sides build identical initial state through either entry point.
    let a = CoderState::new();
    let b = CoderState::default();
    assert_eq!(a.last_mv, b.last_mv);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The decoder never panics on arbitrary input bytes — it either
    /// errors cleanly or produces (garbage) frames.
    #[test]
    fn decoder_is_panic_free_on_garbage(data in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = vstress_codecs::Decoder::new().decode(&data, &mut NullProbe);
    }

    /// The decoder never panics on a valid header followed by corrupted
    /// payload bytes (the adversarial case: parsing machinery runs).
    #[test]
    fn decoder_survives_payload_corruption(
        seed in any::<u64>(),
        flip_at in 0usize..10_000,
        flip_mask in 1u8..=255,
    ) {
        use vstress_codecs::{CodecId, Encoder, EncoderParams};
        use vstress_video::synth::{SceneClass, SynthParams};
        // One small real bitstream, corrupted at an arbitrary payload byte.
        let clip = SynthParams {
            width: 32,
            height: 32,
            frame_count: 2,
            fps: 30.0,
            entropy: 3.0,
            class: SceneClass::Natural,
            seed,
        }
        .synthesize("fuzz")
        .unwrap();
        let enc = Encoder::new(CodecId::LibvpxVp9, EncoderParams::new(40, 6)).unwrap();
        let out = enc.encode(&clip, &mut NullProbe).unwrap();
        let mut bytes = out.bitstream;
        let header = vstress_codecs::bitstream::SequenceHeader::BYTES;
        if bytes.len() > header {
            let idx = header + flip_at % (bytes.len() - header);
            bytes[idx] ^= flip_mask;
        }
        let _ = vstress_codecs::Decoder::new().decode(&bytes, &mut NullProbe);
    }
}
