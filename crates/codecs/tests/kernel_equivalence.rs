//! Equivalence proofs for the optimized pixel kernels and the
//! partition-search memo.
//!
//! The PR 3 hot-path rewrite (interior/edge split in the kernels, the
//! leaf memo in the partition search) is only admissible if it is
//! invisible to the characterization models. Two oracles pin that down:
//!
//! * **Naive references.** Each `ref_*` function below is the pre-rewrite
//!   scalar implementation (per-pixel `get_clamped`, no interior path),
//!   emitting the same probe calls. The property tests drive both over
//!   random planes, rects (odd widths, 1-pixel blocks) and MVs (including
//!   border-straddling ones) and require the numeric result and the
//!   recorded probe event sequence to match.
//! * **Memo on/off.** `plan_superblock` with the leaf memo enabled must
//!   produce the identical plan *and* the identical recorded event stream
//!   as a full recomputation — byte-for-byte, including branch PCs,
//!   because both sides run the same library code.
//!
//! Branch-PC caveat for the naive references: `site_pc!()` hashes the
//! source location, so a reference reimplementation in this file cannot
//! reproduce the library's PC constants. The comparison therefore checks
//! every event exactly except `Branch.pc`, where it instead requires a
//! consistent bijection between library and reference branch sites (same
//! site structure, same order, same outcomes).

use proptest::prelude::*;
use std::collections::HashMap;
use vstress_codecs::blocks::BlockRect;
use vstress_codecs::kernels::{
    reconstruct, residual, sad_plane_plane, sad_plane_pred, sse_plane_pred, write_pred, VEC_PIXELS,
};
use vstress_codecs::mc::{motion_compensate, MotionVector};
use vstress_trace::{probe_addr, site_pc, Kernel, NullProbe, Probe, ProbeEvent, RecordingProbe};
use vstress_video::Plane;

// ---------------------------------------------------------------------------
// Naive reference kernels (the pre-rewrite implementations)
// ---------------------------------------------------------------------------

fn row_vectors(w: usize) -> u64 {
    (w as u64).div_ceil(VEC_PIXELS as u64)
}

fn ref_sad_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    probe.set_kernel(Kernel::Sad);
    let mut sum = 0u64;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        for (a, b) in row.iter().zip(prow) {
            sum += (*a as i32 - *b as i32).unsigned_abs() as u64;
        }
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.avx(v * 2);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

fn ref_sad_plane_plane<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    mvx: i32,
    mvy: i32,
) -> u64 {
    probe.set_kernel(Kernel::Sad);
    let mut sum = 0u64;
    for y in 0..rect.h {
        let cy = rect.y + y;
        let ry = cy as isize + mvy as isize;
        for x in 0..rect.w {
            let a = cur.get(rect.x + x, cy) as i32;
            let b = refp.get_clamped(rect.x as isize + x as isize + mvx as isize, ry) as i32;
            sum += (a - b).unsigned_abs() as u64;
        }
        let v = row_vectors(rect.w);
        probe.load(cur.sample_addr(rect.x, cy), rect.w.min(VEC_PIXELS) as u32);
        let rx = (rect.x as isize + mvx as isize).clamp(0, refp.width() as isize - 1) as usize;
        let rcy = ry.clamp(0, refp.height() as isize - 1) as usize;
        probe.load(refp.sample_addr(rx, rcy), rect.w.min(VEC_PIXELS) as u32);
        probe.load(refp.sample_addr(rx, rcy) + 16, rect.w.min(VEC_PIXELS) as u32);
        probe.avx(v * 2);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(cur.base_addr(), 8);
            probe.branch(site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

fn ref_sse_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    probe.set_kernel(Kernel::Sad);
    let mut sum = 0u64;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        for (a, b) in row.iter().zip(prow) {
            let d = *a as i64 - *b as i64;
            sum += (d * d) as u64;
        }
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.avx(v * 3);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

fn ref_residual<P: Probe>(
    probe: &mut P,
    plane: &Plane,
    rect: BlockRect,
    pred: &[u8],
    dst: &mut [i32],
) {
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        for x in 0..rect.w {
            dst[y * rect.w + x] = row[x] as i32 - prow[x] as i32;
        }
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        probe.avx(v);
    }
}

fn ref_reconstruct<P: Probe>(
    probe: &mut P,
    plane: &mut Plane,
    rect: BlockRect,
    pred: &[u8],
    res: &[i32],
) {
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        for x in 0..rect.w {
            let v = pred[y * rect.w + x] as i32 + res[y * rect.w + x];
            plane.set(rect.x + x, rect.y + y, v.clamp(0, 255) as u8);
        }
        let v = row_vectors(rect.w);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.load(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.avx(v * 2);
    }
}

fn ref_write_pred<P: Probe>(probe: &mut P, plane: &mut Plane, rect: BlockRect, pred: &[u8]) {
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        for x in 0..rect.w {
            plane.set(rect.x + x, rect.y + y, pred[y * rect.w + x]);
        }
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.avx(row_vectors(rect.w));
    }
}

fn ref_motion_compensate<P: Probe>(
    probe: &mut P,
    refp: &Plane,
    rect: BlockRect,
    mv: MotionVector,
    dst: &mut [u8],
) {
    probe.set_kernel(Kernel::InterPred);
    let ix = mv.x >> 1;
    let iy = mv.y >> 1;
    let fx = (mv.x & 1) != 0;
    let fy = (mv.y & 1) != 0;
    for y in 0..rect.h {
        let sy = rect.y as isize + y as isize + iy as isize;
        for x in 0..rect.w {
            let sx = rect.x as isize + x as isize + ix as isize;
            let p00 = refp.get_clamped(sx, sy) as u32;
            let v = match (fx, fy) {
                (false, false) => p00,
                (true, false) => (p00 + refp.get_clamped(sx + 1, sy) as u32).div_ceil(2),
                (false, true) => (p00 + refp.get_clamped(sx, sy + 1) as u32).div_ceil(2),
                (true, true) => {
                    let p10 = refp.get_clamped(sx + 1, sy) as u32;
                    let p01 = refp.get_clamped(sx, sy + 1) as u32;
                    let p11 = refp.get_clamped(sx + 1, sy + 1) as u32;
                    (p00 + p10 + p01 + p11 + 2) / 4
                }
            };
            dst[y * rect.w + x] = v as u8;
        }
        let vecs = (rect.w as u64).div_ceil(32);
        let cx = (rect.x as isize + ix as isize).clamp(0, refp.width() as isize - 1) as usize;
        let cy = sy.clamp(0, refp.height() as isize - 1) as usize;
        probe.load(refp.sample_addr(cx, cy), rect.w.min(32) as u32);
        if fy {
            let cy1 = (sy + 1).clamp(0, refp.height() as isize - 1) as usize;
            probe.load(refp.sample_addr(cx, cy1), rect.w.min(32) as u32);
        }
        probe.store(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(32) as u32);
        let filter_ops = if fx || fy { 3 } else { 1 };
        probe.avx(vecs * filter_ops);
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(site_pc!(), y + 1 != rect.h);
        }
    }
}

// ---------------------------------------------------------------------------
// Test scaffolding
// ---------------------------------------------------------------------------

const PW: usize = 48;
const PH: usize = 40;

/// A deterministic pseudo-random plane.
fn random_plane(seed: u64) -> Plane {
    let mut p = Plane::new(PW, PH, 0).unwrap();
    let mut x = seed | 1;
    for y in 0..PH {
        for xx in 0..PW {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.set(xx, y, (x >> 56) as u8);
        }
    }
    p
}

fn random_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    (0..n)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            (x >> 56) as u8
        })
        .collect()
}

/// Snapshots the accessible pixels of a plane (synthetic probe addresses
/// are allocation-scoped, so mutating kernels must run lib and reference
/// against the *same* plane object and restore pixels in between).
fn snapshot(p: &Plane) -> Vec<u8> {
    let mut v = Vec::with_capacity(PW * PH);
    for y in 0..PH {
        v.extend_from_slice(&p.row(y)[..PW]);
    }
    v
}

fn restore(p: &mut Plane, pixels: &[u8]) {
    for y in 0..PH {
        p.row_mut(y)[..PW].copy_from_slice(&pixels[y * PW..(y + 1) * PW]);
    }
}

/// Clamps raw proptest coordinates into a rect inside the test plane.
fn make_rect(rx: usize, ry: usize, rw: usize, rh: usize) -> BlockRect {
    let x = rx % PW;
    let y = ry % PH;
    let w = (rw % 17).max(1).min(PW - x);
    let h = (rh % 17).max(1).min(PH - y);
    BlockRect::new(x, y, w, h)
}

/// Asserts two event streams match exactly, modulo the branch-PC
/// bijection described in the module docs.
fn assert_streams_match(lib: &[ProbeEvent], reference: &[ProbeEvent]) {
    assert_eq!(lib.len(), reference.len(), "event counts differ");
    let mut fwd: HashMap<u64, u64> = HashMap::new();
    let mut bwd: HashMap<u64, u64> = HashMap::new();
    for (i, (l, r)) in lib.iter().zip(reference).enumerate() {
        match (l, r) {
            (
                ProbeEvent::Branch { pc: lp, taken: lt },
                ProbeEvent::Branch { pc: rp, taken: rt },
            ) => {
                assert_eq!(lt, rt, "branch outcome differs at event {i}");
                assert_eq!(*fwd.entry(*lp).or_insert(*rp), *rp, "branch site map at event {i}");
                assert_eq!(*bwd.entry(*rp).or_insert(*lp), *lp, "branch site map at event {i}");
            }
            _ => assert_eq!(l, r, "event {i} differs"),
        }
    }
}

fn record<F: FnOnce(&mut RecordingProbe<'_, NullProbe>)>(f: F) -> Vec<ProbeEvent> {
    let mut null = NullProbe;
    let mut rec = RecordingProbe::new(&mut null);
    f(&mut rec);
    rec.into_batch().events().to_vec()
}

// ---------------------------------------------------------------------------
// Kernel equivalence properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Optimized `sad_plane_plane` (interior fast path + edge path)
    /// matches the naive clamped reference in value and probe stream for
    /// any displacement, including ones that leave the frame entirely.
    #[test]
    fn sad_plane_plane_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
        mvx in -60i32..60, mvy in -60i32..60,
    ) {
        let cur = random_plane(seed);
        let refp = random_plane(seed ^ 0xabcdef);
        let rect = make_rect(rx, ry, rw, rh);
        let mut lib_sum = 0;
        let lib = record(|p| lib_sum = sad_plane_plane(p, &cur, rect, &refp, mvx, mvy));
        let mut ref_sum = 0;
        let re = record(|p| ref_sum = ref_sad_plane_plane(p, &cur, rect, &refp, mvx, mvy));
        prop_assert_eq!(lib_sum, ref_sum);
        assert_streams_match(&lib, &re);
    }

    /// Optimized `sad_plane_pred` matches the reference.
    #[test]
    fn sad_plane_pred_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
    ) {
        let plane = random_plane(seed);
        let rect = make_rect(rx, ry, rw, rh);
        let pred = random_bytes(seed, rect.area());
        let mut lib_sum = 0;
        let lib = record(|p| lib_sum = sad_plane_pred(p, &plane, rect, &pred));
        let mut ref_sum = 0;
        let re = record(|p| ref_sum = ref_sad_plane_pred(p, &plane, rect, &pred));
        prop_assert_eq!(lib_sum, ref_sum);
        assert_streams_match(&lib, &re);
    }

    /// Optimized `sse_plane_pred` matches the reference.
    #[test]
    fn sse_plane_pred_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
    ) {
        let plane = random_plane(seed);
        let rect = make_rect(rx, ry, rw, rh);
        let pred = random_bytes(seed, rect.area());
        let mut lib_sum = 0;
        let lib = record(|p| lib_sum = sse_plane_pred(p, &plane, rect, &pred));
        let mut ref_sum = 0;
        let re = record(|p| ref_sum = ref_sse_plane_pred(p, &plane, rect, &pred));
        prop_assert_eq!(lib_sum, ref_sum);
        assert_streams_match(&lib, &re);
    }

    /// Optimized `residual` matches the reference in output and stream.
    #[test]
    fn residual_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
    ) {
        let plane = random_plane(seed);
        let rect = make_rect(rx, ry, rw, rh);
        let pred = random_bytes(seed, rect.area());
        let mut lib_dst = vec![0i32; rect.area()];
        let mut ref_dst = vec![0i32; rect.area()];
        let lib = record(|p| residual(p, &plane, rect, &pred, &mut lib_dst));
        let re = record(|p| ref_residual(p, &plane, rect, &pred, &mut ref_dst));
        prop_assert_eq!(lib_dst, ref_dst);
        assert_streams_match(&lib, &re);
    }

    /// Optimized `reconstruct` matches the reference in plane content and
    /// stream (residuals drawn to exercise both clamp edges).
    #[test]
    fn reconstruct_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
    ) {
        let rect = make_rect(rx, ry, rw, rh);
        let pred = random_bytes(seed, rect.area());
        let mut x = seed | 1;
        let res: Vec<i32> = (0..rect.area())
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 48) % 701) as i32 - 350
            })
            .collect();
        let mut plane = random_plane(seed ^ 0x55);
        let before = snapshot(&plane);
        let lib = record(|p| reconstruct(p, &mut plane, rect, &pred, &res));
        let lib_pixels = snapshot(&plane);
        restore(&mut plane, &before);
        let re = record(|p| ref_reconstruct(p, &mut plane, rect, &pred, &res));
        prop_assert_eq!(lib_pixels, snapshot(&plane));
        assert_streams_match(&lib, &re);
    }

    /// Optimized `write_pred` matches the reference.
    #[test]
    fn write_pred_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
    ) {
        let rect = make_rect(rx, ry, rw, rh);
        let pred = random_bytes(seed, rect.area());
        let mut plane = random_plane(seed ^ 0x77);
        let before = snapshot(&plane);
        let lib = record(|p| write_pred(p, &mut plane, rect, &pred));
        let lib_pixels = snapshot(&plane);
        restore(&mut plane, &before);
        let re = record(|p| ref_write_pred(p, &mut plane, rect, &pred));
        prop_assert_eq!(lib_pixels, snapshot(&plane));
        assert_streams_match(&lib, &re);
    }

    /// Optimized `motion_compensate` (interior fast path per filter case)
    /// matches the clamped reference for all four half-pel fractions and
    /// border-straddling vectors.
    #[test]
    fn motion_compensate_equivalent(
        seed in any::<u64>(),
        rx in any::<usize>(), ry in any::<usize>(),
        rw in any::<usize>(), rh in any::<usize>(),
        mvx in -100i32..100, mvy in -100i32..100,
    ) {
        let refp = random_plane(seed);
        let rect = make_rect(rx, ry, rw, rh);
        let mv = MotionVector { x: mvx, y: mvy };
        let mut lib_dst = vec![0u8; rect.area()];
        let mut ref_dst = vec![0u8; rect.area()];
        let lib = record(|p| motion_compensate(p, &refp, rect, mv, &mut lib_dst));
        let re = record(|p| ref_motion_compensate(p, &refp, rect, mv, &mut ref_dst));
        prop_assert_eq!(lib_dst, ref_dst);
        assert_streams_match(&lib, &re);
    }
}

// ---------------------------------------------------------------------------
// Partition-search memo equivalence
// ---------------------------------------------------------------------------

/// Builds the textured source/reference frame pair the memo tests plan
/// over: shifted sinusoid texture, so inter, intra and skip paths all
/// participate.
fn memo_test_frames(sb: usize) -> (vstress_video::Frame, vstress_video::Frame) {
    use vstress_video::Frame;
    let mut src = Frame::new(sb * 2, sb * 2).unwrap();
    let mut reff = Frame::new(sb * 2, sb * 2).unwrap();
    for y in 0..sb * 2 {
        for x in 0..sb * 2 {
            let v = |s: usize| {
                (128.0
                    + 58.0 * ((x + s) as f64 * 0.19).sin()
                    + 38.0 * (y as f64 * 0.23 + (x + s) as f64 * 0.07).sin())
                .clamp(0.0, 255.0) as u8
            };
            src.luma_mut().set(x, y, v(3));
            reff.luma_mut().set(x, y, v(0));
        }
    }
    (src, reff)
}

/// Under `MemoPolicy::Always` with a live probe, the memo must be
/// invisible: identical plan, identical probe event stream (exact,
/// branch PCs included — both sides run the same code).
#[test]
fn memo_replay_is_probe_invisible() {
    use vstress_codecs::codecs::ToolSet;
    use vstress_codecs::frame_coder::{plan_superblock, CoderConfig, MemoPolicy, PlanScratch};
    use vstress_codecs::{CodecId, EncoderParams};
    use vstress_trace::CountingProbe;

    let tools = ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(35, 6)).unwrap();
    let cfg = CoderConfig::from_tools(&tools, 35);
    let sb = tools.superblock;
    let (src, reff) = memo_test_frames(sb);
    let refs = [&reff];

    let run = |policy: MemoPolicy| {
        let mut counting = CountingProbe::new();
        let mut rec = RecordingProbe::new(&mut counting);
        let mut scratch = PlanScratch::new();
        scratch.set_memo_policy(policy);
        let mut plans = Vec::new();
        for (sx, sy) in [(0, 0), (sb, 0), (0, sb), (sb, sb)] {
            let rect = BlockRect::new(sx, sy, sb, sb);
            let mut seed_mv = MotionVector::ZERO;
            plans.push(plan_superblock(
                &mut rec,
                &tools,
                &cfg,
                &src,
                &refs,
                rect,
                &mut seed_mv,
                &mut scratch,
            ));
        }
        let events = rec.into_batch();
        (plans, events, counting.mix())
    };

    let (plans_on, events_on, mix_on) = run(MemoPolicy::Always);
    let (plans_off, events_off, mix_off) = run(MemoPolicy::Off);
    assert_eq!(plans_on, plans_off, "memo changed the chosen plan");
    assert_eq!(mix_on, mix_off, "memo changed the instruction mix");
    assert_eq!(
        events_on,
        events_off,
        "memo changed the probe event stream ({} vs {} events)",
        events_on.len(),
        events_off.len()
    );
    assert!(!events_on.is_empty());
}

/// Under the default `MemoPolicy::DeadProbeOnly` with a dead probe, memo
/// hits skip the evaluation entirely — the chosen plans must still be
/// identical to full recomputation.
#[test]
fn memo_dead_probe_path_matches_plans() {
    use vstress_codecs::codecs::ToolSet;
    use vstress_codecs::frame_coder::{plan_superblock, CoderConfig, MemoPolicy, PlanScratch};
    use vstress_codecs::{CodecId, EncoderParams};

    let tools = ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(35, 6)).unwrap();
    let cfg = CoderConfig::from_tools(&tools, 35);
    let sb = tools.superblock;
    let (src, reff) = memo_test_frames(sb);
    let refs = [&reff];

    let run = |policy: MemoPolicy| {
        let mut null = NullProbe;
        let mut scratch = PlanScratch::new();
        scratch.set_memo_policy(policy);
        let mut plans = Vec::new();
        for (sx, sy) in [(0, 0), (sb, 0), (0, sb), (sb, sb)] {
            let rect = BlockRect::new(sx, sy, sb, sb);
            let mut seed_mv = MotionVector::ZERO;
            plans.push(plan_superblock(
                &mut null,
                &tools,
                &cfg,
                &src,
                &refs,
                rect,
                &mut seed_mv,
                &mut scratch,
            ));
        }
        plans
    };

    assert_eq!(run(MemoPolicy::DeadProbeOnly), run(MemoPolicy::Off));
}
