//! Pins the allocation behaviour of the motion-search hot path.
//!
//! PR 3 threads a reusable [`MeScratch`] through `motion_search` so the
//! RDO descent stops allocating per candidate. This test makes that a
//! regression boundary: after one warm-up search has grown the scratch
//! buffers, further searches — full-pel, subpel, and `_around` refinement,
//! across the block sizes the partition search visits — must perform
//! **zero** heap allocations.
//!
//! The counter wraps the system allocator for this whole test binary,
//! which is why the test lives in its own integration-test file.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vstress_codecs::blocks::BlockRect;
use vstress_codecs::mc::MotionVector;
use vstress_codecs::mesearch::{motion_search, motion_search_around, MeScratch, MeSettings};
use vstress_trace::NullProbe;
use vstress_video::Plane;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn textured_plane(seed: u64) -> Plane {
    let mut p = Plane::new(128, 128, 0).unwrap();
    let mut x = seed | 1;
    for y in 0..128 {
        for xx in 0..128 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.set(xx, y, (x >> 56) as u8);
        }
    }
    p
}

#[test]
fn motion_search_is_allocation_free_after_warmup() {
    let cur = textured_plane(1);
    let refp = textured_plane(2);
    let settings = MeSettings { range: 24, exhaustive_radius: 4, refine_steps: 12, subpel: true };
    let rects = [
        BlockRect::new(32, 32, 64, 64),
        BlockRect::new(16, 48, 32, 32),
        BlockRect::new(8, 8, 16, 16),
        BlockRect::new(40, 24, 8, 8),
    ];

    let mut probe = NullProbe;
    let mut scratch = MeScratch::new();
    // Warm-up on the largest block grows the scratch buffers to their
    // high-water mark.
    motion_search(
        &mut probe,
        &cur,
        rects[0],
        &refp,
        MotionVector::ZERO,
        &settings,
        60,
        &mut scratch,
    );

    let before = ALLOCS.load(Ordering::Relaxed);
    for &rect in &rects {
        let r = motion_search(
            &mut probe,
            &cur,
            rect,
            &refp,
            MotionVector::from_fullpel(1, -1),
            &settings,
            60,
            &mut scratch,
        );
        motion_search_around(
            &mut probe,
            &cur,
            rect,
            &refp,
            r.mv,
            MotionVector::ZERO,
            &settings,
            60,
            &mut scratch,
        );
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "motion search allocated {} times after warm-up", after - before);
}
