//! Pins the allocation behaviour of the hot paths on both sides of the
//! probe interface.
//!
//! PR 3 threads a reusable [`MeScratch`] through `motion_search` so the
//! RDO descent stops allocating per candidate. PR 4 does the same for
//! the simulation side: the cache hierarchy's prefetch path loses its
//! per-miss `Vec`, and the batched probe→model event drain reuses only
//! fixed state. These tests make both regression boundaries: after one
//! warm-up pass has grown every lazily-sized buffer, further work must
//! perform **zero** heap allocations.
//!
//! The counter wraps the system allocator for this whole test binary,
//! which is why the tests live in their own integration-test file; a
//! shared lock keeps the measurement windows from overlapping when the
//! harness runs tests on parallel threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vstress_codecs::blocks::BlockRect;
use vstress_codecs::mc::MotionVector;
use vstress_codecs::mesearch::{motion_search, motion_search_around, MeScratch, MeSettings};
use vstress_trace::NullProbe;
use vstress_video::Plane;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests: each one measures a window of the shared
/// counter, so another test's warm-up allocations must not land inside
/// it.
static SERIAL: Mutex<()> = Mutex::new(());

fn textured_plane(seed: u64) -> Plane {
    let mut p = Plane::new(128, 128, 0).unwrap();
    let mut x = seed | 1;
    for y in 0..128 {
        for xx in 0..128 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.set(xx, y, (x >> 56) as u8);
        }
    }
    p
}

#[test]
fn motion_search_is_allocation_free_after_warmup() {
    let _serial = SERIAL.lock().unwrap();
    let cur = textured_plane(1);
    let refp = textured_plane(2);
    let settings = MeSettings { range: 24, exhaustive_radius: 4, refine_steps: 12, subpel: true };
    let rects = [
        BlockRect::new(32, 32, 64, 64),
        BlockRect::new(16, 48, 32, 32),
        BlockRect::new(8, 8, 16, 16),
        BlockRect::new(40, 24, 8, 8),
    ];

    let mut probe = NullProbe;
    let mut scratch = MeScratch::new();
    // Warm-up on the largest block grows the scratch buffers to their
    // high-water mark.
    motion_search(
        &mut probe,
        &cur,
        rects[0],
        &refp,
        MotionVector::ZERO,
        &settings,
        60,
        &mut scratch,
    );

    let before = ALLOCS.load(Ordering::Relaxed);
    for &rect in &rects {
        let r = motion_search(
            &mut probe,
            &cur,
            rect,
            &refp,
            MotionVector::from_fullpel(1, -1),
            &settings,
            60,
            &mut scratch,
        );
        motion_search_around(
            &mut probe,
            &cur,
            rect,
            &refp,
            r.mv,
            MotionVector::ZERO,
            &settings,
            60,
            &mut scratch,
        );
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "motion search allocated {} times after warm-up", after - before);
}

/// The simulation-side pin: replaying a characterization-sized event
/// batch through a [`CoreModel`] — and the same access stream through a
/// bare [`Hierarchy`] with the stride prefetcher enabled — allocates
/// nothing once a warm-up pass has first-touched every page. The
/// prefetch path is the one that used to allocate (a `Vec<u64>` of
/// suggestions per demand miss); the strided loads here force it on
/// every L2 refill.
#[test]
fn simulation_event_path_is_allocation_free_in_steady_state() {
    use vstress_cache::config::PrefetchKind;
    use vstress_cache::{Hierarchy, HierarchyConfig};
    use vstress_pipeline::CoreModel;
    use vstress_trace::{Kernel, Probe, ProbeEvent};

    let _serial = SERIAL.lock().unwrap();

    // A mixed stream shaped like real encoder output: kernel switches,
    // compute bursts, strided loads sweeping far past L2 (demand misses
    // feed the prefetcher), scattered stores, and branchy control.
    let mut x = 0x2545_f491_4f6c_dd1du64;
    let events: Vec<ProbeEvent> = (0..48_000u64)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            match i % 8 {
                0 => ProbeEvent::SetKernel(Kernel::ALL[(x % Kernel::ALL.len() as u64) as usize]),
                1 => ProbeEvent::Alu(1 + x % 8),
                2 => ProbeEvent::Avx(1 + x % 4),
                3 => ProbeEvent::Load { addr: 0x10_0000 + (i * 192) % (2 << 20), bytes: 32 },
                4 => ProbeEvent::Store { addr: 0x40_0000 + x % (1 << 20), bytes: 16 },
                5 => ProbeEvent::Sse(1 + x % 4),
                6 => ProbeEvent::Branch { pc: 0x1000 + (x % 32) * 8, taken: x & 1 == 0 },
                _ => ProbeEvent::Load { addr: x % (4 << 20), bytes: 8 },
            }
        })
        .collect();

    let mut model = CoreModel::broadwell_scaled(4);
    let mut cfg = HierarchyConfig::broadwell_scaled(4);
    cfg.l2_prefetch = PrefetchKind::Stride;
    let mut hier = Hierarchy::new(cfg);
    let drive_hierarchy = |hier: &mut Hierarchy| {
        for &e in &events {
            match e {
                ProbeEvent::Load { addr, bytes } => {
                    hier.load(addr, bytes);
                }
                ProbeEvent::Store { addr, bytes } => {
                    hier.store(addr, bytes);
                }
                _ => {}
            }
        }
    };

    // Warm-up: the model's first-touch page canonicalizer grows here;
    // cache arrays and predictor tables are fixed-size from construction.
    model.drain_batch(&events);
    drive_hierarchy(&mut hier);

    let before = ALLOCS.load(Ordering::Relaxed);
    model.drain_batch(&events);
    drive_hierarchy(&mut hier);
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "simulation event path allocated {} times in steady state",
        after - before
    );
}
