//! Intra prediction.
//!
//! Ten directional/gradient predictors, matching AV1's smooth/Paeth
//! family; the per-codec tool sets grant subsets (H.26x models get 4,
//! VP9 8, AV1 all 10), which is one of the search-space dials behind the
//! paper's instruction-count findings.

use crate::blocks::BlockRect;
use simd::{u32x4, u8x16};
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::Plane;

/// Horizontal sum of a byte slice — whole 16-lane chunks go through the
/// `psadbw`-against-zero idiom, the tail is scalar. Exact integer sums
/// make the split invisible.
#[inline]
fn byte_sum(s: &[u8]) -> u32 {
    let mut chunks = s.chunks_exact(16);
    let zero = u8x16::splat(0);
    let mut sum = 0u32;
    for q in &mut chunks {
        sum += u8x16::from_slice(q).sad(zero);
    }
    sum + chunks.remainder().iter().map(|&v| v as u32).sum::<u32>()
}

/// An intra prediction mode.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[repr(u8)]
pub enum IntraMode {
    /// Average of the border samples.
    Dc,
    /// Copy the top row downward.
    Vertical,
    /// Copy the left column rightward.
    Horizontal,
    /// Distance-weighted blend of top and left (AV1 SMOOTH).
    Smooth,
    /// Vertical-weighted smooth blend.
    SmoothV,
    /// Horizontal-weighted smooth blend.
    SmoothH,
    /// Paeth gradient predictor.
    Paeth,
    /// 45° down-right diagonal.
    D45,
    /// 135° diagonal.
    D135,
    /// 203° shallow diagonal.
    D203,
}

impl IntraMode {
    /// The full AV1-style set.
    pub const AV1: [IntraMode; 10] = [
        IntraMode::Dc,
        IntraMode::Vertical,
        IntraMode::Horizontal,
        IntraMode::Smooth,
        IntraMode::SmoothV,
        IntraMode::SmoothH,
        IntraMode::Paeth,
        IntraMode::D45,
        IntraMode::D135,
        IntraMode::D203,
    ];

    /// VP9-style subset (8 modes).
    pub const VP9: [IntraMode; 8] = [
        IntraMode::Dc,
        IntraMode::Vertical,
        IntraMode::Horizontal,
        IntraMode::Smooth,
        IntraMode::Paeth,
        IntraMode::D45,
        IntraMode::D135,
        IntraMode::D203,
    ];

    /// H.264-style subset (4 modes).
    pub const H264: [IntraMode; 4] =
        [IntraMode::Dc, IntraMode::Vertical, IntraMode::Horizontal, IntraMode::Smooth];

    /// H.265-style subset (7 modes).
    pub const H265: [IntraMode; 7] = [
        IntraMode::Dc,
        IntraMode::Vertical,
        IntraMode::Horizontal,
        IntraMode::Smooth,
        IntraMode::Paeth,
        IntraMode::D45,
        IntraMode::D135,
    ];

    /// Bitstream symbol.
    #[inline]
    pub fn symbol(self) -> u8 {
        self as u8
    }

    /// Inverse of [`IntraMode::symbol`].
    pub fn from_symbol(s: u8) -> Option<Self> {
        Self::AV1.get(s as usize).copied()
    }
}

/// Largest block edge an [`IntraEdges`] can carry (the superblock size).
pub const MAX_EDGE: usize = 64;

/// Border samples for intra prediction of one block.
///
/// Backed by fixed-size arrays (no heap): edge gathering runs for every
/// candidate mode of every block, and keeping it allocation-free both
/// speeds the search up and keeps the simulated address stream
/// independent of allocator state.
#[derive(Debug, Clone)]
pub struct IntraEdges {
    /// Top row (first `w` entries valid).
    top: [u8; MAX_EDGE],
    /// Left column (first `h` entries valid).
    left: [u8; MAX_EDGE],
    top_available: bool,
    left_available: bool,
    /// Top-left corner sample.
    corner: u8,
}

impl IntraEdges {
    /// Gathers the reconstructed border samples around `rect` in `plane`.
    ///
    /// # Panics
    ///
    /// Panics if the block is wider or taller than [`MAX_EDGE`].
    pub fn gather<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect) -> Self {
        assert!(rect.w <= MAX_EDGE && rect.h <= MAX_EDGE, "block exceeds MAX_EDGE");
        probe.set_kernel(Kernel::IntraPred);
        let top_available = rect.y > 0;
        let left_available = rect.x > 0;
        let mut top = [128u8; MAX_EDGE];
        let mut left = [128u8; MAX_EDGE];
        if top_available {
            if rect.x + rect.w <= plane.width() {
                top[..rect.w].copy_from_slice(&plane.row(rect.y - 1)[rect.x..rect.x + rect.w]);
            } else {
                for (x, t) in top.iter_mut().take(rect.w).enumerate() {
                    *t = plane.get_clamped((rect.x + x) as isize, rect.y as isize - 1);
                }
            }
            probe.load(plane.sample_addr(rect.x, rect.y - 1), rect.w.min(32) as u32);
        }
        if left_available {
            for (y, l) in left.iter_mut().take(rect.h).enumerate() {
                *l = plane.get_clamped(rect.x as isize - 1, (rect.y + y) as isize);
            }
            probe.load(plane.sample_addr(rect.x - 1, rect.y), 1);
            // Column gathers use the 128-bit shuffle path.
            probe.sse((rect.h as u64).div_ceil(16));
            probe.alu(rect.h as u64);
        }
        let corner = if top_available && left_available {
            plane.get(rect.x - 1, rect.y - 1)
        } else if top_available {
            top[0]
        } else if left_available {
            left[0]
        } else {
            128
        };
        probe.alu(4);
        IntraEdges { top, left, top_available, left_available, corner }
    }
}

/// Computes the prediction for `mode` into `dst` (`w * h`, row-major).
///
/// # Panics
///
/// Panics if `dst.len() < w * h`.
pub fn predict<P: Probe>(
    probe: &mut P,
    mode: IntraMode,
    edges: &IntraEdges,
    w: usize,
    h: usize,
    dst: &mut [u8],
) {
    assert!(dst.len() >= w * h);
    assert!(w <= MAX_EDGE && h <= MAX_EDGE);
    probe.set_kernel(Kernel::IntraPred);
    let top = &edges.top[..w.max(1)];
    let left = &edges.left[..h.max(1)];
    match mode {
        IntraMode::Dc => {
            let mut sum = 0u32;
            let mut n = 0u32;
            if edges.top_available {
                sum += byte_sum(top);
                n += w as u32;
            }
            if edges.left_available {
                sum += byte_sum(left);
                n += h as u32;
            }
            let dc = (sum + n / 2).checked_div(n).unwrap_or(128) as u8;
            dst[..w * h].fill(dc);
        }
        IntraMode::Vertical => {
            for y in 0..h {
                dst[y * w..(y + 1) * w].copy_from_slice(top);
            }
        }
        IntraMode::Horizontal => {
            for y in 0..h {
                dst[y * w..(y + 1) * w].fill(left[y]);
            }
        }
        IntraMode::Smooth => {
            // AV1-style distance blend of V and H using the far corners.
            // Column-dependent terms — the weights `wx` and the constant
            // horizontal contribution `(256 - wx) * right` — are hoisted
            // out of the row loop (one division per column, not per
            // pixel); the widened top samples feed 4-lane blends. All
            // sums stay well under 2^32, so `/512` is an exact `>> 9`.
            let bottom = left[h - 1] as u32;
            let right = top[w - 1] as u32;
            let mut wxs = [0u32; MAX_EDGE];
            let mut hconst = [0u32; MAX_EDGE];
            let mut tops = [0u32; MAX_EDGE];
            for (x, ((wx, hc), t)) in
                wxs.iter_mut().zip(&mut hconst).zip(&mut tops).take(w).enumerate()
            {
                *wx = 256 * (w - 1 - x) as u32 / (w - 1).max(1) as u32;
                *hc = (256 - *wx) * right;
                *t = top[x] as u32;
            }
            for y in 0..h {
                let wy = 256 * (h - 1 - y) as u32 / (h - 1).max(1) as u32;
                let l = left[y] as u32;
                let vconst = (256 - wy) * bottom + 256;
                let drow = &mut dst[y * w..(y + 1) * w];
                let mut cd = drow.chunks_exact_mut(4);
                let mut ct = tops[..w].chunks_exact(4);
                let mut cw = wxs[..w].chunks_exact(4);
                let mut ch = hconst[..w].chunks_exact(4);
                for (((qd, qt), qw), qh) in (&mut cd).zip(&mut ct).zip(&mut cw).zip(&mut ch) {
                    let v = u32x4::from_slice(qt)
                        .mul(u32x4::splat(wy))
                        .add(u32x4::from_slice(qw).mul(u32x4::splat(l)))
                        .add(u32x4::from_slice(qh))
                        .add(u32x4::splat(vconst))
                        .shr(9);
                    for (d, &lane) in qd.iter_mut().zip(&v.0) {
                        *d = lane as u8;
                    }
                }
                for (((d, &t), &wx), &hc) in cd
                    .into_remainder()
                    .iter_mut()
                    .zip(ct.remainder())
                    .zip(cw.remainder())
                    .zip(ch.remainder())
                {
                    *d = ((wy * t + wx * l + hc + vconst) >> 9) as u8;
                }
            }
        }
        IntraMode::SmoothV => {
            let bottom = left[h - 1] as u32;
            let mut tops = [0u32; MAX_EDGE];
            for (t, &s) in tops.iter_mut().zip(top) {
                *t = s as u32;
            }
            for y in 0..h {
                let wy = 256 * (h - 1 - y) as u32 / (h - 1).max(1) as u32;
                let vconst = (256 - wy) * bottom + 128;
                let drow = &mut dst[y * w..(y + 1) * w];
                let mut cd = drow.chunks_exact_mut(4);
                let mut ct = tops[..w].chunks_exact(4);
                for (qd, qt) in (&mut cd).zip(&mut ct) {
                    let v = u32x4::from_slice(qt)
                        .mul(u32x4::splat(wy))
                        .add(u32x4::splat(vconst))
                        .shr(8);
                    for (d, &lane) in qd.iter_mut().zip(&v.0) {
                        *d = lane as u8;
                    }
                }
                for (d, &t) in cd.into_remainder().iter_mut().zip(ct.remainder()) {
                    *d = ((wy * t + vconst) >> 8) as u8;
                }
            }
        }
        IntraMode::SmoothH => {
            let right = top[w - 1] as u32;
            let mut wxs = [0u32; MAX_EDGE];
            let mut hconst = [0u32; MAX_EDGE];
            for (x, (wx, hc)) in wxs.iter_mut().zip(&mut hconst).take(w).enumerate() {
                *wx = 256 * (w - 1 - x) as u32 / (w - 1).max(1) as u32;
                *hc = (256 - *wx) * right + 128;
            }
            for y in 0..h {
                let l = left[y] as u32;
                let drow = &mut dst[y * w..(y + 1) * w];
                let mut cd = drow.chunks_exact_mut(4);
                let mut cw = wxs[..w].chunks_exact(4);
                let mut ch = hconst[..w].chunks_exact(4);
                for ((qd, qw), qh) in (&mut cd).zip(&mut cw).zip(&mut ch) {
                    let v = u32x4::from_slice(qw)
                        .mul(u32x4::splat(l))
                        .add(u32x4::from_slice(qh))
                        .shr(8);
                    for (d, &lane) in qd.iter_mut().zip(&v.0) {
                        *d = lane as u8;
                    }
                }
                for ((d, &wx), &hc) in
                    cd.into_remainder().iter_mut().zip(cw.remainder()).zip(ch.remainder())
                {
                    *d = ((wx * l + hc) >> 8) as u8;
                }
            }
        }
        IntraMode::Paeth => {
            for y in 0..h {
                for x in 0..w {
                    let t = top[x] as i32;
                    let l = left[y] as i32;
                    let c = edges.corner as i32;
                    let base = t + l - c;
                    let (dt, dl, dc) = ((base - t).abs(), (base - l).abs(), (base - c).abs());
                    dst[y * w + x] = if dl <= dt && dl <= dc {
                        l as u8
                    } else if dt <= dc {
                        t as u8
                    } else {
                        c as u8
                    };
                }
            }
        }
        IntraMode::D45 => {
            for y in 0..h {
                for x in 0..w {
                    let i = (x + y + 1).min(w - 1);
                    let j = (x + y + 2).min(w - 1);
                    dst[y * w + x] = ((top[i] as u32) + (top[j] as u32)).div_ceil(2) as u8;
                }
            }
        }
        IntraMode::D135 => {
            for y in 0..h {
                for x in 0..w {
                    dst[y * w + x] = if x > y {
                        top[x - y - 1]
                    } else if y > x {
                        left[y - x - 1]
                    } else {
                        edges.corner
                    };
                }
            }
        }
        IntraMode::D203 => {
            for y in 0..h {
                for x in 0..w {
                    let i = (y + (x >> 1)).min(h - 1);
                    dst[y * w + x] = left[i];
                }
            }
        }
    }
    // One vectorized pass over the block plus the border reads.
    let vecs = (w as u64).div_ceil(32).max(1);
    probe.avx(h as u64 * vecs * 2);
    for y in 0..h {
        probe.store(probe_addr::fixed::PRED + (y * w) as u64, w.min(32) as u32);
    }
    probe.alu(h as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    fn edges_from(top: Vec<u8>, left: Vec<u8>, corner: u8) -> IntraEdges {
        let mut t = [128u8; MAX_EDGE];
        let mut l = [128u8; MAX_EDGE];
        t[..top.len()].copy_from_slice(&top);
        l[..left.len()].copy_from_slice(&left);
        IntraEdges { top: t, left: l, top_available: true, left_available: true, corner }
    }

    #[test]
    fn dc_is_border_average() {
        let e = edges_from(vec![10; 8], vec![30; 8], 20);
        let mut dst = vec![0u8; 64];
        predict(&mut NullProbe, IntraMode::Dc, &e, 8, 8, &mut dst);
        assert!(dst.iter().all(|&v| v == 20));
    }

    #[test]
    fn vertical_copies_top() {
        let top: Vec<u8> = (0..8).map(|i| i * 10).collect();
        let e = edges_from(top.clone(), vec![0; 8], 0);
        let mut dst = vec![0u8; 64];
        predict(&mut NullProbe, IntraMode::Vertical, &e, 8, 8, &mut dst);
        for y in 0..8 {
            assert_eq!(&dst[y * 8..(y + 1) * 8], &top[..]);
        }
    }

    #[test]
    fn horizontal_copies_left() {
        let left: Vec<u8> = (0..8).map(|i| i * 7).collect();
        let e = edges_from(vec![0; 8], left.clone(), 0);
        let mut dst = vec![0u8; 64];
        predict(&mut NullProbe, IntraMode::Horizontal, &e, 8, 8, &mut dst);
        for y in 0..8 {
            assert!(dst[y * 8..(y + 1) * 8].iter().all(|&v| v == left[y]));
        }
    }

    #[test]
    fn paeth_on_flat_border_is_flat() {
        let e = edges_from(vec![77; 8], vec![77; 8], 77);
        let mut dst = vec![0u8; 64];
        predict(&mut NullProbe, IntraMode::Paeth, &e, 8, 8, &mut dst);
        assert!(dst.iter().all(|&v| v == 77));
    }

    #[test]
    fn all_modes_produce_valid_samples() {
        let top: Vec<u8> = (0..16).map(|i| (i * 16) as u8).collect();
        let left: Vec<u8> = (0..16).map(|i| (255 - i * 16) as u8).collect();
        let e = edges_from(top, left, 128);
        let mut dst = vec![0u8; 256];
        for mode in IntraMode::AV1 {
            dst.fill(1);
            predict(&mut NullProbe, mode, &e, 16, 16, &mut dst);
            // Filled every sample (flat 1 pattern must be overwritten
            // somewhere for non-degenerate borders).
            assert!(dst.iter().any(|&v| v != 1), "{mode:?} wrote nothing");
        }
    }

    #[test]
    fn gather_handles_frame_corner() {
        let p = Plane::new(16, 16, 200).unwrap();
        let e = IntraEdges::gather(&mut NullProbe, &p, BlockRect::new(0, 0, 8, 8));
        assert!(!e.top_available && !e.left_available);
        let mut dst = vec![0u8; 64];
        predict(&mut NullProbe, IntraMode::Dc, &e, 8, 8, &mut dst);
        assert!(dst.iter().all(|&v| v == 128), "unavailable borders default to mid-grey");
    }

    #[test]
    fn gather_reads_reconstructed_neighbors() {
        let mut p = Plane::new(16, 16, 0).unwrap();
        for x in 0..16 {
            p.set(x, 3, 99); // the row above a block at y=4
        }
        let e = IntraEdges::gather(&mut NullProbe, &p, BlockRect::new(4, 4, 8, 8));
        assert!(e.top_available);
        assert_eq!(e.top[0], 99);
    }

    #[test]
    fn mode_symbols_roundtrip() {
        for m in IntraMode::AV1 {
            assert_eq!(IntraMode::from_symbol(m.symbol()), Some(m));
        }
        assert_eq!(IntraMode::from_symbol(10), None);
    }

    #[test]
    fn mode_set_sizes_match_codecs() {
        assert_eq!(IntraMode::AV1.len(), 10);
        assert_eq!(IntraMode::VP9.len(), 8);
        assert_eq!(IntraMode::H265.len(), 7);
        assert_eq!(IntraMode::H264.len(), 4);
    }
}
