//! The top-level encoder: frames in, decodable bitstream + statistics out.

use crate::batch::run_ordered;
use crate::bitstream::{mode_mask, shape_mask, SequenceHeader};
use crate::codecs::{CodecId, ToolSet};
use crate::deblock::deblock_plane;
use crate::entropy::RangeEncoder;
use crate::error::CodecError;
use crate::frame_coder::{
    code_sb_chroma, code_superblock, plan_superblock, CoderConfig, CoderState, NodePlan,
    PlanScratch,
};
use crate::mc::MotionVector;
use crate::params::{qindex_to_qstep, EncoderParams};
use crate::params::{MAX_QINDEX, MIN_QINDEX};
use crate::taskgraph::{plan_layout, FrameTaskTrace, PlanLayout, PlanUnit, TaskTrace};
use vstress_trace::{CountingProbe, Kernel, NullProbe, Probe, RecordingProbe};
use vstress_video::{Clip, Frame};

/// Branch-site PC of the rate-control row loop.
///
/// The value is the `site_pc!()` hash (file/line/column) this site had
/// when it landed, pinned as a constant: every simulated predictor
/// table is indexed by these PCs, so letting them float with source
/// layout would re-warm different entries — and change every
/// characterization number — on any refactor that moves a line.
const RATE_CONTROL_BRANCH_PC: u64 = 0x5142_9d61_5940;

/// Result of encoding a clip.
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// The decodable bitstream (header + range-coded payload).
    pub bitstream: Vec<u8>,
    /// Encoded bits attributed to each frame.
    pub frame_bits: Vec<u64>,
    /// Luma PSNR of each reconstructed frame vs. the source.
    pub frame_psnr: Vec<f64>,
    /// Reconstructed frames (cropped to source dimensions).
    pub recon: Vec<Frame>,
    /// Bitrate in kbps at the clip's frame rate.
    pub bitrate_kbps: f64,
    /// Per-frame, per-superblock-row instruction costs for the threading
    /// study (all zeros when encoding under a non-counting probe).
    pub tasks: TaskTrace,
    /// Where the bits went, by syntax category.
    pub bit_accounting: crate::frame_coder::BitAccounting,
}

impl EncodeResult {
    /// Mean luma PSNR across frames.
    pub fn mean_psnr(&self) -> f64 {
        if self.frame_psnr.is_empty() {
            0.0
        } else {
            self.frame_psnr.iter().sum::<f64>() / self.frame_psnr.len() as f64
        }
    }

    /// Total encoded bits.
    pub fn total_bits(&self) -> u64 {
        self.frame_bits.iter().sum()
    }
}

/// A configured encoder for one codec model.
#[derive(Debug, Clone)]
pub struct Encoder {
    tools: ToolSet,
    params: EncoderParams,
}

impl Encoder {
    /// Creates an encoder for `codec` with the given parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParams`] when the parameters are out of
    /// the codec's range.
    pub fn new(codec: CodecId, params: EncoderParams) -> Result<Self, CodecError> {
        let tools = ToolSet::resolve(codec, &params)?;
        Ok(Encoder { tools, params })
    }

    /// Creates an encoder from an explicit tool set, bypassing the preset
    /// tables — the entry point for tool-level ablations (e.g. forcing a
    /// single reference frame or a reduced partition grammar).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParams`] when the parameters are out of
    /// the tool set's codec range or the tool set is degenerate.
    pub fn with_tools(tools: ToolSet, params: EncoderParams) -> Result<Self, CodecError> {
        params.validate(tools.codec.max_crf(), tools.codec.max_preset())?;
        if tools.partition_shapes.is_empty() || tools.intra_modes.is_empty() {
            return Err(CodecError::InvalidParams {
                what: "tools",
                detail: "partition shapes and intra modes must be nonempty".to_owned(),
            });
        }
        if !(1..=2).contains(&tools.ref_frames) {
            return Err(CodecError::InvalidParams {
                what: "tools.ref_frames",
                detail: format!("{} not in 1..=2", tools.ref_frames),
            });
        }
        Ok(Encoder { tools, params })
    }

    /// The codec this encoder models.
    pub fn codec(&self) -> CodecId {
        self.tools.codec
    }

    /// The resolved tool set (for inspection and tests).
    pub fn tools(&self) -> &ToolSet {
        &self.tools
    }

    /// The user parameters.
    pub fn params(&self) -> &EncoderParams {
        &self.params
    }

    /// Encodes `clip`, reporting all instrumentation through `probe`.
    ///
    /// Equivalent to [`Encoder::encode_with`] at one tile worker (the
    /// canonical serial execution).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnsupportedInput`] for clips that exceed the
    /// header's 16-bit geometry fields.
    pub fn encode<P: Probe>(&self, clip: &Clip, probe: &mut P) -> Result<EncodeResult, CodecError> {
        self.encode_with(clip, probe, 1)
    }

    /// Encodes `clip` with the partition search decomposed into the
    /// codec's tile/wavefront plan units
    /// ([`plan_layout`](crate::taskgraph::plan_layout)) and executed on
    /// up to `tile_workers` worker threads.
    ///
    /// The result is **worker-count invariant**: every unit records its
    /// probe events into a private
    /// [`EventBatch`](vstress_trace::EventBatch) and the batches are
    /// replayed into `probe` in canonical merge order (tile-major,
    /// row-major within tile), so the bitstream, the reconstruction, the
    /// task trace, and the full probe event stream — branch PCs included
    /// — are byte-identical to the serial encode (pinned by the
    /// `tile_equivalence` oracle; comparisons across separate encode
    /// calls go through the model's first-touch page canonicalization,
    /// since the synthetic allocator hands each encode fresh page
    /// bases).
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::UnsupportedInput`] for clips that exceed the
    /// header's 16-bit geometry fields.
    ///
    /// # Panics
    ///
    /// Panics if `tile_workers` is zero.
    pub fn encode_with<P: Probe>(
        &self,
        clip: &Clip,
        probe: &mut P,
        tile_workers: usize,
    ) -> Result<EncodeResult, CodecError> {
        assert!(tile_workers > 0, "need at least one tile worker thread");
        let (w, h) = clip.dimensions();
        if w > u16::MAX as usize || h > u16::MAX as usize || clip.frames().len() > u16::MAX as usize
        {
            return Err(CodecError::UnsupportedInput {
                reason: format!(
                    "clip geometry {w}x{h} x {} frames exceeds header fields",
                    clip.frames().len()
                ),
            });
        }
        let base_cfg = CoderConfig::from_tools(&self.tools, self.params.crf);
        let sb = self.tools.superblock;
        let header = SequenceHeader {
            codec: self.tools.codec,
            width: w as u16,
            height: h as u16,
            frame_count: clip.frames().len() as u16,
            fps: clip.fps().round() as u16,
            qindex: base_cfg.qindex,
            superblock: sb as u8,
            min_block: self.tools.min_block as u8,
            max_depth: self.tools.max_depth as u8,
            shape_mask: shape_mask(&base_cfg.shapes),
            mode_mask: mode_mask(&base_cfg.modes),
            ref_frames: self.tools.ref_frames as u8,
            keyint: self.params.keyint,
        };
        let mut bitstream = Vec::new();
        header.write(&mut bitstream);

        let mut enc = RangeEncoder::new();
        let mut state = CoderState::new();
        let mut plan_scratch = PlanScratch::new();
        // Reference list: [last, golden]. The golden frame refreshes every
        // GOLDEN_INTERVAL frames, giving the second reference a longer
        // temporal reach (flicker/occlusion content benefits).
        let mut last_recon: Option<Frame> = None;
        let mut golden_recon: Option<Frame> = None;
        let mut frame_bits = Vec::new();
        let mut frame_psnr = Vec::new();
        let mut recon_out = Vec::new();
        let mut tasks = TaskTrace::default();
        let mut bits_mark = 0u64;

        for (frame_no, src) in clip.frames().iter().enumerate() {
            probe.set_kernel(Kernel::FrameSetup);
            probe.alu(64);
            let padded_src = pad_to_multiple(src, sb);
            let (pw, ph) = (padded_src.width(), padded_src.height());
            let mut recon = Frame::new(pw, ph).map_err(CodecError::Video)?;
            let mut frame_trace = FrameTaskTrace::default();
            let lookahead_mark = probe.retired();
            // Rate control: the lookahead measures frame activity and the
            // CRF controller adapts the frame quantizer around the base —
            // busier frames take a coarser Q (constant-quality behaviour).
            let activity = rate_control_pass(probe, &padded_src);
            let qindex = frame_qindex(base_cfg.qindex, activity, pw * ph);
            let mut cfg = base_cfg.clone();
            cfg.qindex = qindex;
            // The frame header: the chosen quantizer, signalled.
            enc.encode_literal(probe, qindex as u32, 8);
            frame_trace.lookahead = probe.retired() - lookahead_mark;

            // Assemble the reference list for this frame. References are
            // borrowed, not copied: stable buffer addresses across frames
            // are what give the cache simulation its cross-frame reuse.
            // Keyframes take no references (intra-only).
            let is_keyframe = frame_no == 0
                || (self.params.keyint > 0 && frame_no % self.params.keyint as usize == 0);
            let mut refs: Vec<&Frame> = Vec::new();
            if !is_keyframe {
                if let Some(l) = &last_recon {
                    refs.push(l);
                }
                if self.tools.ref_frames > 1 {
                    if let Some(g) = &golden_recon {
                        refs.push(g);
                    }
                }
            }
            let refs_slice: &[&Frame] = &refs;

            // Phase A — partition search, decomposed into the codec's
            // tile/wavefront plan units. Planning reads only the source
            // and the (finalized) references, never this frame's
            // reconstruction, so units without a seed dependency are
            // data-independent and can run on worker threads.
            let sb_cols = pw / sb;
            let sb_row_count = ph / sb;
            let layout = plan_layout(self.tools.codec, sb_cols, sb_row_count);
            let (plan_grid, plan_units) = plan_frame(
                probe,
                &self.tools,
                &cfg,
                &padded_src,
                refs_slice,
                &layout,
                (sb_cols, sb_row_count),
                tile_workers,
                &mut plan_scratch,
            )?;
            let mut row_plan_cost = vec![0u64; sb_row_count];
            for u in &plan_units {
                row_plan_cost[u.row] += u.cost;
            }
            frame_trace.plan_units = plan_units;

            // Phase B — coding: entropy coding, reconstruction and the
            // adaptive contexts are a single serial chain over the frame
            // raster (one range coder defines the bitstream), exactly as
            // before the decomposition.
            let mut plan_grid = plan_grid;
            for row in 0..sb_row_count {
                let code_mark = probe.retired();
                let sy = row * sb;
                for col in 0..sb_cols {
                    let sx = col * sb;
                    let rect =
                        crate::blocks::BlockRect::new(sx, sy, sb.min(pw - sx), sb.min(ph - sy));
                    let plan =
                        plan_grid[row * sb_cols + col].take().expect("every superblock planned");
                    let info = code_superblock(
                        probe,
                        &self.tools,
                        &cfg,
                        &padded_src,
                        refs_slice,
                        &plan,
                        &mut enc,
                        &mut state,
                        &mut recon,
                    );
                    code_sb_chroma(
                        probe,
                        &cfg,
                        &padded_src,
                        refs_slice,
                        rect,
                        &info,
                        &mut enc,
                        &mut state,
                        &mut recon,
                    );
                }
                frame_trace.sb_rows.push(row_plan_cost[row] + (probe.retired() - code_mark));
            }

            // In-loop filtering (frame-serial stage).
            let filter_mark = probe.retired();
            let qstep = qindex_to_qstep(cfg.qindex);
            deblock_plane(probe, recon.luma_mut(), 8, qstep);
            deblock_plane(probe, recon.cb_mut(), 4, qstep);
            deblock_plane(probe, recon.cr_mut(), 4, qstep);
            frame_trace.filter = probe.retired() - filter_mark;
            tasks.frames.push(frame_trace);

            let bits_now = enc.bits_written();
            frame_bits.push(bits_now - bits_mark);
            bits_mark = bits_now;
            frame_psnr.push(region_psnr(src, &recon, w, h));
            recon_out.push(crop(&recon, w, h)?);
            // The reconstruction is final: edge-pad it once so that
            // clamped-MV reference reads in the next frames' motion
            // search hit the contiguous interior path (probe addresses
            // are unaffected — see `Plane::pad_borders`).
            recon.luma_mut().pad_borders();
            recon.cb_mut().pad_borders();
            recon.cr_mut().pad_borders();
            if frame_no % GOLDEN_INTERVAL == 0 {
                golden_recon = Some(recon.clone());
            }
            last_recon = Some(recon);
        }

        let payload = enc.finish();
        // Attribute the flush tail + header to the last frame.
        if let Some(last) = frame_bits.last_mut() {
            *last += (payload.len() as u64 * 8).saturating_sub(bits_mark)
                + SequenceHeader::BYTES as u64 * 8;
        }
        bitstream.extend_from_slice(&payload);

        let total_bits: u64 = frame_bits.iter().sum();
        let kbps =
            vstress_video::metrics::bitrate_kbps(total_bits, clip.frames().len(), clip.fps());
        Ok(EncodeResult {
            bitstream,
            frame_bits,
            frame_psnr,
            recon: recon_out,
            bitrate_kbps: kbps,
            tasks,
            bit_accounting: state.bits,
        })
    }
}

/// Runs Phase A for one frame: plans every superblock, unit by unit
/// along the layout's chains, and returns the plans (raster-indexed)
/// plus the measured per-unit costs in canonical order.
///
/// Serial execution (one worker, or a single chain) runs the units in
/// canonical order directly against `probe` — the stream that *defines*
/// the merge contract. Parallel execution records each unit into a
/// private [`EventBatch`](vstress_trace::EventBatch) on its worker (a
/// live thread-local probe, so the leaf memo stays bypassed exactly as
/// under a live serial probe) and replays the batches into `probe` in
/// canonical order. Unit costs are retired-counter deltas — a pure
/// additive function of the event stream — so both paths measure
/// identical values.
#[allow(clippy::too_many_arguments)]
fn plan_frame<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    layout: &PlanLayout,
    (sb_cols, sb_rows): (usize, usize),
    tile_workers: usize,
    scratch: &mut PlanScratch,
) -> Result<(Vec<Option<NodePlan>>, Vec<PlanUnit>), CodecError> {
    let sb = tools.superblock;
    let (pw, ph) = (src.width(), src.height());
    let rect_of = |col: usize, row: usize| {
        crate::blocks::BlockRect::new(
            col * sb,
            row * sb,
            sb.min(pw - col * sb),
            sb.min(ph - row * sb),
        )
    };
    let mut grid: Vec<Option<NodePlan>> = (0..sb_cols * sb_rows).map(|_| None).collect();
    let mut units: Vec<PlanUnit> = Vec::with_capacity(layout.chains.len());

    if tile_workers <= 1 || layout.chains.len() <= 1 {
        for chain in &layout.chains {
            let mut seed = MotionVector::ZERO;
            for unit in &chain.units {
                let mark = probe.retired();
                for col in unit.cols.clone() {
                    let plan = plan_superblock(
                        probe,
                        tools,
                        cfg,
                        src,
                        refs,
                        rect_of(col, unit.row),
                        &mut seed,
                        scratch,
                    );
                    grid[unit.row * sb_cols + col] = Some(plan);
                }
                units.push(PlanUnit {
                    tile: unit.tile,
                    row: unit.row,
                    chunk: unit.chunk,
                    cost: probe.retired() - mark,
                });
            }
        }
        return Ok((grid, units));
    }

    let workers = tile_workers.min(layout.chains.len());
    if probe.is_live() {
        // Record every unit on its worker, then merge canonically.
        let per_chain = run_ordered(layout.chains.len(), workers, |ci| {
            let chain = &layout.chains[ci];
            let mut local = CountingProbe::new();
            let mut scratch = PlanScratch::new();
            let mut seed = MotionVector::ZERO;
            let mut out = Vec::with_capacity(chain.units.len());
            for unit in &chain.units {
                let mut rec = RecordingProbe::new(&mut local);
                let mut plans = Vec::with_capacity(unit.cols.len());
                for col in unit.cols.clone() {
                    plans.push(plan_superblock(
                        &mut rec,
                        tools,
                        cfg,
                        src,
                        refs,
                        rect_of(col, unit.row),
                        &mut seed,
                        &mut scratch,
                    ));
                }
                out.push((rec.into_batch(), plans));
            }
            Ok::<_, CodecError>(out)
        })?;
        for (chain, chain_out) in layout.chains.iter().zip(per_chain) {
            for (unit, (batch, plans)) in chain.units.iter().zip(chain_out) {
                let mark = probe.retired();
                batch.replay(probe);
                units.push(PlanUnit {
                    tile: unit.tile,
                    row: unit.row,
                    chunk: unit.chunk,
                    cost: probe.retired() - mark,
                });
                for (col, plan) in unit.cols.clone().zip(plans) {
                    grid[unit.row * sb_cols + col] = Some(plan);
                }
            }
        }
    } else {
        // Dead probe: nothing downstream observes events, so skip the
        // recording entirely — each worker plans under its own dead
        // probe (the leaf memo is active on both the serial path and
        // this one, and memoization is exact, so the plans are identical
        // either way) and unit costs stay zero, matching the serial
        // retired deltas under a dead probe.
        let per_chain = run_ordered(layout.chains.len(), workers, |ci| {
            let chain = &layout.chains[ci];
            let mut null = NullProbe;
            let mut scratch = PlanScratch::new();
            let mut seed = MotionVector::ZERO;
            let mut out = Vec::with_capacity(chain.units.len());
            for unit in &chain.units {
                let mut plans = Vec::with_capacity(unit.cols.len());
                for col in unit.cols.clone() {
                    plans.push(plan_superblock(
                        &mut null,
                        tools,
                        cfg,
                        src,
                        refs,
                        rect_of(col, unit.row),
                        &mut seed,
                        &mut scratch,
                    ));
                }
                out.push(plans);
            }
            Ok::<_, CodecError>(out)
        })?;
        for (chain, chain_out) in layout.chains.iter().zip(per_chain) {
            for (unit, plans) in chain.units.iter().zip(chain_out) {
                units.push(PlanUnit { tile: unit.tile, row: unit.row, chunk: unit.chunk, cost: 0 });
                for (col, plan) in unit.cols.clone().zip(plans) {
                    grid[unit.row * sb_cols + col] = Some(plan);
                }
            }
        }
    }
    Ok((grid, units))
}

/// Frames between golden-reference refreshes.
pub const GOLDEN_INTERVAL: usize = 8;

/// The CRF controller: adapts the frame quantizer around the base qindex
/// by the lookahead's activity measure. Busier frames take a coarser
/// quantizer (up to +8), flat frames a finer one (down to −8) — the
/// constant-quality adaptation CRF performs in real encoders.
pub fn frame_qindex(base: u8, activity: u64, pixels: usize) -> u8 {
    // Activity is a sum of 4x4-subsampled horizontal gradients; normalize
    // to per-256-pixel units.
    let per256 = (activity * 256 / (pixels as u64 / 16).max(1)).max(1);
    let delta = (((per256 as f64) / 96.0).log2() * 4.0).round().clamp(-8.0, 8.0) as i32;
    (base as i32 + delta).clamp(MIN_QINDEX as i32, MAX_QINDEX as i32) as u8
}

/// Pads a frame to a multiple of `sb` by border replication (the standard
/// encoder-internal alignment).
pub fn pad_to_multiple(src: &Frame, sb: usize) -> Frame {
    let w = src.width();
    let h = src.height();
    let pw = w.div_ceil(sb) * sb;
    let ph = h.div_ceil(sb) * sb;
    if pw == w && ph == h {
        return src.clone();
    }
    let mut out = Frame::new(pw, ph).expect("padded geometry is valid");
    let copy_plane = |dst: &mut vstress_video::Plane, sp: &vstress_video::Plane| {
        for y in 0..dst.height() {
            for x in 0..dst.width() {
                dst.set(x, y, sp.get_clamped(x as isize, y as isize));
            }
        }
    };
    copy_plane(out.luma_mut(), src.luma());
    copy_plane(out.cb_mut(), src.cb());
    copy_plane(out.cr_mut(), src.cr());
    out
}

/// Crops a (padded) frame back to `w x h`.
pub fn crop(src: &Frame, w: usize, h: usize) -> Result<Frame, CodecError> {
    if src.width() == w && src.height() == h {
        return Ok(src.clone());
    }
    let mut out = Frame::new(w, h).map_err(CodecError::Video)?;
    let copy_plane = |dst: &mut vstress_video::Plane, sp: &vstress_video::Plane| {
        for y in 0..dst.height() {
            for x in 0..dst.width() {
                dst.set(x, y, sp.get(x, y));
            }
        }
    };
    copy_plane(out.luma_mut(), src.luma());
    copy_plane(out.cb_mut(), src.cb());
    copy_plane(out.cr_mut(), src.cr());
    Ok(out)
}

/// Luma PSNR over the `w x h` source region of a (possibly padded) recon.
fn region_psnr(src: &Frame, recon: &Frame, w: usize, h: usize) -> f64 {
    let (a, b) = (src.luma(), recon.luma());
    let mut acc = 0u64;
    for y in 0..h {
        for x in 0..w {
            let d = a.get(x, y) as i64 - b.get(x, y) as i64;
            acc += (d * d) as u64;
        }
    }
    vstress_video::metrics::mse_to_psnr(acc as f64 / (w * h) as f64)
}

/// The rate-control / lookahead pass: a downsampled activity analysis of
/// the frame (serial per frame — the stage that throttles x265's threading
/// in the task-graph model). Returns the activity measure the CRF
/// controller consumes.
fn rate_control_pass<P: Probe>(probe: &mut P, frame: &Frame) -> u64 {
    probe.set_kernel(Kernel::RateControl);
    let luma = frame.luma();
    let mut activity = 0u64;
    for y in (0..luma.height()).step_by(4) {
        for x in (4..luma.width()).step_by(4) {
            activity += (luma.get(x, y) as i64 - luma.get(x - 4, y) as i64).unsigned_abs();
        }
        probe.load(luma.sample_addr(0, y), 32);
        probe.avx((luma.width() as u64 / 4).div_ceil(8));
        probe.alu(2);
        probe.branch(RATE_CONTROL_BRANCH_PC, y + 4 < luma.height());
    }
    probe.alu(activity % 3); // data-dependent tail work
    activity
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::{CountingProbe, NullProbe};
    use vstress_video::vbench::{self, FidelityConfig};

    fn smoke_clip(name: &str) -> Clip {
        vbench::clip(name).unwrap().synthesize(&FidelityConfig::smoke())
    }

    #[test]
    fn encode_produces_bits_and_reasonable_psnr() {
        let clip = smoke_clip("desktop");
        let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(40, 8)).unwrap();
        let out = enc.encode(&clip, &mut NullProbe).unwrap();
        assert!(out.total_bits() > 0);
        assert!(out.mean_psnr() > 24.0, "psnr {}", out.mean_psnr());
        assert_eq!(out.recon.len(), clip.frames().len());
        assert_eq!(out.recon[0].width(), clip.dimensions().0);
    }

    #[test]
    fn lower_crf_means_better_quality_and_more_bits() {
        let clip = smoke_clip("game2");
        let hi_q = Encoder::new(CodecId::SvtAv1, EncoderParams::new(10, 8)).unwrap();
        let lo_q = Encoder::new(CodecId::SvtAv1, EncoderParams::new(60, 8)).unwrap();
        let a = hi_q.encode(&clip, &mut NullProbe).unwrap();
        let b = lo_q.encode(&clip, &mut NullProbe).unwrap();
        assert!(a.mean_psnr() > b.mean_psnr(), "{} vs {}", a.mean_psnr(), b.mean_psnr());
        assert!(a.total_bits() > b.total_bits(), "{} vs {}", a.total_bits(), b.total_bits());
    }

    #[test]
    fn av1_model_burns_more_instructions_than_x264() {
        let clip = smoke_clip("bike");
        let svt = Encoder::new(CodecId::SvtAv1, EncoderParams::new(30, 4)).unwrap();
        let x264 = Encoder::new(CodecId::X264, EncoderParams::new(24, 5)).unwrap();
        let mut p1 = CountingProbe::new();
        let mut p2 = CountingProbe::new();
        svt.encode(&clip, &mut p1).unwrap();
        x264.encode(&clip, &mut p2).unwrap();
        assert!(
            p1.mix().total() > p2.mix().total() * 3,
            "SVT {} vs x264 {}",
            p1.mix().total(),
            p2.mix().total()
        );
    }

    #[test]
    fn task_trace_covers_all_sb_rows() {
        let clip = smoke_clip("cat");
        let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(50, 8)).unwrap();
        let mut probe = CountingProbe::new();
        let out = enc.encode(&clip, &mut probe).unwrap();
        assert_eq!(out.tasks.frames.len(), clip.frames().len());
        let (_, h) = clip.dimensions();
        let rows = h.div_ceil(32);
        for f in &out.tasks.frames {
            assert_eq!(f.sb_rows.len(), rows);
            assert!(f.sb_rows.iter().all(|&c| c > 0), "every row did work");
            assert!(f.lookahead > 0 && f.filter > 0);
        }
    }

    #[test]
    fn padding_and_crop_roundtrip() {
        let clip = smoke_clip("holi");
        let f = &clip.frames()[0];
        let padded = pad_to_multiple(f, 32);
        assert_eq!(padded.width() % 32, 0);
        assert_eq!(padded.height() % 32, 0);
        let back = crop(&padded, f.width(), f.height()).unwrap();
        assert_eq!(&back, f);
    }

    #[test]
    fn rate_control_tracks_activity() {
        // Flat content must get a finer quantizer than busy content.
        let flat = frame_qindex(60, 10, 64 * 64);
        let busy = frame_qindex(60, 4_000_000, 64 * 64);
        assert!(flat < 60, "flat frame should lower qindex: {flat}");
        assert!(busy > 60, "busy frame should raise qindex: {busy}");
        // Deltas are clamped to +-8 and the qindex range.
        assert!(busy <= 68);
        assert!(frame_qindex(6, 0, 1024) >= crate::params::MIN_QINDEX);
        assert!(frame_qindex(96, u64::MAX / 1024, 1024) <= crate::params::MAX_QINDEX);
    }

    #[test]
    fn golden_reference_helps_flickering_content() {
        // Frames alternate A,B,A,B…: the golden reference (frame 0 = A)
        // predicts the A frames far better than the previous frame (B).
        use vstress_video::synth::{SceneClass, SynthParams};
        let a = SynthParams {
            width: 64,
            height: 48,
            frame_count: 1,
            fps: 30.0,
            entropy: 5.0,
            class: SceneClass::Natural,
            seed: 11,
        }
        .synthesize("a")
        .unwrap();
        let b = SynthParams {
            width: 64,
            height: 48,
            frame_count: 1,
            fps: 30.0,
            entropy: 5.0,
            class: SceneClass::Natural,
            seed: 99,
        }
        .synthesize("b")
        .unwrap();
        let frames: Vec<Frame> = (0..6)
            .map(|i| if i % 2 == 0 { a.frames()[0].clone() } else { b.frames()[0].clone() })
            .collect();
        let clip = Clip::from_frames("flicker", frames, 30.0).unwrap();
        let params = EncoderParams::new(35, 4);
        let two_ref = Encoder::new(CodecId::SvtAv1, params).unwrap();
        assert_eq!(two_ref.tools().ref_frames, 2);
        let mut one_ref_tools = two_ref.tools().clone();
        one_ref_tools.ref_frames = 1;
        let one_ref = Encoder::with_tools(one_ref_tools, params).unwrap();
        let with2 = two_ref.encode(&clip, &mut NullProbe).unwrap();
        let with1 = one_ref.encode(&clip, &mut NullProbe).unwrap();
        assert!(
            with2.total_bits() < with1.total_bits(),
            "golden ref must cut flicker bits: {} vs {}",
            with2.total_bits(),
            with1.total_bits()
        );
    }

    #[test]
    fn keyframes_roundtrip_and_cost_more_bits() {
        let clip = smoke_clip("game2");
        let base = EncoderParams::new(35, 6);
        let keyed = base.with_keyint(2);
        let enc_base = Encoder::new(CodecId::SvtAv1, base).unwrap();
        let enc_keyed = Encoder::new(CodecId::SvtAv1, keyed).unwrap();
        let out_base = enc_base.encode(&clip, &mut NullProbe).unwrap();
        let out_keyed = enc_keyed.encode(&clip, &mut NullProbe).unwrap();
        // Intra-only refresh frames cost extra bits.
        assert!(
            out_keyed.total_bits() > out_base.total_bits(),
            "{} vs {}",
            out_keyed.total_bits(),
            out_base.total_bits()
        );
        // And the stream still decodes to the encoder's reconstruction.
        let dec =
            crate::decoder::Decoder::new().decode(&out_keyed.bitstream, &mut NullProbe).unwrap();
        assert_eq!(dec.header.keyint, 2);
        for (d, r) in dec.frames.iter().zip(&out_keyed.recon) {
            assert_eq!(d, r);
        }
    }

    #[test]
    fn with_tools_validates() {
        let params = EncoderParams::new(30, 4);
        let mut tools = crate::codecs::ToolSet::resolve(CodecId::X264, &params).unwrap();
        tools.ref_frames = 5;
        assert!(Encoder::with_tools(tools, params).is_err());
    }

    #[test]
    fn oversized_clip_is_rejected() {
        // Construct a fake-long clip by lying about geometry through the
        // public API: 70k frames is unrepresentable.
        let frames = vec![Frame::new(16, 16).unwrap(); 2];
        let clip = Clip::from_frames("tiny", frames, 30.0).unwrap();
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(20, 5)).unwrap();
        // Valid here; the rejection path is covered by geometry math.
        assert!(enc.encode(&clip, &mut NullProbe).is_ok());
    }
}
