//! Per-encoder threading structure for the thread-scalability study.
//!
//! The paper's Figs. 12–16 show wildly different 1→8-thread speedups:
//! SVT-AV1 ≈ 6×, x264 strong, libaom moderate, x265 ≈ 1.3×, and it
//! attributes the difference to how each encoder *divides work among
//! threads* ("x265 may spread the workload among its cores unevenly").
//! This module encodes those structures: the encoder records real
//! instruction costs for each unit of work ([`TaskTrace`], filled during
//! the single-threaded instrumented encode), and [`build_task_graph`]
//! assembles the dependency graph that codec's threading model implies.
//! `vstress-sched` then schedules the graph on N cores.
//!
//! Threading models (from the encoders' documented designs):
//!
//! * **SVT-AV1** — a picture-level pipeline of decoupled segment tasks:
//!   superblock rows across *consecutive frames* proceed concurrently,
//!   gated only by the reference row they need (motion range). Abundant
//!   parallelism ⇒ near-linear scaling.
//! * **x264** — sliced wavefront within a frame: row `r` of frame `f`
//!   depends on row `r-1` (and, across frames, the co-located reference
//!   row). Good scaling that tapers with few rows.
//! * **libaom** — tile-level parallelism within a frame, frames serial:
//!   parallelism bounded by tile count.
//! * **x265** — wavefront rows, but a *serial* per-frame lookahead/rate-
//!   control stage on the main thread gates every frame, and the filter
//!   stage is serial too: Amdahl caps the speedup near the paper's 1.3×.

use crate::codecs::CodecId;

/// Instruction costs measured during an instrumented encode.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskTrace {
    /// Per-frame measurements, in display order.
    pub frames: Vec<FrameTaskTrace>,
}

/// One frame's measured work, split by pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FrameTaskTrace {
    /// Instructions retired per superblock row (mode decision + coding).
    pub sb_rows: Vec<u64>,
    /// Lookahead / rate-control stage instructions (serial per frame).
    pub lookahead: u64,
    /// In-loop filter stage instructions (serial per frame).
    pub filter: u64,
}

impl TaskTrace {
    /// Total measured instructions.
    pub fn total_instructions(&self) -> u64 {
        self.frames.iter().map(|f| f.sb_rows.iter().sum::<u64>() + f.lookahead + f.filter).sum()
    }
}

/// What a task models (used for reporting and contention classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TaskKind {
    /// Per-frame lookahead / rate control (serial stage).
    Lookahead,
    /// A superblock-row (or tile) coding task.
    CodeRow,
    /// Per-frame in-loop filtering.
    Filter,
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Task {
    /// Stable id (index into the graph's task list).
    pub id: usize,
    /// Work in instructions.
    pub cost: u64,
    /// What this task is.
    pub kind: TaskKind,
    /// Frame the task belongs to.
    pub frame: usize,
    /// Ids of tasks that must complete first.
    pub deps: Vec<usize>,
    /// Whether the codec pins this task to the main thread (x265's
    /// lookahead model).
    pub main_thread_only: bool,
}

/// A schedulable task graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskGraph {
    /// Tasks, topologically constructable (deps always have smaller ids).
    pub tasks: Vec<Task>,
}

impl TaskGraph {
    /// Sum of all task costs (the serial makespan).
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Length of the longest dependency chain, in instructions (the ideal
    /// infinite-core makespan).
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.tasks.len()];
        for t in &self.tasks {
            let start = t.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
            finish[t.id] = start + t.cost;
        }
        finish.into_iter().max().unwrap_or(0)
    }
}

/// Builds the task graph `codec`'s threading structure implies for the
/// measured `trace`.
pub fn build_task_graph(codec: CodecId, trace: &TaskTrace) -> TaskGraph {
    match codec {
        CodecId::SvtAv1 => svt_pipeline(trace),
        CodecId::X264 => wavefront(trace, false),
        CodecId::X265 => wavefront(trace, true),
        CodecId::Libaom | CodecId::LibvpxVp9 => tiles(trace),
    }
}

/// SVT-AV1: fine-grained segment tasks across a frame pipeline. Each
/// superblock row is split into independent segments; segment `(r, c)` of
/// frame `f` depends only on the co-located ±1-row segments of frame
/// `f-1` (its motion range) — there are *no* intra-frame dependencies
/// between segments, which is the decoupled picture-pipeline design the
/// SVT papers describe and the source of its near-linear scaling.
fn svt_pipeline(trace: &TaskTrace) -> TaskGraph {
    const SEGMENTS: usize = 4;
    let mut g = TaskGraph::default();
    let mut prev_segments: Vec<Vec<usize>> = Vec::new();
    let mut prev_la: Option<usize> = None;
    let mut prev_filter: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        // SVT's picture manager / rate control is a serial chain — the
        // Amdahl term that caps its scaling near the paper's ~6x.
        let la_deps = prev_la.into_iter().collect();
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, false);
        prev_la = Some(la);
        let mut rows: Vec<Vec<usize>> = Vec::with_capacity(ft.sb_rows.len());
        for (r, &row_cost) in ft.sb_rows.iter().enumerate() {
            let seg_cost = row_cost / SEGMENTS as u64;
            let mut segs = Vec::with_capacity(SEGMENTS);
            for c in 0..SEGMENTS {
                let mut deps = vec![la];
                // Motion search reads the deblocked reference: the
                // previous frame's filter gates each segment.
                if let Some(d) = prev_filter {
                    deps.push(d);
                }
                let lo = r.saturating_sub(1);
                let hi = r + 1;
                for dr in lo..=hi {
                    if let Some(prev_row) = prev_segments.get(dr) {
                        deps.push(prev_row[c]);
                    }
                }
                let cost = if c == SEGMENTS - 1 {
                    row_cost - seg_cost * (SEGMENTS as u64 - 1)
                } else {
                    seg_cost
                };
                segs.push(push(&mut g, cost, TaskKind::CodeRow, f, deps, false));
            }
            rows.push(segs);
        }
        let all: Vec<usize> = rows.iter().flatten().copied().collect();
        prev_filter = Some(push(&mut g, ft.filter, TaskKind::Filter, f, all, false));
        prev_segments = rows;
    }
    g
}

/// x264 / x265: wavefront (WPP) row chunks within each frame. Each row is
/// split into chunks; chunk `c` of row `r` depends on chunk `c-1` of the
/// same row and chunk `min(c+1, last)` of row `r-1` — the classic
/// two-superblock WPP lag at chunk granularity.
///
/// x264 additionally pipelines frames (a chunk waits only on the
/// co-located chunk of the reference frame), giving it the strong early
/// scaling of Fig. 12–15. For x265 (`primary_thread_model`), the paper's
/// hypothesis is modelled directly: the per-frame lookahead is a serial
/// main-thread chain gated on the previous frame's reconstruction, and the
/// leading chunk of every row is pinned to the primary thread ("a primary
/// thread which performs most of the work along with some additional
/// helper threads"), capping the speedup near the observed ~1.3x.
fn wavefront(trace: &TaskTrace, primary_thread_model: bool) -> TaskGraph {
    // x265's helper-thread pool works in coarser units than x264's
    // sliced rows, concentrating work on the primary thread.
    let chunks: usize = if primary_thread_model { 3 } else { 4 };
    let mut g = TaskGraph::default();
    let mut prev_chunks: Vec<Vec<usize>> = Vec::new();
    let mut prev_filter: Option<usize> = None;
    let mut prev_lookahead: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        let mut la_deps = Vec::new();
        if primary_thread_model {
            // x265: lookahead is a serial chain on the main thread and
            // waits for the previous frame to be fully reconstructed.
            if let Some(d) = prev_lookahead {
                la_deps.push(d);
            }
            if let Some(d) = prev_filter {
                la_deps.push(d);
            }
        }
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, primary_thread_model);
        let mut rows_chunks: Vec<Vec<usize>> = Vec::with_capacity(ft.sb_rows.len());
        for (r, &row_cost) in ft.sb_rows.iter().enumerate() {
            let chunk_cost = row_cost / chunks as u64;
            let mut chunk_ids = Vec::with_capacity(chunks);
            for c in 0..chunks {
                let mut deps = vec![la];
                if c > 0 {
                    deps.push(chunk_ids[c - 1]);
                }
                if r > 0 {
                    // WPP lag: wait for the chunk one position ahead in
                    // the row above.
                    let above = &rows_chunks[r - 1];
                    deps.push(above[(c + 1).min(chunks - 1)]);
                }
                if !primary_thread_model {
                    // x264 frame pipeline: the reference must have
                    // reconstructed down to the motion range — two rows
                    // below the co-located chunk.
                    let ref_row = (r + 2).min(trace.frames[f].sb_rows.len() - 1);
                    if let Some(prev_row) = prev_chunks.get(ref_row) {
                        deps.push(prev_row[c]);
                    }
                }
                let cost = if c == chunks - 1 {
                    row_cost - chunk_cost * (chunks as u64 - 1)
                } else {
                    chunk_cost
                };
                let pinned = primary_thread_model && c == 0;
                chunk_ids.push(push(&mut g, cost, TaskKind::CodeRow, f, deps, pinned));
            }
            rows_chunks.push(chunk_ids);
        }
        let all_chunks: Vec<usize> = rows_chunks.iter().flatten().copied().collect();
        let filter = push(&mut g, ft.filter, TaskKind::Filter, f, all_chunks, primary_thread_model);
        prev_chunks = rows_chunks;
        prev_filter = Some(filter);
        prev_lookahead = Some(la);
    }
    g
}

/// libaom / libvpx: tile parallelism inside a frame, frames strictly
/// serial (single-pass, no frame pipeline). Rows stand in for tiles.
fn tiles(trace: &TaskTrace) -> TaskGraph {
    let mut g = TaskGraph::default();
    let mut prev_frame_done: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        let mut la_deps = Vec::new();
        if let Some(d) = prev_frame_done {
            la_deps.push(d);
        }
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, false);
        // Tiles: group rows into up to 4 tiles.
        let rows = &ft.sb_rows;
        let tile_count = rows.len().clamp(1, 4);
        let per = rows.len().div_ceil(tile_count);
        let mut tile_ids = Vec::new();
        for chunk in rows.chunks(per) {
            let cost = chunk.iter().sum();
            tile_ids.push(push(&mut g, cost, TaskKind::CodeRow, f, vec![la], false));
        }
        let filter = push(&mut g, ft.filter, TaskKind::Filter, f, tile_ids, false);
        prev_frame_done = Some(filter);
    }
    g
}

fn push(
    g: &mut TaskGraph,
    cost: u64,
    kind: TaskKind,
    frame: usize,
    deps: Vec<usize>,
    main_thread_only: bool,
) -> usize {
    let id = g.tasks.len();
    debug_assert!(deps.iter().all(|&d| d < id), "deps must precede the task");
    g.tasks.push(Task { id, cost, kind, frame, deps, main_thread_only });
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(frames: usize, rows: usize) -> TaskTrace {
        TaskTrace {
            frames: (0..frames)
                .map(|f| FrameTaskTrace {
                    sb_rows: (0..rows).map(|r| 1000 + (f * r) as u64).collect(),
                    lookahead: 500,
                    filter: 300,
                })
                .collect(),
        }
    }

    #[test]
    fn graphs_preserve_total_work() {
        let t = trace(4, 6);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            assert_eq!(g.total_cost(), t.total_instructions(), "{codec}");
        }
    }

    #[test]
    fn deps_are_topological() {
        let t = trace(3, 5);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            for task in &g.tasks {
                for &d in &task.deps {
                    assert!(d < task.id, "{codec}: dep {d} !< task {}", task.id);
                }
            }
        }
    }

    #[test]
    fn svt_critical_path_is_shortest() {
        // The SVT pipeline exposes the most parallelism, so its critical
        // path must be no longer than the wavefront models'.
        let t = trace(6, 8);
        let svt = build_task_graph(CodecId::SvtAv1, &t).critical_path();
        let x264 = build_task_graph(CodecId::X264, &t).critical_path();
        let x265 = build_task_graph(CodecId::X265, &t).critical_path();
        let aom = build_task_graph(CodecId::Libaom, &t).critical_path();
        assert!(svt <= x264, "svt {svt} x264 {x264}");
        assert!(x264 <= x265, "x264 {x264} x265 {x265}");
        assert!(svt <= aom, "svt {svt} aom {aom}");
    }

    #[test]
    fn x265_pins_serial_stages_to_main_thread() {
        let g = build_task_graph(CodecId::X265, &trace(2, 4));
        assert!(g.tasks.iter().any(|t| t.main_thread_only));
        let g264 = build_task_graph(CodecId::X264, &trace(2, 4));
        assert!(g264.tasks.iter().all(|t| !t.main_thread_only));
    }

    #[test]
    fn critical_path_bounds_total() {
        let t = trace(3, 4);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            assert!(g.critical_path() <= g.total_cost());
            assert!(g.critical_path() > 0);
        }
    }
}
