//! Per-encoder threading structure for the thread-scalability study.
//!
//! The paper's Figs. 12–16 show wildly different 1→8-thread speedups:
//! SVT-AV1 ≈ 6×, x264 strong, libaom moderate, x265 ≈ 1.3×, and it
//! attributes the difference to how each encoder *divides work among
//! threads* ("x265 may spread the workload among its cores unevenly").
//! This module encodes those structures: [`plan_layout`] defines the
//! tile/wavefront unit decomposition the encoder *actually executes*
//! (serially or on `--tile-workers` worker threads), the encoder records
//! the real instruction cost of every unit ([`TaskTrace::frames`]'
//! [`FrameTaskTrace::plan_units`]), and [`build_task_graph`] assembles
//! the dependency graph that codec's threading model implies from those
//! measured units. `vstress-sched` then schedules the graph on N cores.
//!
//! Threading models (from the encoders' documented designs):
//!
//! * **SVT-AV1** — a picture-level pipeline of decoupled segment tasks:
//!   superblock rows across *consecutive frames* proceed concurrently,
//!   gated only by the reference row they need (motion range). Abundant
//!   parallelism ⇒ near-linear scaling.
//! * **x264** — sliced wavefront within a frame: row `r` of frame `f`
//!   depends on row `r-1` (and, across frames, the co-located reference
//!   row). Good scaling that tapers with few rows.
//! * **libaom** — tile-level parallelism within a frame, frames serial:
//!   parallelism bounded by tile count.
//! * **x265** — wavefront rows, but a *serial* per-frame lookahead/rate-
//!   control stage on the main thread gates every frame, and the filter
//!   stage is serial too: Amdahl caps the speedup near the paper's 1.3×.

use crate::codecs::CodecId;
use std::ops::Range;

/// Instruction costs measured during an instrumented encode.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskTrace {
    /// Per-frame measurements, in display order.
    pub frames: Vec<FrameTaskTrace>,
}

/// One frame's measured work, split by pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FrameTaskTrace {
    /// Instructions retired per superblock row (mode decision + coding).
    pub sb_rows: Vec<u64>,
    /// Lookahead / rate-control stage instructions (serial per frame).
    pub lookahead: u64,
    /// In-loop filter stage instructions (serial per frame).
    pub filter: u64,
    /// Measured per-unit partition-search (Phase A) costs, in canonical
    /// merge order (tile-major, row-major within tile, chunk-major
    /// within row) — filled by the encoder's tile/wavefront
    /// decomposition. Empty for synthetic traces and stored runs from
    /// schema v1; the graph builders then fall back to an even split of
    /// each row's cost.
    pub plan_units: Vec<PlanUnit>,
}

/// One executed plan unit's measured cost (see [`PlanLayout`] for the
/// unit geometry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct PlanUnit {
    /// Tile the unit belongs to (0 for non-tiled codecs).
    pub tile: usize,
    /// Superblock row of the unit.
    pub row: usize,
    /// Chunk index within the row.
    pub chunk: usize,
    /// Instructions retired by the unit's partition search.
    pub cost: u64,
}

impl TaskTrace {
    /// Total measured instructions.
    pub fn total_instructions(&self) -> u64 {
        self.frames.iter().map(|f| f.sb_rows.iter().sum::<u64>() + f.lookahead + f.filter).sum()
    }
}

/// How one frame's partition search (Phase A) decomposes into
/// schedulable units for a codec — the *execution* counterpart of
/// [`build_task_graph`]'s modeled shapes, shared by the encoder's
/// tile/wavefront executor and the graph builders so both agree on the
/// geometry.
///
/// Units are grouped into **chains**: the units of a chain share a
/// spatial-MV-seed thread and must run in order on one worker; distinct
/// chains are data-independent and run concurrently. Per codec:
///
/// * **SVT-AV1** — every row chunk is its own single-unit chain (the
///   decoupled segment design: no intra-frame data dependencies);
/// * **x264 / x265** — one chain per superblock row, the row's chunks
///   chained left to right (the WPP seed thread);
/// * **libaom / libvpx** — one chain per tile (a contiguous group of
///   rows), the tile's rows chained top to bottom, tiles independent.
///
/// Iterating chains in order and units within each chain yields the
/// canonical merge order: tile-major, row-major within tile,
/// chunk-major within row — frame raster order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanLayout {
    /// Chains in canonical order.
    pub chains: Vec<PlanChain>,
}

/// One seed-chained sequence of plan units (see [`PlanLayout`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanChain {
    /// Units in execution (and canonical merge) order.
    pub units: Vec<UnitSpan>,
}

/// The superblock span one plan unit covers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitSpan {
    /// Tile the unit belongs to (0 for non-tiled codecs).
    pub tile: usize,
    /// Superblock row.
    pub row: usize,
    /// Chunk index within the row.
    pub chunk: usize,
    /// Superblock columns covered (half-open).
    pub cols: Range<usize>,
}

/// Row chunks the codec's threading model uses (1 = whole rows).
fn row_chunk_count(codec: CodecId) -> usize {
    match codec {
        // SVT segments and x264 sliced rows: 4 chunks; x265's coarser
        // helper units: 3; tile codecs work in whole rows.
        CodecId::SvtAv1 | CodecId::X264 => 4,
        CodecId::X265 => 3,
        CodecId::Libaom | CodecId::LibvpxVp9 => 1,
    }
}

/// Balanced half-open column spans: `min(chunks, cols)` non-empty
/// chunks, sizes differing by at most one, earlier chunks larger.
fn chunk_spans(cols: usize, chunks: usize) -> Vec<Range<usize>> {
    let n = chunks.min(cols).max(1);
    let base = cols / n;
    let rem = cols % n;
    let mut spans = Vec::with_capacity(n);
    let mut start = 0;
    for c in 0..n {
        let len = base + usize::from(c < rem);
        spans.push(start..start + len);
        start += len;
    }
    spans
}

/// Contiguous row groups standing in for tiles: up to 4 tiles, matching
/// the libaom/libvpx graph model.
fn tile_rows(rows: usize) -> Vec<Range<usize>> {
    if rows == 0 {
        return Vec::new();
    }
    // Exactly min(rows, 4) balanced tiles (sizes differ by at most one,
    // earlier tiles larger) — a ceil-divide grouping can collapse to
    // fewer tiles (e.g. 6 rows → 3 tiles of 2), understating the
    // codec's available parallelism.
    chunk_spans(rows, 4)
}

/// Builds the plan-unit decomposition for a `sb_cols` x `sb_rows`
/// superblock grid under `codec`'s threading model (see [`PlanLayout`]).
pub fn plan_layout(codec: CodecId, sb_cols: usize, sb_rows: usize) -> PlanLayout {
    let mut chains = Vec::new();
    match codec {
        CodecId::SvtAv1 => {
            for row in 0..sb_rows {
                for (chunk, cols) in
                    chunk_spans(sb_cols, row_chunk_count(codec)).into_iter().enumerate()
                {
                    chains.push(PlanChain { units: vec![UnitSpan { tile: 0, row, chunk, cols }] });
                }
            }
        }
        CodecId::X264 | CodecId::X265 => {
            for row in 0..sb_rows {
                let units = chunk_spans(sb_cols, row_chunk_count(codec))
                    .into_iter()
                    .enumerate()
                    .map(|(chunk, cols)| UnitSpan { tile: 0, row, chunk, cols })
                    .collect();
                chains.push(PlanChain { units });
            }
        }
        CodecId::Libaom | CodecId::LibvpxVp9 => {
            for (tile, rows) in tile_rows(sb_rows).into_iter().enumerate() {
                let units =
                    rows.map(|row| UnitSpan { tile, row, chunk: 0, cols: 0..sb_cols }).collect();
                chains.push(PlanChain { units });
            }
        }
    }
    PlanLayout { chains }
}

/// Groups a frame's measured plan-unit costs by row (chunk-major within
/// each row, i.e. canonical order preserved).
fn unit_costs_by_row(ft: &FrameTaskTrace, rows: usize) -> Vec<Vec<u64>> {
    let mut by_row = vec![Vec::new(); rows];
    for u in &ft.plan_units {
        if u.row < rows {
            by_row[u.row].push(u.cost);
        }
    }
    by_row
}

/// Splits one row's total cost into per-chunk task costs. With measured
/// plan units, each chunk carries its real search cost plus an even
/// share of the row's (serial-in-execution, row-parallel-in-model)
/// coding cost; without measurements, the legacy even split over
/// `fallback_chunks`.
fn split_row_cost(row_cost: u64, measured: &[u64], fallback_chunks: usize) -> Vec<u64> {
    if measured.is_empty() {
        let n = fallback_chunks.max(1) as u64;
        let per = row_cost / n;
        let mut out = vec![per; fallback_chunks.max(1)];
        *out.last_mut().expect("at least one chunk") = row_cost - per * (n - 1);
        return out;
    }
    let plan_sum: u64 = measured.iter().sum();
    let code_share = row_cost.saturating_sub(plan_sum);
    let n = measured.len() as u64;
    let per = code_share / n;
    let mut out: Vec<u64> = measured.iter().map(|&c| c + per).collect();
    *out.last_mut().expect("measured is nonempty") += code_share - per * n;
    out
}

/// What a task models (used for reporting and contention classes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TaskKind {
    /// Per-frame lookahead / rate control (serial stage).
    Lookahead,
    /// A superblock-row (or tile) coding task.
    CodeRow,
    /// Per-frame in-loop filtering.
    Filter,
}

/// One schedulable task.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Task {
    /// Stable id (index into the graph's task list).
    pub id: usize,
    /// Work in instructions.
    pub cost: u64,
    /// What this task is.
    pub kind: TaskKind,
    /// Frame the task belongs to.
    pub frame: usize,
    /// Ids of tasks that must complete first.
    pub deps: Vec<usize>,
    /// Whether the codec pins this task to the main thread (x265's
    /// lookahead model).
    pub main_thread_only: bool,
}

/// A schedulable task graph.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TaskGraph {
    /// Tasks, topologically constructable (deps always have smaller ids).
    pub tasks: Vec<Task>,
}

impl TaskGraph {
    /// Sum of all task costs (the serial makespan).
    pub fn total_cost(&self) -> u64 {
        self.tasks.iter().map(|t| t.cost).sum()
    }

    /// Length of the longest dependency chain, in instructions (the ideal
    /// infinite-core makespan).
    pub fn critical_path(&self) -> u64 {
        let mut finish = vec![0u64; self.tasks.len()];
        for t in &self.tasks {
            let start = t.deps.iter().map(|&d| finish[d]).max().unwrap_or(0);
            finish[t.id] = start + t.cost;
        }
        finish.into_iter().max().unwrap_or(0)
    }
}

/// Builds the task graph `codec`'s threading structure implies for the
/// measured `trace`.
pub fn build_task_graph(codec: CodecId, trace: &TaskTrace) -> TaskGraph {
    match codec {
        CodecId::SvtAv1 => svt_pipeline(trace),
        CodecId::X264 => wavefront(trace, false),
        CodecId::X265 => wavefront(trace, true),
        CodecId::Libaom | CodecId::LibvpxVp9 => tiles(trace),
    }
}

/// SVT-AV1: fine-grained segment tasks across a frame pipeline. Each
/// superblock row is split into independent segments; segment `(r, c)` of
/// frame `f` depends only on the co-located ±1-row segments of frame
/// `f-1` (its motion range) — there are *no* intra-frame dependencies
/// between segments, which is the decoupled picture-pipeline design the
/// SVT papers describe and the source of its near-linear scaling.
fn svt_pipeline(trace: &TaskTrace) -> TaskGraph {
    const SEGMENTS: usize = 4;
    let mut g = TaskGraph::default();
    let mut prev_segments: Vec<Vec<usize>> = Vec::new();
    let mut prev_la: Option<usize> = None;
    let mut prev_filter: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        // SVT's picture manager / rate control is a serial chain — the
        // Amdahl term that caps its scaling near the paper's ~6x.
        let la_deps = prev_la.into_iter().collect();
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, false);
        prev_la = Some(la);
        let measured = unit_costs_by_row(ft, ft.sb_rows.len());
        let mut rows: Vec<Vec<usize>> = Vec::with_capacity(ft.sb_rows.len());
        for (r, &row_cost) in ft.sb_rows.iter().enumerate() {
            let seg_costs = split_row_cost(row_cost, &measured[r], SEGMENTS);
            let mut segs = Vec::with_capacity(seg_costs.len());
            for (c, &cost) in seg_costs.iter().enumerate() {
                let mut deps = vec![la];
                // Motion search reads the deblocked reference: the
                // previous frame's filter gates each segment.
                if let Some(d) = prev_filter {
                    deps.push(d);
                }
                let lo = r.saturating_sub(1);
                let hi = r + 1;
                for dr in lo..=hi {
                    if let Some(prev_row) = prev_segments.get(dr) {
                        deps.push(prev_row[c.min(prev_row.len() - 1)]);
                    }
                }
                segs.push(push(&mut g, cost, TaskKind::CodeRow, f, deps, false));
            }
            rows.push(segs);
        }
        let all: Vec<usize> = rows.iter().flatten().copied().collect();
        prev_filter = Some(push(&mut g, ft.filter, TaskKind::Filter, f, all, false));
        prev_segments = rows;
    }
    g
}

/// x264 / x265: wavefront (WPP) row chunks within each frame. Each row is
/// split into chunks; chunk `c` of row `r` depends on chunk `c-1` of the
/// same row and chunk `min(c+1, last)` of row `r-1` — the classic
/// two-superblock WPP lag at chunk granularity.
///
/// x264 additionally pipelines frames (a chunk waits only on the
/// co-located chunk of the reference frame), giving it the strong early
/// scaling of Fig. 12–15. For x265 (`primary_thread_model`), the paper's
/// hypothesis is modelled directly: the per-frame lookahead is a serial
/// main-thread chain gated on the previous frame's reconstruction, and the
/// leading chunk of every row is pinned to the primary thread ("a primary
/// thread which performs most of the work along with some additional
/// helper threads"), capping the speedup near the observed ~1.3x.
fn wavefront(trace: &TaskTrace, primary_thread_model: bool) -> TaskGraph {
    // x265's helper-thread pool works in coarser units than x264's
    // sliced rows, concentrating work on the primary thread.
    let chunks: usize = if primary_thread_model { 3 } else { 4 };
    let mut g = TaskGraph::default();
    let mut prev_chunks: Vec<Vec<usize>> = Vec::new();
    let mut prev_filter: Option<usize> = None;
    let mut prev_lookahead: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        let mut la_deps = Vec::new();
        if primary_thread_model {
            // x265: lookahead is a serial chain on the main thread and
            // waits for the previous frame to be fully reconstructed.
            if let Some(d) = prev_lookahead {
                la_deps.push(d);
            }
            if let Some(d) = prev_filter {
                la_deps.push(d);
            }
        }
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, primary_thread_model);
        let measured = unit_costs_by_row(ft, ft.sb_rows.len());
        let mut rows_chunks: Vec<Vec<usize>> = Vec::with_capacity(ft.sb_rows.len());
        for (r, &row_cost) in ft.sb_rows.iter().enumerate() {
            let chunk_costs = split_row_cost(row_cost, &measured[r], chunks);
            let mut chunk_ids = Vec::with_capacity(chunk_costs.len());
            for (c, &cost) in chunk_costs.iter().enumerate() {
                let mut deps = vec![la];
                if c > 0 {
                    // The intra-row chain: in execution this is the
                    // spatial-MV seed handoff, chunk c reads chunk c-1's
                    // final seed.
                    deps.push(chunk_ids[c - 1]);
                }
                if r > 0 {
                    // WPP lag: wait for the chunk one position ahead in
                    // the row above.
                    let above = &rows_chunks[r - 1];
                    deps.push(above[(c + 1).min(above.len() - 1)]);
                }
                if !primary_thread_model {
                    // x264 frame pipeline: the reference must have
                    // reconstructed down to the motion range — two rows
                    // below the co-located chunk.
                    let ref_row = (r + 2).min(trace.frames[f].sb_rows.len() - 1);
                    if let Some(prev_row) = prev_chunks.get(ref_row) {
                        deps.push(prev_row[c.min(prev_row.len() - 1)]);
                    }
                }
                let pinned = primary_thread_model && c == 0;
                chunk_ids.push(push(&mut g, cost, TaskKind::CodeRow, f, deps, pinned));
            }
            rows_chunks.push(chunk_ids);
        }
        let all_chunks: Vec<usize> = rows_chunks.iter().flatten().copied().collect();
        let filter = push(&mut g, ft.filter, TaskKind::Filter, f, all_chunks, primary_thread_model);
        prev_chunks = rows_chunks;
        prev_filter = Some(filter);
        prev_lookahead = Some(la);
    }
    g
}

/// libaom / libvpx: tile parallelism inside a frame, frames strictly
/// serial (single-pass, no frame pipeline). Rows stand in for tiles.
fn tiles(trace: &TaskTrace) -> TaskGraph {
    let mut g = TaskGraph::default();
    let mut prev_frame_done: Option<usize> = None;
    for (f, ft) in trace.frames.iter().enumerate() {
        let mut la_deps = Vec::new();
        if let Some(d) = prev_frame_done {
            la_deps.push(d);
        }
        let la = push(&mut g, ft.lookahead, TaskKind::Lookahead, f, la_deps, false);
        // Tiles: contiguous row groups, the same grouping the encoder's
        // tile executor uses ([`plan_layout`]).
        let mut tile_ids = Vec::new();
        for rows in tile_rows(ft.sb_rows.len()) {
            let cost = ft.sb_rows[rows].iter().sum();
            tile_ids.push(push(&mut g, cost, TaskKind::CodeRow, f, vec![la], false));
        }
        let filter = push(&mut g, ft.filter, TaskKind::Filter, f, tile_ids, false);
        prev_frame_done = Some(filter);
    }
    g
}

fn push(
    g: &mut TaskGraph,
    cost: u64,
    kind: TaskKind,
    frame: usize,
    deps: Vec<usize>,
    main_thread_only: bool,
) -> usize {
    let id = g.tasks.len();
    debug_assert!(deps.iter().all(|&d| d < id), "deps must precede the task");
    g.tasks.push(Task { id, cost, kind, frame, deps, main_thread_only });
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(frames: usize, rows: usize) -> TaskTrace {
        TaskTrace {
            frames: (0..frames)
                .map(|f| FrameTaskTrace {
                    sb_rows: (0..rows).map(|r| 1000 + (f * r) as u64).collect(),
                    lookahead: 500,
                    filter: 300,
                    ..Default::default()
                })
                .collect(),
        }
    }

    /// Like `trace`, but with measured plan units: each row's search
    /// cost split unevenly across the codec's chunk count, summing to
    /// 70% of the row (the rest standing in for coding work).
    fn measured_trace(codec: CodecId, frames: usize, rows: usize, cols: usize) -> TaskTrace {
        let mut t = trace(frames, rows);
        for ft in &mut t.frames {
            for (r, &row_cost) in ft.sb_rows.iter().enumerate() {
                let layout = plan_layout(codec, cols, rows);
                for chain in &layout.chains {
                    for u in &chain.units {
                        if u.row == r {
                            let share = row_cost * 7 / 10 / (u.chunk as u64 + 2);
                            ft.plan_units.push(PlanUnit {
                                tile: u.tile,
                                row: u.row,
                                chunk: u.chunk,
                                cost: share,
                            });
                        }
                    }
                }
            }
        }
        t
    }

    #[test]
    fn layout_covers_every_superblock_once_in_raster_order() {
        for codec in CodecId::ALL {
            for (cols, rows) in [(1, 1), (3, 2), (7, 5), (2, 9)] {
                let layout = plan_layout(codec, cols, rows);
                let mut seen = Vec::new();
                for chain in &layout.chains {
                    for u in &chain.units {
                        assert!(!u.cols.is_empty(), "{codec}: empty unit");
                        for c in u.cols.clone() {
                            seen.push((u.row, c));
                        }
                    }
                }
                let raster: Vec<_> =
                    (0..rows).flat_map(|r| (0..cols).map(move |c| (r, c))).collect();
                assert_eq!(seen, raster, "{codec} {cols}x{rows}: canonical order is raster");
            }
        }
    }

    #[test]
    fn layout_chain_shapes_match_the_threading_models() {
        let svt = plan_layout(CodecId::SvtAv1, 8, 3);
        assert!(svt.chains.iter().all(|c| c.units.len() == 1), "svt segments are independent");
        assert_eq!(svt.chains.len(), 3 * 4);
        let x264 = plan_layout(CodecId::X264, 8, 3);
        assert_eq!(x264.chains.len(), 3, "one chain per row");
        assert!(x264.chains.iter().all(|c| c.units.len() == 4));
        let x265 = plan_layout(CodecId::X265, 8, 3);
        assert!(x265.chains.iter().all(|c| c.units.len() == 3), "x265 uses coarser chunks");
        let aom = plan_layout(CodecId::Libaom, 8, 6);
        assert_eq!(aom.chains.len(), 4, "rows group into up to 4 tiles");
        assert!(aom.chains.iter().all(|c| c.units.iter().all(|u| u.cols == (0..8))));
        // Narrow frames degrade gracefully: chunk count is capped by the
        // superblock columns, never producing an empty unit.
        let narrow = plan_layout(CodecId::SvtAv1, 2, 2);
        assert_eq!(narrow.chains.len(), 2 * 2);
    }

    #[test]
    fn measured_plan_units_preserve_total_work() {
        for codec in CodecId::ALL {
            let t = measured_trace(codec, 3, 5, 9);
            let g = build_task_graph(codec, &t);
            assert_eq!(g.total_cost(), t.total_instructions(), "{codec}");
        }
    }

    #[test]
    fn measured_splits_are_uneven_but_topological() {
        let t = measured_trace(CodecId::SvtAv1, 2, 4, 9);
        let g = build_task_graph(CodecId::SvtAv1, &t);
        for task in &g.tasks {
            for &d in &task.deps {
                assert!(d < task.id);
            }
        }
        // The measured split must actually shape the tasks: segment
        // costs within a row differ (chunk 0 got the biggest share).
        let row_tasks: Vec<u64> = g
            .tasks
            .iter()
            .filter(|t| t.kind == TaskKind::CodeRow && t.frame == 0)
            .map(|t| t.cost)
            .take(4)
            .collect();
        assert!(row_tasks.windows(2).any(|w| w[0] != w[1]), "{row_tasks:?}");
    }

    #[test]
    fn graphs_preserve_total_work() {
        let t = trace(4, 6);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            assert_eq!(g.total_cost(), t.total_instructions(), "{codec}");
        }
    }

    #[test]
    fn deps_are_topological() {
        let t = trace(3, 5);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            for task in &g.tasks {
                for &d in &task.deps {
                    assert!(d < task.id, "{codec}: dep {d} !< task {}", task.id);
                }
            }
        }
    }

    #[test]
    fn svt_critical_path_is_shortest() {
        // The SVT pipeline exposes the most parallelism, so its critical
        // path must be no longer than the wavefront models'.
        let t = trace(6, 8);
        let svt = build_task_graph(CodecId::SvtAv1, &t).critical_path();
        let x264 = build_task_graph(CodecId::X264, &t).critical_path();
        let x265 = build_task_graph(CodecId::X265, &t).critical_path();
        let aom = build_task_graph(CodecId::Libaom, &t).critical_path();
        assert!(svt <= x264, "svt {svt} x264 {x264}");
        assert!(x264 <= x265, "x264 {x264} x265 {x265}");
        assert!(svt <= aom, "svt {svt} aom {aom}");
    }

    #[test]
    fn x265_pins_serial_stages_to_main_thread() {
        let g = build_task_graph(CodecId::X265, &trace(2, 4));
        assert!(g.tasks.iter().any(|t| t.main_thread_only));
        let g264 = build_task_graph(CodecId::X264, &trace(2, 4));
        assert!(g264.tasks.iter().all(|t| !t.main_thread_only));
    }

    #[test]
    fn critical_path_bounds_total() {
        let t = trace(3, 4);
        for codec in CodecId::ALL {
            let g = build_task_graph(codec, &t);
            assert!(g.critical_path() <= g.total_cost());
            assert!(g.critical_path() > 0);
        }
    }
}
