//! User-facing encoder parameters: CRF, speed preset, thread count.

use crate::error::CodecError;

/// Constant-Rate-Factor plus speed-preset parameters, the two dials the
/// paper sweeps.
///
/// CRF ranges differ per codec family exactly as in the paper (§3.3):
/// AV1/VP9-family codecs accept 0–63, H.26x-family 0–51, with *lower* CRF
/// meaning higher quality in both. Preset direction also differs: the
/// AV1/VP9 family counts 0 = slowest/best … 8 = fastest, the x264/x265
/// family 0 = fastest … 9 = slowest; [`crate::codecs::ToolSet`] performs
/// the per-codec normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct EncoderParams {
    /// Constant rate factor (quality dial).
    pub crf: u8,
    /// Speed preset (codec-native direction).
    pub preset: u8,
    /// Maximum worker threads the encoder may use (≥ 1).
    pub threads: usize,
    /// Keyframe (intra-only frame) interval; 0 = only the first frame.
    pub keyint: u8,
}

impl EncoderParams {
    /// Creates parameters with a single thread and no periodic keyframes.
    pub fn new(crf: u8, preset: u8) -> Self {
        EncoderParams { crf, preset, threads: 1, keyint: 0 }
    }

    /// Sets the thread budget.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the keyframe interval (every `keyint`-th frame is coded
    /// intra-only; 0 keeps only the first frame as a keyframe).
    #[must_use]
    pub fn with_keyint(mut self, keyint: u8) -> Self {
        self.keyint = keyint;
        self
    }

    /// Validates against a codec family's ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParams`] when CRF or preset exceed the
    /// family's range or `threads` is zero.
    pub fn validate(&self, max_crf: u8, max_preset: u8) -> Result<(), CodecError> {
        if self.crf > max_crf {
            return Err(CodecError::InvalidParams {
                what: "crf",
                detail: format!("{} exceeds maximum {max_crf}", self.crf),
            });
        }
        if self.preset > max_preset {
            return Err(CodecError::InvalidParams {
                what: "preset",
                detail: format!("{} exceeds maximum {max_preset}", self.preset),
            });
        }
        if self.threads == 0 {
            return Err(CodecError::InvalidParams {
                what: "threads",
                detail: "thread count must be at least 1".to_owned(),
            });
        }
        Ok(())
    }
}

/// Maps a CRF in `[0, max_crf]` onto the internal quantizer index
/// `[MIN_QINDEX, MAX_QINDEX]`.
///
/// All five codec models share one qindex domain so that their quality
/// output is directly comparable; each codec's CRF range is stretched
/// linearly over it, matching how CRF is "a built-in quality control
/// parameter which specifies a certain quality the encoder aims to meet".
pub fn crf_to_qindex(crf: u8, max_crf: u8) -> u8 {
    debug_assert!(crf <= max_crf);
    let t = crf as f64 / max_crf as f64;
    let q = MIN_QINDEX as f64 + t * (MAX_QINDEX - MIN_QINDEX) as f64;
    q.round() as u8
}

/// Smallest quantizer index (finest quantization).
pub const MIN_QINDEX: u8 = 4;
/// Largest quantizer index (coarsest quantization).
pub const MAX_QINDEX: u8 = 96;

/// Quantization step for a quantizer index: an exponential ladder
/// (doubling every 16 indices), like real codecs' q tables.
pub fn qindex_to_qstep(qindex: u8) -> i32 {
    let q = qindex.clamp(MIN_QINDEX, MAX_QINDEX);
    // qstep = 4 * 2^(q/16), in fixed point (floor).
    let base = 4.0 * (2f64).powf(q as f64 / 16.0);
    base.round() as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_ranges() {
        assert!(EncoderParams::new(63, 8).validate(63, 8).is_ok());
        assert!(EncoderParams::new(64, 8).validate(63, 8).is_err());
        assert!(EncoderParams::new(63, 9).validate(63, 8).is_err());
        assert!(EncoderParams::new(10, 2).with_threads(0).validate(63, 8).is_err());
    }

    #[test]
    fn crf_mapping_is_monotone_and_spans_range() {
        assert_eq!(crf_to_qindex(0, 63), MIN_QINDEX);
        assert_eq!(crf_to_qindex(63, 63), MAX_QINDEX);
        let mut prev = 0;
        for crf in 0..=63u8 {
            let q = crf_to_qindex(crf, 63);
            assert!(q >= prev, "qindex must be monotone in CRF");
            prev = q;
        }
    }

    #[test]
    fn both_crf_families_cover_the_same_quality_span() {
        assert_eq!(crf_to_qindex(0, 51), crf_to_qindex(0, 63));
        assert_eq!(crf_to_qindex(51, 51), crf_to_qindex(63, 63));
    }

    #[test]
    fn qstep_doubles_every_16_indices() {
        let a = qindex_to_qstep(32);
        let b = qindex_to_qstep(48);
        assert!((b as f64 / a as f64 - 2.0).abs() < 0.1, "{a} -> {b}");
        assert!(qindex_to_qstep(MIN_QINDEX) >= 4);
    }

    #[test]
    fn qstep_clamps_out_of_range() {
        assert_eq!(qindex_to_qstep(0), qindex_to_qstep(MIN_QINDEX));
        assert_eq!(qindex_to_qstep(255), qindex_to_qstep(MAX_QINDEX));
    }
}
