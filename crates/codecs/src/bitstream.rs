//! Bitstream container: plain-byte sequence header plus the range-coded
//! payload, and the adaptive-context bundle shared by encoder and decoder.

use crate::codecs::CodecId;
use crate::entropy::Context;
use crate::error::CodecError;

/// Magic bytes opening every vstress bitstream.
pub const MAGIC: [u8; 4] = *b"VSTR";
/// Container version.
pub const VERSION: u8 = 1;

/// Sequence-level header (everything the decoder needs before the
/// range-coded payload).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SequenceHeader {
    /// Codec that produced the stream.
    pub codec: CodecId,
    /// Luma width.
    pub width: u16,
    /// Luma height.
    pub height: u16,
    /// Frame count.
    pub frame_count: u16,
    /// Frames per second, rounded.
    pub fps: u16,
    /// Quantizer index used for the whole sequence.
    pub qindex: u8,
    /// Superblock size.
    pub superblock: u8,
    /// Minimum block size.
    pub min_block: u8,
    /// Maximum split depth.
    pub max_depth: u8,
    /// Bitmask of allowed partition shapes (bit = shape symbol).
    pub shape_mask: u16,
    /// Bitmask of allowed intra modes (bit = mode symbol).
    pub mode_mask: u16,
    /// Number of reference frames inter prediction may select from (1–2).
    pub ref_frames: u8,
    /// Keyframe interval: every `keyint`-th frame is intra-only
    /// (0 = only the first frame is a keyframe).
    pub keyint: u8,
}

impl SequenceHeader {
    /// Serialized header length in bytes.
    pub const BYTES: usize = 4 + 1 + 1 + 2 + 2 + 2 + 2 + 1 + 1 + 1 + 1 + 2 + 2 + 1 + 1;

    /// Writes the header to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.codec.tag());
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&self.frame_count.to_le_bytes());
        out.extend_from_slice(&self.fps.to_le_bytes());
        out.push(self.qindex);
        out.push(self.superblock);
        out.push(self.min_block);
        out.push(self.max_depth);
        out.extend_from_slice(&self.shape_mask.to_le_bytes());
        out.extend_from_slice(&self.mode_mask.to_le_bytes());
        out.push(self.ref_frames);
        out.push(self.keyint);
    }

    /// Parses a header from the front of `data`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] on bad magic, version,
    /// codec tag, or truncation.
    pub fn parse(data: &[u8]) -> Result<(SequenceHeader, &[u8]), CodecError> {
        if data.len() < Self::BYTES {
            return Err(CodecError::CorruptBitstream {
                offset: data.len(),
                expected: "sequence header",
            });
        }
        if data[0..4] != MAGIC {
            return Err(CodecError::CorruptBitstream { offset: 0, expected: "magic bytes VSTR" });
        }
        if data[4] != VERSION {
            return Err(CodecError::CorruptBitstream { offset: 4, expected: "supported version" });
        }
        let codec = CodecId::from_tag(data[5])
            .ok_or(CodecError::CorruptBitstream { offset: 5, expected: "known codec tag" })?;
        let rd16 = |i: usize| u16::from_le_bytes([data[i], data[i + 1]]);
        let header = SequenceHeader {
            codec,
            width: rd16(6),
            height: rd16(8),
            frame_count: rd16(10),
            fps: rd16(12),
            qindex: data[14],
            superblock: data[15],
            min_block: data[16],
            max_depth: data[17],
            shape_mask: rd16(18),
            mode_mask: rd16(20),
            ref_frames: data[22],
            keyint: data[23],
        };
        if header.width == 0 || header.height == 0 || header.frame_count == 0 {
            return Err(CodecError::CorruptBitstream { offset: 6, expected: "nonzero geometry" });
        }
        if header.superblock == 0 || header.min_block == 0 {
            return Err(CodecError::CorruptBitstream {
                offset: 15,
                expected: "nonzero block sizes",
            });
        }
        if !(1..=2).contains(&header.ref_frames) {
            return Err(CodecError::CorruptBitstream {
                offset: 22,
                expected: "1 or 2 reference frames",
            });
        }
        Ok((header, &data[Self::BYTES..]))
    }
}

/// Number of coefficient-significance context bands.
pub const SIG_BANDS: usize = 4;

/// The adaptive contexts used by one coded sequence.
///
/// Encoder and decoder construct this identically ([`FrameContexts::new`])
/// and adapt it identically, bin for bin — the invariant behind lossless
/// round-trip decoding.
#[derive(Debug, Clone)]
pub struct FrameContexts {
    /// Partition-shape unary flags, per list position (up to 10 shapes).
    pub partition: [Context; 10],
    /// Leaf is inter (vs intra).
    pub is_inter: Context,
    /// Leaf is skipped (prediction only).
    pub skip: Context,
    /// Luma coded-block flag.
    pub cbf_luma: Context,
    /// Chroma coded-block flag.
    pub cbf_chroma: Context,
    /// Coefficient significance, by scan band.
    pub sig: [Context; SIG_BANDS],
    /// Level magnitude UVLC contexts.
    pub level: [Context; 3],
    /// End-of-block position UVLC contexts.
    pub eob: [Context; 3],
    /// Intra-mode index UVLC contexts.
    pub mode: [Context; 3],
    /// Motion-vector magnitude UVLC contexts (shared by x and y).
    pub mv: [Context; 3],
    /// Motion-vector sign (weakly biased by content motion).
    pub mv_sign: Context,
    /// Reference-frame selection (last vs golden).
    pub ref_sel: Context,
    /// Chroma TU prediction mode (DC intra vs motion compensation).
    pub chroma_mode: Context,
    /// Coefficient sign.
    pub coeff_sign: Context,
}

impl FrameContexts {
    /// Fresh contexts, identical on both sides of the codec.
    pub fn new() -> Self {
        let c = |l: u64| Context::new(l);
        FrameContexts {
            partition: std::array::from_fn(|i| c(100 + i as u64)),
            is_inter: c(200),
            skip: c(201),
            cbf_luma: c(202),
            cbf_chroma: c(203),
            sig: std::array::from_fn(|i| c(300 + i as u64)),
            level: [c(400), c(401), c(402)],
            eob: [c(410), c(411), c(412)],
            mode: [c(420), c(421), c(422)],
            mv: [c(430), c(431), c(432)],
            mv_sign: c(440),
            ref_sel: c(442),
            chroma_mode: c(443),
            coeff_sign: c(441),
        }
    }
}

impl Default for FrameContexts {
    fn default() -> Self {
        Self::new()
    }
}

/// Builds the shape mask for a tool set's shape list.
pub fn shape_mask(shapes: &[crate::blocks::PartitionShape]) -> u16 {
    shapes.iter().fold(0u16, |m, s| m | 1 << s.symbol())
}

/// Builds the mode mask for a tool set's intra-mode list.
pub fn mode_mask(modes: &[crate::predict::IntraMode]) -> u16 {
    modes.iter().fold(0u16, |m, s| m | 1 << s.symbol())
}

/// Expands a shape mask back into the ordered shape list.
pub fn shapes_from_mask(mask: u16) -> Vec<crate::blocks::PartitionShape> {
    crate::blocks::PartitionShape::AV1
        .into_iter()
        .filter(|s| mask & (1 << s.symbol()) != 0)
        .collect()
}

/// Expands a mode mask back into the ordered mode list.
pub fn modes_from_mask(mask: u16) -> Vec<crate::predict::IntraMode> {
    crate::predict::IntraMode::AV1.into_iter().filter(|m| mask & (1 << m.symbol()) != 0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blocks::PartitionShape;
    use crate::predict::IntraMode;

    fn header() -> SequenceHeader {
        SequenceHeader {
            codec: CodecId::SvtAv1,
            width: 240,
            height: 136,
            frame_count: 8,
            fps: 60,
            qindex: 80,
            superblock: 32,
            min_block: 4,
            max_depth: 3,
            shape_mask: shape_mask(&PartitionShape::AV1),
            mode_mask: mode_mask(&IntraMode::AV1),
            ref_frames: 2,
            keyint: 0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let h = header();
        let mut buf = Vec::new();
        h.write(&mut buf);
        buf.extend_from_slice(b"payload");
        let (parsed, rest) = SequenceHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(rest, b"payload");
        assert_eq!(buf.len() - rest.len(), SequenceHeader::BYTES);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        header().write(&mut buf);
        buf[0] = b'X';
        assert!(matches!(
            SequenceHeader::parse(&buf),
            Err(CodecError::CorruptBitstream { offset: 0, .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let mut buf = Vec::new();
        header().write(&mut buf);
        buf.truncate(10);
        assert!(SequenceHeader::parse(&buf).is_err());
    }

    #[test]
    fn zero_geometry_rejected() {
        let mut h = header();
        h.width = 0;
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert!(SequenceHeader::parse(&buf).is_err());
    }

    #[test]
    fn masks_roundtrip() {
        let shapes = &PartitionShape::AV1[..6];
        assert_eq!(shapes_from_mask(shape_mask(shapes)), shapes.to_vec());
        let modes = &IntraMode::VP9;
        assert_eq!(modes_from_mask(mode_mask(modes)), modes.to_vec());
    }

    #[test]
    fn contexts_are_identical_on_both_sides() {
        let a = FrameContexts::new();
        let b = FrameContexts::new();
        assert_eq!(a.partition[0].p0(), b.partition[0].p0());
        assert_eq!(a.sig[2].p0(), b.sig[2].p0());
    }
}
