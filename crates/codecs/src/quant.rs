//! Dead-zone scalar quantization.

use crate::params::qindex_to_qstep;
use vstress_trace::{probe_addr, Kernel, Probe};

/// Quantizer derived from a qindex: a uniform step with a dead zone, the
/// structure shared by all the modelled codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Quantizer {
    qstep: i32,
    /// Rounding offset in 1/8 qstep units (3/8 ≈ intra default).
    dead_zone_eighths: i32,
}

impl Quantizer {
    /// Builds a quantizer for a qindex.
    pub fn from_qindex(qindex: u8) -> Self {
        Quantizer { qstep: qindex_to_qstep(qindex), dead_zone_eighths: 3 }
    }

    /// The quantization step.
    #[inline]
    pub fn qstep(&self) -> i32 {
        self.qstep
    }

    /// Quantizes one coefficient to a level.
    #[inline]
    pub fn quantize(&self, coeff: i32) -> i32 {
        let mag = coeff.unsigned_abs() as i64;
        let round = (self.qstep as i64 * self.dead_zone_eighths as i64) / 8;
        let level = ((mag + round) / self.qstep as i64) as i32;
        if coeff < 0 {
            -level
        } else {
            level
        }
    }

    /// Reconstructs a coefficient from a level.
    #[inline]
    pub fn dequantize(&self, level: i32) -> i32 {
        level * self.qstep
    }

    /// Quantizes a whole tile in place (levels out, via `dst`), returning
    /// the number of nonzero levels. Instrumented as a vector kernel.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dst.len()`.
    pub fn quantize_block<P: Probe>(&self, probe: &mut P, src: &[i32], dst: &mut [i32]) -> usize {
        assert_eq!(src.len(), dst.len());
        probe.set_kernel(Kernel::Quant);
        let mut nonzero = 0;
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d = self.quantize(*s);
            if *d != 0 {
                nonzero += 1;
            }
        }
        let n = src.len() as u64;
        probe.avx(n.div_ceil(8) * 3);
        probe.load(probe_addr::fixed::RESIDUAL, (src.len() * 4).min(64) as u32);
        probe.store(probe_addr::fixed::QUANT_LEVELS, (dst.len() * 4).min(64) as u32);
        probe.alu(2);
        nonzero
    }

    /// Dequantizes a whole tile. Instrumented as a vector kernel.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dst.len()`.
    pub fn dequantize_block<P: Probe>(&self, probe: &mut P, src: &[i32], dst: &mut [i32]) {
        assert_eq!(src.len(), dst.len());
        probe.set_kernel(Kernel::Dequant);
        for (s, d) in src.iter().zip(dst.iter_mut()) {
            *d = self.dequantize(*s);
        }
        let n = src.len() as u64;
        probe.avx(n.div_ceil(8));
        probe.load(probe_addr::fixed::QUANT_LEVELS, (src.len() * 4).min(64) as u32);
        probe.store(probe_addr::fixed::RESIDUAL, (dst.len() * 4).min(64) as u32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    #[test]
    fn small_coefficients_die_in_the_dead_zone() {
        let q = Quantizer::from_qindex(64); // qstep = 4 * 2^4 = 64
        assert_eq!(q.qstep(), 64);
        assert_eq!(q.quantize(20), 0);
        assert_eq!(q.quantize(-20), 0);
    }

    #[test]
    fn quantize_dequantize_error_is_bounded_by_step() {
        let q = Quantizer::from_qindex(48);
        for c in (-2000..2000).step_by(7) {
            let rec = q.dequantize(q.quantize(c));
            assert!((rec - c).abs() <= q.qstep(), "c {c} rec {rec} step {}", q.qstep());
        }
    }

    #[test]
    fn quantization_is_odd_symmetric() {
        let q = Quantizer::from_qindex(40);
        for c in [1, 7, 63, 120, 999] {
            assert_eq!(q.quantize(-c), -q.quantize(c));
        }
    }

    #[test]
    fn coarser_quantizer_kills_more_coefficients() {
        let coeffs: Vec<i32> = (0..64).map(|i| (i * 13 % 200) - 100).collect();
        let mut out = vec![0i32; 64];
        let fine = Quantizer::from_qindex(8).quantize_block(&mut NullProbe, &coeffs, &mut out);
        let coarse = Quantizer::from_qindex(100).quantize_block(&mut NullProbe, &coeffs, &mut out);
        assert!(coarse < fine, "coarse {coarse} fine {fine}");
    }

    #[test]
    fn block_roundtrip_matches_scalar_path() {
        let q = Quantizer::from_qindex(32);
        let coeffs: Vec<i32> = (0..16).map(|i| i * 50 - 400).collect();
        let mut levels = vec![0i32; 16];
        let mut recon = vec![0i32; 16];
        q.quantize_block(&mut NullProbe, &coeffs, &mut levels);
        q.dequantize_block(&mut NullProbe, &levels, &mut recon);
        for (i, &c) in coeffs.iter().enumerate() {
            assert_eq!(levels[i], q.quantize(c));
            assert_eq!(recon[i], q.dequantize(levels[i]));
        }
    }
}
