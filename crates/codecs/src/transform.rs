//! Integer transforms: the DCT-II family (4/8/16/32) and Hadamard (SATD).
//!
//! Fixed-point separable DCT with 12-bit basis precision, the same
//! structure as the AV1/HEVC integer transforms. The forward/inverse pair
//! is not bit-exact invertible (no integer DCT is); what correctness
//! requires — and what the tests pin down — is that (a) the round-trip
//! error is bounded by rounding (≤ 1 per sample for fine content), and
//! (b) encoder and decoder run the *identical* inverse, so reconstructions
//! match bit-for-bit.
//!
//! All kernels are instrumented: each row/column pass reports vector
//! loads/stores and AVX-class multiply-accumulate work through the
//! supplied [`Probe`].

use std::sync::OnceLock;
use vstress_trace::{probe_addr, Kernel, Probe};

/// Supported square transform sizes.
pub const TX_SIZES: [usize; 4] = [4, 8, 16, 32];

/// Fixed-point precision of the DCT basis.
const BASIS_BITS: u32 = 12;
/// Extra precision retained between the two 1-D passes.
const INTER_BITS: u32 = 6;

/// Arithmetic right shift with round-to-nearest.
#[inline]
fn rshift_round(v: i64, bits: u32) -> i64 {
    (v + (1 << (bits - 1))) >> bits
}

fn basis(n: usize) -> &'static Vec<i32> {
    static TABLES: OnceLock<[Vec<i32>; 4]> = OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        let mk = |n: usize| {
            let mut b = vec![0i32; n * n];
            let scale = (1i64 << BASIS_BITS) as f64;
            for k in 0..n {
                let norm = if k == 0 { (1.0 / n as f64).sqrt() } else { (2.0 / n as f64).sqrt() };
                for j in 0..n {
                    let angle = std::f64::consts::PI * (j as f64 + 0.5) * k as f64 / n as f64;
                    b[k * n + j] = (norm * angle.cos() * scale).round() as i32;
                }
            }
            b
        };
        [mk(4), mk(8), mk(16), mk(32)]
    });
    match n {
        4 => &tables[0],
        8 => &tables[1],
        16 => &tables[2],
        32 => &tables[3],
        _ => panic!("unsupported transform size {n}"),
    }
}

#[inline]
fn instrument_pass<P: Probe>(probe: &mut P, n: usize, scratch_addr: u64) {
    // One 1-D pass over an n x n tile: each output row is n dot products
    // of length n, vectorized 8 lanes wide, with the intermediate row
    // written back to scratch.
    let vecs = (n as u64).div_ceil(8);
    probe.avx(n as u64 * vecs * 2); // mul + add per vector
    for i in 0..n as u64 {
        probe.load(scratch_addr + i * 64, (n * 4).min(64) as u32);
        probe.store(scratch_addr + i * 64, (n * 4).min(64) as u32);
    }
    probe.alu(n as u64); // rounding / shifting
}

/// Forward 2-D DCT of an `n x n` residual tile (row-major `src`) into
/// `dst` (coefficients, natural order).
///
/// Output coefficients carry the extra `BASIS_BITS` scaling of one pass;
/// the second pass's scaling is folded out, matching how real integer
/// transforms manage dynamic range.
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or the slices are not `n*n`.
pub fn forward<P: Probe>(probe: &mut P, n: usize, src: &[i32], dst: &mut [i32]) {
    assert!(TX_SIZES.contains(&n), "unsupported transform size {n}");
    assert_eq!(src.len(), n * n);
    assert_eq!(dst.len(), n * n);
    probe.set_kernel(Kernel::FwdTransform);
    let b = basis(n);
    let mut tmp = vec![0i64; n * n];
    // Rows: tmp = src * B^T (each output = dot(src_row, basis_row_k)),
    // keeping INTER_BITS of extra precision for the second pass.
    for y in 0..n {
        for k in 0..n {
            let mut acc = 0i64;
            for j in 0..n {
                acc += src[y * n + j] as i64 * b[k * n + j] as i64;
            }
            tmp[y * n + k] = rshift_round(acc, BASIS_BITS - INTER_BITS);
        }
    }
    instrument_pass(probe, n, probe_addr::fixed::TRANSFORM_TMP);
    // Columns: dst = B * tmp.
    for k in 0..n {
        for x in 0..n {
            let mut acc = 0i64;
            for j in 0..n {
                acc += b[k * n + j] as i64 * tmp[j * n + x];
            }
            dst[k * n + x] = rshift_round(acc, BASIS_BITS + INTER_BITS) as i32;
        }
    }
    instrument_pass(probe, n, probe_addr::fixed::TRANSFORM_TMP);
    // Report the scratch stores once per pass pair.
    for _ in 0..n {
        probe.store(probe_addr::fixed::TRANSFORM_TMP, (n * 4).min(64) as u32);
    }
}

/// Inverse 2-D DCT; exact mirror of [`forward`]'s scaling.
///
/// # Panics
///
/// Panics if `n` is not one of [`TX_SIZES`] or the slices are not `n*n`.
pub fn inverse<P: Probe>(probe: &mut P, n: usize, src: &[i32], dst: &mut [i32]) {
    assert!(TX_SIZES.contains(&n), "unsupported transform size {n}");
    assert_eq!(src.len(), n * n);
    assert_eq!(dst.len(), n * n);
    probe.set_kernel(Kernel::InvTransform);
    let b = basis(n);
    let mut tmp = vec![0i64; n * n];
    // Columns first: tmp = B^T * src, with extra precision retained.
    for j in 0..n {
        for x in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += b[k * n + j] as i64 * src[k * n + x] as i64;
            }
            tmp[j * n + x] = rshift_round(acc, BASIS_BITS - INTER_BITS);
        }
    }
    instrument_pass(probe, n, probe_addr::fixed::TRANSFORM_TMP);
    // Rows: dst = tmp * B.
    for y in 0..n {
        for j in 0..n {
            let mut acc = 0i64;
            for k in 0..n {
                acc += tmp[y * n + k] * b[k * n + j] as i64;
            }
            dst[y * n + j] = rshift_round(acc, BASIS_BITS + INTER_BITS) as i32;
        }
    }
    instrument_pass(probe, n, probe_addr::fixed::TRANSFORM_TMP);
    for _ in 0..n {
        probe.store(probe_addr::fixed::TRANSFORM_TMP, (n * 4).min(64) as u32);
    }
}

/// 4x4 Hadamard-transformed absolute difference of a residual tile — the
/// SATD cost metric used during mode search.
///
/// # Panics
///
/// Panics if `res.len() != 16`.
pub fn satd4<P: Probe>(probe: &mut P, res: &[i32]) -> u64 {
    assert_eq!(res.len(), 16);
    probe.set_kernel(Kernel::Satd);
    let mut m = [0i32; 16];
    // Rows.
    for y in 0..4 {
        let r = &res[y * 4..y * 4 + 4];
        let a0 = r[0] + r[1];
        let a1 = r[0] - r[1];
        let a2 = r[2] + r[3];
        let a3 = r[2] - r[3];
        m[y * 4] = a0 + a2;
        m[y * 4 + 1] = a1 + a3;
        m[y * 4 + 2] = a0 - a2;
        m[y * 4 + 3] = a1 - a3;
    }
    // Columns + absolute sum.
    let mut sum = 0u64;
    for x in 0..4 {
        let a0 = m[x] + m[4 + x];
        let a1 = m[x] - m[4 + x];
        let a2 = m[8 + x] + m[12 + x];
        let a3 = m[8 + x] - m[12 + x];
        sum += (a0 + a2).unsigned_abs() as u64
            + (a1 + a3).unsigned_abs() as u64
            + (a0 - a2).unsigned_abs() as u64
            + (a1 - a3).unsigned_abs() as u64;
    }
    probe.avx(7);
    probe.sse(1);
    probe.alu(4);
    // Butterfly intermediates spill to the stack tile.
    probe.store(probe_addr::fixed::SATD_TILE, 64);
    probe.store(probe_addr::fixed::SATD_TILE + 32, 32);
    // Normalize to the same scale as SAD (Hadamard gain is 4 for 4x4).
    sum / 4
}

/// SATD of an arbitrary `w x h` residual, computed over 4x4 tiles.
///
/// # Panics
///
/// Panics if `res.len() != w * h` or the dimensions are not multiples of 4.
pub fn satd<P: Probe>(probe: &mut P, w: usize, h: usize, res: &[i32]) -> u64 {
    assert_eq!(res.len(), w * h);
    assert!(w.is_multiple_of(4) && h.is_multiple_of(4), "SATD tiles are 4x4");
    let mut total = 0u64;
    let mut tile = [0i32; 16];
    for ty in (0..h).step_by(4) {
        for tx in (0..w).step_by(4) {
            for y in 0..4 {
                for x in 0..4 {
                    tile[y * 4 + x] = res[(ty + y) * w + tx + x];
                }
            }
            probe.load(probe_addr::fixed::RESIDUAL + (ty * w + tx) as u64 * 4, 16);
            total += satd4(probe, &tile);
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::{CountingProbe, NullProbe};

    fn roundtrip_error(n: usize, src: &[i32]) -> i32 {
        let mut coeffs = vec![0i32; n * n];
        let mut recon = vec![0i32; n * n];
        let mut p = NullProbe;
        forward(&mut p, n, src, &mut coeffs);
        inverse(&mut p, n, &coeffs, &mut recon);
        src.iter().zip(&recon).map(|(a, b)| (a - b).abs()).max().unwrap()
    }

    #[test]
    fn roundtrip_error_is_bounded_for_all_sizes() {
        for &n in &TX_SIZES {
            // Pixel-range residuals (−255..=255).
            let src: Vec<i32> = (0..n * n).map(|i| ((i * 2654435761) % 511) as i32 - 255).collect();
            let err = roundtrip_error(n, &src);
            assert!(err <= 2, "size {n} round-trip error {err}");
        }
    }

    #[test]
    fn dc_content_transforms_to_dc_coefficient() {
        let n = 8;
        let src = vec![100i32; 64];
        let mut coeffs = vec![0i32; 64];
        forward(&mut NullProbe, n, &src, &mut coeffs);
        // All energy in coefficient (0,0).
        let dc = coeffs[0].abs();
        let ac_max = coeffs[1..].iter().map(|c| c.abs()).max().unwrap();
        assert!(dc > 100, "dc {dc}");
        assert!(ac_max <= 1, "ac leakage {ac_max}");
    }

    #[test]
    fn zero_input_gives_zero_output() {
        for &n in &TX_SIZES {
            let src = vec![0i32; n * n];
            let mut coeffs = vec![99i32; n * n];
            forward(&mut NullProbe, n, &src, &mut coeffs);
            assert!(coeffs.iter().all(|&c| c == 0));
        }
    }

    #[test]
    fn energy_is_roughly_preserved() {
        let n = 16;
        let src: Vec<i32> = (0..256).map(|i| ((i * 97) % 255) - 127).collect();
        let mut coeffs = vec![0i32; 256];
        forward(&mut NullProbe, n, &src, &mut coeffs);
        let e_src: f64 = src.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let e_dst: f64 = coeffs.iter().map(|&x| (x as f64) * (x as f64)).sum();
        let ratio = e_dst / e_src;
        assert!((0.9..1.1).contains(&ratio), "Parseval ratio {ratio}");
    }

    #[test]
    fn satd_zero_for_zero_residual() {
        assert_eq!(satd(&mut NullProbe, 8, 8, &[0; 64]), 0);
    }

    #[test]
    fn satd_scales_with_residual_magnitude() {
        let small: Vec<i32> = (0..64).map(|i| if i % 2 == 0 { 1 } else { -1 }).collect();
        let big: Vec<i32> = small.iter().map(|&x| x * 10).collect();
        let s = satd(&mut NullProbe, 8, 8, &small);
        let b = satd(&mut NullProbe, 8, 8, &big);
        assert_eq!(b, s * 10);
    }

    #[test]
    fn transforms_emit_instrumentation() {
        let mut probe = CountingProbe::new();
        let src = vec![5i32; 64];
        let mut dst = vec![0i32; 64];
        forward(&mut probe, 8, &src, &mut dst);
        let m = probe.mix();
        assert!(m.avx > 0, "transform must report AVX work");
        assert!(m.load > 0 && m.store > 0);
    }

    #[test]
    #[should_panic(expected = "unsupported transform size")]
    fn bad_size_panics() {
        let mut dst = vec![0i32; 9];
        forward(&mut NullProbe, 3, &[0; 9], &mut dst);
    }
}
