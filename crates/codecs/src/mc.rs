//! Motion compensation: prediction from a reference frame at integer or
//! half-pel motion vectors.

use crate::blocks::BlockRect;
use simd::{u16x8, u8x16};
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::{Plane, PAD};

/// Branch-site PC of the [`motion_compensate`] row loop, pinned for the
/// same reason as the kernel PCs (see
/// `kernels::SAD_PLANE_PRED_BRANCH_PC`): the simulated predictors index
/// their tables by these values, so they must not drift with source
/// layout.
pub(crate) const MOTION_COMPENSATE_BRANCH_PC: u64 = 0x5be2_53e5_9a5c;

/// A motion vector in half-pel units.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MotionVector {
    /// Horizontal component, half-pel units.
    pub x: i32,
    /// Vertical component, half-pel units.
    pub y: i32,
}

impl MotionVector {
    /// A zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Builds from integer-pel components.
    pub fn from_fullpel(x: i32, y: i32) -> Self {
        MotionVector { x: x * 2, y: y * 2 }
    }

    /// Whether either component has a half-pel fraction.
    pub fn is_subpel(&self) -> bool {
        self.x % 2 != 0 || self.y % 2 != 0
    }
}

/// `d[i] = (a[i] + b[i] + 1) >> 1` — the rounding bilinear average.
#[inline]
fn avg2_row(dst: &mut [u8], a: &[u8], b: &[u8]) {
    let mut cd = dst.chunks_exact_mut(16);
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for ((qd, qa), qb) in (&mut cd).zip(&mut ca).zip(&mut cb) {
        qd.copy_from_slice(&u8x16::from_slice(qa).avg_ceil(u8x16::from_slice(qb)).0);
    }
    for ((d, p0), p1) in cd.into_remainder().iter_mut().zip(ca.remainder()).zip(cb.remainder()) {
        *d = ((*p0 as u32 + *p1 as u32).div_ceil(2)) as u8;
    }
}

/// `d[i] = (a[i] + b[i] + c[i] + e[i] + 2) >> 2` — the diagonal
/// half-pel position. Widened to 16 bits per lane (max 4*255+2 = 1022).
#[inline]
fn avg4_row(dst: &mut [u8], a: &[u8], b: &[u8], c: &[u8], e: &[u8]) {
    let mut cd = dst.chunks_exact_mut(16);
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    let mut cc = c.chunks_exact(16);
    let mut ce = e.chunks_exact(16);
    for ((((qd, qa), qb), qc), qe) in (&mut cd).zip(&mut ca).zip(&mut cb).zip(&mut cc).zip(&mut ce)
    {
        let (a_lo, a_hi) = u8x16::from_slice(qa).widen();
        let (b_lo, b_hi) = u8x16::from_slice(qb).widen();
        let (c_lo, c_hi) = u8x16::from_slice(qc).widen();
        let (e_lo, e_hi) = u8x16::from_slice(qe).widen();
        let two = u16x8::splat(2);
        let lo = a_lo.add(b_lo).add(c_lo).add(e_lo).add(two).shr(2);
        let hi = a_hi.add(b_hi).add(c_hi).add(e_hi).add(two).shr(2);
        qd.copy_from_slice(&u16x8::narrow(lo, hi).0);
    }
    let tail = cd.into_remainder();
    for ((((d, p0), p1), p2), p3) in tail
        .iter_mut()
        .zip(ca.remainder())
        .zip(cb.remainder())
        .zip(cc.remainder())
        .zip(ce.remainder())
    {
        *d = ((*p0 as u32 + *p1 as u32 + *p2 as u32 + *p3 as u32 + 2) / 4) as u8;
    }
}

/// Interpolates one output row from contiguous source rows. `row1` is
/// the row one below (only read when `fy`); both slices start at the
/// leftmost tap and extend at least `dst.len() + fx` samples.
#[inline]
fn interp_row(dst: &mut [u8], row0: &[u8], row1: &[u8], fx: bool, fy: bool) {
    let w = dst.len();
    match (fx, fy) {
        (false, false) => dst.copy_from_slice(&row0[..w]),
        (true, false) => avg2_row(dst, &row0[..w], &row0[1..1 + w]),
        (false, true) => avg2_row(dst, &row0[..w], &row1[..w]),
        (true, true) => avg4_row(dst, &row0[..w], &row0[1..1 + w], &row1[..w], &row1[1..1 + w]),
    }
}

/// Produces the motion-compensated prediction of `rect` from `refp`
/// displaced by `mv`, into `dst` (`rect.w * rect.h`).
///
/// Half-pel positions are bilinearly interpolated (the 2-tap filter —
/// real codecs use 6–8 taps, but tap count only scales the same
/// instruction stream). Out-of-frame references clamp to the border;
/// when the reference carries an edge-padded shadow (see
/// [`Plane::pad_borders`]) the clamped taps are read from contiguous
/// shadow rows instead of per-sample `get_clamped` calls — the shadow
/// replicates the clamped values exactly, so the output is identical.
///
/// # Panics
///
/// Panics if `dst` is smaller than the block.
pub fn motion_compensate<P: Probe>(
    probe: &mut P,
    refp: &Plane,
    rect: BlockRect,
    mv: MotionVector,
    dst: &mut [u8],
) {
    assert!(dst.len() >= rect.area());
    probe.set_kernel(Kernel::InterPred);
    let ix = mv.x >> 1;
    let iy = mv.y >> 1;
    let fx = (mv.x & 1) != 0;
    let fy = (mv.y & 1) != 0;
    // Interior fast path: every tap of the bilinear filter stays inside
    // the reference plane, so rows are contiguous slices and no sample
    // needs clamping. The taps reach one sample right/down of the block
    // when the corresponding half-pel fraction is set.
    let sx0 = rect.x as isize + ix as isize;
    let sy0 = rect.y as isize + iy as isize;
    let interior = sx0 >= 0
        && sy0 >= 0
        && sx0 + rect.w as isize + fx as isize <= refp.width() as isize
        && sy0 + rect.h as isize + fy as isize <= refp.height() as isize;
    let pad = PAD as isize;
    let in_shadow = !interior
        && refp.is_padded()
        && sx0 >= -pad
        && sx0 + rect.w as isize + fx as isize <= refp.width() as isize + pad
        && sy0 >= -pad
        && sy0 + rect.h as isize + fy as isize <= refp.height() as isize + pad;
    for y in 0..rect.h {
        let sy = rect.y as isize + y as isize + iy as isize;
        let drow = &mut dst[y * rect.w..(y + 1) * rect.w];
        if interior {
            let sx0 = sx0 as usize;
            let row0 = &refp.row(sy as usize)[sx0..];
            let row1 = if fy { &refp.row(sy as usize + 1)[sx0..] } else { &row0[..0] };
            interp_row(drow, row0, row1, fx, fy);
        } else if in_shadow {
            let off = (sx0 + pad) as usize;
            let row0 = &refp.padded_row(sy).expect("checked shadow range")[off..];
            let row1 = if fy {
                &refp.padded_row(sy + 1).expect("checked shadow range")[off..]
            } else {
                &row0[..0]
            };
            interp_row(drow, row0, row1, fx, fy);
        } else {
            for (x, d) in drow.iter_mut().enumerate() {
                let sx = rect.x as isize + x as isize + ix as isize;
                let p00 = refp.get_clamped(sx, sy) as u32;
                let v = match (fx, fy) {
                    (false, false) => p00,
                    (true, false) => (p00 + refp.get_clamped(sx + 1, sy) as u32).div_ceil(2),
                    (false, true) => (p00 + refp.get_clamped(sx, sy + 1) as u32).div_ceil(2),
                    (true, true) => {
                        let p10 = refp.get_clamped(sx + 1, sy) as u32;
                        let p01 = refp.get_clamped(sx, sy + 1) as u32;
                        let p11 = refp.get_clamped(sx + 1, sy + 1) as u32;
                        (p00 + p10 + p01 + p11 + 2) / 4
                    }
                };
                *d = v as u8;
            }
        }
        let vecs = (rect.w as u64).div_ceil(32);
        let cx = (rect.x as isize + ix as isize).clamp(0, refp.width() as isize - 1) as usize;
        let cy = sy.clamp(0, refp.height() as isize - 1) as usize;
        probe.load(refp.sample_addr(cx, cy), rect.w.min(32) as u32);
        if fy {
            let cy1 = (sy + 1).clamp(0, refp.height() as isize - 1) as usize;
            probe.load(refp.sample_addr(cx, cy1), rect.w.min(32) as u32);
        }
        probe.store(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(32) as u32);
        let filter_ops = if fx || fy { 3 } else { 1 };
        probe.avx(vecs * filter_ops);
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(MOTION_COMPENSATE_BRANCH_PC, y + 1 != rect.h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    fn gradient_plane() -> Plane {
        let mut p = Plane::new(32, 32, 0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, (x * 8) as u8);
            }
        }
        p
    }

    #[test]
    fn zero_mv_copies_the_block() {
        let p = gradient_plane();
        let rect = BlockRect::new(8, 8, 8, 8);
        let mut dst = vec![0u8; 64];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::ZERO, &mut dst);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(dst[y * 8 + x], p.get(8 + x, 8 + y));
            }
        }
    }

    #[test]
    fn fullpel_mv_shifts() {
        let p = gradient_plane();
        let rect = BlockRect::new(8, 8, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::from_fullpel(2, 0), &mut dst);
        assert_eq!(dst[0], p.get(10, 8));
    }

    #[test]
    fn halfpel_interpolates_horizontally() {
        let p = gradient_plane(); // value = 8x, so half-pel at x gives 8x+4.
        let rect = BlockRect::new(4, 4, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector { x: 1, y: 0 }, &mut dst);
        let expect = (p.get(4, 4) as u32 + p.get(5, 4) as u32).div_ceil(2);
        assert_eq!(dst[0] as u32, expect);
        assert_eq!(dst[0] as i32 - p.get(4, 4) as i32, 4);
    }

    #[test]
    fn subpel_detection() {
        assert!(!MotionVector::from_fullpel(3, -2).is_subpel());
        assert!(MotionVector { x: 1, y: 0 }.is_subpel());
        assert!(MotionVector { x: 0, y: -3 }.is_subpel());
    }

    #[test]
    fn out_of_frame_reference_clamps() {
        let p = gradient_plane();
        let rect = BlockRect::new(0, 0, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::from_fullpel(-10, -10), &mut dst);
        assert_eq!(dst[0], p.get(0, 0));
    }

    #[test]
    fn padded_shadow_matches_clamped_for_all_fractions() {
        let mut p = gradient_plane();
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, ((x * 7 + y * 13) % 251) as u8);
            }
        }
        let rect = BlockRect::new(2, 2, 8, 8);
        for mv in [
            MotionVector::from_fullpel(-9, -9),
            MotionVector { x: -17, y: 0 },
            MotionVector { x: 0, y: 55 },
            MotionVector { x: 55, y: -17 },
        ] {
            let mut want = vec![0u8; 64];
            motion_compensate(&mut NullProbe, &p, rect, mv, &mut want);
            let mut padded = p.clone();
            padded.pad_borders();
            let mut got = vec![0u8; 64];
            motion_compensate(&mut NullProbe, &padded, rect, mv, &mut got);
            assert_eq!(got, want, "mv {mv:?}");
        }
    }
}
