//! Motion compensation: prediction from a reference frame at integer or
//! half-pel motion vectors.

use crate::blocks::BlockRect;
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::Plane;

/// A motion vector in half-pel units.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct MotionVector {
    /// Horizontal component, half-pel units.
    pub x: i32,
    /// Vertical component, half-pel units.
    pub y: i32,
}

impl MotionVector {
    /// A zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Builds from integer-pel components.
    pub fn from_fullpel(x: i32, y: i32) -> Self {
        MotionVector { x: x * 2, y: y * 2 }
    }

    /// Whether either component has a half-pel fraction.
    pub fn is_subpel(&self) -> bool {
        self.x % 2 != 0 || self.y % 2 != 0
    }
}

/// Produces the motion-compensated prediction of `rect` from `refp`
/// displaced by `mv`, into `dst` (`rect.w * rect.h`).
///
/// Half-pel positions are bilinearly interpolated (the 2-tap filter —
/// real codecs use 6–8 taps, but tap count only scales the same
/// instruction stream). Out-of-frame references clamp to the border.
///
/// # Panics
///
/// Panics if `dst` is smaller than the block.
pub fn motion_compensate<P: Probe>(
    probe: &mut P,
    refp: &Plane,
    rect: BlockRect,
    mv: MotionVector,
    dst: &mut [u8],
) {
    assert!(dst.len() >= rect.area());
    probe.set_kernel(Kernel::InterPred);
    let ix = mv.x >> 1;
    let iy = mv.y >> 1;
    let fx = (mv.x & 1) != 0;
    let fy = (mv.y & 1) != 0;
    // Interior fast path: every tap of the bilinear filter stays inside
    // the reference plane, so rows are contiguous slices and no sample
    // needs clamping. The taps reach one sample right/down of the block
    // when the corresponding half-pel fraction is set.
    let sx0 = rect.x as isize + ix as isize;
    let sy0 = rect.y as isize + iy as isize;
    let interior = sx0 >= 0
        && sy0 >= 0
        && sx0 + rect.w as isize + fx as isize <= refp.width() as isize
        && sy0 + rect.h as isize + fy as isize <= refp.height() as isize;
    for y in 0..rect.h {
        let sy = rect.y as isize + y as isize + iy as isize;
        let drow = &mut dst[y * rect.w..(y + 1) * rect.w];
        if interior {
            let sx0 = sx0 as usize;
            let row0 = refp.row(sy as usize);
            match (fx, fy) {
                (false, false) => {
                    drow.copy_from_slice(&row0[sx0..sx0 + rect.w]);
                }
                (true, false) => {
                    let a = &row0[sx0..sx0 + rect.w];
                    let b = &row0[sx0 + 1..sx0 + 1 + rect.w];
                    for ((d, p0), p1) in drow.iter_mut().zip(a).zip(b) {
                        *d = ((*p0 as u32 + *p1 as u32).div_ceil(2)) as u8;
                    }
                }
                (false, true) => {
                    let row1 = refp.row(sy as usize + 1);
                    let a = &row0[sx0..sx0 + rect.w];
                    let b = &row1[sx0..sx0 + rect.w];
                    for ((d, p0), p1) in drow.iter_mut().zip(a).zip(b) {
                        *d = ((*p0 as u32 + *p1 as u32).div_ceil(2)) as u8;
                    }
                }
                (true, true) => {
                    let row1 = refp.row(sy as usize + 1);
                    let a = &row0[sx0..sx0 + rect.w];
                    let b = &row0[sx0 + 1..sx0 + 1 + rect.w];
                    let c = &row1[sx0..sx0 + rect.w];
                    let e = &row1[sx0 + 1..sx0 + 1 + rect.w];
                    for x in 0..rect.w {
                        drow[x] =
                            ((a[x] as u32 + b[x] as u32 + c[x] as u32 + e[x] as u32 + 2) / 4) as u8;
                    }
                }
            }
        } else {
            for (x, d) in drow.iter_mut().enumerate() {
                let sx = rect.x as isize + x as isize + ix as isize;
                let p00 = refp.get_clamped(sx, sy) as u32;
                let v = match (fx, fy) {
                    (false, false) => p00,
                    (true, false) => (p00 + refp.get_clamped(sx + 1, sy) as u32).div_ceil(2),
                    (false, true) => (p00 + refp.get_clamped(sx, sy + 1) as u32).div_ceil(2),
                    (true, true) => {
                        let p10 = refp.get_clamped(sx + 1, sy) as u32;
                        let p01 = refp.get_clamped(sx, sy + 1) as u32;
                        let p11 = refp.get_clamped(sx + 1, sy + 1) as u32;
                        (p00 + p10 + p01 + p11 + 2) / 4
                    }
                };
                *d = v as u8;
            }
        }
        let vecs = (rect.w as u64).div_ceil(32);
        let cx = (rect.x as isize + ix as isize).clamp(0, refp.width() as isize - 1) as usize;
        let cy = sy.clamp(0, refp.height() as isize - 1) as usize;
        probe.load(refp.sample_addr(cx, cy), rect.w.min(32) as u32);
        if fy {
            let cy1 = (sy + 1).clamp(0, refp.height() as isize - 1) as usize;
            probe.load(refp.sample_addr(cx, cy1), rect.w.min(32) as u32);
        }
        probe.store(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(32) as u32);
        let filter_ops = if fx || fy { 3 } else { 1 };
        probe.avx(vecs * filter_ops);
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(vstress_trace::site_pc!(), y + 1 != rect.h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    fn gradient_plane() -> Plane {
        let mut p = Plane::new(32, 32, 0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, (x * 8) as u8);
            }
        }
        p
    }

    #[test]
    fn zero_mv_copies_the_block() {
        let p = gradient_plane();
        let rect = BlockRect::new(8, 8, 8, 8);
        let mut dst = vec![0u8; 64];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::ZERO, &mut dst);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(dst[y * 8 + x], p.get(8 + x, 8 + y));
            }
        }
    }

    #[test]
    fn fullpel_mv_shifts() {
        let p = gradient_plane();
        let rect = BlockRect::new(8, 8, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::from_fullpel(2, 0), &mut dst);
        assert_eq!(dst[0], p.get(10, 8));
    }

    #[test]
    fn halfpel_interpolates_horizontally() {
        let p = gradient_plane(); // value = 8x, so half-pel at x gives 8x+4.
        let rect = BlockRect::new(4, 4, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector { x: 1, y: 0 }, &mut dst);
        let expect = (p.get(4, 4) as u32 + p.get(5, 4) as u32).div_ceil(2);
        assert_eq!(dst[0] as u32, expect);
        assert_eq!(dst[0] as i32 - p.get(4, 4) as i32, 4);
    }

    #[test]
    fn subpel_detection() {
        assert!(!MotionVector::from_fullpel(3, -2).is_subpel());
        assert!(MotionVector { x: 1, y: 0 }.is_subpel());
        assert!(MotionVector { x: 0, y: -3 }.is_subpel());
    }

    #[test]
    fn out_of_frame_reference_clamps() {
        let p = gradient_plane();
        let rect = BlockRect::new(0, 0, 4, 4);
        let mut dst = vec![0u8; 16];
        motion_compensate(&mut NullProbe, &p, rect, MotionVector::from_fullpel(-10, -10), &mut dst);
        assert_eq!(dst[0], p.get(0, 0));
    }
}
