//! Encoder models for the `vstress` workbench.
//!
//! The paper characterizes five encoders — SVT-AV1, libaom, libvpx-VP9,
//! x264 and x265 — and attributes SVT-AV1's order-of-magnitude runtime gap
//! to its *search space*: AV1 gives the encoder ten ways to partition each
//! block where VP9 offers four, more intra modes, and deeper
//! rate-distortion optimization, multiplying the work per pixel. This
//! crate rebuilds that mechanism from scratch in Rust:
//!
//! * one shared coding substrate — integer DCT family transforms with an
//!   exact inverse ([`transform`]), dead-zone scalar quantization
//!   ([`quant`]), an adaptive binary range coder with a real decodable
//!   bitstream ([`entropy`], [`bitstream`]), intra prediction
//!   ([`predict`]), motion search and compensation ([`mesearch`], [`mc`]),
//!   λ-based RDO ([`rdo`]) and an in-loop deblocking filter ([`deblock`]);
//! * five [`CodecId`]s configured over that substrate with codec-faithful
//!   tool sets ([`codecs`]): partition-shape sets, intra-mode sets,
//!   motion-search breadth, and speed-preset tables;
//! * a matching [`decoder`] that reproduces the encoder's reconstruction
//!   bit-exactly from the bitstream (the round-trip invariant the test
//!   suite leans on);
//! * full instrumentation: every hot kernel reports its abstract
//!   instruction stream through a [`Probe`](vstress_trace::Probe), so an
//!   encode can be "run on" the cache/branch/pipeline simulators;
//! * a [`taskgraph`] emitter describing each encoder's threading structure
//!   (SVT-AV1 segment pipeline, x264 wavefront rows, x265's serial
//!   lookahead, libaom tiles) for the thread-scalability study.
//!
//! ```
//! use vstress_codecs::{CodecId, Encoder, EncoderParams};
//! use vstress_trace::CountingProbe;
//! use vstress_video::vbench::{self, FidelityConfig};
//!
//! let clip = vbench::clip("desktop").unwrap().synthesize(&FidelityConfig::smoke());
//! let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(50, 8)).unwrap();
//! let mut probe = CountingProbe::new();
//! let out = enc.encode(&clip, &mut probe).unwrap();
//! assert!(out.mean_psnr() > 25.0);
//! assert!(probe.mix().total() > 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod batch;
pub mod bitstream;
pub mod blocks;
pub mod codecs;
pub mod deblock;
pub mod decoder;
pub mod encoder;
pub mod entropy;
pub mod error;
pub mod frame_coder;
pub mod kernels;
pub mod mc;
pub mod mesearch;
pub mod params;
pub mod predict;
pub mod quant;
pub mod rdo;
pub mod taskgraph;
pub mod transform;

pub use batch::encode_batch;
pub use codecs::CodecId;
pub use decoder::Decoder;
pub use encoder::{EncodeResult, Encoder};
pub use error::CodecError;
pub use params::EncoderParams;
pub use taskgraph::{TaskKind, TaskTrace};
