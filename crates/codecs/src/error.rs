//! Error types for the codec models.

use std::fmt;

/// Errors produced by encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CodecError {
    /// Encoder parameters outside the codec's accepted range.
    InvalidParams {
        /// Which parameter was rejected.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The input clip cannot be coded (dimensions too small, etc.).
    UnsupportedInput {
        /// Why the input was rejected.
        reason: String,
    },
    /// The bitstream is malformed or truncated.
    CorruptBitstream {
        /// Byte offset (approximate) where parsing failed.
        offset: usize,
        /// What the decoder expected.
        expected: &'static str,
    },
    /// An internal video-substrate error surfaced during coding.
    Video(vstress_video::VideoError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidParams { what, detail } => {
                write!(f, "invalid encoder parameter `{what}`: {detail}")
            }
            CodecError::UnsupportedInput { reason } => write!(f, "unsupported input: {reason}"),
            CodecError::CorruptBitstream { offset, expected } => {
                write!(f, "corrupt bitstream near byte {offset}: expected {expected}")
            }
            CodecError::Video(e) => write!(f, "video error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Video(e) => Some(e),
            _ => None,
        }
    }
}

impl From<vstress_video::VideoError> for CodecError {
    fn from(e: vstress_video::VideoError) -> Self {
        CodecError::Video(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CodecError::CorruptBitstream { offset: 12, expected: "partition symbol" };
        let s = format!("{e}");
        assert!(s.contains("12") && s.contains("partition symbol"));
    }

    #[test]
    fn video_errors_convert() {
        let v = vstress_video::VideoError::UnknownClip("x".into());
        let c: CodecError = v.into();
        assert!(matches!(c, CodecError::Video(_)));
        use std::error::Error;
        assert!(c.source().is_some());
    }
}
