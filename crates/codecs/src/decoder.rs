//! The decoder: bitstream in, frames out — the exact mirror of the
//! encoder's reconstruction loop.
//!
//! The round-trip invariant the test suite leans on:
//! `Decoder::decode(bitstream).frames == EncodeResult::recon`, bit for bit,
//! for every codec model, CRF and preset. Decoding is also an instrumented
//! workload in its own right (the paper notes decoding is "fairly
//! straightforward" relative to encoding — the instruction-count ratio
//! between our encode and decode paths reproduces that claim).

use crate::bitstream::SequenceHeader;
use crate::deblock::deblock_plane;
use crate::entropy::RangeDecoder;
use crate::error::CodecError;
use crate::frame_coder::{decode_sb_chroma, decode_superblock, CoderConfig, CoderState};
use crate::params::qindex_to_qstep;
use vstress_trace::{Kernel, Probe};
use vstress_video::Frame;

/// Result of decoding a bitstream.
#[derive(Debug, Clone)]
pub struct DecodeResult {
    /// The parsed sequence header.
    pub header: SequenceHeader,
    /// Decoded frames, cropped to the header dimensions.
    pub frames: Vec<Frame>,
}

/// A stateless decoder entry point.
#[derive(Debug, Clone, Copy, Default)]
pub struct Decoder;

impl Decoder {
    /// Creates a decoder.
    pub fn new() -> Self {
        Decoder
    }

    /// Decodes a vstress bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] on malformed input.
    pub fn decode<P: Probe>(&self, data: &[u8], probe: &mut P) -> Result<DecodeResult, CodecError> {
        let (header, payload) = SequenceHeader::parse(data)?;
        let cfg = CoderConfig::from_header(&header);
        let sb = cfg.superblock;
        if sb == 0 || cfg.min_block == 0 || !sb.is_multiple_of(2) {
            return Err(CodecError::CorruptBitstream {
                offset: 15,
                expected: "valid block geometry",
            });
        }
        let w = header.width as usize;
        let h = header.height as usize;
        let pw = w.div_ceil(sb) * sb;
        let ph = h.div_ceil(sb) * sb;

        let mut dec = RangeDecoder::new(payload);
        let mut state = CoderState::new();
        let mut last_recon: Option<Frame> = None;
        let mut golden_recon: Option<Frame> = None;
        let mut frames = Vec::with_capacity(header.frame_count as usize);

        for frame_no in 0..header.frame_count as usize {
            probe.set_kernel(Kernel::FrameSetup);
            probe.alu(32);
            // Frame header: the quantizer the encoder's CRF controller
            // chose for this frame.
            let frame_q = dec.decode_literal(probe, 8) as u8;
            let mut fcfg = cfg.clone();
            fcfg.qindex = frame_q;
            let mut recon = Frame::new(pw, ph).map_err(CodecError::Video)?;
            let is_keyframe =
                frame_no == 0 || (header.keyint > 0 && frame_no % header.keyint as usize == 0);
            let mut refs: Vec<&Frame> = Vec::new();
            if !is_keyframe {
                if let Some(l) = &last_recon {
                    refs.push(l);
                }
                if cfg.ref_frames > 1 {
                    if let Some(g) = &golden_recon {
                        refs.push(g);
                    }
                }
            }
            let refs_slice: &[&Frame] = &refs;
            for sy in (0..ph).step_by(sb) {
                for sx in (0..pw).step_by(sb) {
                    let rect = crate::blocks::BlockRect::new(sx, sy, sb, sb);
                    let info = decode_superblock(
                        probe, &fcfg, refs_slice, &mut dec, &mut state, &mut recon, rect,
                    )?;
                    decode_sb_chroma(
                        probe, &fcfg, refs_slice, rect, &info, &mut dec, &mut state, &mut recon,
                    );
                }
            }
            let qstep = qindex_to_qstep(fcfg.qindex);
            deblock_plane(probe, recon.luma_mut(), 8, qstep);
            deblock_plane(probe, recon.cb_mut(), 4, qstep);
            deblock_plane(probe, recon.cr_mut(), 4, qstep);
            frames.push(crate::encoder::crop(&recon, w, h)?);
            if frame_no % crate::encoder::GOLDEN_INTERVAL == 0 {
                golden_recon = Some(recon.clone());
            }
            last_recon = Some(recon);
        }
        Ok(DecodeResult { header, frames })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::CodecId;
    use crate::encoder::Encoder;
    use crate::params::EncoderParams;
    use vstress_trace::{CountingProbe, NullProbe};
    use vstress_video::vbench::{self, FidelityConfig};

    fn roundtrip(codec: CodecId, crf: u8, preset: u8, clip_name: &str) {
        let clip = vbench::clip(clip_name).unwrap().synthesize(&FidelityConfig::smoke());
        let enc = Encoder::new(codec, EncoderParams::new(crf, preset)).unwrap();
        let out = enc.encode(&clip, &mut NullProbe).unwrap();
        let dec = Decoder::new().decode(&out.bitstream, &mut NullProbe).unwrap();
        assert_eq!(dec.frames.len(), out.recon.len());
        for (i, (d, r)) in dec.frames.iter().zip(&out.recon).enumerate() {
            assert_eq!(d, r, "{codec} frame {i} reconstruction mismatch");
        }
    }

    #[test]
    fn svt_av1_roundtrip() {
        roundtrip(CodecId::SvtAv1, 40, 8, "desktop");
    }

    #[test]
    fn libaom_roundtrip() {
        roundtrip(CodecId::Libaom, 30, 6, "cat");
    }

    #[test]
    fn vp9_roundtrip() {
        roundtrip(CodecId::LibvpxVp9, 50, 4, "bike");
    }

    #[test]
    fn x264_roundtrip() {
        roundtrip(CodecId::X264, 24, 5, "game2");
    }

    #[test]
    fn x265_roundtrip() {
        roundtrip(CodecId::X265, 35, 5, "holi");
    }

    #[test]
    fn decoding_is_far_cheaper_than_encoding() {
        let clip = vbench::clip("girl").unwrap().synthesize(&FidelityConfig::smoke());
        let enc = Encoder::new(CodecId::SvtAv1, EncoderParams::new(30, 4)).unwrap();
        let mut pe = CountingProbe::new();
        let out = enc.encode(&clip, &mut pe).unwrap();
        let mut pd = CountingProbe::new();
        Decoder::new().decode(&out.bitstream, &mut pd).unwrap();
        assert!(
            pe.mix().total() > pd.mix().total() * 5,
            "encode {} vs decode {}",
            pe.mix().total(),
            pd.mix().total()
        );
    }

    #[test]
    fn garbage_input_is_rejected() {
        assert!(Decoder::new().decode(b"not a stream", &mut NullProbe).is_err());
        assert!(Decoder::new().decode(&[], &mut NullProbe).is_err());
    }
}
