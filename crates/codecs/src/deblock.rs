//! In-loop deblocking filter.
//!
//! A strength-adaptive smoothing of block edges on the reconstructed
//! frame. Both the encoder's reconstruction loop and the decoder run this
//! identical pass, so reconstructions stay bit-exact — the round-trip
//! integration tests depend on that.

use vstress_trace::{Kernel, Probe};
use vstress_video::Plane;

/// Filters the vertical and horizontal block edges of `plane` on an
/// `grid x grid` lattice with a strength derived from the quantizer.
///
/// The filter is the classic 2-sample low-pass across the edge, applied
/// only when the edge step is below `2 * strength` (a real edge is left
/// alone, a blocking artifact is smoothed), with `strength` proportional
/// to the quantization step.
pub fn deblock_plane<P: Probe>(probe: &mut P, plane: &mut Plane, grid: usize, qstep: i32) {
    probe.set_kernel(Kernel::Deblock);
    let strength = (qstep / 8).clamp(1, 48);
    let (w, h) = (plane.width(), plane.height());
    // Vertical edges.
    for x in (grid..w).step_by(grid) {
        for y in 0..h {
            filter_pair(probe, plane, x - 1, y, x, y, strength);
        }
        probe.sse((h as u64).div_ceil(8) * 2);
        probe.load(plane.sample_addr(x - 1, 0), 2);
        probe.store(plane.sample_addr(x - 1, 0), 2);
        probe.alu(2);
    }
    // Horizontal edges.
    for y in (grid..h).step_by(grid) {
        for x in 0..w {
            filter_pair(probe, plane, x, y - 1, x, y, strength);
        }
        probe.sse((w as u64).div_ceil(32) * 2);
        probe.load(plane.sample_addr(0, y - 1), w.min(32) as u32);
        probe.store(plane.sample_addr(0, y - 1), w.min(32) as u32);
        probe.alu(2);
    }
}

#[inline]
fn filter_pair<P: Probe>(
    probe: &mut P,
    plane: &mut Plane,
    ax: usize,
    ay: usize,
    bx: usize,
    by: usize,
    strength: i32,
) {
    let a = plane.get(ax, ay) as i32;
    let b = plane.get(bx, by) as i32;
    let step = b - a;
    let filter = step.abs() < 2 * strength && step != 0;
    // Edge-activity branch: biased (most edges are quiet) but
    // content-dependent — reported so the predictor study sees it.
    probe.branch(vstress_trace::site_pc!(), filter);
    if filter {
        let delta = step / 4;
        plane.set(ax, ay, (a + delta).clamp(0, 255) as u8);
        plane.set(bx, by, (b - delta).clamp(0, 255) as u8);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    fn blocky_plane() -> Plane {
        // 8x8 blocks of alternating flat values: ideal blocking artifact.
        let mut p = Plane::new(32, 32, 0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                let v = if ((x / 8) + (y / 8)) % 2 == 0 { 100 } else { 112 };
                p.set(x, y, v);
            }
        }
        p
    }

    fn edge_energy(p: &Plane, grid: usize) -> u64 {
        let mut e = 0u64;
        for x in (grid..p.width()).step_by(grid) {
            for y in 0..p.height() {
                e += (p.get(x, y) as i64 - p.get(x - 1, y) as i64).unsigned_abs();
            }
        }
        e
    }

    #[test]
    fn smooths_blocking_artifacts() {
        let mut p = blocky_plane();
        let before = edge_energy(&p, 8);
        deblock_plane(&mut NullProbe, &mut p, 8, 64);
        let after = edge_energy(&p, 8);
        assert!(after < before, "edge energy must drop: {after} vs {before}");
    }

    #[test]
    fn preserves_real_edges() {
        // A strong edge (step 120) must not be smoothed at moderate qstep.
        let mut p = Plane::new(16, 16, 0).unwrap();
        for y in 0..16 {
            for x in 0..16 {
                p.set(x, y, if x < 8 { 40 } else { 160 });
            }
        }
        let before = p.clone();
        deblock_plane(&mut NullProbe, &mut p, 8, 32);
        assert_eq!(p, before, "strong edges stay intact");
    }

    #[test]
    fn is_deterministic() {
        let mut a = blocky_plane();
        let mut b = blocky_plane();
        deblock_plane(&mut NullProbe, &mut a, 8, 48);
        deblock_plane(&mut NullProbe, &mut b, 8, 48);
        assert_eq!(a, b);
    }

    #[test]
    fn flat_plane_is_untouched() {
        let mut p = Plane::new(16, 16, 90).unwrap();
        let before = p.clone();
        deblock_plane(&mut NullProbe, &mut p, 4, 80);
        assert_eq!(p, before);
    }
}
