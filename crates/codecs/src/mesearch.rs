//! Motion estimation: candidate seeding, diamond refinement, optional
//! exhaustive windows and half-pel refinement.
//!
//! Search breadth is the speed-preset dial with the largest runtime
//! leverage (the paper's Fig. 11a spans nearly three orders of magnitude
//! from preset 0 to 8); the [`MeSettings`] gates below are what the
//! per-codec preset tables manipulate.

use crate::blocks::BlockRect;
use crate::kernels::{sad_plane_plane, sad_plane_plane_events, sad_plane_plane_row_batch};
use crate::mc::MotionVector;
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::Plane;

/// Branch-site PC of the candidate-bookkeeping branch in
/// [`motion_search`], pinned for the same reason as the kernel PCs (see
/// `kernels::SAD_PLANE_PRED_BRANCH_PC`).
pub(crate) const MOTION_SEARCH_EVAL_BRANCH_PC: u64 = 0x5b58_7234_4f20;
/// Branch-site PC of the candidate-bookkeeping branch in
/// [`motion_search_around`].
pub(crate) const MOTION_SEARCH_AROUND_EVAL_BRANCH_PC: u64 = 0x5c8e_7234_4f20;

/// Motion-search effort parameters (full-pel units unless noted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MeSettings {
    /// Clamp on |mv| per axis.
    pub range: i32,
    /// Run an exhaustive scan of ±`exhaustive_radius` (0 disables) before
    /// diamond refinement — the slow-preset tool.
    pub exhaustive_radius: i32,
    /// Diamond refinement iterations budget.
    pub refine_steps: u32,
    /// Half-pel refinement pass.
    pub subpel: bool,
}

/// Estimated bits to code a motion-vector component (sign + UVLC
/// magnitude), in whole bits.
fn mv_component_bits(v: i32) -> u64 {
    let mag = v.unsigned_abs() as u64;
    2 + 2 * (64 - (mag + 1).leading_zeros() as u64)
}

/// Rate-aware motion-vector cost: estimated bits priced at the search's
/// λ (distortion units per bit). An unpriced MV cost makes wide searches
/// *hurt* compression — they trade many signalling bits for tiny SAD
/// gains.
fn mv_cost(rate_lambda: u64, dx: i32, dy: i32) -> u64 {
    rate_lambda * (mv_component_bits(dx) + mv_component_bits(dy))
}

/// Reusable working buffers for motion search.
///
/// The half-pel refinement needs one block-sized predictor buffer per
/// candidate; allocating it per [`motion_search`] call puts a heap
/// round-trip on the hottest path of the RDO descent. Callers keep one
/// `MeScratch` alive across blocks (it grows to the largest block seen
/// and is then allocation-free — see `tests/alloc_regression.rs`).
#[derive(Debug, Default)]
pub struct MeScratch {
    pred: Vec<u8>,
    /// Candidate displacements of one search-window row, for the
    /// row-batched SAD evaluation (grow-once, like `pred`).
    dxs: Vec<i32>,
    /// SAD values matching `dxs`.
    sums: Vec<u64>,
}

impl MeScratch {
    /// An empty pool (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// A predictor buffer of at least `area` samples.
    #[inline]
    fn pred(&mut self, area: usize) -> &mut [u8] {
        if self.pred.len() < area {
            self.pred.resize(area, 0);
        }
        &mut self.pred[..area]
    }
}

/// Result of a motion search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeResult {
    /// Best motion vector (half-pel units).
    pub mv: MotionVector,
    /// SAD + rate-proxy cost at the winner.
    pub cost: u64,
    /// Candidates evaluated (work metric used by tests).
    pub evaluated: u32,
}

/// Searches for the best motion vector for `rect` in `refp`.
///
/// Seeds from the zero vector and `pred_mv` (the spatial predictor),
/// optionally scans an exhaustive window, then refines with a
/// large-diamond pattern and an optional half-pel pass.
#[allow(clippy::too_many_arguments)]
pub fn motion_search<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    pred_mv: MotionVector,
    settings: &MeSettings,
    rate_lambda: u64,
    scratch: &mut MeScratch,
) -> MeResult {
    probe.set_kernel(Kernel::MotionSearch);
    let r = settings.range;
    let clamp_mv = |v: i32| v.clamp(-r, r);
    let mut evaluated = 0u32;

    let eval = |probe: &mut P, dx: i32, dy: i32, evaluated: &mut u32| -> u64 {
        probe.set_kernel(Kernel::MotionSearch);
        probe.alu(4);
        // Candidate bookkeeping (cost table update).
        probe.store(probe_addr::fixed::SEARCH_STATE, 8);
        probe.branch(MOTION_SEARCH_EVAL_BRANCH_PC, (dx + dy) % 2 == 0);
        *evaluated += 1;
        sad_plane_plane(probe, cur, rect, refp, dx, dy) + mv_cost(rate_lambda, dx, dy)
    };

    // Same observable behaviour as `eval`, but for a candidate whose SAD
    // was already computed by the row batch: emits the identical probe
    // stream (bookkeeping, then the SAD kernel's events) and prices in
    // the MV rate.
    let eval_batched = |probe: &mut P, dx: i32, dy: i32, sad: u64, evaluated: &mut u32| -> u64 {
        probe.set_kernel(Kernel::MotionSearch);
        probe.alu(4);
        probe.store(probe_addr::fixed::SEARCH_STATE, 8);
        probe.branch(MOTION_SEARCH_EVAL_BRANCH_PC, (dx + dy) % 2 == 0);
        *evaluated += 1;
        sad_plane_plane_events(probe, cur, rect, refp, dx, dy);
        sad + mv_cost(rate_lambda, dx, dy)
    };

    // Seed candidates.
    let seeds = [(0, 0), (pred_mv.x >> 1, pred_mv.y >> 1)];
    let mut best = (0i32, 0i32);
    let mut best_cost = u64::MAX;
    for &(dx, dy) in &seeds {
        let (dx, dy) = (clamp_mv(dx), clamp_mv(dy));
        let c = eval(probe, dx, dy, &mut evaluated);
        if c < best_cost {
            best_cost = c;
            best = (dx, dy);
        }
    }

    // The window scans evaluate whole rows of candidates at once through
    // `sad_plane_plane_row_batch` — each current row and each (padded)
    // reference row is loaded once and shared across the row's
    // candidates. Candidate results are then consumed in the original
    // scan order (strict `<` keeps first-minimum tie-breaks identical),
    // and each candidate's canonical probe stream is emitted in turn.
    let mut scan_row =
        |probe: &mut P, dy: i32, dxs: &[i32], sums: &mut Vec<u64>, evaluated: &mut u32| {
            sums.resize(dxs.len(), 0);
            sad_plane_plane_row_batch(cur, rect, refp, dxs, dy, sums);
            for (&dx, &sad) in dxs.iter().zip(sums.iter()) {
                let c = eval_batched(probe, dx, dy, sad, evaluated);
                if c < best_cost {
                    best_cost = c;
                    best = (dx, dy);
                }
            }
        };

    // Exhaustive window (slow presets only).
    if settings.exhaustive_radius > 0 {
        let er = settings.exhaustive_radius.min(r);
        for dy in -er..=er {
            scratch.dxs.clear();
            scratch.dxs.extend((-er..=er).filter(|&dx| (dx, dy) != (0, 0)));
            scan_row(probe, dy, &scratch.dxs, &mut scratch.sums, &mut evaluated);
        }
    } else {
        // Coarse uneven-multi-hexagon-style grid: keeps the refinement
        // from locking onto a local minimum of periodic texture.
        let stride = (r / 3).clamp(2, 8);
        let mut dy = -r;
        while dy <= r {
            scratch.dxs.clear();
            let mut dx = -r;
            while dx <= r {
                if (dx, dy) != (0, 0) {
                    scratch.dxs.push(dx);
                }
                dx += stride;
            }
            scan_row(probe, dy, &scratch.dxs, &mut scratch.sums, &mut evaluated);
            dy += stride;
        }
    }

    // Diamond refinement with shrinking step.
    let mut step = (r / 4).clamp(1, 8);
    let mut iterations = settings.refine_steps;
    while iterations > 0 && step >= 1 {
        let (cx, cy) = best;
        let mut moved = false;
        for &(ox, oy) in &[(step, 0), (-step, 0), (0, step), (0, -step)] {
            let (dx, dy) = (clamp_mv(cx + ox), clamp_mv(cy + oy));
            if (dx, dy) == (cx, cy) {
                continue;
            }
            let c = eval(probe, dx, dy, &mut evaluated);
            if c < best_cost {
                best_cost = c;
                best = (dx, dy);
                moved = true;
            }
        }
        if !moved {
            step /= 2;
        }
        iterations -= 1;
    }

    let mut mv = MotionVector::from_fullpel(best.0, best.1);
    let mut cost = best_cost;

    // Half-pel refinement around the full-pel winner.
    if settings.subpel {
        let pred = scratch.pred(rect.area());
        for &(hx, hy) in &[(1i32, 0i32), (-1, 0), (0, 1), (0, -1), (1, 1), (-1, -1)] {
            let cand = MotionVector { x: mv.x + hx, y: mv.y + hy };
            crate::mc::motion_compensate(probe, refp, rect, cand, pred);
            let c = crate::kernels::sad_plane_pred(probe, cur, rect, pred)
                + mv_cost(rate_lambda, cand.x >> 1, cand.y >> 1);
            evaluated += 1;
            if c < cost {
                cost = c;
                mv = cand;
            }
        }
    }

    MeResult { mv, cost, evaluated }
}

/// Refinement search in a small window centred on `center` (an HME seed),
/// also considering the spatial predictor `pred_mv`. Used by the
/// mode-decision stage, whose job is local refinement rather than global
/// search.
#[allow(clippy::too_many_arguments)]
pub fn motion_search_around<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    center: MotionVector,
    pred_mv: MotionVector,
    settings: &MeSettings,
    rate_lambda: u64,
    scratch: &mut MeScratch,
) -> MeResult {
    probe.set_kernel(Kernel::MotionSearch);
    let r = settings.range;
    let (cx, cy) = (center.x >> 1, center.y >> 1);
    let clamp_x = |v: i32| v.clamp(cx - r, cx + r);
    let clamp_y = |v: i32| v.clamp(cy - r, cy + r);
    let mut evaluated = 0u32;
    let eval = |probe: &mut P, dx: i32, dy: i32, evaluated: &mut u32| -> u64 {
        probe.set_kernel(Kernel::MotionSearch);
        probe.alu(4);
        probe.store(probe_addr::fixed::SEARCH_STATE, 8);
        probe.branch(MOTION_SEARCH_AROUND_EVAL_BRANCH_PC, (dx ^ dy) & 1 == 0);
        *evaluated += 1;
        sad_plane_plane(probe, cur, rect, refp, dx, dy) + mv_cost(rate_lambda, dx, dy)
    };

    let mut best = (cx, cy);
    let mut best_cost = eval(probe, cx, cy, &mut evaluated);
    let p = (clamp_x(pred_mv.x >> 1), clamp_y(pred_mv.y >> 1));
    if p != best {
        let c = eval(probe, p.0, p.1, &mut evaluated);
        if c < best_cost {
            best_cost = c;
            best = p;
        }
    }

    let mut step = (r / 2).max(1);
    let mut iterations = settings.refine_steps.max(4);
    while iterations > 0 && step >= 1 {
        let (bx, by) = best;
        let mut moved = false;
        for &(ox, oy) in &[(step, 0), (-step, 0), (0, step), (0, -step)] {
            let cand = (clamp_x(bx + ox), clamp_y(by + oy));
            if cand == (bx, by) {
                continue;
            }
            let c = eval(probe, cand.0, cand.1, &mut evaluated);
            if c < best_cost {
                best_cost = c;
                best = cand;
                moved = true;
            }
        }
        if !moved {
            step /= 2;
        }
        iterations -= 1;
    }

    let mut mv = MotionVector::from_fullpel(best.0, best.1);
    let mut cost = best_cost;
    if settings.subpel {
        let pred = scratch.pred(rect.area());
        for &(hx, hy) in &[(1i32, 0i32), (-1, 0), (0, 1), (0, -1)] {
            let cand = MotionVector { x: mv.x + hx, y: mv.y + hy };
            crate::mc::motion_compensate(probe, refp, rect, cand, pred);
            let c = crate::kernels::sad_plane_pred(probe, cur, rect, pred)
                + mv_cost(rate_lambda, cand.x >> 1, cand.y >> 1);
            evaluated += 1;
            if c < cost {
                cost = c;
                mv = cand;
            }
        }
    }
    MeResult { mv, cost, evaluated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    /// Smooth, natural-video-like texture: the SAD landscape decreases
    /// monotonically toward the true displacement, which is the terrain
    /// pattern-based searches are designed for.
    fn textured(shift: usize) -> Plane {
        let mut p = Plane::new(64, 64, 0).unwrap();
        for y in 0..64 {
            for x in 0..64 {
                let s = (x + shift) as f64;
                let fy = y as f64;
                let v = 128.0
                    + 58.0 * (s * 0.19).sin()
                    + 38.0 * (fy * 0.23 + s * 0.07).sin()
                    + 18.0 * ((s + fy) * 0.11).cos();
                p.set(x, y, v.clamp(0.0, 255.0) as u8);
            }
        }
        p
    }

    fn fast() -> MeSettings {
        MeSettings { range: 12, exhaustive_radius: 0, refine_steps: 16, subpel: false }
    }

    #[test]
    fn finds_a_pure_translation() {
        // Reference content shifted right by 4: best MV is (+4, 0).
        let cur = textured(4);
        let refp = textured(0);
        let rect = BlockRect::new(16, 16, 16, 16);
        let r = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &fast(),
            2,
            &mut MeScratch::new(),
        );
        assert_eq!((r.mv.x >> 1, r.mv.y >> 1), (4, 0), "cost {}", r.cost);
    }

    #[test]
    fn exhaustive_never_loses_to_diamond() {
        let cur = textured(7);
        let refp = textured(0);
        let rect = BlockRect::new(24, 24, 16, 16);
        let diamond = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &fast(),
            2,
            &mut MeScratch::new(),
        );
        let mut slow = fast();
        slow.exhaustive_radius = 10;
        let exhaustive = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &slow,
            2,
            &mut MeScratch::new(),
        );
        assert!(exhaustive.cost <= diamond.cost);
        assert!(exhaustive.evaluated > diamond.evaluated * 2, "exhaustive must do more work");
    }

    #[test]
    fn predictor_seed_helps_find_large_motion() {
        let cur = textured(11);
        let refp = textured(0);
        let rect = BlockRect::new(32, 32, 16, 16);
        let seeded = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::from_fullpel(11, 0),
            &fast(),
            2,
            &mut MeScratch::new(),
        );
        assert_eq!((seeded.mv.x >> 1, seeded.mv.y >> 1), (11, 0));
    }

    #[test]
    fn mv_respects_range_clamp() {
        let cur = textured(20);
        let refp = textured(0);
        let rect = BlockRect::new(32, 32, 8, 8);
        let mut s = fast();
        s.range = 4;
        let r = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &s,
            2,
            &mut MeScratch::new(),
        );
        assert!((r.mv.x >> 1).abs() <= 4 && (r.mv.y >> 1).abs() <= 4);
    }

    #[test]
    fn refinement_finds_motion_near_the_seed() {
        let cur = textured(6);
        let refp = textured(0);
        let rect = BlockRect::new(16, 16, 16, 16);
        // Seed two pixels off the true displacement: refinement closes it.
        let seed = MotionVector::from_fullpel(4, 1);
        let s = MeSettings { range: 4, exhaustive_radius: 0, refine_steps: 6, subpel: false };
        let r = motion_search_around(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            seed,
            MotionVector::ZERO,
            &s,
            2,
            &mut MeScratch::new(),
        );
        assert_eq!((r.mv.x >> 1, r.mv.y >> 1), (6, 0), "cost {}", r.cost);
    }

    #[test]
    fn refinement_stays_inside_its_window() {
        let cur = textured(20);
        let refp = textured(0);
        let rect = BlockRect::new(24, 24, 8, 8);
        let seed = MotionVector::from_fullpel(2, 2);
        let s = MeSettings { range: 3, exhaustive_radius: 0, refine_steps: 8, subpel: false };
        let r = motion_search_around(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            seed,
            MotionVector::ZERO,
            &s,
            2,
            &mut MeScratch::new(),
        );
        assert!((r.mv.x / 2 - 2).abs() <= 3 && (r.mv.y / 2 - 2).abs() <= 3);
    }

    #[test]
    fn subpel_refinement_never_hurts() {
        let cur = textured(3);
        let refp = textured(0);
        let rect = BlockRect::new(8, 8, 16, 16);
        let full = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &fast(),
            2,
            &mut MeScratch::new(),
        );
        let mut s = fast();
        s.subpel = true;
        let sub = motion_search(
            &mut NullProbe,
            &cur,
            rect,
            &refp,
            MotionVector::ZERO,
            &s,
            2,
            &mut MeScratch::new(),
        );
        assert!(sub.cost <= full.cost);
    }
}
