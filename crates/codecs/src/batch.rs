//! Parallel batch encoding — the datacenter transcode pattern that
//! motivates the paper ("video streaming companies … build massive
//! infrastructures to stream video at such a large scale").
//!
//! The encoders are plain `Send + Sync` values, so a clip batch
//! parallelizes with scoped worker threads pulling from a shared queue.
//! Instrumentation is per-thread and local; batch mode reports only the
//! encode results (attach probes in single-encode mode for
//! characterization).
//!
//! The queue machinery is exposed as [`run_ordered`], a generic
//! order-preserving fan-out that the `vstress` experiment executor
//! reuses for characterization runs.

use crate::encoder::{EncodeResult, Encoder};
use crate::error::CodecError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use vstress_trace::NullProbe;
use vstress_video::Clip;

/// Runs `job(0..count)` on up to `threads` scoped worker threads and
/// returns the results in index order.
///
/// Workers claim indices from a shared counter, so claimed indices are
/// always a prefix of `0..count`. Once any job returns `Err`, a cancel
/// flag stops idle workers from claiming further indices; jobs already
/// in flight still finish. The returned error is the smallest-index
/// error among the jobs that ran (the "first-by-index" contract: with
/// one thread this is exactly the first failure the serial loop would
/// have hit).
///
/// # Panics
///
/// Panics if `threads` is zero, or if `job` panics on a worker thread
/// (the panic is propagated when the scope joins).
pub fn run_ordered<T, E, F>(count: usize, threads: usize, job: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if count == 0 {
        return Ok(Vec::new());
    }
    let next = Mutex::new(0usize);
    let cancelled = AtomicBool::new(false);
    let results: Mutex<Vec<Option<Result<T, E>>>> = Mutex::new((0..count).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads.min(count) {
            scope.spawn(|| loop {
                if cancelled.load(Ordering::Acquire) {
                    break;
                }
                let idx = {
                    let mut guard = next.lock().unwrap();
                    if *guard >= count {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let outcome = job(idx);
                if outcome.is_err() {
                    cancelled.store(true, Ordering::Release);
                }
                results.lock().unwrap()[idx] = Some(outcome);
            });
        }
    });

    let collected = results.into_inner().unwrap();
    let mut out = Vec::with_capacity(count);
    for (i, slot) in collected.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(e),
            // Claims are sequential, so an unclaimed slot can only follow
            // a cancel, and the triggering Err sits at a smaller index.
            None => unreachable!("slot {i} unclaimed yet no earlier worker error"),
        }
    }
    Ok(out)
}

/// Encodes `clips` on up to `threads` worker threads, preserving input
/// order in the result.
///
/// ```
/// use vstress_codecs::{batch::encode_batch, CodecId, Encoder, EncoderParams};
/// use vstress_video::vbench::{self, FidelityConfig};
///
/// let clips: Vec<_> = ["cat", "desktop"]
///     .iter()
///     .map(|n| vbench::clip(n).unwrap().synthesize(&FidelityConfig::smoke()))
///     .collect();
/// let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5))?;
/// let results = encode_batch(&enc, &clips, 2)?;
/// assert_eq!(results.len(), 2);
/// # Ok::<(), vstress_codecs::CodecError>(())
/// ```
///
/// # Errors
///
/// Returns the first-by-index [`CodecError`] any worker hit. Workers
/// stop claiming new clips as soon as one fails; encodes already in
/// flight finish so the scope joins cleanly.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn encode_batch(
    encoder: &Encoder,
    clips: &[Clip],
    threads: usize,
) -> Result<Vec<EncodeResult>, CodecError> {
    run_ordered(clips.len(), threads, |idx| encoder.encode(&clips[idx], &mut NullProbe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::CodecId;
    use crate::params::EncoderParams;
    use std::sync::atomic::AtomicUsize;
    use vstress_video::vbench::{self, FidelityConfig};

    fn clips(names: &[&str]) -> Vec<Clip> {
        names
            .iter()
            .map(|n| vbench::clip(n).unwrap().synthesize(&FidelityConfig::smoke()))
            .collect()
    }

    #[test]
    fn batch_matches_serial_results() {
        let cs = clips(&["desktop", "cat", "bike"]);
        let enc = Encoder::new(CodecId::LibvpxVp9, EncoderParams::new(45, 6)).unwrap();
        let serial: Vec<_> =
            cs.iter().map(|c| enc.encode(c, &mut NullProbe).unwrap().bitstream).collect();
        let batch = encode_batch(&enc, &cs, 3).unwrap();
        for (s, b) in serial.iter().zip(&batch) {
            assert_eq!(s, &b.bitstream, "parallel encode must be bit-identical");
        }
    }

    #[test]
    fn batch_preserves_order_with_more_work_than_threads() {
        let cs = clips(&["desktop", "cat", "bike", "holi", "game2"]);
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        let batch = encode_batch(&enc, &cs, 2).unwrap();
        assert_eq!(batch.len(), 5);
        // Spot-check order via per-clip deterministic bitstreams.
        let direct = enc.encode(&cs[3], &mut NullProbe).unwrap();
        assert_eq!(batch[3].bitstream, direct.bitstream);
    }

    #[test]
    fn empty_batch_is_fine() {
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        assert!(encode_batch(&enc, &[], 4).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        let _ = encode_batch(&enc, &clips(&["cat"]), 0);
    }

    #[test]
    fn run_ordered_preserves_order_and_runs_everything() {
        let ran = AtomicUsize::new(0);
        let out: Vec<usize> = run_ordered(16, 4, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            Ok::<_, ()>(i * i)
        })
        .unwrap();
        assert_eq!(out, (0..16).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn failure_cancels_remaining_work() {
        // Single worker: claims are strictly sequential, so nothing past
        // the failing index may run once the cancel flag is set.
        let ran = AtomicUsize::new(0);
        let res: Result<Vec<usize>, &str> = run_ordered(8, 1, |i| {
            ran.fetch_add(1, Ordering::Relaxed);
            if i == 2 {
                Err("boom")
            } else {
                Ok(i)
            }
        });
        assert_eq!(res.unwrap_err(), "boom");
        assert_eq!(ran.load(Ordering::Relaxed), 3, "items after the failure must not run");
    }

    #[test]
    fn first_by_index_error_wins() {
        let res: Result<Vec<usize>, String> =
            run_ordered(6, 1, |i| if i >= 1 { Err(format!("err {i}")) } else { Ok(i) });
        assert_eq!(res.unwrap_err(), "err 1");
    }
}
