//! Parallel batch encoding — the datacenter transcode pattern that
//! motivates the paper ("video streaming companies … build massive
//! infrastructures to stream video at such a large scale").
//!
//! The encoders are plain `Send + Sync` values, so a clip batch
//! parallelizes with scoped worker threads pulling from a shared queue.
//! Instrumentation is per-thread and local; batch mode reports only the
//! encode results (attach probes in single-encode mode for
//! characterization).

use crate::encoder::{EncodeResult, Encoder};
use crate::error::CodecError;
use parking_lot::Mutex;
use vstress_trace::NullProbe;
use vstress_video::Clip;

/// Encodes `clips` on up to `threads` worker threads, preserving input
/// order in the result.
///
/// ```
/// use vstress_codecs::{batch::encode_batch, CodecId, Encoder, EncoderParams};
/// use vstress_video::vbench::{self, FidelityConfig};
///
/// let clips: Vec<_> = ["cat", "desktop"]
///     .iter()
///     .map(|n| vbench::clip(n).unwrap().synthesize(&FidelityConfig::smoke()))
///     .collect();
/// let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5))?;
/// let results = encode_batch(&enc, &clips, 2)?;
/// assert_eq!(results.len(), 2);
/// # Ok::<(), vstress_codecs::CodecError>(())
/// ```
///
/// # Errors
///
/// Returns the first [`CodecError`] any worker hit (remaining work is
/// still drained so workers shut down cleanly).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn encode_batch(
    encoder: &Encoder,
    clips: &[Clip],
    threads: usize,
) -> Result<Vec<EncodeResult>, CodecError> {
    assert!(threads > 0, "need at least one worker thread");
    if clips.is_empty() {
        return Ok(Vec::new());
    }
    let next = Mutex::new(0usize);
    let results: Mutex<Vec<Option<Result<EncodeResult, CodecError>>>> =
        Mutex::new((0..clips.len()).map(|_| None).collect());

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(clips.len()) {
            scope.spawn(|_| loop {
                let idx = {
                    let mut guard = next.lock();
                    if *guard >= clips.len() {
                        break;
                    }
                    let i = *guard;
                    *guard += 1;
                    i
                };
                let outcome = encoder.encode(&clips[idx], &mut NullProbe);
                results.lock()[idx] = Some(outcome);
            });
        }
    })
    .expect("batch workers must not panic");

    let collected = results.into_inner();
    let mut out = Vec::with_capacity(clips.len());
    for slot in collected {
        match slot.expect("every index was claimed by a worker") {
            Ok(r) => out.push(r),
            Err(e) => return Err(e),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codecs::CodecId;
    use crate::params::EncoderParams;
    use vstress_video::vbench::{self, FidelityConfig};

    fn clips(names: &[&str]) -> Vec<Clip> {
        names
            .iter()
            .map(|n| vbench::clip(n).unwrap().synthesize(&FidelityConfig::smoke()))
            .collect()
    }

    #[test]
    fn batch_matches_serial_results() {
        let cs = clips(&["desktop", "cat", "bike"]);
        let enc = Encoder::new(CodecId::LibvpxVp9, EncoderParams::new(45, 6)).unwrap();
        let serial: Vec<_> = cs
            .iter()
            .map(|c| enc.encode(c, &mut NullProbe).unwrap().bitstream)
            .collect();
        let batch = encode_batch(&enc, &cs, 3).unwrap();
        for (s, b) in serial.iter().zip(&batch) {
            assert_eq!(s, &b.bitstream, "parallel encode must be bit-identical");
        }
    }

    #[test]
    fn batch_preserves_order_with_more_work_than_threads() {
        let cs = clips(&["desktop", "cat", "bike", "holi", "game2"]);
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        let batch = encode_batch(&enc, &cs, 2).unwrap();
        assert_eq!(batch.len(), 5);
        // Spot-check order via per-clip deterministic bitstreams.
        let direct = enc.encode(&cs[3], &mut NullProbe).unwrap();
        assert_eq!(batch[3].bitstream, direct.bitstream);
    }

    #[test]
    fn empty_batch_is_fine() {
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        assert!(encode_batch(&enc, &[], 4).unwrap().is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let enc = Encoder::new(CodecId::X264, EncoderParams::new(30, 5)).unwrap();
        let _ = encode_batch(&enc, &clips(&["cat"]), 0);
    }
}
