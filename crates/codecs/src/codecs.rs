//! Codec identities and their tool sets.
//!
//! Each of the paper's five encoders is modelled as a configuration over
//! the shared coding substrate. The per-codec differences implemented here
//! are exactly the mechanisms the paper names:
//!
//! * **partition grammar** — AV1-family codecs search all ten
//!   [`PartitionShape`]s, VP9 four, the H.26x models a plain quadtree;
//! * **intra-mode sets** — 10 / 8 / 7 / 4 modes;
//! * **motion-search breadth** and sub-pel refinement;
//! * **speed presets** gating all of the above (AV1/VP9 family: 0 = slow,
//!   8 = fast; x264/x265: 0 = fast, 9 = slow, the opposite direction, as
//!   the paper notes in §3.3);
//! * **threading structure** (see [`crate::taskgraph`]).

use crate::blocks::PartitionShape;
use crate::error::CodecError;
use crate::mesearch::MeSettings;
use crate::params::EncoderParams;
use crate::predict::IntraMode;

/// One of the five encoders characterized by the paper.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum CodecId {
    /// The SVT-AV1 encoder (AV1 codec, Intel/Netflix implementation).
    SvtAv1,
    /// The libaom reference AV1 encoder.
    Libaom,
    /// The libvpx VP9 encoder.
    LibvpxVp9,
    /// The x264 H.264/AVC encoder.
    X264,
    /// The x265 H.265/HEVC encoder.
    X265,
}

impl CodecId {
    /// All five codecs in the paper's ordering.
    pub const ALL: [CodecId; 5] =
        [CodecId::SvtAv1, CodecId::Libaom, CodecId::LibvpxVp9, CodecId::X264, CodecId::X265];

    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            CodecId::SvtAv1 => "SVT-AV1",
            CodecId::Libaom => "libaom",
            CodecId::LibvpxVp9 => "libvpx-vp9",
            CodecId::X264 => "x264",
            CodecId::X265 => "x265",
        }
    }

    /// Upper CRF bound (inclusive): 63 for the AV1/VP9 family, 51 for the
    /// H.26x family (paper §3.3).
    pub fn max_crf(self) -> u8 {
        match self {
            CodecId::SvtAv1 | CodecId::Libaom | CodecId::LibvpxVp9 => 63,
            CodecId::X264 | CodecId::X265 => 51,
        }
    }

    /// Upper preset bound (inclusive): 8 for the AV1/VP9 family (0 =
    /// slowest), 9 for the H.26x family (0 = *fastest*).
    pub fn max_preset(self) -> u8 {
        match self {
            CodecId::SvtAv1 | CodecId::Libaom | CodecId::LibvpxVp9 => 8,
            CodecId::X264 | CodecId::X265 => 9,
        }
    }

    /// Normalized speed in `[0, 1]` (0 = slowest/most thorough search,
    /// 1 = fastest), resolving the two preset directions.
    pub fn speed(self, preset: u8) -> f64 {
        match self {
            CodecId::SvtAv1 | CodecId::Libaom | CodecId::LibvpxVp9 => preset as f64 / 8.0,
            CodecId::X264 | CodecId::X265 => 1.0 - preset as f64 / 9.0,
        }
    }

    /// Bitstream codec tag.
    pub(crate) fn tag(self) -> u8 {
        match self {
            CodecId::SvtAv1 => 0,
            CodecId::Libaom => 1,
            CodecId::LibvpxVp9 => 2,
            CodecId::X264 => 3,
            CodecId::X265 => 4,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        CodecId::ALL.into_iter().find(|c| c.tag() == tag)
    }
}

impl std::fmt::Display for CodecId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The resolved tool configuration an encode actually runs with.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ToolSet {
    /// Which codec this models.
    pub codec: CodecId,
    /// Superblock (coding-tree root) size in luma samples.
    pub superblock: usize,
    /// Minimum coding block size.
    pub min_block: usize,
    /// Maximum `Split` recursion depth below the superblock.
    pub max_depth: u32,
    /// Partition shapes evaluated at each node.
    pub partition_shapes: Vec<PartitionShape>,
    /// Intra modes evaluated per leaf.
    pub intra_modes: Vec<IntraMode>,
    /// Motion-search effort.
    pub me: MeSettings,
    /// Number of quantization trial passes per leaf (slow presets re-try
    /// with an adjusted rounding to shave rate — the "trellis" stand-in).
    pub quant_passes: u32,
    /// Early-termination aggressiveness: the partition search stops trying
    /// further shapes once the best RD cost falls below a threshold scaled
    /// by this factor. Higher = exits earlier.
    pub early_exit_scale: u64,
    /// Reference frames inter prediction may select from (1 = last only,
    /// 2 = last + golden).
    pub ref_frames: usize,
}

impl ToolSet {
    /// Resolves the tool set for `codec` at the given user parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidParams`] when CRF/preset/threads are
    /// outside the codec's accepted ranges.
    pub fn resolve(codec: CodecId, params: &EncoderParams) -> Result<ToolSet, CodecError> {
        params.validate(codec.max_crf(), codec.max_preset())?;
        let s = codec.speed(params.preset);
        // Linear interpolation helper: value at slow end -> fast end.
        let lerp = |slow: f64, fast: f64| slow + (fast - slow) * s;
        let set = match codec {
            // SVT-AV1 keeps more of AV1's tool set live at every speed
            // point than libaom does (its speed features trade decision
            // accuracy, not tool count) — which is why the paper's Fig. 1
            // shows it far above every other encoder, libaom included.
            CodecId::SvtAv1 => ToolSet {
                codec,
                superblock: 32,
                min_block: 4,
                max_depth: if s < 0.5 { 3 } else { 2 },
                partition_shapes: PartitionShape::AV1[..lerp(10.0, 7.0).round() as usize].to_vec(),
                intra_modes: IntraMode::AV1[..lerp(10.0, 7.0).round() as usize].to_vec(),
                me: MeSettings {
                    range: lerp(28.0, 10.0).round() as i32,
                    // The slowest presets run wide exhaustive windows —
                    // the dominant term in the paper's Fig. 11a runtime
                    // cliff between presets 0 and 2.
                    exhaustive_radius: if s < 0.25 {
                        (20.0 * (1.0 - 4.0 * s)).round().max(3.0) as i32
                    } else {
                        0
                    },
                    refine_steps: lerp(28.0, 12.0).round() as u32,
                    subpel: s < 0.7,
                },
                quant_passes: if s < 0.15 {
                    3
                } else if s < 0.35 {
                    2
                } else {
                    1
                },
                early_exit_scale: lerp(2.0, 6.0).round() as u64,
                ref_frames: 2,
            },
            CodecId::Libaom => ToolSet {
                codec,
                superblock: 32,
                min_block: 4,
                max_depth: if s < 0.5 { 3 } else { 2 },
                partition_shapes: PartitionShape::AV1[..lerp(9.0, 4.0).round() as usize].to_vec(),
                intra_modes: IntraMode::AV1[..lerp(8.0, 4.0).round() as usize].to_vec(),
                me: MeSettings {
                    range: lerp(18.0, 6.0).round() as i32,
                    exhaustive_radius: if s < 0.15 { 6 } else { 0 },
                    refine_steps: lerp(18.0, 7.0).round() as u32,
                    subpel: s < 0.6,
                },
                quant_passes: if s < 0.3 { 2 } else { 1 },
                early_exit_scale: lerp(3.0, 10.0).round() as u64,
                ref_frames: if s < 0.75 { 2 } else { 1 },
            },
            CodecId::LibvpxVp9 => ToolSet {
                codec,
                superblock: 32,
                min_block: 4,
                max_depth: if s < 0.5 { 3 } else { 2 },
                partition_shapes: PartitionShape::VP9.to_vec(),
                intra_modes: IntraMode::VP9[..lerp(8.0, 4.0).round() as usize].to_vec(),
                me: MeSettings {
                    range: lerp(16.0, 6.0).round() as i32,
                    exhaustive_radius: 0,
                    refine_steps: lerp(16.0, 6.0).round() as u32,
                    subpel: s < 0.5,
                },
                quant_passes: 1,
                early_exit_scale: lerp(4.0, 14.0).round() as u64,
                ref_frames: if s < 0.5 { 2 } else { 1 },
            },
            CodecId::X264 => ToolSet {
                codec,
                superblock: 16,
                min_block: 8,
                max_depth: 1,
                partition_shapes: PartitionShape::H26X.to_vec(),
                intra_modes: IntraMode::H264.to_vec(),
                me: MeSettings {
                    range: lerp(16.0, 4.0).round() as i32,
                    exhaustive_radius: if s < 0.15 { 4 } else { 0 },
                    refine_steps: lerp(12.0, 4.0).round() as u32,
                    subpel: s < 0.5,
                },
                quant_passes: if s < 0.25 { 2 } else { 1 },
                early_exit_scale: lerp(6.0, 16.0).round() as u64,
                ref_frames: if s < 0.4 { 2 } else { 1 },
            },
            CodecId::X265 => ToolSet {
                codec,
                superblock: 32,
                min_block: 4,
                max_depth: if s < 0.5 { 3 } else { 2 },
                partition_shapes: PartitionShape::H26X.to_vec(),
                intra_modes: IntraMode::H265.to_vec(),
                me: MeSettings {
                    range: lerp(20.0, 6.0).round() as i32,
                    exhaustive_radius: if s < 0.15 { 6 } else { 0 },
                    refine_steps: lerp(16.0, 6.0).round() as u32,
                    subpel: s < 0.6,
                },
                quant_passes: if s < 0.3 { 2 } else { 1 },
                early_exit_scale: lerp(4.0, 12.0).round() as u64,
                ref_frames: if s < 0.5 { 2 } else { 1 },
            },
        };
        Ok(set)
    }

    /// Rough upper bound on candidate coding configurations per
    /// superblock — the "design space" the paper describes as exploding
    /// exponentially with the shape count.
    pub fn search_space_estimate(&self) -> f64 {
        let modes = self.intra_modes.len() as f64 + 1.0; // + inter
        let shapes = self.partition_shapes.len() as f64;
        (shapes * modes).powi(self.max_depth as i32 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_tags_roundtrip() {
        for c in CodecId::ALL {
            assert_eq!(CodecId::from_tag(c.tag()), Some(c));
            assert!(!c.name().is_empty());
        }
        assert_eq!(CodecId::from_tag(99), None);
    }

    #[test]
    fn preset_direction_normalization() {
        // AV1 family: preset 0 is the slowest.
        assert_eq!(CodecId::SvtAv1.speed(0), 0.0);
        assert_eq!(CodecId::SvtAv1.speed(8), 1.0);
        // x264 family: preset 0 is the fastest (paper §3.3).
        assert_eq!(CodecId::X264.speed(0), 1.0);
        assert_eq!(CodecId::X264.speed(9), 0.0);
    }

    #[test]
    fn av1_searches_more_shapes_than_vp9_than_h26x() {
        let p = EncoderParams::new(30, 4);
        let svt = ToolSet::resolve(CodecId::SvtAv1, &p).unwrap();
        let vp9 = ToolSet::resolve(CodecId::LibvpxVp9, &p).unwrap();
        let p26 = EncoderParams::new(30, 5);
        let x264 = ToolSet::resolve(CodecId::X264, &p26).unwrap();
        assert!(svt.partition_shapes.len() > vp9.partition_shapes.len());
        assert!(vp9.partition_shapes.len() > x264.partition_shapes.len());
        assert!(svt.intra_modes.len() > x264.intra_modes.len());
    }

    #[test]
    fn slower_presets_search_more() {
        let slow = ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(30, 0)).unwrap();
        let fast = ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(30, 8)).unwrap();
        assert!(slow.partition_shapes.len() >= fast.partition_shapes.len());
        assert!(slow.me.range > fast.me.range);
        assert!(slow.me.exhaustive_radius > fast.me.exhaustive_radius);
        assert!(slow.early_exit_scale < fast.early_exit_scale);
        assert!(slow.search_space_estimate() > fast.search_space_estimate());
    }

    #[test]
    fn search_space_ordering_matches_the_paper() {
        // The paper's Fig. 1 runtime ordering is driven by search space:
        // SVT-AV1 (and libaom) >> x265 > vp9/x264.
        let p_av1 = EncoderParams::new(30, 4);
        let p_h26x = EncoderParams::new(30, 5);
        let svt = ToolSet::resolve(CodecId::SvtAv1, &p_av1).unwrap().search_space_estimate();
        let aom = ToolSet::resolve(CodecId::Libaom, &p_av1).unwrap().search_space_estimate();
        let vp9 = ToolSet::resolve(CodecId::LibvpxVp9, &p_av1).unwrap().search_space_estimate();
        let x264 = ToolSet::resolve(CodecId::X264, &p_h26x).unwrap().search_space_estimate();
        assert!(svt >= aom && aom > vp9 && vp9 > x264);
    }

    #[test]
    fn invalid_params_are_rejected_per_family() {
        assert!(ToolSet::resolve(CodecId::X264, &EncoderParams::new(60, 5)).is_err());
        assert!(ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(60, 5)).is_ok());
        assert!(ToolSet::resolve(CodecId::SvtAv1, &EncoderParams::new(30, 9)).is_err());
        assert!(ToolSet::resolve(CodecId::X265, &EncoderParams::new(30, 9)).is_ok());
    }
}
