//! Instrumented pixel kernels: SAD, SSE distortion, residual and copy.
//!
//! These are the leaf SIMD loops of the encoder — the counterparts of the
//! hand-vectorized assembly in SVT-AV1/x264. Each kernel computes its real
//! result over the live pixel buffers *and* reports the vectorized
//! instruction stream it would retire (loads per row chunk, AVX ops per
//! vector, the loop branch) through the [`Probe`].
//!
//! Since the SIMD-layer rewrite the two concerns are separated inside
//! each kernel: a pure *value* pass computes the pixel result through
//! the fixed-width lane types in the `simd` shim (LLVM turns those lane
//! loops into vector instructions), and an *event* pass emits the probe
//! traffic. The observable stream is unchanged — probe calls were
//! always per-row bookkeeping around the arithmetic, and the event pass
//! replays them in the same order with the same operands. The branch
//! PCs are pinned constants (not `site_pc!()`) so the probe stream
//! survives source-layout changes; see [`SAD_PLANE_PRED_BRANCH_PC`].
//!
//! Equivalence with the scalar pre-rewrite kernels — value *and* probe
//! stream — is property-tested in `tests/kernel_equivalence.rs`.

use crate::blocks::BlockRect;
use simd::{u32x4, u8x16};
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::{Plane, PAD};

/// Vector width in pixels assumed by the instrumentation (AVX2: 32 u8).
pub const VEC_PIXELS: usize = 32;

/// Branch-site PC of the [`sad_plane_pred`] row loop.
///
/// These constants are the `site_pc!()` hashes (file/line/column) the
/// sites had when they landed, pinned so that refactors that move
/// source lines cannot silently re-index every simulated predictor
/// table: the characterization outputs are a function of these values.
pub(crate) const SAD_PLANE_PRED_BRANCH_PC: u64 = 0x535b_1d52_8c6c;
/// Branch-site PC of the [`sad_plane_plane`] row loop.
pub(crate) const SAD_PLANE_PLANE_BRANCH_PC: u64 = 0x5086_1d52_8c6c;
/// Branch-site PC of the [`sse_plane_pred`] row loop.
pub(crate) const SSE_PLANE_PRED_BRANCH_PC: u64 = 0x5335_1d52_8c6c;

#[inline]
fn row_vectors(w: usize) -> u64 {
    (w as u64).div_ceil(VEC_PIXELS as u64)
}

/// Reports `n` 256-bit vector ops. Narrow blocks are batched multiple
/// rows per register by real kernels, so block kernels always count as
/// AVX; the rare 128-bit paths live in the deblocker and edge gathering.
#[inline]
fn vec_ops<P: Probe>(probe: &mut P, n: u64) {
    probe.avx(n);
}

/// Accumulates `sum |a - b|` over one row into a vector accumulator
/// plus a scalar tail. Whole 16-lane chunks stay vectorial (the
/// horizontal reduction happens once per *block*, in the caller); the
/// sub-16 remainder is scalar. Exact integer sums make the grouping
/// invisible in the result.
#[inline(always)]
fn sad_row_accum(acc: &mut u32x4, tail: &mut u32, a: &[u8], b: &[u8]) {
    debug_assert_eq!(a.len(), b.len());
    // Pairs of 16-lane SADs feed two independent accumulator lanes, so
    // the per-chunk horizontal reductions overlap instead of
    // serializing on one register.
    let mut pa = a.chunks_exact(32);
    let mut pb = b.chunks_exact(32);
    for (qa, qb) in (&mut pa).zip(&mut pb) {
        acc.0[0] =
            acc.0[0].wrapping_add(u8x16::from_slice(&qa[..16]).sad(u8x16::from_slice(&qb[..16])));
        acc.0[1] =
            acc.0[1].wrapping_add(u8x16::from_slice(&qa[16..]).sad(u8x16::from_slice(&qb[16..])));
    }
    let mut ca = pa.remainder().chunks_exact(16);
    let mut cb = pb.remainder().chunks_exact(16);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        *tail += u8x16::from_slice(qa).sad(u8x16::from_slice(qb));
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        *tail += x.abs_diff(*y) as u32;
    }
}

/// Squared-difference sibling of [`sad_row_accum`].
#[inline(always)]
fn sse_row_accum(acc: &mut u32x4, tail: &mut u32, a: &[u8], b: &[u8]) {
    debug_assert_eq!(a.len(), b.len());
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for (qa, qb) in (&mut ca).zip(&mut cb) {
        *acc = acc.accum_sq_diff(u8x16::from_slice(qa), u8x16::from_slice(qb));
    }
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x.abs_diff(*y) as u32;
        *tail += d * d;
    }
}

/// Sum of absolute differences between a plane block and a predictor
/// buffer (`pred` is `rect.w * rect.h`, row-major).
///
/// # Panics
///
/// Panics in debug builds if `rect` exceeds the plane or `pred` is too
/// small.
pub fn sad_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    debug_assert!(pred.len() >= rect.area());
    probe.set_kernel(Kernel::Sad);
    let mut acc = u32x4::splat(0);
    let mut tail = 0u32;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        sad_row_accum(&mut acc, &mut tail, row, prow);
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2); // psadbw + accumulate
        probe.alu(1);
        // Unrolled-by-4 loop: one branch per four rows; the accumulator
        // spills to the stack every other row.
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(SAD_PLANE_PRED_BRANCH_PC, y + 1 != rect.h);
        }
    }
    (acc.sum() + tail) as u64
}

/// The pixel result of [`sad_plane_plane`], with no probe traffic.
///
/// Three access paths, in decreasing preference, all producing the
/// identical sum: contiguous interior rows, contiguous rows of the
/// reference's edge-padded shadow (border-straddling displacements
/// within [`PAD`]), and the per-sample clamped fallback.
#[inline]
pub(crate) fn sad_plane_plane_value(
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    mvx: i32,
    mvy: i32,
) -> u64 {
    let rx0 = rect.x as isize + mvx as isize;
    let ry0 = rect.y as isize + mvy as isize;
    let (w, h) = (rect.w as isize, rect.h as isize);
    let interior = rx0 >= 0
        && ry0 >= 0
        && rx0 + w <= refp.width() as isize
        && ry0 + h <= refp.height() as isize;
    if interior {
        let mut acc = u32x4::splat(0);
        let mut tail = 0u32;
        let crows = cur.block_rows(rect.x, rect.y, rect.w, rect.h);
        let rrows = refp.block_rows(rx0 as usize, ry0 as usize, rect.w, rect.h);
        for (crow, rrow) in crows.zip(rrows) {
            sad_row_accum(&mut acc, &mut tail, crow, rrow);
        }
        return (acc.sum() + tail) as u64;
    }
    let pad = PAD as isize;
    let in_shadow = refp.is_padded()
        && rx0 >= -pad
        && rx0 + w <= refp.width() as isize + pad
        && ry0 >= -pad
        && ry0 + h <= refp.height() as isize + pad;
    if in_shadow {
        // Every shadow sample equals `get_clamped` at the same
        // coordinates, so this is the border path with contiguous rows.
        let off = (rx0 + pad) as usize;
        let mut acc = u32x4::splat(0);
        let mut tail = 0u32;
        for y in 0..rect.h {
            let crow = &cur.row(rect.y + y)[rect.x..rect.x + rect.w];
            let prow = refp.padded_row(ry0 + y as isize).expect("checked shadow range");
            sad_row_accum(&mut acc, &mut tail, crow, &prow[off..off + rect.w]);
        }
        return (acc.sum() + tail) as u64;
    }
    let mut sum = 0u64;
    for y in 0..rect.h {
        let cy = rect.y + y;
        let ry = cy as isize + mvy as isize;
        let crow = &cur.row(cy)[rect.x..rect.x + rect.w];
        let row_sum: u32 = crow
            .iter()
            .enumerate()
            .map(|(x, a)| {
                let b = refp.get_clamped(rect.x as isize + x as isize + mvx as isize, ry);
                a.abs_diff(b) as u32
            })
            .sum();
        sum += row_sum as u64;
    }
    sum
}

/// The probe stream of [`sad_plane_plane`]: identical calls, operands
/// and order as the pre-split kernel (which interleaved them with the
/// arithmetic — probes were always per-row bookkeeping, so the stream
/// is unchanged by the separation).
pub(crate) fn sad_plane_plane_events<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    mvx: i32,
    mvy: i32,
) {
    probe.set_kernel(Kernel::Sad);
    for y in 0..rect.h {
        let cy = rect.y + y;
        let ry = cy as isize + mvy as isize;
        let v = row_vectors(rect.w);
        probe.load(cur.sample_addr(rect.x, cy), rect.w.min(VEC_PIXELS) as u32);
        let rx = (rect.x as isize + mvx as isize).clamp(0, refp.width() as isize - 1) as usize;
        let rcy = ry.clamp(0, refp.height() as isize - 1) as usize;
        // Candidate displacements are unaligned: the reference row costs
        // two overlapping vector loads.
        probe.load(refp.sample_addr(rx, rcy), rect.w.min(VEC_PIXELS) as u32);
        probe.load(refp.sample_addr(rx, rcy) + 16, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(cur.base_addr(), 8);
            probe.branch(SAD_PLANE_PLANE_BRANCH_PC, y + 1 != rect.h);
        }
    }
}

/// SAD between two plane blocks (motion search: current vs reference at a
/// candidate displacement, clamped at frame borders).
pub fn sad_plane_plane<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    mvx: i32,
    mvy: i32,
) -> u64 {
    let sum = sad_plane_plane_value(cur, rect, refp, mvx, mvy);
    sad_plane_plane_events(probe, cur, rect, refp, mvx, mvy);
    sum
}

/// Candidates per inner batch of [`sad_plane_plane_row_batch`]: small
/// enough that the per-candidate accumulators stay in L1 while a whole
/// current-plane row is shared across them.
const ROW_BATCH: usize = 16;

/// Batched SAD values for motion-search candidates that share one
/// vertical displacement `dy` (one row of the search window), with no
/// probe traffic — the caller emits each candidate's canonical probe
/// stream afterwards.
///
/// When the reference has an edge-padded shadow covering every
/// candidate, the candidates advance together through the block rows:
/// each current row and each shadow row is loaded once and shared
/// across the whole batch (the row-window optimization real searches
/// get from keeping the window in registers). Otherwise it falls back
/// to independent [`sad_plane_plane`]-value computations. Either way
/// every sum is exactly the per-candidate kernel result.
///
/// # Panics
///
/// Panics if `sums` is shorter than `dxs`.
pub fn sad_plane_plane_row_batch(
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    dxs: &[i32],
    dy: i32,
    sums: &mut [u64],
) {
    assert!(sums.len() >= dxs.len());
    let (w, h) = (rect.w as isize, rect.h as isize);
    let pad = PAD as isize;
    let ry0 = rect.y as isize + dy as isize;
    let shadow_y = ry0 >= -pad && ry0 + h <= refp.height() as isize + pad;
    let shadow_x = dxs.iter().all(|&dx| {
        let rx0 = rect.x as isize + dx as isize;
        rx0 >= -pad && rx0 + w <= refp.width() as isize + pad
    });
    if !(refp.is_padded() && shadow_y && shadow_x) {
        for (&dx, s) in dxs.iter().zip(sums.iter_mut()) {
            *s = sad_plane_plane_value(cur, rect, refp, dx, dy);
        }
        return;
    }
    for (dx_chunk, sum_chunk) in dxs.chunks(ROW_BATCH).zip(sums.chunks_mut(ROW_BATCH)) {
        let mut accs = [u32x4::splat(0); ROW_BATCH];
        let mut tails = [0u32; ROW_BATCH];
        for y in 0..rect.h {
            let crow = &cur.row(rect.y + y)[rect.x..rect.x + rect.w];
            let prow = refp.padded_row(ry0 + y as isize).expect("checked shadow range");
            for ((&dx, acc), tail) in dx_chunk.iter().zip(&mut accs).zip(&mut tails) {
                let off = (rect.x as isize + dx as isize + pad) as usize;
                sad_row_accum(acc, tail, crow, &prow[off..off + rect.w]);
            }
        }
        for ((s, acc), tail) in sum_chunk.iter_mut().zip(&accs).zip(&tails) {
            *s = (acc.sum() + *tail) as u64;
        }
    }
}

/// Sum of squared errors between a plane block and a predictor buffer.
pub fn sse_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    debug_assert!(pred.len() >= rect.area());
    probe.set_kernel(Kernel::Sad);
    // 255^2 * area fits u32 per lane for any block size; the vector
    // accumulator keeps the squared-difference reduction in lanes and
    // defers the horizontal sum to one reduction per block.
    let mut acc = u32x4::splat(0);
    let mut tail = 0u32;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        sse_row_accum(&mut acc, &mut tail, row, prow);
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 3);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(SSE_PLANE_PRED_BRANCH_PC, y + 1 != rect.h);
        }
    }
    (acc.sum() + tail) as u64
}

/// Residual between a plane block and a predictor, into `dst` (i32,
/// row-major `rect.w * rect.h`).
///
/// # Panics
///
/// Panics if `dst` is smaller than the block.
pub fn residual<P: Probe>(
    probe: &mut P,
    plane: &Plane,
    rect: BlockRect,
    pred: &[u8],
    dst: &mut [i32],
) {
    assert!(dst.len() >= rect.area());
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        let drow = &mut dst[y * rect.w..(y + 1) * rect.w];
        for ((d, a), b) in drow.iter_mut().zip(row).zip(prow) {
            *d = *a as i32 - *b as i32;
        }
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        vec_ops(probe, v);
    }
}

/// Adds a residual (i32) to a predictor and writes the clamped
/// reconstruction into the plane block.
///
/// # Panics
///
/// Panics if the buffers are smaller than the block.
pub fn reconstruct<P: Probe>(
    probe: &mut P,
    plane: &mut Plane,
    rect: BlockRect,
    pred: &[u8],
    res: &[i32],
) {
    assert!(pred.len() >= rect.area() && res.len() >= rect.area());
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        let rrow = &res[y * rect.w..(y + 1) * rect.w];
        let orow = &mut plane.row_mut(rect.y + y)[rect.x..rect.x + rect.w];
        for ((o, p), r) in orow.iter_mut().zip(prow).zip(rrow) {
            *o = (*p as i32 + *r).clamp(0, 255) as u8;
        }
        let v = row_vectors(rect.w);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.load(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2);
    }
}

/// Copies a predictor buffer straight into the plane (skip blocks).
pub fn write_pred<P: Probe>(probe: &mut P, plane: &mut Plane, rect: BlockRect, pred: &[u8]) {
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        plane.row_mut(rect.y + y)[rect.x..rect.x + rect.w].copy_from_slice(prow);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, row_vectors(rect.w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::{CountingProbe, NullProbe};

    fn plane_with(vals: impl Fn(usize, usize) -> u8) -> Plane {
        let mut p = Plane::new(32, 32, 0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, vals(x, y));
            }
        }
        p
    }

    #[test]
    fn sad_identical_is_zero() {
        let p = plane_with(|x, y| (x * 3 + y) as u8);
        let rect = BlockRect::new(8, 8, 8, 8);
        let mut pred = vec![0u8; 64];
        for y in 0..8 {
            for x in 0..8 {
                pred[y * 8 + x] = p.get(8 + x, 8 + y);
            }
        }
        assert_eq!(sad_plane_pred(&mut NullProbe, &p, rect, &pred), 0);
    }

    #[test]
    fn sad_counts_differences() {
        let p = plane_with(|_, _| 100);
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred = vec![97u8; 16];
        assert_eq!(sad_plane_pred(&mut NullProbe, &p, rect, &pred), 3 * 16);
    }

    #[test]
    fn plane_plane_sad_with_zero_mv_matches_direct() {
        let a = plane_with(|x, y| (x + y) as u8);
        let b = plane_with(|x, y| (x + y + 2) as u8);
        let rect = BlockRect::new(4, 4, 8, 8);
        assert_eq!(sad_plane_plane(&mut NullProbe, &a, rect, &b, 0, 0), 2 * 64);
    }

    #[test]
    fn plane_plane_sad_finds_shifted_content() {
        // b(x) = a(x + 2): the content of `a` sits 2 columns to the LEFT
        // in b, so SAD is zero at mv (-2, 0).
        let a = plane_with(|x, y| ((x * 7 + y * 13) % 251) as u8);
        let b = plane_with(|x, y| ((x.wrapping_add(2) * 7 + y * 13) % 251) as u8);
        let rect = BlockRect::new(8, 8, 8, 8);
        assert_eq!(sad_plane_plane(&mut NullProbe, &a, rect, &b, -2, 0), 0);
        assert!(sad_plane_plane(&mut NullProbe, &a, rect, &b, 0, 0) > 0);
    }

    #[test]
    fn padded_border_sad_matches_clamped() {
        let a = plane_with(|x, y| ((x * 7 + y * 13) % 251) as u8);
        let mut b = plane_with(|x, y| ((x * 5 + y * 3) % 241) as u8);
        let rect = BlockRect::new(2, 2, 8, 8);
        let clamped = sad_plane_plane(&mut NullProbe, &a, rect, &b, -20, -20);
        b.pad_borders();
        assert_eq!(sad_plane_plane(&mut NullProbe, &a, rect, &b, -20, -20), clamped);
    }

    #[test]
    fn row_batch_matches_per_candidate_values() {
        let a = plane_with(|x, y| ((x * 7 + y * 13) % 251) as u8);
        let mut b = plane_with(|x, y| ((x * 11 + y * 5) % 239) as u8);
        b.pad_borders();
        let rect = BlockRect::new(8, 8, 16, 16);
        // 20 candidates exercises the chunked (ROW_BATCH=16) path.
        let dxs: Vec<i32> = (-10..10).collect();
        let mut sums = vec![0u64; dxs.len()];
        for dy in [-9, 0, 7] {
            sad_plane_plane_row_batch(&a, rect, &b, &dxs, dy, &mut sums);
            for (&dx, &s) in dxs.iter().zip(&sums) {
                assert_eq!(s, sad_plane_plane(&mut NullProbe, &a, rect, &b, dx, dy), "{dx},{dy}");
            }
        }
    }

    #[test]
    fn residual_plus_reconstruct_is_identity() {
        let src = plane_with(|x, y| ((x * 5 + y * 11) % 256) as u8);
        let rect = BlockRect::new(4, 8, 8, 4);
        let pred = vec![50u8; 32];
        let mut res = vec![0i32; 32];
        residual(&mut NullProbe, &src, rect, &pred, &mut res);
        let mut out = Plane::new(32, 32, 0).unwrap();
        reconstruct(&mut NullProbe, &mut out, rect, &pred, &res);
        for y in 0..4 {
            for x in 0..8 {
                assert_eq!(out.get(4 + x, 8 + y), src.get(4 + x, 8 + y));
            }
        }
    }

    #[test]
    fn sse_matches_manual() {
        let p = plane_with(|_, _| 10);
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred = vec![13u8; 16];
        assert_eq!(sse_plane_pred(&mut NullProbe, &p, rect, &pred), 9 * 16);
    }

    #[test]
    fn kernels_report_vectorized_mix() {
        let p = plane_with(|x, _| x as u8);
        let rect = BlockRect::new(0, 0, 16, 16);
        let pred = vec![0u8; 256];
        let mut probe = CountingProbe::new();
        sad_plane_pred(&mut probe, &p, rect, &pred);
        let m = probe.mix();
        assert!(m.avx >= 16 * 2, "avx {}", m.avx);
        // Unrolled by 4: one loop branch per four rows.
        assert_eq!(m.branch, 4);
        // Accumulator spills every other row.
        assert_eq!(m.store, 8);
        assert!(m.load >= 32);
    }

    #[test]
    fn write_pred_copies() {
        let mut out = Plane::new(32, 32, 0).unwrap();
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred: Vec<u8> = (0..16).map(|i| i as u8 * 10).collect();
        write_pred(&mut NullProbe, &mut out, rect, &pred);
        assert_eq!(out.get(3, 3), 150);
    }
}
