//! Instrumented pixel kernels: SAD, SSE distortion, residual and copy.
//!
//! These are the leaf SIMD loops of the encoder — the counterparts of the
//! hand-vectorized assembly in SVT-AV1/x264. Each kernel computes its real
//! result over the live pixel buffers *and* reports the vectorized
//! instruction stream it would retire (loads per row chunk, AVX ops per
//! vector, the loop branch) through the [`Probe`].

use crate::blocks::BlockRect;
use vstress_trace::{probe_addr, Kernel, Probe};
use vstress_video::Plane;

/// Vector width in pixels assumed by the instrumentation (AVX2: 32 u8).
pub const VEC_PIXELS: usize = 32;

#[inline]
fn row_vectors(w: usize) -> u64 {
    (w as u64).div_ceil(VEC_PIXELS as u64)
}

/// Reports `n` 256-bit vector ops. Narrow blocks are batched multiple
/// rows per register by real kernels, so block kernels always count as
/// AVX; the rare 128-bit paths live in the deblocker and edge gathering.
#[inline]
fn vec_ops<P: Probe>(probe: &mut P, n: u64) {
    probe.avx(n);
}

/// Sum of absolute differences between a plane block and a predictor
/// buffer (`pred` is `rect.w * rect.h`, row-major).
///
/// # Panics
///
/// Panics in debug builds if `rect` exceeds the plane or `pred` is too
/// small.
pub fn sad_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    debug_assert!(pred.len() >= rect.area());
    probe.set_kernel(Kernel::Sad);
    let mut sum = 0u64;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        // Narrow accumulator per row (255 * w fits u32 for any block size)
        // so the compiler can keep the reduction in vector registers.
        let row_sum: u32 = row.iter().zip(prow).map(|(a, b)| a.abs_diff(*b) as u32).sum();
        sum += row_sum as u64;
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2); // psadbw + accumulate
        probe.alu(1);
        // Unrolled-by-4 loop: one branch per four rows; the accumulator
        // spills to the stack every other row.
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(vstress_trace::site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

/// SAD between two plane blocks (motion search: current vs reference at a
/// candidate displacement, clamped at frame borders).
pub fn sad_plane_plane<P: Probe>(
    probe: &mut P,
    cur: &Plane,
    rect: BlockRect,
    refp: &Plane,
    mvx: i32,
    mvy: i32,
) -> u64 {
    probe.set_kernel(Kernel::Sad);
    // Interior fast path: the displaced rect stays fully inside the
    // reference plane, so no sample needs clamping and both rows are
    // contiguous slices the compiler can autovectorize. The edge path
    // (clamping per sample) only runs when `rect + mv` leaves the frame.
    let rx0 = rect.x as isize + mvx as isize;
    let ry0 = rect.y as isize + mvy as isize;
    let interior = rx0 >= 0
        && ry0 >= 0
        && rx0 + rect.w as isize <= refp.width() as isize
        && ry0 + rect.h as isize <= refp.height() as isize;
    let mut sum = 0u64;
    for y in 0..rect.h {
        let cy = rect.y + y;
        let ry = cy as isize + mvy as isize;
        let crow = &cur.row(cy)[rect.x..rect.x + rect.w];
        let row_sum: u32 = if interior {
            let rrow = &refp.row(ry as usize)[rx0 as usize..rx0 as usize + rect.w];
            crow.iter().zip(rrow).map(|(a, b)| a.abs_diff(*b) as u32).sum()
        } else {
            crow.iter()
                .enumerate()
                .map(|(x, a)| {
                    let b = refp.get_clamped(rect.x as isize + x as isize + mvx as isize, ry);
                    a.abs_diff(b) as u32
                })
                .sum()
        };
        sum += row_sum as u64;
        let v = row_vectors(rect.w);
        probe.load(cur.sample_addr(rect.x, cy), rect.w.min(VEC_PIXELS) as u32);
        let rx = (rect.x as isize + mvx as isize).clamp(0, refp.width() as isize - 1) as usize;
        let rcy = ry.clamp(0, refp.height() as isize - 1) as usize;
        // Candidate displacements are unaligned: the reference row costs
        // two overlapping vector loads.
        probe.load(refp.sample_addr(rx, rcy), rect.w.min(VEC_PIXELS) as u32);
        probe.load(refp.sample_addr(rx, rcy) + 16, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(cur.base_addr(), 8);
            probe.branch(vstress_trace::site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

/// Sum of squared errors between a plane block and a predictor buffer.
pub fn sse_plane_pred<P: Probe>(probe: &mut P, plane: &Plane, rect: BlockRect, pred: &[u8]) -> u64 {
    debug_assert!(pred.len() >= rect.area());
    probe.set_kernel(Kernel::Sad);
    let mut sum = 0u64;
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        // 255^2 * w fits u32 for any block size; the narrow per-row
        // accumulator keeps the squared-difference reduction vectorizable,
        // and the fixed-width 8-lane chunks give the compiler a known trip
        // count to unroll (rows are short — 4..=64 samples).
        let mut ca = row.chunks_exact(8);
        let mut cb = prow.chunks_exact(8);
        let mut row_sum: u32 = (&mut ca)
            .zip(&mut cb)
            .map(|(qa, qb)| {
                let mut s = 0u32;
                for i in 0..8 {
                    let d = qa[i].abs_diff(qb[i]) as u32;
                    s += d * d;
                }
                s
            })
            .sum();
        for (a, b) in ca.remainder().iter().zip(cb.remainder()) {
            let d = a.abs_diff(*b) as u32;
            row_sum += d * d;
        }
        sum += row_sum as u64;
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 3);
        probe.alu(1);
        if y % 2 == 1 || y + 1 == rect.h {
            probe.store(probe_addr::fixed::PRED, 8);
        }
        if y % 4 == 3 || y + 1 == rect.h {
            probe.branch(vstress_trace::site_pc!(), y + 1 != rect.h);
        }
    }
    sum
}

/// Residual between a plane block and a predictor, into `dst` (i32,
/// row-major `rect.w * rect.h`).
///
/// # Panics
///
/// Panics if `dst` is smaller than the block.
pub fn residual<P: Probe>(
    probe: &mut P,
    plane: &Plane,
    rect: BlockRect,
    pred: &[u8],
    dst: &mut [i32],
) {
    assert!(dst.len() >= rect.area());
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let row = &plane.row(rect.y + y)[rect.x..rect.x + rect.w];
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        let drow = &mut dst[y * rect.w..(y + 1) * rect.w];
        for ((d, a), b) in drow.iter_mut().zip(row).zip(prow) {
            *d = *a as i32 - *b as i32;
        }
        let v = row_vectors(rect.w);
        probe.load(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        vec_ops(probe, v);
    }
}

/// Adds a residual (i32) to a predictor and writes the clamped
/// reconstruction into the plane block.
///
/// # Panics
///
/// Panics if the buffers are smaller than the block.
pub fn reconstruct<P: Probe>(
    probe: &mut P,
    plane: &mut Plane,
    rect: BlockRect,
    pred: &[u8],
    res: &[i32],
) {
    assert!(pred.len() >= rect.area() && res.len() >= rect.area());
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        let rrow = &res[y * rect.w..(y + 1) * rect.w];
        let orow = &mut plane.row_mut(rect.y + y)[rect.x..rect.x + rect.w];
        for ((o, p), r) in orow.iter_mut().zip(prow).zip(rrow) {
            *o = (*p as i32 + *r).clamp(0, 255) as u8;
        }
        let v = row_vectors(rect.w);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.load(
            probe_addr::fixed::RESIDUAL + (y * rect.w * 4) as u64,
            (rect.w * 4).min(64) as u32,
        );
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, v * 2);
    }
}

/// Copies a predictor buffer straight into the plane (skip blocks).
pub fn write_pred<P: Probe>(probe: &mut P, plane: &mut Plane, rect: BlockRect, pred: &[u8]) {
    probe.set_kernel(Kernel::FrameSetup);
    for y in 0..rect.h {
        let prow = &pred[y * rect.w..(y + 1) * rect.w];
        plane.row_mut(rect.y + y)[rect.x..rect.x + rect.w].copy_from_slice(prow);
        probe.load(probe_addr::fixed::PRED + (y * rect.w) as u64, rect.w.min(VEC_PIXELS) as u32);
        probe.store(plane.sample_addr(rect.x, rect.y + y), rect.w.min(VEC_PIXELS) as u32);
        vec_ops(probe, row_vectors(rect.w));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::{CountingProbe, NullProbe};

    fn plane_with(vals: impl Fn(usize, usize) -> u8) -> Plane {
        let mut p = Plane::new(32, 32, 0).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, vals(x, y));
            }
        }
        p
    }

    #[test]
    fn sad_identical_is_zero() {
        let p = plane_with(|x, y| (x * 3 + y) as u8);
        let rect = BlockRect::new(8, 8, 8, 8);
        let mut pred = vec![0u8; 64];
        for y in 0..8 {
            for x in 0..8 {
                pred[y * 8 + x] = p.get(8 + x, 8 + y);
            }
        }
        assert_eq!(sad_plane_pred(&mut NullProbe, &p, rect, &pred), 0);
    }

    #[test]
    fn sad_counts_differences() {
        let p = plane_with(|_, _| 100);
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred = vec![97u8; 16];
        assert_eq!(sad_plane_pred(&mut NullProbe, &p, rect, &pred), 3 * 16);
    }

    #[test]
    fn plane_plane_sad_with_zero_mv_matches_direct() {
        let a = plane_with(|x, y| (x + y) as u8);
        let b = plane_with(|x, y| (x + y + 2) as u8);
        let rect = BlockRect::new(4, 4, 8, 8);
        assert_eq!(sad_plane_plane(&mut NullProbe, &a, rect, &b, 0, 0), 2 * 64);
    }

    #[test]
    fn plane_plane_sad_finds_shifted_content() {
        // b(x) = a(x + 2): the content of `a` sits 2 columns to the LEFT
        // in b, so SAD is zero at mv (-2, 0).
        let a = plane_with(|x, y| ((x * 7 + y * 13) % 251) as u8);
        let b = plane_with(|x, y| ((x.wrapping_add(2) * 7 + y * 13) % 251) as u8);
        let rect = BlockRect::new(8, 8, 8, 8);
        assert_eq!(sad_plane_plane(&mut NullProbe, &a, rect, &b, -2, 0), 0);
        assert!(sad_plane_plane(&mut NullProbe, &a, rect, &b, 0, 0) > 0);
    }

    #[test]
    fn residual_plus_reconstruct_is_identity() {
        let src = plane_with(|x, y| ((x * 5 + y * 11) % 256) as u8);
        let rect = BlockRect::new(4, 8, 8, 4);
        let pred = vec![50u8; 32];
        let mut res = vec![0i32; 32];
        residual(&mut NullProbe, &src, rect, &pred, &mut res);
        let mut out = Plane::new(32, 32, 0).unwrap();
        reconstruct(&mut NullProbe, &mut out, rect, &pred, &res);
        for y in 0..4 {
            for x in 0..8 {
                assert_eq!(out.get(4 + x, 8 + y), src.get(4 + x, 8 + y));
            }
        }
    }

    #[test]
    fn sse_matches_manual() {
        let p = plane_with(|_, _| 10);
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred = vec![13u8; 16];
        assert_eq!(sse_plane_pred(&mut NullProbe, &p, rect, &pred), 9 * 16);
    }

    #[test]
    fn kernels_report_vectorized_mix() {
        let p = plane_with(|x, _| x as u8);
        let rect = BlockRect::new(0, 0, 16, 16);
        let pred = vec![0u8; 256];
        let mut probe = CountingProbe::new();
        sad_plane_pred(&mut probe, &p, rect, &pred);
        let m = probe.mix();
        assert!(m.avx >= 16 * 2, "avx {}", m.avx);
        // Unrolled by 4: one loop branch per four rows.
        assert_eq!(m.branch, 4);
        // Accumulator spills every other row.
        assert_eq!(m.store, 8);
        assert!(m.load >= 32);
    }

    #[test]
    fn write_pred_copies() {
        let mut out = Plane::new(32, 32, 0).unwrap();
        let rect = BlockRect::new(0, 0, 4, 4);
        let pred: Vec<u8> = (0..16).map(|i| i as u8 * 10).collect();
        write_pred(&mut NullProbe, &mut out, rect, &pred);
        assert_eq!(out.get(3, 3), 150);
    }
}
