//! The block-coding engine: partition search, mode decision, residual
//! coding, and the exactly-mirrored decode path.
//!
//! Encoding a superblock happens in two phases, as in real fast encoders:
//!
//! * **Phase A (search)** — [`plan_superblock`] explores the partition
//!   grammar the tool set allows, evaluating intra modes (by SATD against
//!   source-pixel edges) and motion candidates per node, with RD-based
//!   early termination. This phase is where AV1-family models burn an
//!   order of magnitude more instructions than the H.26x models — the
//!   paper's headline mechanism.
//! * **Phase B (code)** — [`code_superblock`] walks the winning plan,
//!   re-predicts from *reconstructed* edges, transforms, quantizes,
//!   entropy-codes, and reconstructs. [`decode_superblock`] mirrors it
//!   bin-for-bin, so `decode(encode(x))` reproduces the encoder's
//!   reconstruction exactly.

use crate::bitstream::{FrameContexts, SequenceHeader, SIG_BANDS};
use crate::blocks::{BlockRect, PartitionShape};
use crate::codecs::ToolSet;
use crate::entropy::{decode_uvlc, encode_uvlc, RangeDecoder, RangeEncoder};
use crate::error::CodecError;
use crate::kernels;
use crate::mc::{motion_compensate, MotionVector};
use crate::mesearch::{motion_search, motion_search_around};
use crate::params::crf_to_qindex;
use crate::predict::{predict, IntraEdges, IntraMode};
use crate::quant::Quantizer;
use crate::rdo::{Lambda, RdDecision};
use crate::transform;
use vstress_trace::{Kernel, Probe};
use vstress_video::{Frame, Plane};

/// Geometry and tool information shared by the encode and decode paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CoderConfig {
    /// Superblock size.
    pub superblock: usize,
    /// Minimum coding block size.
    pub min_block: usize,
    /// Maximum split depth.
    pub max_depth: u32,
    /// Ordered partition-shape list.
    pub shapes: Vec<PartitionShape>,
    /// Ordered intra-mode list.
    pub modes: Vec<IntraMode>,
    /// Reference frames available to inter prediction (1–2).
    pub ref_frames: usize,
    /// Quantizer index of the current frame (the encoder adapts this per
    /// frame and signals it; see `Encoder`'s rate control).
    pub qindex: u8,
}

impl CoderConfig {
    /// Derives the coder config from a resolved tool set plus CRF.
    pub fn from_tools(tools: &ToolSet, crf: u8) -> Self {
        CoderConfig {
            superblock: tools.superblock,
            min_block: tools.min_block,
            max_depth: tools.max_depth,
            shapes: tools.partition_shapes.clone(),
            modes: tools.intra_modes.clone(),
            ref_frames: tools.ref_frames,
            qindex: crf_to_qindex(crf, tools.codec.max_crf()),
        }
    }

    /// Derives the coder config from a parsed sequence header.
    pub fn from_header(h: &SequenceHeader) -> Self {
        CoderConfig {
            superblock: h.superblock as usize,
            min_block: h.min_block as usize,
            max_depth: h.max_depth as u32,
            shapes: crate::bitstream::shapes_from_mask(h.shape_mask),
            modes: crate::bitstream::modes_from_mask(h.mode_mask),
            ref_frames: h.ref_frames as usize,
            qindex: h.qindex,
        }
    }
}

/// How one leaf is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LeafMode {
    /// Intra prediction with the given mode.
    Intra(IntraMode),
    /// Inter prediction with a motion vector (half-pel) against one of
    /// the reference frames.
    Inter {
        /// Motion vector in half-pel units.
        mv: MotionVector,
        /// Index into the reference list (0 = last, 1 = golden).
        ref_idx: usize,
    },
}

/// One node of the chosen partition tree.
#[derive(Debug, Clone, PartialEq)]
pub enum NodePlan {
    /// A coded leaf.
    Leaf {
        /// The block this leaf covers.
        rect: BlockRect,
        /// Prediction chosen by the search.
        mode: LeafMode,
    },
    /// A partitioned node.
    Partition {
        /// The shape chosen.
        shape: PartitionShape,
        /// Children in sub-block order.
        children: Vec<NodePlan>,
    },
}

/// Pooled working buffers for the coding/decoding leaf paths.
///
/// Leaves run thousands of times per frame; allocating their block-sized
/// buffers per call would be slow *and* would make the simulated memory
/// addresses depend on global allocator state (hurting reproducibility of
/// the cache statistics). The pool keeps one stable set of buffers.
#[derive(Debug, Clone, Default)]
pub struct CodeScratch {
    /// Prediction samples.
    pub pred: Vec<u8>,
    /// Second prediction buffer (chroma mode trials).
    pub pred2: Vec<u8>,
    /// Residual samples.
    pub res: Vec<i32>,
    /// One TU of residual, gathered.
    pub tu_src: Vec<i32>,
    /// One TU of transform coefficients.
    pub tu_coeffs: Vec<i32>,
    /// Quantized levels for every TU of the leaf, flattened.
    pub levels_flat: Vec<i32>,
    /// Trellis trial buffer.
    pub tu_alt: Vec<i32>,
    /// Dequantized coefficients.
    pub tu_deq: Vec<i32>,
    /// Inverse-transformed residual.
    pub tu_rec: Vec<i32>,
    /// Reconstructed residual for the whole leaf.
    pub full_res: Vec<i32>,
}

impl CodeScratch {
    fn ensure(&mut self, area: usize, tu2: usize, tiles: usize) {
        if self.pred.len() < area {
            self.pred.resize(area, 0);
            self.pred2.resize(area, 0);
            self.res.resize(area, 0);
            self.full_res.resize(area, 0);
        }
        if self.tu_src.len() < tu2 {
            self.tu_src.resize(tu2, 0);
            self.tu_coeffs.resize(tu2, 0);
            self.tu_alt.resize(tu2, 0);
            self.tu_deq.resize(tu2, 0);
            self.tu_rec.resize(tu2, 0);
        }
        if self.levels_flat.len() < tu2 * tiles {
            self.levels_flat.resize(tu2 * tiles, 0);
        }
    }
}

/// Where the encoded bits went, by syntax category (diagnostic; the
/// decoder does not maintain this).
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BitAccounting {
    /// Partition-tree shape symbols.
    pub partition: f64,
    /// Mode syntax: inter flags, intra mode indices, MVs, reference bits.
    pub mode: f64,
    /// Skip flags.
    pub skip: f64,
    /// Luma coefficients.
    pub luma_coef: f64,
    /// Chroma mode bins + coefficients.
    pub chroma: f64,
}

impl BitAccounting {
    /// Total accounted bits.
    pub fn total(&self) -> f64 {
        self.partition + self.mode + self.skip + self.luma_coef + self.chroma
    }
}

/// Mutable coding state threaded across a frame (mirrored by the decoder).
#[derive(Debug, Clone)]
pub struct CoderState {
    /// Adaptive contexts.
    pub ctxs: FrameContexts,
    /// Motion-vector predictor (last coded MV).
    pub last_mv: MotionVector,
    /// Pooled working buffers (no coding semantics).
    pub scratch: CodeScratch,
    /// Encoder-side bit accounting (unused while decoding).
    pub bits: BitAccounting,
}

impl CoderState {
    /// Fresh state (sequence start).
    pub fn new() -> Self {
        CoderState {
            ctxs: FrameContexts::new(),
            last_mv: MotionVector::ZERO,
            scratch: CodeScratch::default(),
            bits: BitAccounting::default(),
        }
    }
}

impl Default for CoderState {
    fn default() -> Self {
        Self::new()
    }
}

// ---------------------------------------------------------------------------
// Scan order
// ---------------------------------------------------------------------------

/// Zigzag scan order for an `n x n` block, as (row-major) indices.
///
/// Cached for the coding TU sizes (4/8/16/32); other sizes are computed
/// on the fly.
pub fn zigzag(n: usize) -> std::borrow::Cow<'static, [usize]> {
    static TABLES: std::sync::OnceLock<[Vec<usize>; 4]> = std::sync::OnceLock::new();
    let tables = TABLES.get_or_init(|| {
        [compute_zigzag(4), compute_zigzag(8), compute_zigzag(16), compute_zigzag(32)]
    });
    match n {
        4 => std::borrow::Cow::Borrowed(&tables[0]),
        8 => std::borrow::Cow::Borrowed(&tables[1]),
        16 => std::borrow::Cow::Borrowed(&tables[2]),
        32 => std::borrow::Cow::Borrowed(&tables[3]),
        _ => std::borrow::Cow::Owned(compute_zigzag(n)),
    }
}

fn compute_zigzag(n: usize) -> Vec<usize> {
    let mut order = Vec::with_capacity(n * n);
    for s in 0..(2 * n - 1) {
        if s % 2 == 0 {
            // Walk up-right.
            let y0 = s.min(n - 1);
            let x0 = s - y0;
            let (mut x, mut y) = (x0 as isize, y0 as isize);
            while x < n as isize && y >= 0 {
                order.push(y as usize * n + x as usize);
                x += 1;
                y -= 1;
            }
        } else {
            let x0 = s.min(n - 1);
            let y0 = s - x0;
            let (mut x, mut y) = (x0 as isize, y0 as isize);
            while y < n as isize && x >= 0 {
                order.push(y as usize * n + x as usize);
                x -= 1;
                y += 1;
            }
        }
    }
    order
}

#[inline]
fn sig_band(scan_pos: usize, n2: usize) -> usize {
    // Four bands over the scan: DC, early, middle, tail.
    if scan_pos == 0 {
        0
    } else if scan_pos < n2 / 8 {
        1
    } else if scan_pos < n2 / 2 {
        2
    } else {
        3
    }
}

// ---------------------------------------------------------------------------
// Coefficient coding (shared by encoder and decoder)
// ---------------------------------------------------------------------------

/// Encodes the quantized levels of one TU; returns `true` if any level was
/// nonzero (the cbf).
pub fn encode_tu<P: Probe>(
    enc: &mut RangeEncoder,
    probe: &mut P,
    ctxs: &mut FrameContexts,
    n: usize,
    levels: &[i32],
    is_luma: bool,
) -> bool {
    let scan = zigzag(n);
    let n2 = n * n;
    let eob = scan.iter().rposition(|&i| levels[i] != 0).map(|p| p + 1).unwrap_or(0);
    let cbf_ctx = if is_luma { &mut ctxs.cbf_luma } else { &mut ctxs.cbf_chroma };
    enc.encode(probe, cbf_ctx, eob > 0);
    if eob == 0 {
        return false;
    }
    encode_uvlc(enc, probe, &mut ctxs.eob, (eob - 1) as u32);
    for pos in 0..eob {
        let v = levels[scan[pos]];
        let significant = v != 0;
        if pos + 1 != eob {
            let band = sig_band(pos, n2);
            enc.encode(probe, &mut ctxs.sig[band.min(SIG_BANDS - 1)], significant);
        }
        // The coefficient at eob-1 is significant by construction.
        if significant || pos + 1 == eob {
            enc.encode(probe, &mut ctxs.coeff_sign, v < 0);
            encode_uvlc(enc, probe, &mut ctxs.level, (v.unsigned_abs() - 1).min(1 << 20));
        }
    }
    true
}

/// Mirror of [`encode_tu`]: fills `levels` (length `n*n`, natural order).
pub fn decode_tu<P: Probe>(
    dec: &mut RangeDecoder<'_>,
    probe: &mut P,
    ctxs: &mut FrameContexts,
    n: usize,
    levels: &mut [i32],
    is_luma: bool,
) -> bool {
    levels.fill(0);
    let scan = zigzag(n);
    let n2 = n * n;
    let cbf_ctx = if is_luma { &mut ctxs.cbf_luma } else { &mut ctxs.cbf_chroma };
    if !dec.decode(probe, cbf_ctx) {
        return false;
    }
    let eob = decode_uvlc(dec, probe, &mut ctxs.eob) as usize + 1;
    let eob = eob.min(n2);
    for pos in 0..eob {
        let significant = if pos + 1 != eob {
            let band = sig_band(pos, n2);
            dec.decode(probe, &mut ctxs.sig[band.min(SIG_BANDS - 1)])
        } else {
            true
        };
        if significant {
            let neg = dec.decode(probe, &mut ctxs.coeff_sign);
            let mag = decode_uvlc(dec, probe, &mut ctxs.level) + 1;
            levels[scan[pos]] = if neg { -(mag as i32) } else { mag as i32 };
        }
    }
    true
}

/// Context-free rate estimate (1/256-bit units) for a TU's levels, used by
/// the RD search (Phase A) where live context state is unavailable.
pub fn estimate_tu_rate(n: usize, levels: &[i32]) -> u64 {
    let scan = zigzag(n);
    let eob = scan.iter().rposition(|&i| levels[i] != 0).map(|p| p + 1).unwrap_or(0);
    if eob == 0 {
        return 64; // ~0.25 bit for the cbf.
    }
    let mut bits256: u64 = 256 + 512; // cbf + eob prefix
    bits256 += (64 - (eob as u64).leading_zeros() as u64) * 256;
    for pos in 0..eob {
        let v = levels[scan[pos]].unsigned_abs() as u64;
        bits256 += 128; // significance
        if v > 0 {
            let mag_bits = 64 - v.leading_zeros() as u64;
            bits256 += 256 + mag_bits * 512;
        }
    }
    bits256
}

// ---------------------------------------------------------------------------
// Phase A: search
// ---------------------------------------------------------------------------

/// One memoized leaf evaluation: the RD result plus the probe events the
/// evaluation emitted, for replay on a hit (see [`eval_leaf_memo`]).
#[derive(Debug, Clone)]
struct LeafMemoEntry {
    mode: LeafMode,
    cost: u64,
    seed_mv_out: MotionVector,
    events: vstress_trace::EventBatch,
}

/// When the partition search may serve a leaf evaluation from the memo
/// instead of recomputing it (see [`eval_leaf_memo`] for the fidelity
/// argument and DESIGN.md "Performance" for the measurements behind the
/// default).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MemoPolicy {
    /// Never memoize; every leaf is fully recomputed.
    Off,
    /// Memoize only when the probe is dead ([`Probe::is_live`] is
    /// `false`): hits skip the whole evaluation and nothing needs
    /// recording, so the real (non-simulated) encode path gets the full
    /// win at zero bookkeeping cost. Live probes recompute every leaf,
    /// which is trivially stream-identical. This is the default:
    /// measured on the quick profile, repeated keys are almost always
    /// seen exactly twice, so eagerly recording every miss costs more
    /// than replaying the repeat saves.
    #[default]
    DeadProbeOnly,
    /// Memoize under live probes too, replaying the recorded event batch
    /// on every hit. Exact — the equivalence tests prove the replayed
    /// stream matches full recomputation byte-for-byte — but a measured
    /// net loss on characterization runs; exposed for those tests and
    /// for callers whose repeat rate differs.
    Always,
}

/// PlanScratch buffers reused across Phase-A leaf evaluations.
///
/// Owned by the caller (one per encode) so buffer addresses stay stable
/// across superblocks — see [`CodeScratch`] for why that matters.
#[derive(Debug)]
pub struct PlanScratch {
    pred: Vec<u8>,
    res: Vec<i32>,
    tu_src: Vec<i32>,
    tu_coeffs: Vec<i32>,
    tu_levels: Vec<i32>,
    tu_deq: Vec<i32>,
    tu_rec: Vec<i32>,
    me: crate::mesearch::MeScratch,
    /// Per-superblock leaf memo, keyed by `(rect, seed_mv at entry)` —
    /// the complete input state of [`eval_leaf`] once the superblock's
    /// tools/λ/sources/HME seeds are fixed. Cleared by
    /// [`plan_superblock`].
    memo: std::collections::HashMap<(BlockRect, MotionVector), LeafMemoEntry>,
    memo_policy: MemoPolicy,
}

impl Default for PlanScratch {
    fn default() -> Self {
        PlanScratch {
            pred: Vec::new(),
            res: Vec::new(),
            tu_src: Vec::new(),
            tu_coeffs: Vec::new(),
            tu_levels: Vec::new(),
            tu_deq: Vec::new(),
            tu_rec: Vec::new(),
            me: crate::mesearch::MeScratch::new(),
            memo: std::collections::HashMap::new(),
            memo_policy: MemoPolicy::default(),
        }
    }
}

impl PlanScratch {
    /// An empty pool (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the leaf-evaluation memo policy (default
    /// [`MemoPolicy::DeadProbeOnly`]).
    ///
    /// [`MemoPolicy::Always`] and [`MemoPolicy::Off`] exist for the
    /// equivalence tests, which assert that memoized and fully
    /// recomputed searches produce identical plans and identical probe
    /// event streams.
    pub fn set_memo_policy(&mut self, policy: MemoPolicy) {
        self.memo_policy = policy;
    }

    fn ensure(&mut self, area: usize, tu2: usize) {
        if self.pred.len() < area {
            self.pred.resize(area, 0);
            self.res.resize(area, 0);
        }
        if self.tu_src.len() < tu2 {
            self.tu_src.resize(tu2, 0);
            self.tu_coeffs.resize(tu2, 0);
            self.tu_levels.resize(tu2, 0);
            self.tu_deq.resize(tu2, 0);
            self.tu_rec.resize(tu2, 0);
        }
    }
}

/// Integer square root for the SATD-domain λ.
fn isqrt(v: u64) -> u64 {
    (v as f64).sqrt() as u64
}

/// Plans the partition tree for one superblock (Phase A).
///
/// `seed_mv` seeds the motion search and is updated with the winning MV so
/// neighbouring superblocks inherit good predictors.
/// Open-loop motion-estimation seeds for one superblock: the best MV per
/// 16x16 block and reference.
///
/// SVT-AV1's architecture runs hierarchical motion estimation as its own
/// pipeline stage, over every block of every picture, *before* mode
/// decision — so its memory traffic is independent of how aggressively
/// the RDO stage later prunes. That independence is exactly the paper's
/// roofline argument for why cache pressure rises at high CRF ("the total
/// amount of required data transfer stays the same"). The same pre-ME
/// structure exists in the other encoders' lookaheads, so all five models
/// share it.
#[derive(Debug, Clone)]
pub struct HmeSeeds {
    /// `seeds[ref_idx][by * blocks_x + bx]`.
    seeds: Vec<Vec<MotionVector>>,
    origin: (usize, usize),
    blocks_x: usize,
}

/// HME granularity in luma samples.
const HME_BLOCK: usize = 16;

impl HmeSeeds {
    /// The seed for the 16x16 region containing `(x, y)` against `ref_idx`.
    fn seed(&self, ref_idx: usize, x: usize, y: usize) -> MotionVector {
        let bx = (x - self.origin.0) / HME_BLOCK;
        let by = (y - self.origin.1) / HME_BLOCK;
        self.seeds[ref_idx][by * self.blocks_x + bx]
    }
}

/// Runs the open-loop HME pre-pass for one superblock.
#[allow(clippy::too_many_arguments)]
pub fn hme_superblock<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    sqrt_lambda: u64,
    scratch: &mut crate::mesearch::MeScratch,
) -> HmeSeeds {
    let blocks_x = rect.w.div_ceil(HME_BLOCK);
    let blocks_y = rect.h.div_ceil(HME_BLOCK);
    let mut seeds = vec![vec![MotionVector::ZERO; blocks_x * blocks_y]; refs.len()];
    for (ref_idx, ref_frame) in refs.iter().enumerate() {
        let mut pred = MotionVector::ZERO;
        for by in 0..blocks_y {
            for bx in 0..blocks_x {
                let sub = BlockRect::new(
                    rect.x + bx * HME_BLOCK,
                    rect.y + by * HME_BLOCK,
                    HME_BLOCK.min(rect.w - bx * HME_BLOCK),
                    HME_BLOCK.min(rect.h - by * HME_BLOCK),
                );
                let me = motion_search(
                    probe,
                    src.luma(),
                    sub,
                    ref_frame.luma(),
                    pred,
                    &tools.me,
                    sqrt_lambda,
                    scratch,
                );
                seeds[ref_idx][by * blocks_x + bx] = me.mv;
                pred = me.mv;
            }
        }
    }
    HmeSeeds { seeds, origin: (rect.x, rect.y), blocks_x }
}

/// Plans the partition tree for one superblock (Phase A): open-loop HME
/// followed by the RDO mode-decision search.
///
/// `seed_mv` seeds the spatial MV predictor and is updated with the
/// winning MV so neighbouring superblocks inherit good predictors.
#[allow(clippy::too_many_arguments)]
pub fn plan_superblock<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    seed_mv: &mut MotionVector,
    scratch: &mut PlanScratch,
) -> NodePlan {
    let lambda = Lambda::from_qindex(cfg.qindex);
    // The leaf memo is only valid while the superblock's tools/λ/HME
    // context is fixed, so it lives one superblock at a time.
    scratch.memo.clear();
    // Stage 1: open-loop HME (CRF-independent work and traffic).
    let sqrt_lambda = isqrt(lambda.scaled()).max(1);
    let hme = hme_superblock(probe, tools, src, refs, rect, sqrt_lambda, &mut scratch.me);
    // Stage 2: mode decision, refining around the HME seeds.
    let (plan, _cost) =
        plan_block(probe, tools, cfg, &lambda, src, refs, rect, 0, seed_mv, scratch, &hme);
    plan
}

#[allow(clippy::too_many_arguments)]
fn plan_block<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    lambda: &Lambda,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    depth: u32,
    seed_mv: &mut MotionVector,
    scratch: &mut PlanScratch,
    hme: &HmeSeeds,
) -> (NodePlan, u64) {
    probe.set_kernel(Kernel::ModeDecision);
    probe.alu(8);
    let mut decision: RdDecision<usize> = RdDecision::new();
    let mut plans: Vec<Option<(NodePlan, u64)>> = Vec::with_capacity(cfg.shapes.len());
    // Early-exit threshold: cheap blocks stop the shape sweep. RD costs
    // are distortion-dominated and quantization distortion scales with
    // qstep², so the threshold must too — this is what makes coarse
    // quantizers (high CRF) terminate the search early and is the paper's
    // "increasing CRF simply decreases the amount of algorithmic work"
    // mechanism.
    let qstep = crate::params::qindex_to_qstep(cfg.qindex) as u64;
    let exit_threshold = tools.early_exit_scale * rect.area() as u64 * qstep * qstep / 4096;

    for (i, &shape) in cfg.shapes.iter().enumerate() {
        probe.branch(vstress_trace::site_pc!(), i != 0);
        let candidate = match shape {
            PartitionShape::None => {
                let (mode, cost) = eval_leaf_memo(
                    probe, tools, cfg, lambda, src, refs, rect, seed_mv, scratch, hme,
                );
                Some((NodePlan::Leaf { rect, mode }, cost))
            }
            PartitionShape::Split if depth < cfg.max_depth => {
                let subs = shape.sub_blocks(rect.w, rect.h, cfg.min_block);
                if subs.is_empty() {
                    None
                } else {
                    let mut children = Vec::with_capacity(subs.len());
                    let mut total = 0u64;
                    for (dx, dy, w, h) in subs {
                        let sub = BlockRect::new(rect.x + dx, rect.y + dy, w, h);
                        let (p, c) = plan_block(
                            probe,
                            tools,
                            cfg,
                            lambda,
                            src,
                            refs,
                            sub,
                            depth + 1,
                            seed_mv,
                            scratch,
                            hme,
                        );
                        total = total.saturating_add(c);
                        children.push(p);
                    }
                    Some((NodePlan::Partition { shape, children }, total))
                }
            }
            PartitionShape::Split => None,
            _ => {
                let subs = shape.sub_blocks(rect.w, rect.h, cfg.min_block);
                if subs.is_empty() {
                    None
                } else {
                    let mut children = Vec::with_capacity(subs.len());
                    let mut total = 0u64;
                    for (dx, dy, w, h) in subs {
                        let sub = BlockRect::new(rect.x + dx, rect.y + dy, w, h);
                        let (mode, c) = eval_leaf_memo(
                            probe, tools, cfg, lambda, src, refs, sub, seed_mv, scratch, hme,
                        );
                        total = total.saturating_add(c);
                        children.push(NodePlan::Leaf { rect: sub, mode });
                    }
                    Some((NodePlan::Partition { shape, children }, total))
                }
            }
        };
        // Shape signalling rate: one unary bin per list position.
        let candidate =
            candidate.map(|(p, c)| (p, c.saturating_add(lambda.cost(0, (i as u64 + 1) * 256))));
        if let Some((_, cost)) = &candidate {
            decision.offer(plans.len(), *cost);
        }
        plans.push(candidate);
        // Early exit once a cheap-enough plan exists (the CRF-dependent
        // pruning real encoders use: coarse quantizers exit sooner).
        let exit = decision.best_cost() < exit_threshold;
        probe.branch(vstress_trace::site_pc!(), exit);
        if exit {
            break;
        }
    }

    let (idx, _) = decision.winner().expect("PartitionShape::None always yields a plan");
    plans.into_iter().nth(idx).flatten().expect("winner index points at a live plan")
}

/// Memoizing front end for [`eval_leaf`].
///
/// Within one superblock plan, [`eval_leaf`] is a pure function of
/// `(rect, *seed_mv)`: every other input (tools, λ, source, references,
/// HME seeds) is fixed for the whole plan, and the scratch buffers carry
/// no state between evaluations. The AV1-style shape grammar evaluates
/// the same sub-rects repeatedly — `Horz`'s top half is `HorzA`'s first
/// sub-block, `HorzA`'s bottom quads are `Split`'s lower quadrants, and
/// so on — so repeats with an unchanged MV predictor are pure recompute.
///
/// Probe fidelity: on a miss with a live probe (under
/// [`MemoPolicy::Always`]), the evaluation runs under a
/// [`vstress_trace::RecordingProbe`] and the entry stores the exact
/// event batch; a hit replays that batch, so downstream models observe
/// precisely the stream the recomputation would have emitted (the
/// evaluation's emissions do not depend on probe state, so record-once/
/// replay-later is exact). With a dead probe ([`vstress_trace::NullProbe`])
/// recording is skipped and the entry stores an empty batch — sound
/// because probe liveness cannot change within one plan, so any later
/// hit replays into the same dead probe where replay is a no-op.
///
/// Policy: under the default [`MemoPolicy::DeadProbeOnly`], live probes
/// bypass the memo and recompute every leaf. Replay is exact either way
/// (the tests prove it), but profiling the quick characterization run
/// showed repeated keys are almost always seen exactly twice, so eager
/// recording on every miss costs more wall time than the single replay
/// saves. The dead-probe path has no such trade-off: hits skip the whole
/// evaluation and there is nothing to record.
#[allow(clippy::too_many_arguments)]
fn eval_leaf_memo<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    lambda: &Lambda,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    seed_mv: &mut MotionVector,
    scratch: &mut PlanScratch,
    hme: &HmeSeeds,
) -> (LeafMode, u64) {
    let use_memo = match scratch.memo_policy {
        MemoPolicy::Off => false,
        MemoPolicy::DeadProbeOnly => !probe.is_live(),
        MemoPolicy::Always => true,
    };
    if !use_memo {
        return eval_leaf(probe, tools, cfg, lambda, src, refs, rect, seed_mv, scratch, hme);
    }
    let key = (rect, *seed_mv);
    if let Some(hit) = scratch.memo.get(&key) {
        hit.events.replay(probe);
        *seed_mv = hit.seed_mv_out;
        return (hit.mode, hit.cost);
    }
    let mut seed = *seed_mv;
    let (mode, cost, events) = if probe.is_live() {
        let mut rec = vstress_trace::RecordingProbe::new(probe);
        let (mode, cost) =
            eval_leaf(&mut rec, tools, cfg, lambda, src, refs, rect, &mut seed, scratch, hme);
        (mode, cost, rec.into_batch())
    } else {
        let (mode, cost) =
            eval_leaf(probe, tools, cfg, lambda, src, refs, rect, &mut seed, scratch, hme);
        (mode, cost, vstress_trace::EventBatch::new())
    };
    scratch.memo.insert(key, LeafMemoEntry { mode, cost, seed_mv_out: seed, events });
    *seed_mv = seed;
    (mode, cost)
}

/// Evaluates the best leaf mode for `rect` (Phase A).
#[allow(clippy::too_many_arguments)]
fn eval_leaf<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    lambda: &Lambda,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    seed_mv: &mut MotionVector,
    scratch: &mut PlanScratch,
    hme: &HmeSeeds,
) -> (LeafMode, u64) {
    let trial_tu = rect.w.min(rect.h).min(MAX_LUMA_TU);
    scratch.ensure(rect.area(), trial_tu * trial_tu);
    let luma = src.luma();
    let sqrt_lambda = isqrt(lambda.scaled()).max(1);
    let mut best: RdDecision<LeafMode> = RdDecision::new();
    let qstep = crate::params::qindex_to_qstep(cfg.qindex) as u64;

    // Mode-decision ME only *refines* around the open-loop HME seed (a
    // small window), as in SVT's pipeline; the full-range search already
    // happened in `hme_superblock`. Slow presets refine with wider
    // windows and more steps — the per-node share of the preset dial.
    let refine = crate::mesearch::MeSettings {
        range: (tools.me.range / 4).clamp(2, 8),
        exhaustive_radius: if tools.me.exhaustive_radius > 0 { 2 } else { 0 },
        refine_steps: (tools.me.refine_steps / 2).max(4),
        subpel: tools.me.subpel,
    };
    let mut best_me: Option<(crate::mesearch::MeResult, usize)> = None;
    for (ref_idx, ref_frame) in refs.iter().enumerate() {
        let hme_seed = hme.seed(ref_idx, rect.x, rect.y);
        // Search a window centred on the HME seed: offset coordinates by
        // seeding the predictor and keeping the window small.
        let me = motion_search_around(
            probe,
            luma,
            rect,
            ref_frame.luma(),
            hme_seed,
            *seed_mv,
            &refine,
            sqrt_lambda,
            &mut scratch.me,
        );
        if best_me.as_ref().map(|(b, _)| me.cost < b.cost).unwrap_or(true) {
            best_me = Some((me, ref_idx));
        }
    }
    if let Some((me, ref_idx)) = best_me {
        // Inter-skip shortcut: when the best motion-compensated residual
        // is already below the quantizer's dead zone, real encoders take
        // the skip path without sweeping intra modes. At coarse quantizers
        // this fires on most blocks and is the bulk of the CRF->work
        // reduction (the *compute* shrinks; the search traffic above does
        // not).
        let skip_threshold = rect.area() as u64 * qstep / 24;
        let skip = me.cost < skip_threshold;
        probe.set_kernel(Kernel::ModeDecision);
        probe.branch(vstress_trace::site_pc!(), skip);
        if skip {
            *seed_mv = me.mv;
            // Cost model: residual quantizes to ~zero, signalling tiny.
            let sse_estimate = me.cost.saturating_mul(2);
            return (LeafMode::Inter { mv: me.mv, ref_idx }, lambda.cost(sse_estimate, 6 * 256));
        }
        // Not skippable: keep the candidate for the RD comparison below.
        motion_compensate(probe, refs[ref_idx].luma(), rect, me.mv, &mut scratch.pred);
        kernels::residual(probe, luma, rect, &scratch.pred[..rect.area()], &mut scratch.res);
        let satd = transform::satd(probe, rect.w, rect.h, &scratch.res[..rect.area()]);
        let mv_rate = (4 + (me.mv.x.unsigned_abs() + me.mv.y.unsigned_abs()) as u64 / 2) * 256
            + if refs.len() > 1 { 256 } else { 0 };
        let cost = satd + sqrt_lambda * mv_rate / 256;
        if best.offer(LeafMode::Inter { mv: me.mv, ref_idx }, cost) {
            *seed_mv = me.mv;
        }
    }

    // Intra sweep (SATD-based, source edges — the fast-encoder shortcut).
    let edges = IntraEdges::gather(probe, luma, rect);
    for (mi, &mode) in cfg.modes.iter().enumerate() {
        probe.set_kernel(Kernel::ModeDecision);
        probe.alu(4);
        predict(probe, mode, &edges, rect.w, rect.h, &mut scratch.pred);
        kernels::residual(probe, luma, rect, &scratch.pred[..rect.area()], &mut scratch.res);
        let satd = transform::satd(probe, rect.w, rect.h, &scratch.res[..rect.area()]);
        let rate = (2 + mi as u64) * 256;
        let cost = satd + sqrt_lambda * rate / 256;
        let improved = best.offer(LeafMode::Intra(mode), cost);
        probe.branch(vstress_trace::site_pc!(), improved);
    }

    let (mode, _satd_cost) = best.winner().expect("intra sweep is never empty");

    // Full RD trial of the winner: transform + quantize + rate estimate.
    // The per-leaf syntax overhead (inter flag, mode index or MV, skip
    // flag, reference selection) must be priced here too — without it the
    // search believes tiny leaves are free and over-partitions, which
    // costs exactly the signalling bits a flexible grammar has more of.
    let overhead_rate: u64 = match mode {
        LeafMode::Intra(m) => {
            let idx = cfg.modes.iter().position(|&x| x == m).unwrap_or(0) as u64;
            (4 + idx) * 256
        }
        LeafMode::Inter { mv, .. } => {
            let mv_bits = 4
                + 2 * (64 - (mv.x.unsigned_abs() as u64 + 1).leading_zeros() as u64)
                + 2 * (64 - (mv.y.unsigned_abs() as u64 + 1).leading_zeros() as u64);
            let ref_bit = if refs.len() > 1 { 1 } else { 0 };
            (2 + mv_bits + ref_bit) * 256
        }
    };
    rebuild_pred(probe, refs, rect, mode, &edges, &mut scratch.pred);
    kernels::residual(probe, luma, rect, &scratch.pred[..rect.area()], &mut scratch.res);
    let quant = Quantizer::from_qindex(cfg.qindex);
    let tu = trial_tu;
    let tu2 = tu * tu;
    let mut distortion = 0u64;
    let mut rate = 0u64;
    for ty in (0..rect.h).step_by(tu) {
        for tx in (0..rect.w).step_by(tu) {
            for y in 0..tu {
                for x in 0..tu {
                    scratch.tu_src[y * tu + x] = scratch.res[(ty + y) * rect.w + tx + x];
                }
            }
            transform::forward(probe, tu, &scratch.tu_src[..tu2], &mut scratch.tu_coeffs[..tu2]);
            quant.quantize_block(probe, &scratch.tu_coeffs[..tu2], &mut scratch.tu_levels[..tu2]);
            rate += estimate_tu_rate(tu, &scratch.tu_levels[..tu2]);
            quant.dequantize_block(probe, &scratch.tu_levels[..tu2], &mut scratch.tu_deq[..tu2]);
            transform::inverse(probe, tu, &scratch.tu_deq[..tu2], &mut scratch.tu_rec[..tu2]);
            for i in 0..tu2 {
                let d = (scratch.tu_src[i] - scratch.tu_rec[i]) as i64;
                distortion += (d * d) as u64;
            }
        }
    }
    probe.set_kernel(Kernel::ModeDecision);
    probe.alu(6);
    (mode, lambda.cost(distortion, rate + overhead_rate))
}

/// Regenerates the prediction for a chosen mode into `pred`.
fn rebuild_pred<P: Probe>(
    probe: &mut P,
    refs: &[&Frame],
    rect: BlockRect,
    mode: LeafMode,
    edges: &IntraEdges,
    pred: &mut [u8],
) {
    match mode {
        LeafMode::Intra(m) => predict(probe, m, edges, rect.w, rect.h, pred),
        LeafMode::Inter { mv, ref_idx } => {
            motion_compensate(probe, refs[ref_idx].luma(), rect, mv, pred);
        }
    }
}

// ---------------------------------------------------------------------------
// Phase B: coding + reconstruction (and its decode mirror)
// ---------------------------------------------------------------------------

/// Walks a plan, coding syntax and reconstructing into `recon`.
#[allow(clippy::too_many_arguments)]
pub fn code_superblock<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    plan: &NodePlan,
    enc: &mut RangeEncoder,
    state: &mut CoderState,
    recon: &mut Frame,
) -> SbInfo {
    let mut info = SbInfo::default();
    code_node(probe, tools, cfg, src, refs, plan, enc, state, recon, 0, &mut info);
    info
}

/// Inter information needed for superblock-level chroma coding.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SbInfo {
    /// First inter (MV, reference index) coded in the superblock, if any.
    pub first_mv: Option<(MotionVector, usize)>,
}

#[allow(clippy::too_many_arguments)]
fn code_node<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    plan: &NodePlan,
    enc: &mut RangeEncoder,
    state: &mut CoderState,
    recon: &mut Frame,
    depth: u32,
    info: &mut SbInfo,
) {
    match plan {
        NodePlan::Leaf { rect, mode } => {
            // Shape symbol: None (index of None in the list, always 0).
            encode_shape_index(enc, probe, state, 0, shape_count(cfg, *rect, depth));
            code_leaf(probe, tools, cfg, src, refs, *rect, *mode, enc, state, recon, info);
        }
        NodePlan::Partition { shape, children } => {
            let parent = bounding(children);
            let codeable = codeable_shapes(cfg, parent, depth);
            let idx = codeable
                .iter()
                .position(|s| s == shape)
                .expect("plan shapes are always codeable for their geometry");
            encode_shape_index(enc, probe, state, idx, codeable.len());
            for child in children {
                match child {
                    NodePlan::Leaf { rect, mode } if !shape.recurses() => {
                        code_leaf(
                            probe, tools, cfg, src, refs, *rect, *mode, enc, state, recon, info,
                        );
                    }
                    _ => {
                        code_node(
                            probe,
                            tools,
                            cfg,
                            src,
                            refs,
                            child,
                            enc,
                            state,
                            recon,
                            depth + 1,
                            info,
                        );
                    }
                }
            }
        }
    }
}

fn bounding(children: &[NodePlan]) -> BlockRect {
    let mut min_x = usize::MAX;
    let mut min_y = usize::MAX;
    let mut max_x = 0;
    let mut max_y = 0;
    fn walk(n: &NodePlan, f: &mut impl FnMut(BlockRect)) {
        match n {
            NodePlan::Leaf { rect, .. } => f(*rect),
            NodePlan::Partition { children, .. } => {
                for c in children {
                    walk(c, f);
                }
            }
        }
    }
    for c in children {
        walk(c, &mut |r| {
            min_x = min_x.min(r.x);
            min_y = min_y.min(r.y);
            max_x = max_x.max(r.x + r.w);
            max_y = max_y.max(r.y + r.h);
        });
    }
    BlockRect::new(min_x, min_y, max_x - min_x, max_y - min_y)
}

/// The shapes codeable for a block of this geometry, in list order. Both
/// sides derive the identical list, so the truncated-unary shape symbol
/// indexes into it consistently.
fn codeable_shapes(cfg: &CoderConfig, rect: BlockRect, depth: u32) -> Vec<PartitionShape> {
    cfg.shapes
        .iter()
        .copied()
        .filter(|s| match s {
            PartitionShape::None => true,
            PartitionShape::Split => {
                depth < cfg.max_depth && !s.sub_blocks(rect.w, rect.h, cfg.min_block).is_empty()
            }
            _ => !s.sub_blocks(rect.w, rect.h, cfg.min_block).is_empty(),
        })
        .collect()
}

/// How many shapes are codeable for a block of this geometry (the decoder
/// can derive the same bound, so the unary code is truncated).
fn shape_count(cfg: &CoderConfig, rect: BlockRect, depth: u32) -> usize {
    codeable_shapes(cfg, rect, depth).len().max(1)
}

fn encode_shape_index<P: Probe>(
    enc: &mut RangeEncoder,
    probe: &mut P,
    state: &mut CoderState,
    index: usize,
    available: usize,
) {
    let mark = enc.bits_written_exact();
    // Truncated unary over the available shapes.
    for i in 0..available.saturating_sub(1) {
        let more = index > i;
        enc.encode(probe, &mut state.ctxs.partition[i.min(9)], more);
        if !more {
            break;
        }
    }
    state.bits.partition += enc.bits_written_exact() - mark;
}

fn decode_shape_index<P: Probe>(
    dec: &mut RangeDecoder<'_>,
    probe: &mut P,
    state: &mut CoderState,
    available: usize,
) -> usize {
    let mut index = 0;
    while index < available.saturating_sub(1) {
        if !dec.decode(probe, &mut state.ctxs.partition[index.min(9)]) {
            break;
        }
        index += 1;
    }
    index
}

/// Codes one leaf: mode info, residual, reconstruction.
#[allow(clippy::too_many_arguments)]
fn code_leaf<P: Probe>(
    probe: &mut P,
    tools: &ToolSet,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    rect: BlockRect,
    mode: LeafMode,
    enc: &mut RangeEncoder,
    state: &mut CoderState,
    recon: &mut Frame,
    info: &mut SbInfo,
) {
    let area = rect.area();
    let tu = rect.w.min(rect.h).min(MAX_LUMA_TU);
    let tiles_x = rect.w / tu;
    let tiles_y = rect.h / tu;
    state.scratch.ensure(area, tu * tu, tiles_x * tiles_y);

    // --- mode syntax ---
    let mode_mark = enc.bits_written_exact();
    if !refs.is_empty() {
        let is_inter = matches!(mode, LeafMode::Inter { .. });
        enc.encode(probe, &mut state.ctxs.is_inter, is_inter);
    }
    match mode {
        LeafMode::Intra(m) => {
            let idx = cfg.modes.iter().position(|&x| x == m).expect("mode from config list");
            encode_uvlc(enc, probe, &mut state.ctxs.mode, idx as u32);
            let edges = IntraEdges::gather(probe, recon.luma(), rect);
            predict(probe, m, &edges, rect.w, rect.h, &mut state.scratch.pred);
        }
        LeafMode::Inter { mv, ref_idx } => {
            if refs.len() > 1 {
                enc.encode(probe, &mut state.ctxs.ref_sel, ref_idx == 1);
            }
            let dx = mv.x - state.last_mv.x;
            let dy = mv.y - state.last_mv.y;
            enc.encode(probe, &mut state.ctxs.mv_sign, dx < 0);
            encode_uvlc(enc, probe, &mut state.ctxs.mv, dx.unsigned_abs());
            enc.encode(probe, &mut state.ctxs.mv_sign, dy < 0);
            encode_uvlc(enc, probe, &mut state.ctxs.mv, dy.unsigned_abs());
            state.last_mv = mv;
            if info.first_mv.is_none() {
                info.first_mv = Some((mv, ref_idx));
            }
            motion_compensate(probe, refs[ref_idx].luma(), rect, mv, &mut state.scratch.pred);
        }
    }

    state.bits.mode += enc.bits_written_exact() - mode_mark;

    // --- residual ---
    kernels::residual(probe, src.luma(), rect, &state.scratch.pred, &mut state.scratch.res);
    let base_quant = Quantizer::from_qindex(cfg.qindex);
    let mut any_nonzero = false;
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            for y in 0..tu {
                for x in 0..tu {
                    state.scratch.tu_src[y * tu + x] =
                        state.scratch.res[(ty * tu + y) * rect.w + tx * tu + x];
                }
            }
            transform::forward(
                probe,
                tu,
                &state.scratch.tu_src[..tu * tu],
                &mut state.scratch.tu_coeffs[..tu * tu],
            );
            // quant_passes > 1 models the slow-preset trellis: re-try the
            // quantization and keep the better RD (work multiplier).
            let tile = ty * tiles_x + tx;
            let levels = &mut state.scratch.levels_flat[tile * tu * tu..(tile + 1) * tu * tu];
            base_quant.quantize_block(probe, &state.scratch.tu_coeffs[..tu * tu], levels);
            for _extra in 1..tools.quant_passes {
                base_quant.quantize_block(
                    probe,
                    &state.scratch.tu_coeffs[..tu * tu],
                    &mut state.scratch.tu_alt[..tu * tu],
                );
                probe.set_kernel(Kernel::ModeDecision);
                probe.alu(tu as u64);
            }
            if state.scratch.levels_flat[tile * tu * tu..(tile + 1) * tu * tu]
                .iter()
                .any(|&l| l != 0)
            {
                any_nonzero = true;
            }
        }
    }

    // --- skip flag + coefficients ---
    let skip_mark = enc.bits_written_exact();
    enc.encode(probe, &mut state.ctxs.skip, !any_nonzero);
    state.bits.skip += enc.bits_written_exact() - skip_mark;
    if !any_nonzero {
        kernels::write_pred(probe, recon.luma_mut(), rect, &state.scratch.pred);
        return;
    }
    let coef_mark = enc.bits_written_exact();
    for tile in 0..tiles_x * tiles_y {
        let tx = tile % tiles_x;
        let ty = tile / tiles_x;
        // Split disjoint scratch borrows around the context-carrying call.
        {
            let (head, _) = state.scratch.levels_flat.split_at((tile + 1) * tu * tu);
            let levels = &head[tile * tu * tu..];
            encode_tu(enc, probe, &mut state.ctxs, tu, levels, true);
        }
        base_quant.dequantize_block(
            probe,
            &state.scratch.levels_flat[tile * tu * tu..(tile + 1) * tu * tu],
            &mut state.scratch.tu_deq[..tu * tu],
        );
        transform::inverse(
            probe,
            tu,
            &state.scratch.tu_deq[..tu * tu],
            &mut state.scratch.tu_rec[..tu * tu],
        );
        for y in 0..tu {
            for x in 0..tu {
                state.scratch.full_res[(ty * tu + y) * rect.w + tx * tu + x] =
                    state.scratch.tu_rec[y * tu + x];
            }
        }
    }
    state.bits.luma_coef += enc.bits_written_exact() - coef_mark;
    kernels::reconstruct(
        probe,
        recon.luma_mut(),
        rect,
        &state.scratch.pred,
        &state.scratch.full_res,
    );
}

/// Decodes one superblock's luma tree (mirror of [`code_superblock`]).
#[allow(clippy::too_many_arguments)]
pub fn decode_superblock<P: Probe>(
    probe: &mut P,
    cfg: &CoderConfig,
    refs: &[&Frame],
    dec: &mut RangeDecoder<'_>,
    state: &mut CoderState,
    recon: &mut Frame,
    rect: BlockRect,
) -> Result<SbInfo, CodecError> {
    let mut info = SbInfo::default();
    decode_node(probe, cfg, refs, dec, state, recon, rect, 0, &mut info)?;
    Ok(info)
}

#[allow(clippy::too_many_arguments)]
fn decode_node<P: Probe>(
    probe: &mut P,
    cfg: &CoderConfig,
    refs: &[&Frame],
    dec: &mut RangeDecoder<'_>,
    state: &mut CoderState,
    recon: &mut Frame,
    rect: BlockRect,
    depth: u32,
    info: &mut SbInfo,
) -> Result<(), CodecError> {
    let codeable = codeable_shapes(cfg, rect, depth);
    let idx = decode_shape_index(dec, probe, state, codeable.len().max(1));
    let shape = codeable.get(idx).copied().ok_or(CodecError::CorruptBitstream {
        offset: dec.position(),
        expected: "partition shape",
    })?;

    match shape {
        PartitionShape::None => {
            decode_leaf(probe, cfg, refs, dec, state, recon, rect, info)?;
        }
        PartitionShape::Split => {
            for (dx, dy, w, h) in shape.sub_blocks(rect.w, rect.h, cfg.min_block) {
                let sub = BlockRect::new(rect.x + dx, rect.y + dy, w, h);
                decode_node(probe, cfg, refs, dec, state, recon, sub, depth + 1, info)?;
            }
        }
        _ => {
            for (dx, dy, w, h) in shape.sub_blocks(rect.w, rect.h, cfg.min_block) {
                let sub = BlockRect::new(rect.x + dx, rect.y + dy, w, h);
                decode_leaf(probe, cfg, refs, dec, state, recon, sub, info)?;
            }
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn decode_leaf<P: Probe>(
    probe: &mut P,
    cfg: &CoderConfig,
    refs: &[&Frame],
    dec: &mut RangeDecoder<'_>,
    state: &mut CoderState,
    recon: &mut Frame,
    rect: BlockRect,
    info: &mut SbInfo,
) -> Result<(), CodecError> {
    let area = rect.area();
    let tu = rect.w.min(rect.h).min(MAX_LUMA_TU);
    let tiles_x = rect.w / tu;
    let tiles_y = rect.h / tu;
    state.scratch.ensure(area, tu * tu, tiles_x * tiles_y);
    let is_inter =
        if !refs.is_empty() { dec.decode(probe, &mut state.ctxs.is_inter) } else { false };
    if is_inter {
        let ref_idx =
            if refs.len() > 1 { dec.decode(probe, &mut state.ctxs.ref_sel) as usize } else { 0 };
        let neg_x = dec.decode(probe, &mut state.ctxs.mv_sign);
        let mag_x = decode_uvlc(dec, probe, &mut state.ctxs.mv) as i32;
        let neg_y = dec.decode(probe, &mut state.ctxs.mv_sign);
        let mag_y = decode_uvlc(dec, probe, &mut state.ctxs.mv) as i32;
        let dx = if neg_x { -mag_x } else { mag_x };
        let dy = if neg_y { -mag_y } else { mag_y };
        let mv = MotionVector { x: state.last_mv.x + dx, y: state.last_mv.y + dy };
        state.last_mv = mv;
        if info.first_mv.is_none() {
            info.first_mv = Some((mv, ref_idx));
        }
        motion_compensate(probe, refs[ref_idx].luma(), rect, mv, &mut state.scratch.pred);
    } else {
        let idx = decode_uvlc(dec, probe, &mut state.ctxs.mode) as usize;
        let mode = cfg.modes.get(idx).copied().ok_or(CodecError::CorruptBitstream {
            offset: dec.position(),
            expected: "intra mode index",
        })?;
        let edges = IntraEdges::gather(probe, recon.luma(), rect);
        predict(probe, mode, &edges, rect.w, rect.h, &mut state.scratch.pred);
    }

    let skip = dec.decode(probe, &mut state.ctxs.skip);
    if skip {
        kernels::write_pred(probe, recon.luma_mut(), rect, &state.scratch.pred);
        return Ok(());
    }

    let quant = Quantizer::from_qindex(cfg.qindex);
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            {
                let (ctxs, scratch) = (&mut state.ctxs, &mut state.scratch);
                decode_tu(dec, probe, ctxs, tu, &mut scratch.tu_src[..tu * tu], true);
            }
            quant.dequantize_block(
                probe,
                &state.scratch.tu_src[..tu * tu],
                &mut state.scratch.tu_deq[..tu * tu],
            );
            transform::inverse(
                probe,
                tu,
                &state.scratch.tu_deq[..tu * tu],
                &mut state.scratch.tu_rec[..tu * tu],
            );
            for y in 0..tu {
                for x in 0..tu {
                    state.scratch.full_res[(ty * tu + y) * rect.w + tx * tu + x] =
                        state.scratch.tu_rec[y * tu + x];
                }
            }
        }
    }
    kernels::reconstruct(
        probe,
        recon.luma_mut(),
        rect,
        &state.scratch.pred,
        &state.scratch.full_res,
    );
    Ok(())
}

// ---------------------------------------------------------------------------
// Chroma (superblock granularity)
// ---------------------------------------------------------------------------

/// Largest luma transform unit the coder selects. 32x32 transforms exist
/// in the substrate, but at the workbench's operating resolutions their
/// rate efficiency is poor (as in real encoders, which rarely pick
/// TX_32X32 below HD), so leaves cap at 16.
const MAX_LUMA_TU: usize = 16;

/// Chroma transform-unit size.
const CHROMA_TU: usize = 8;

/// Builds the DC-intra chroma prediction for one TU.
fn chroma_pred_dc<P: Probe>(probe: &mut P, recon_plane: &Plane, rect: BlockRect, pred: &mut [u8]) {
    let edges = IntraEdges::gather(probe, recon_plane, rect);
    predict(probe, IntraMode::Dc, &edges, rect.w, rect.h, pred);
}

/// Builds the motion-compensated chroma prediction for one TU from the
/// superblock's first inter MV (halved, against its reference). Returns
/// `false` when no MV is available (the TU must use DC).
fn chroma_pred_mc<P: Probe>(
    probe: &mut P,
    ref_planes: &[&Plane],
    rect: BlockRect,
    sb_info: &SbInfo,
    pred: &mut [u8],
) -> bool {
    match sb_info.first_mv {
        Some((mv, ref_idx)) if ref_idx < ref_planes.len() => {
            let cmv = MotionVector { x: mv.x / 2, y: mv.y / 2 };
            motion_compensate(probe, ref_planes[ref_idx], rect, cmv, pred);
            true
        }
        _ => false,
    }
}

/// Codes both chroma planes of one superblock with 8x8 TUs: DC-intra
/// prediction (or the SB's first inter MV, halved) plus coded residual.
#[allow(clippy::too_many_arguments)]
pub fn code_sb_chroma<P: Probe>(
    probe: &mut P,
    cfg: &CoderConfig,
    src: &Frame,
    refs: &[&Frame],
    sb: BlockRect,
    sb_info: &SbInfo,
    enc: &mut RangeEncoder,
    state: &mut CoderState,
    recon: &mut Frame,
) {
    let crect = BlockRect::new(sb.x / 2, sb.y / 2, sb.w / 2, sb.h / 2);
    let quant = Quantizer::from_qindex(cfg.qindex);
    let tu = CHROMA_TU;
    let chroma_mark = enc.bits_written_exact();
    state.scratch.ensure(tu * tu, tu * tu, 1);
    let mut pred = std::mem::take(&mut state.scratch.pred);
    let mut res = std::mem::take(&mut state.scratch.res);
    let mut coeffs = std::mem::take(&mut state.scratch.tu_coeffs);
    let mut levels = std::mem::take(&mut state.scratch.tu_src);
    let mut deq = std::mem::take(&mut state.scratch.tu_deq);
    let mut rec = std::mem::take(&mut state.scratch.tu_rec);
    for plane_idx in 0..2 {
        for ty in (0..crect.h).step_by(tu) {
            for tx in (0..crect.w).step_by(tu) {
                let rect = BlockRect::new(crect.x + tx, crect.y + ty, tu, tu);
                let src_plane = if plane_idx == 0 { src.cb() } else { src.cr() };
                {
                    let (recon_plane, ref_planes): (&Plane, Vec<&Plane>) = if plane_idx == 0 {
                        (recon.cb(), refs.iter().map(|f| f.cb()).collect())
                    } else {
                        (recon.cr(), refs.iter().map(|f| f.cr()).collect())
                    };
                    // Per-TU mode decision: DC intra vs the superblock MV,
                    // by actual prediction error, signalled with one bin.
                    let mut mc_pred = std::mem::take(&mut state.scratch.pred2);
                    if mc_pred.len() < tu * tu {
                        mc_pred.resize(tu * tu, 0);
                    }
                    let has_mc = chroma_pred_mc(probe, &ref_planes, rect, sb_info, &mut mc_pred);
                    chroma_pred_dc(probe, recon_plane, rect, &mut pred);
                    if has_mc {
                        let sse_dc = kernels::sse_plane_pred(probe, src_plane, rect, &pred);
                        let sse_mc = kernels::sse_plane_pred(probe, src_plane, rect, &mc_pred);
                        let use_mc = sse_mc < sse_dc;
                        enc.encode(probe, &mut state.ctxs.chroma_mode, use_mc);
                        if use_mc {
                            pred[..tu * tu].copy_from_slice(&mc_pred[..tu * tu]);
                        }
                    }
                    state.scratch.pred2 = mc_pred;
                }
                kernels::residual(probe, src_plane, rect, &pred, &mut res);
                transform::forward(probe, tu, &res[..tu * tu], &mut coeffs[..tu * tu]);
                quant.quantize_block(probe, &coeffs[..tu * tu], &mut levels[..tu * tu]);
                let cbf = encode_tu(enc, probe, &mut state.ctxs, tu, &levels[..tu * tu], false);
                let recon_plane = if plane_idx == 0 { recon.cb_mut() } else { recon.cr_mut() };
                if cbf {
                    quant.dequantize_block(probe, &levels[..tu * tu], &mut deq[..tu * tu]);
                    transform::inverse(probe, tu, &deq[..tu * tu], &mut rec[..tu * tu]);
                    kernels::reconstruct(probe, recon_plane, rect, &pred, &rec);
                } else {
                    kernels::write_pred(probe, recon_plane, rect, &pred);
                }
            }
        }
    }
    state.scratch.pred = pred;
    state.scratch.res = res;
    state.scratch.tu_coeffs = coeffs;
    state.scratch.tu_src = levels;
    state.scratch.tu_deq = deq;
    state.scratch.tu_rec = rec;
    state.bits.chroma += enc.bits_written_exact() - chroma_mark;
}

/// Decodes both chroma planes of one superblock (mirror of
/// [`code_sb_chroma`]).
#[allow(clippy::too_many_arguments)]
pub fn decode_sb_chroma<P: Probe>(
    probe: &mut P,
    cfg: &CoderConfig,
    refs: &[&Frame],
    sb: BlockRect,
    sb_info: &SbInfo,
    dec: &mut RangeDecoder<'_>,
    state: &mut CoderState,
    recon: &mut Frame,
) {
    let crect = BlockRect::new(sb.x / 2, sb.y / 2, sb.w / 2, sb.h / 2);
    let quant = Quantizer::from_qindex(cfg.qindex);
    let tu = CHROMA_TU;
    state.scratch.ensure(tu * tu, tu * tu, 1);
    let mut pred = std::mem::take(&mut state.scratch.pred);
    let mut levels = std::mem::take(&mut state.scratch.tu_src);
    let mut deq = std::mem::take(&mut state.scratch.tu_deq);
    let mut rec = std::mem::take(&mut state.scratch.tu_rec);
    for plane_idx in 0..2 {
        for ty in (0..crect.h).step_by(tu) {
            for tx in (0..crect.w).step_by(tu) {
                let rect = BlockRect::new(crect.x + tx, crect.y + ty, tu, tu);
                {
                    let (recon_plane, ref_planes): (&Plane, Vec<&Plane>) = if plane_idx == 0 {
                        (recon.cb(), refs.iter().map(|f| f.cb()).collect())
                    } else {
                        (recon.cr(), refs.iter().map(|f| f.cr()).collect())
                    };
                    let mv_available = matches!(
                        sb_info.first_mv,
                        Some((_, ref_idx)) if ref_idx < ref_planes.len()
                    );
                    let use_mc = if mv_available {
                        dec.decode(probe, &mut state.ctxs.chroma_mode)
                    } else {
                        false
                    };
                    if use_mc {
                        chroma_pred_mc(probe, &ref_planes, rect, sb_info, &mut pred);
                    } else {
                        chroma_pred_dc(probe, recon_plane, rect, &mut pred);
                    }
                }
                let cbf = decode_tu(dec, probe, &mut state.ctxs, tu, &mut levels[..tu * tu], false);
                let recon_plane = if plane_idx == 0 { recon.cb_mut() } else { recon.cr_mut() };
                if cbf {
                    quant.dequantize_block(probe, &levels[..tu * tu], &mut deq[..tu * tu]);
                    transform::inverse(probe, tu, &deq[..tu * tu], &mut rec[..tu * tu]);
                    kernels::reconstruct(probe, recon_plane, rect, &pred, &rec);
                } else {
                    kernels::write_pred(probe, recon_plane, rect, &pred);
                }
            }
        }
    }
    state.scratch.pred = pred;
    state.scratch.tu_src = levels;
    state.scratch.tu_deq = deq;
    state.scratch.tu_rec = rec;
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::NullProbe;

    #[test]
    fn zigzag_is_a_permutation() {
        for n in [4usize, 8, 16, 32] {
            let mut order = zigzag(n).into_owned();
            assert_eq!(order.len(), n * n);
            order.sort_unstable();
            for (i, &v) in order.iter().enumerate() {
                assert_eq!(i, v, "zigzag({n}) must visit every index once");
            }
        }
    }

    #[test]
    fn zigzag_starts_at_dc_and_walks_diagonals() {
        let z = zigzag(4);
        assert_eq!(z[0], 0);
        // Second and third visits are the first anti-diagonal.
        assert!(z[1] == 1 || z[1] == 4);
        assert_eq!(z.last(), Some(&15));
    }

    #[test]
    fn tu_roundtrip_random_levels() {
        let mut x = 0xfeedu64;
        for n in [4usize, 8, 16] {
            let mut levels = vec![0i32; n * n];
            for l in levels.iter_mut() {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                *l = match (x >> 60) % 8 {
                    0 => ((x >> 8) % 15) as i32 - 7,
                    1 => ((x >> 8) % 3) as i32,
                    _ => 0,
                };
            }
            let mut enc = RangeEncoder::new();
            let mut ctxs = FrameContexts::new();
            let mut p = NullProbe;
            encode_tu(&mut enc, &mut p, &mut ctxs, n, &levels, true);
            let bytes = enc.finish();
            let mut dec = RangeDecoder::new(&bytes);
            let mut ctxs = FrameContexts::new();
            let mut out = vec![0i32; n * n];
            decode_tu(&mut dec, &mut p, &mut ctxs, n, &mut out, true);
            assert_eq!(out, levels, "TU size {n}");
        }
    }

    #[test]
    fn tu_all_zero_roundtrip() {
        let levels = vec![0i32; 64];
        let mut enc = RangeEncoder::new();
        let mut ctxs = FrameContexts::new();
        let mut p = NullProbe;
        assert!(!encode_tu(&mut enc, &mut p, &mut ctxs, 8, &levels, true));
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctxs = FrameContexts::new();
        let mut out = vec![7i32; 64];
        assert!(!decode_tu(&mut dec, &mut p, &mut ctxs, 8, &mut out, true));
        assert!(out.iter().all(|&v| v == 0));
    }

    #[test]
    fn rate_estimate_monotone_in_density() {
        let sparse = {
            let mut l = vec![0i32; 64];
            l[0] = 3;
            l
        };
        let dense: Vec<i32> = (0..64).map(|i| (i % 5) - 2).collect();
        assert!(estimate_tu_rate(8, &dense) > estimate_tu_rate(8, &sparse));
        assert!(estimate_tu_rate(8, &vec![0i32; 64]) < estimate_tu_rate(8, &sparse));
    }

    #[test]
    fn shape_count_respects_geometry() {
        let cfg = CoderConfig {
            superblock: 32,
            min_block: 4,
            max_depth: 3,
            shapes: PartitionShape::AV1.to_vec(),
            modes: IntraMode::AV1.to_vec(),
            ref_frames: 1,
            qindex: 60,
        };
        // A full 32x32 node: all ten shapes apply.
        assert_eq!(shape_count(&cfg, BlockRect::new(0, 0, 32, 32), 0), 10);
        // A 4x4 node: nothing divides, only None.
        assert_eq!(shape_count(&cfg, BlockRect::new(0, 0, 4, 4), 3), 1);
        // At max depth Split is unavailable.
        let c8 = shape_count(&cfg, BlockRect::new(0, 0, 8, 8), 3);
        assert!((1..10).contains(&c8));
    }

    #[test]
    fn shape_index_roundtrip() {
        let mut enc = RangeEncoder::new();
        let mut state = CoderState::new();
        let mut p = NullProbe;
        let seq = [(0usize, 10usize), (3, 10), (9, 10), (0, 1), (1, 4), (2, 3)];
        for &(idx, avail) in &seq {
            encode_shape_index(&mut enc, &mut p, &mut state, idx, avail);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut state = CoderState::new();
        for &(idx, avail) in &seq {
            assert_eq!(decode_shape_index(&mut dec, &mut p, &mut state, avail), idx);
        }
    }
}
