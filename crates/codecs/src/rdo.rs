//! Rate-distortion optimization: λ derivation and RD cost bookkeeping.

use crate::params::qindex_to_qstep;

/// Fixed-point precision of rate values (1/256 bit).
pub const RATE_SHIFT: u32 = 8;

/// The Lagrangian multiplier λ scaled by 256 for integer math.
///
/// Standard HM/libaom-style derivation: λ ∝ (qstep)², so doubling the
/// quantizer step quadruples the tolerance for extra distortion per bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Lambda {
    /// λ in distortion-per-(1/256 bit) fixed point.
    scaled: u64,
}

impl Lambda {
    /// λ for a quantizer index.
    pub fn from_qindex(qindex: u8) -> Self {
        let q = qindex_to_qstep(qindex) as u64;
        // lambda(bits) = 0.057 * qstep^2 (HEVC-like). `scaled` is the
        // cost of one 1/256-bit unit of rate in distortion units; the
        // /256 conversion happens in `cost` via RATE_SHIFT.
        let scaled = (57 * q * q / 1000).max(1);
        Lambda { scaled }
    }

    /// RD cost `D + λR` with `rate` in 1/256-bit units.
    #[inline]
    pub fn cost(&self, distortion: u64, rate_fixed: u64) -> u64 {
        distortion.saturating_add(self.scaled.saturating_mul(rate_fixed) >> RATE_SHIFT)
    }

    /// The scaled λ (for tests and reports).
    pub fn scaled(&self) -> u64 {
        self.scaled
    }
}

/// A running RD decision: keeps the cheapest candidate seen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RdDecision<T> {
    best: Option<T>,
    best_cost: u64,
}

impl<T: Copy> RdDecision<T> {
    /// An empty decision.
    pub fn new() -> Self {
        RdDecision { best: None, best_cost: u64::MAX }
    }

    /// Offers a candidate; keeps it if cheaper.
    ///
    /// Returns `true` when the candidate became the new best.
    pub fn offer(&mut self, candidate: T, cost: u64) -> bool {
        if cost < self.best_cost {
            self.best = Some(candidate);
            self.best_cost = cost;
            true
        } else {
            false
        }
    }

    /// The winning candidate, if any was offered.
    pub fn winner(&self) -> Option<(T, u64)> {
        self.best.map(|b| (b, self.best_cost))
    }

    /// Best cost so far (`u64::MAX` when empty).
    pub fn best_cost(&self) -> u64 {
        self.best_cost
    }
}

impl<T: Copy> Default for RdDecision<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lambda_grows_quadratically_with_qstep() {
        let l1 = Lambda::from_qindex(32).scaled();
        let l2 = Lambda::from_qindex(48).scaled(); // qstep doubles
        let ratio = l2 as f64 / l1 as f64;
        assert!((3.0..5.0).contains(&ratio), "expected ~4x, got {ratio}");
    }

    #[test]
    fn cost_trades_rate_against_distortion() {
        let l = Lambda::from_qindex(64);
        // At coarse quant, spending bits is expensive: high-rate low-D
        // loses to low-rate high-D at some point.
        let cheap_bits = l.cost(10_000, 10 * 256);
        let many_bits = l.cost(0, 200 * 256);
        assert!(cheap_bits < many_bits, "{cheap_bits} vs {many_bits}");
        // At fine quant the trade flips.
        let lf = Lambda::from_qindex(4);
        assert!(lf.cost(10_000, 10 * 256) > lf.cost(0, 200 * 256));
    }

    #[test]
    fn decision_keeps_minimum() {
        let mut d = RdDecision::new();
        assert!(d.offer("a", 100));
        assert!(!d.offer("b", 150));
        assert!(d.offer("c", 50));
        assert_eq!(d.winner(), Some(("c", 50)));
    }

    #[test]
    fn empty_decision_has_no_winner() {
        let d: RdDecision<u8> = RdDecision::new();
        assert_eq!(d.winner(), None);
        assert_eq!(d.best_cost(), u64::MAX);
    }

    #[test]
    fn cost_saturates_instead_of_overflowing() {
        let l = Lambda::from_qindex(112);
        let c = l.cost(u64::MAX - 5, u64::MAX / 2);
        assert_eq!(c, u64::MAX);
    }
}
