//! Adaptive binary range coding — the entropy engine shared by the codec
//! models (the AV1/VP9 families use it natively; the H.26x models reuse it
//! as their CABAC stand-in).
//!
//! The implementation is the classic carry-propagating byte-oriented range
//! coder (as in LZMA and, structurally, libaom's `od_ec`): 32-bit range,
//! 11-bit adaptive probabilities with shift-5 exponential update. Encoding
//! and decoding are exact mirrors; `decode(encode(bits)) == bits` is a
//! property test in this module.
//!
//! Every coded bin reports one data-dependent branch through the
//! [`Probe`] — *this is the encoder's dominant source of hard-to-predict
//! branches*. Well-modelled contexts (skip flags at high CRF) produce
//! heavily biased, predictable branch streams; mid-probability contexts
//! (coefficient significance at low CRF) produce the mispredictions the
//! paper's branch study chases.

use vstress_trace::{probe_addr, Kernel, Probe};

/// Probability precision: probabilities live in `(0, 1 << PROB_BITS)`.
pub const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
const PROB_INIT: u16 = PROB_ONE / 2;
/// Adaptation rate (larger = slower).
const ADAPT_SHIFT: u32 = 5;
const TOP: u32 = 1 << 24;

/// An adaptive binary context: probability of the next bin being 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Context {
    p0: u16,
    /// Synthetic PC for the branch this context's bins drive.
    pc: u64,
}

impl Context {
    /// A fresh mid-probability context; `label` seeds the branch-site PC.
    pub fn new(label: u64) -> Self {
        Context {
            p0: PROB_INIT,
            pc: 0x0000_5100_0000_0000 | ((label.wrapping_mul(0x9e37_79b9)) & 0xffff_fffc),
        }
    }

    /// Current probability of zero, in `[1, 2047]`.
    #[inline]
    pub fn p0(&self) -> u16 {
        self.p0
    }

    #[inline]
    fn adapt(&mut self, bin: bool) {
        if bin {
            self.p0 -= self.p0 >> ADAPT_SHIFT;
        } else {
            self.p0 += (PROB_ONE - self.p0) >> ADAPT_SHIFT;
        }
        // Keep probabilities away from the poles so `bound` stays valid.
        self.p0 = self.p0.clamp(16, PROB_ONE - 16);
    }

    /// Estimated cost of coding `bin`, in 1/256-bit units, without
    /// mutating the context. Used by the RDO search.
    #[inline]
    pub fn cost(&self, bin: bool) -> u32 {
        let p = if bin { PROB_ONE - self.p0 } else { self.p0 };
        cost_table()[(p >> 4) as usize]
    }
}

fn cost_table() -> &'static [u32; 128] {
    static TABLE: std::sync::OnceLock<[u32; 128]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 128];
        for (i, slot) in t.iter_mut().enumerate() {
            // Bucket midpoint probability.
            let p = ((i as f64 + 0.5) * 16.0 / PROB_ONE as f64).clamp(1e-4, 1.0 - 1e-4);
            *slot = (-p.log2() * 256.0).round() as u32;
        }
        t
    })
}

/// The range encoder.
#[derive(Debug, Clone)]
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
    bins: u64,
}

impl RangeEncoder {
    /// A fresh encoder with an empty output buffer.
    pub fn new() -> Self {
        RangeEncoder { low: 0, range: u32::MAX, cache: 0, cache_size: 1, out: Vec::new(), bins: 0 }
    }

    /// Bins coded so far.
    pub fn bins(&self) -> u64 {
        self.bins
    }

    /// Bits produced so far (excluding the unflushed tail).
    pub fn bits_written(&self) -> u64 {
        self.out.len() as u64 * 8
    }

    /// Exact information content written so far, in fractional bits:
    /// emitted bytes plus the entropy pending in the range register.
    /// Differences of this value give per-syntax-element bit costs.
    pub fn bits_written_exact(&self) -> f64 {
        let pending = 32.0 - (self.range as f64 + 1.0).log2();
        self.out.len() as f64 * 8.0 + self.cache_size as f64 * 8.0 + pending
    }

    /// Encodes `bin` with adaptive context `ctx`, reporting the
    /// data-dependent branch and ALU work to `probe`.
    #[inline]
    pub fn encode<P: Probe>(&mut self, probe: &mut P, ctx: &mut Context, bin: bool) {
        probe.set_kernel(Kernel::EntropyCoder);
        probe.branch(ctx.pc, bin);
        probe.alu(4);
        probe.load(probe_addr::fixed::CODER_STATE, 8);
        // Coder state (low/range) and the output byte stream are written
        // back every bin.
        probe.store(probe_addr::fixed::CODER_STATE, 8);
        probe.store(probe_addr::fixed::ENTROPY_OUT + self.out.len() as u64, 1);
        self.encode_raw(ctx.p0, bin);
        ctx.adapt(bin);
    }

    /// Encodes `bin` with fixed probability 1/2 (bypass bin).
    #[inline]
    pub fn encode_bypass<P: Probe>(&mut self, probe: &mut P, bin: bool) {
        probe.set_kernel(Kernel::EntropyCoder);
        probe.alu(3);
        probe.store(probe_addr::fixed::CODER_STATE, 8);
        self.encode_raw(PROB_INIT, bin);
    }

    /// Encodes `n` bypass bins from the low bits of `v` (MSB first).
    pub fn encode_literal<P: Probe>(&mut self, probe: &mut P, v: u32, n: u32) {
        for i in (0..n).rev() {
            self.encode_bypass(probe, (v >> i) & 1 == 1);
        }
    }

    #[inline]
    fn encode_raw(&mut self, p0: u16, bin: bool) {
        self.bins += 1;
        let bound = (self.range >> PROB_BITS) * p0 as u32;
        if !bin {
            self.range = bound;
        } else {
            self.low += bound as u64;
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xff00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xff;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        // Keep only the low 32 bits; bits 24–31 moved into `cache` above
        // and must not reappear as a phantom carry.
        self.low = ((self.low as u32) << 8) as u64;
    }

    /// Flushes and returns the coded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

/// The range decoder (mirror of [`RangeEncoder`]).
#[derive(Debug, Clone)]
pub struct RangeDecoder<'a> {
    input: &'a [u8],
    pos: usize,
    range: u32,
    code: u32,
}

impl<'a> RangeDecoder<'a> {
    /// Starts decoding `input` (must begin at the encoder's first byte).
    pub fn new(input: &'a [u8]) -> Self {
        let mut d = RangeDecoder { input, pos: 0, range: u32::MAX, code: 0 };
        // The first encoder byte is always 0 (cache priming); skip it and
        // load the next four.
        d.pos = 1;
        for _ in 0..4 {
            d.code = (d.code << 8) | d.next_byte() as u32;
        }
        d
    }

    #[inline]
    fn next_byte(&mut self) -> u8 {
        let b = self.input.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    /// Bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Decodes one bin with adaptive context `ctx`.
    #[inline]
    pub fn decode<P: Probe>(&mut self, probe: &mut P, ctx: &mut Context) -> bool {
        probe.set_kernel(Kernel::EntropyCoder);
        probe.alu(4);
        probe.load(probe_addr::fixed::ENTROPY_IN + self.pos as u64, 4);
        probe.store(probe_addr::fixed::CODER_STATE, 8);
        let bin = self.decode_raw(ctx.p0);
        probe.branch(ctx.pc, bin);
        ctx.adapt(bin);
        bin
    }

    /// Decodes one bypass bin.
    #[inline]
    pub fn decode_bypass<P: Probe>(&mut self, probe: &mut P) -> bool {
        probe.set_kernel(Kernel::EntropyCoder);
        probe.alu(3);
        self.decode_raw(PROB_INIT)
    }

    /// Decodes an `n`-bit literal (MSB first).
    pub fn decode_literal<P: Probe>(&mut self, probe: &mut P, n: u32) -> u32 {
        let mut v = 0;
        for _ in 0..n {
            v = (v << 1) | self.decode_bypass(probe) as u32;
        }
        v
    }

    #[inline]
    fn decode_raw(&mut self, p0: u16) -> bool {
        let bound = (self.range >> PROB_BITS) * p0 as u32;
        let bin = self.code >= bound;
        if !bin {
            self.range = bound;
        } else {
            self.code -= bound;
            self.range -= bound;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte() as u32;
        }
        bin
    }
}

/// Encodes a non-negative value with a unary-prefixed Exp-Golomb-style
/// binarization through adaptive contexts: `prefix_ctx` codes
/// "keep going" flags for the first few magnitudes, then the remainder is
/// sent as a bypass literal.
pub fn encode_uvlc<P: Probe>(
    enc: &mut RangeEncoder,
    probe: &mut P,
    ctxs: &mut [Context; 3],
    v: u32,
) {
    // Unary part over the first 3 magnitudes with dedicated contexts.
    let unary = v.min(3);
    for i in 0..3 {
        let more = v > i;
        enc.encode(probe, &mut ctxs[i as usize], more);
        if !more {
            return;
        }
    }
    let _ = unary;
    // Remainder with Elias-gamma-style length prefix (bypass).
    let rem = v - 3;
    let nbits = 32 - rem.leading_zeros().min(31);
    let nbits = nbits.max(1);
    // Length in unary (bypass), capped at 31.
    for _ in 1..nbits {
        enc.encode_bypass(probe, true);
    }
    enc.encode_bypass(probe, false);
    enc.encode_literal(probe, rem, nbits);
}

/// Mirror of [`encode_uvlc`].
pub fn decode_uvlc<P: Probe>(
    dec: &mut RangeDecoder<'_>,
    probe: &mut P,
    ctxs: &mut [Context; 3],
) -> u32 {
    for i in 0..3u32 {
        if !dec.decode(probe, &mut ctxs[i as usize]) {
            return i;
        }
    }
    let mut nbits = 1u32;
    // Valid streams terminate within 32 prefix bins; the 64 cap only
    // bounds work on corrupt input (the literal read below then yields
    // arbitrary-but-safe bits).
    while dec.decode_bypass(probe) && nbits < 64 {
        nbits += 1;
    }
    3u32.wrapping_add(dec.decode_literal(probe, nbits.min(32)))
}

/// Estimated cost in 1/256-bit units of [`encode_uvlc`], context state
/// untouched.
pub fn uvlc_cost(ctxs: &[Context; 3], v: u32) -> u32 {
    let mut cost = 0;
    for i in 0..3u32 {
        let more = v > i;
        cost += ctxs[i as usize].cost(more);
        if !more {
            return cost;
        }
    }
    let rem = v - 3;
    let nbits = (32 - rem.leading_zeros().min(31)).max(1);
    cost + (2 * nbits) * 256
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstress_trace::{CountingProbe, NullProbe};

    #[test]
    fn roundtrip_random_bins_single_context() {
        let mut enc = RangeEncoder::new();
        let mut ctx = Context::new(1);
        let mut p = NullProbe;
        let mut x = 123u64;
        let mut bits = Vec::new();
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let bin = (x >> 60) % 10 < 3;
            bits.push(bin);
            enc.encode(&mut p, &mut ctx, bin);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctx = Context::new(1);
        for (i, &expect) in bits.iter().enumerate() {
            assert_eq!(dec.decode(&mut p, &mut ctx), expect, "bin {i}");
        }
    }

    #[test]
    fn roundtrip_mixed_contexts_bypass_and_literals() {
        let mut enc = RangeEncoder::new();
        let mut c1 = Context::new(10);
        let mut c2 = Context::new(20);
        let mut p = NullProbe;
        for i in 0..500u32 {
            enc.encode(&mut p, &mut c1, i % 3 == 0);
            enc.encode(&mut p, &mut c2, i % 7 < 2);
            enc.encode_bypass(&mut p, i % 2 == 0);
            enc.encode_literal(&mut p, i % 256, 8);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut c1 = Context::new(10);
        let mut c2 = Context::new(20);
        for i in 0..500u32 {
            assert_eq!(dec.decode(&mut p, &mut c1), i % 3 == 0);
            assert_eq!(dec.decode(&mut p, &mut c2), i % 7 < 2);
            assert_eq!(dec.decode_bypass(&mut p), i % 2 == 0);
            assert_eq!(dec.decode_literal(&mut p, 8), i % 256);
        }
    }

    #[test]
    fn biased_streams_compress() {
        // 99% zeros should cost far less than 1 bit per bin.
        let mut enc = RangeEncoder::new();
        let mut ctx = Context::new(5);
        let mut p = NullProbe;
        let n = 20_000;
        for i in 0..n {
            enc.encode(&mut p, &mut ctx, i % 100 == 0);
        }
        let bytes = enc.finish();
        let bpb = bytes.len() as f64 * 8.0 / n as f64;
        assert!(bpb < 0.15, "bits per bin {bpb}");
    }

    #[test]
    fn random_streams_cost_about_one_bit() {
        let mut enc = RangeEncoder::new();
        let mut p = NullProbe;
        let n = 20_000;
        let mut x = 9u64;
        for _ in 0..n {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            enc.encode_bypass(&mut p, x >> 63 == 1);
        }
        let bytes = enc.finish();
        let bpb = bytes.len() as f64 * 8.0 / n as f64;
        assert!((0.95..1.1).contains(&bpb), "bits per bin {bpb}");
    }

    #[test]
    fn uvlc_roundtrip() {
        let values = [0u32, 1, 2, 3, 4, 5, 17, 100, 5000, 123_456];
        let mut enc = RangeEncoder::new();
        let mut ctxs = [Context::new(1), Context::new(2), Context::new(3)];
        let mut p = NullProbe;
        for &v in &values {
            encode_uvlc(&mut enc, &mut p, &mut ctxs, v);
        }
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctxs = [Context::new(1), Context::new(2), Context::new(3)];
        for &v in &values {
            assert_eq!(decode_uvlc(&mut dec, &mut p, &mut ctxs), v);
        }
    }

    #[test]
    fn cost_estimate_tracks_probability() {
        let mut ctx = Context::new(7);
        // Train towards zero-heavy.
        let mut enc = RangeEncoder::new();
        let mut p = NullProbe;
        for _ in 0..200 {
            enc.encode(&mut p, &mut ctx, false);
        }
        assert!(ctx.cost(false) < 128, "likely bin should cost < 0.5 bit");
        assert!(ctx.cost(true) > 512, "unlikely bin should cost > 2 bits");
    }

    #[test]
    fn entropy_coder_reports_branches() {
        let mut enc = RangeEncoder::new();
        let mut ctx = Context::new(9);
        let mut probe = CountingProbe::new();
        for i in 0..100 {
            enc.encode(&mut probe, &mut ctx, i % 2 == 0);
        }
        assert_eq!(probe.mix().branch, 100);
        assert_eq!(enc.bins(), 100);
    }

    #[test]
    fn truncated_stream_does_not_panic() {
        let mut enc = RangeEncoder::new();
        let mut ctx = Context::new(3);
        let mut p = NullProbe;
        for _ in 0..1000 {
            enc.encode(&mut p, &mut ctx, true);
        }
        let mut bytes = enc.finish();
        bytes.truncate(bytes.len() / 2);
        let mut dec = RangeDecoder::new(&bytes);
        let mut ctx = Context::new(3);
        // Decoding past the end returns arbitrary-but-safe bins.
        for _ in 0..2000 {
            let _ = dec.decode(&mut p, &mut ctx);
        }
    }
}
