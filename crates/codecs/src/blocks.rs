//! Block geometry: partition shapes and the recursive partition grammar.
//!
//! The paper's core explanation for AV1's runtime is this module's
//! subject: "AV1 allows 10 different ways to partition each block when
//! encoding, whereas its predecessor VP9 only allows for 4". We implement
//! the full AV1 shape set and the VP9/H.26x subsets; the encoder's
//! mode-decision loop iterates whatever set its [`crate::codecs::ToolSet`]
//! grants it, which is precisely where the instruction-count gap between
//! the codec models comes from.

/// One of the AV1 partition shapes (VP9 uses the first four).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
#[repr(u8)]
pub enum PartitionShape {
    /// Code the block whole.
    None,
    /// Two horizontal halves.
    Horz,
    /// Two vertical halves.
    Vert,
    /// Four quadrants, each recursing.
    Split,
    /// Top half whole, bottom half split in two (T-shape).
    HorzA,
    /// Top half split in two, bottom half whole.
    HorzB,
    /// Left half whole, right half split in two.
    VertA,
    /// Left half split in two, right half whole.
    VertB,
    /// Four horizontal strips.
    Horz4,
    /// Four vertical strips.
    Vert4,
}

impl PartitionShape {
    /// The full AV1 set (10 shapes).
    pub const AV1: [PartitionShape; 10] = [
        PartitionShape::None,
        PartitionShape::Horz,
        PartitionShape::Vert,
        PartitionShape::Split,
        PartitionShape::HorzA,
        PartitionShape::HorzB,
        PartitionShape::VertA,
        PartitionShape::VertB,
        PartitionShape::Horz4,
        PartitionShape::Vert4,
    ];

    /// The VP9 set (4 shapes).
    pub const VP9: [PartitionShape; 4] =
        [PartitionShape::None, PartitionShape::Horz, PartitionShape::Vert, PartitionShape::Split];

    /// The H.26x-style set (quadtree only).
    pub const H26X: [PartitionShape; 2] = [PartitionShape::None, PartitionShape::Split];

    /// Symbol value used in the bitstream.
    #[inline]
    pub fn symbol(self) -> u8 {
        self as u8
    }

    /// Inverse of [`PartitionShape::symbol`].
    pub fn from_symbol(s: u8) -> Option<Self> {
        Self::AV1.get(s as usize).copied()
    }

    /// Whether the sub-blocks of this shape recurse further.
    ///
    /// Following AV1: only `Split` recurses; every other shape's
    /// sub-blocks are coding leaves.
    pub fn recurses(self) -> bool {
        self == PartitionShape::Split
    }

    /// The sub-rectangles this shape carves `(w, h)` into, as
    /// `(dx, dy, w, h)` offsets within the block.
    ///
    /// Returns an empty vector when the block cannot legally be divided
    /// this way (too small along the needed axis).
    pub fn sub_blocks(self, w: usize, h: usize, min: usize) -> Vec<(usize, usize, usize, usize)> {
        let h2 = h / 2;
        let w2 = w / 2;
        let h4 = h / 4;
        let w4 = w / 4;
        match self {
            PartitionShape::None => vec![(0, 0, w, h)],
            PartitionShape::Horz => {
                if h2 >= min {
                    vec![(0, 0, w, h2), (0, h2, w, h2)]
                } else {
                    vec![]
                }
            }
            PartitionShape::Vert => {
                if w2 >= min {
                    vec![(0, 0, w2, h), (w2, 0, w2, h)]
                } else {
                    vec![]
                }
            }
            PartitionShape::Split => {
                if w2 >= min && h2 >= min {
                    vec![(0, 0, w2, h2), (w2, 0, w2, h2), (0, h2, w2, h2), (w2, h2, w2, h2)]
                } else {
                    vec![]
                }
            }
            PartitionShape::HorzA => {
                if w2 >= min && h2 >= min {
                    vec![(0, 0, w, h2), (0, h2, w2, h2), (w2, h2, w2, h2)]
                } else {
                    vec![]
                }
            }
            PartitionShape::HorzB => {
                if w2 >= min && h2 >= min {
                    vec![(0, 0, w2, h2), (w2, 0, w2, h2), (0, h2, w, h2)]
                } else {
                    vec![]
                }
            }
            PartitionShape::VertA => {
                if w2 >= min && h2 >= min {
                    vec![(0, 0, w2, h), (w2, 0, w2, h2), (w2, h2, w2, h2)]
                } else {
                    vec![]
                }
            }
            PartitionShape::VertB => {
                if w2 >= min && h2 >= min {
                    vec![(0, 0, w2, h2), (0, h2, w2, h2), (w2, 0, w2, h)]
                } else {
                    vec![]
                }
            }
            PartitionShape::Horz4 => {
                if h4 >= min {
                    (0..4).map(|i| (0, i * h4, w, h4)).collect()
                } else {
                    vec![]
                }
            }
            PartitionShape::Vert4 => {
                if w4 >= min {
                    (0..4).map(|i| (i * w4, 0, w4, h)).collect()
                } else {
                    vec![]
                }
            }
        }
    }
}

/// A rectangle of luma samples within a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct BlockRect {
    /// Left edge.
    pub x: usize,
    /// Top edge.
    pub y: usize,
    /// Width in samples.
    pub w: usize,
    /// Height in samples.
    pub h: usize,
}

impl BlockRect {
    /// A rectangle at `(x, y)` of `w x h`.
    pub fn new(x: usize, y: usize, w: usize, h: usize) -> Self {
        BlockRect { x, y, w, h }
    }

    /// Sample count.
    pub fn area(&self) -> usize {
        self.w * self.h
    }

    /// Clips this rectangle to frame bounds, returning `None` if fully
    /// outside.
    pub fn clipped(&self, frame_w: usize, frame_h: usize) -> Option<BlockRect> {
        if self.x >= frame_w || self.y >= frame_h {
            return None;
        }
        Some(BlockRect {
            x: self.x,
            y: self.y,
            w: self.w.min(frame_w - self.x),
            h: self.h.min(frame_h - self.y),
        })
    }
}

/// VertA and friends cover the whole parent: sanity checks used by tests
/// and debug assertions.
pub fn shape_covers_block(shape: PartitionShape, w: usize, h: usize, min: usize) -> bool {
    let subs = shape.sub_blocks(w, h, min);
    if subs.is_empty() {
        return false;
    }
    let total: usize = subs.iter().map(|&(_, _, sw, sh)| sw * sh).sum();
    total == w * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn av1_has_ten_vp9_has_four() {
        assert_eq!(PartitionShape::AV1.len(), 10);
        assert_eq!(PartitionShape::VP9.len(), 4);
        assert_eq!(PartitionShape::H26X.len(), 2);
    }

    #[test]
    fn every_shape_tiles_the_parent_exactly() {
        for shape in PartitionShape::AV1 {
            assert!(shape_covers_block(shape, 32, 32, 4), "{shape:?} must tile 32x32");
            let subs = shape.sub_blocks(32, 32, 4);
            // No overlaps: total area check above plus bounds check here.
            for &(dx, dy, w, h) in &subs {
                assert!(dx + w <= 32 && dy + h <= 32, "{shape:?} sub-block out of parent");
            }
        }
    }

    #[test]
    fn small_blocks_reject_sub_minimum_shapes() {
        assert!(PartitionShape::Horz4.sub_blocks(16, 8, 4).is_empty(), "8/4 strips < min 4? no: 2");
        assert!(PartitionShape::Split.sub_blocks(4, 4, 4).is_empty());
        assert!(!PartitionShape::None.sub_blocks(4, 4, 4).is_empty());
    }

    #[test]
    fn symbols_roundtrip() {
        for shape in PartitionShape::AV1 {
            assert_eq!(PartitionShape::from_symbol(shape.symbol()), Some(shape));
        }
        assert_eq!(PartitionShape::from_symbol(10), None);
    }

    #[test]
    fn only_split_recurses() {
        for shape in PartitionShape::AV1 {
            assert_eq!(shape.recurses(), shape == PartitionShape::Split);
        }
    }

    #[test]
    fn rect_clipping() {
        let r = BlockRect::new(24, 24, 16, 16);
        let c = r.clipped(32, 40).unwrap();
        assert_eq!((c.w, c.h), (8, 16));
        assert!(BlockRect::new(40, 0, 8, 8).clipped(32, 32).is_none());
        assert_eq!(r.area(), 256);
    }
}
