//! Property-based tests of cache-simulator invariants.

use proptest::prelude::*;
use vstress_cache::{
    AccessKind, Cache, CacheConfig, Hierarchy, HierarchyConfig, ReplacementPolicy, ServiceLevel,
};

fn tiny_config(ways: usize, policy: ReplacementPolicy) -> CacheConfig {
    CacheConfig { size_bytes: 64 * ways * 8, ways, line_bytes: 64, policy }
}

fn small_hierarchy() -> Hierarchy {
    let mk = |size| CacheConfig {
        size_bytes: size,
        ways: 4,
        line_bytes: 64,
        policy: ReplacementPolicy::Lru,
    };
    Hierarchy::new(HierarchyConfig {
        l1i: mk(1 << 10),
        l1d: mk(1 << 10),
        l2: mk(4 << 10),
        llc: mk(16 << 10),
        lat_l1: 4,
        lat_l2: 12,
        lat_llc: 38,
        lat_mem: 170,
        l2_prefetch: vstress_cache::config::PrefetchKind::None,
    })
}

proptest! {
    /// Accounting identity: hits + misses == accesses, for any access
    /// stream under any policy.
    #[test]
    fn accounting_identity(
        lines in prop::collection::vec(0u64..256, 1..2000),
        policy in prop::sample::select(ReplacementPolicy::ALL.to_vec()),
        ways in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let mut c = Cache::new(tiny_config(ways, policy));
        for &l in &lines {
            c.access_line(l, AccessKind::Read);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, s.accesses);
        prop_assert_eq!(s.accesses, lines.len() as u64);
    }

    /// After any access, the line is resident (write-allocate, demand
    /// fill); an immediate re-access hits.
    #[test]
    fn access_installs_line(
        lines in prop::collection::vec(0u64..512, 1..500),
        policy in prop::sample::select(ReplacementPolicy::ALL.to_vec()),
    ) {
        let mut c = Cache::new(tiny_config(4, policy));
        for &l in &lines {
            c.access_line(l, AccessKind::Write);
            prop_assert!(c.contains_line(l));
            prop_assert!(c.access_line(l, AccessKind::Read).hit);
        }
    }

    /// The LRU cache matches a reference stack model exactly.
    #[test]
    fn lru_matches_reference_model(lines in prop::collection::vec(0u64..64, 1..1500)) {
        let ways = 4usize;
        let sets = 8usize;
        let mut c = Cache::new(CacheConfig {
            size_bytes: sets * ways * 64,
            ways,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        });
        // Reference: per-set vector ordered most-recent-first.
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets];
        for &l in &lines {
            let set = (l % sets as u64) as usize;
            let stack = &mut model[set];
            let model_hit = stack.contains(&l);
            let sim_hit = c.access_line(l, AccessKind::Read).hit;
            prop_assert_eq!(sim_hit, model_hit, "line {}", l);
            stack.retain(|&x| x != l);
            stack.insert(0, l);
            stack.truncate(ways);
        }
    }

    /// A working set no larger than capacity never misses after warm-up
    /// under LRU.
    #[test]
    fn capacity_guarantee_under_lru(base in 0u64..1000) {
        let mut c = Cache::new(tiny_config(4, ReplacementPolicy::Lru));
        let capacity_lines = 4 * 8; // ways * sets
        let lines: Vec<u64> = (0..capacity_lines as u64).map(|i| base + i).collect();
        for &l in &lines {
            c.access_line(l, AccessKind::Read);
        }
        c.reset_stats();
        for _ in 0..3 {
            for &l in &lines {
                c.access_line(l, AccessKind::Read);
            }
        }
        prop_assert_eq!(c.stats().misses, 0);
    }

    /// Hierarchy service levels are coherent: a repeated access is always
    /// serviced at least as close as the first one.
    #[test]
    fn repeat_accesses_move_up_the_hierarchy(addrs in prop::collection::vec(0u64..(1 << 16), 1..300)) {
        let mut h = small_hierarchy();
        for &a in &addrs {
            let first = h.load(a, 4);
            let second = h.load(a, 4);
            prop_assert!(second <= first, "addr {}: {:?} then {:?}", a, first, second);
            prop_assert_eq!(second, ServiceLevel::L1);
        }
    }

    /// Memory accesses equal LLC misses (demand path conservation).
    #[test]
    fn demand_flow_conservation(addrs in prop::collection::vec(0u64..(1 << 20), 1..2000)) {
        let mut h = small_hierarchy();
        for &a in &addrs {
            h.load(a, 4);
        }
        let s = h.stats();
        prop_assert_eq!(s.memory_accesses, s.llc.misses);
        // L2 demand accesses are exactly the L1 misses (no prefetcher).
        prop_assert_eq!(s.l2.accesses, s.l1d.misses);
    }
}
