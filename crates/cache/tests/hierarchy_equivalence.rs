//! Equivalence proof for the optimized cache hierarchy.
//!
//! The hierarchy fast paths (Cache-level MRU slot, the hierarchy's
//! same-L1D-line shortcut, mask set indexing, shift-based line splitting,
//! inline prefetch suggestion buffers) are only admissible if they are
//! invisible to the simulation: the simulated counters are experiment
//! results, so every access must produce the identical [`ServiceLevel`]
//! and leave the identical [`HierarchyStats`] as the kept pre-rewrite
//! reference (`vstress_cache::reference`). The property tests drive both
//! implementations over random access streams — line-straddling accesses,
//! dirty writebacks, instruction fetches interleaved with data traffic,
//! repeated same-line touches (the MRU path), every replacement policy
//! and every prefetcher — and assert equality after *every* operation, so
//! a divergence is caught at the first op that drifts, not in an
//! end-of-stream aggregate.

use proptest::prelude::*;
use vstress_cache::config::PrefetchKind;
use vstress_cache::{
    CacheConfig, Hierarchy, HierarchyConfig, ReferenceHierarchy, ReplacementPolicy,
};

/// Tiny hierarchy so short random streams exercise evictions and
/// writebacks at every level.
fn small_config(policy: ReplacementPolicy, prefetch: PrefetchKind) -> HierarchyConfig {
    let mk = |size| CacheConfig { size_bytes: size, ways: 4, line_bytes: 64, policy };
    HierarchyConfig {
        l1i: mk(1 << 10),
        l1d: mk(1 << 10),
        l2: mk(4 << 10),
        llc: mk(16 << 10),
        lat_l1: 4,
        lat_l2: 12,
        lat_llc: 38,
        lat_mem: 170,
        l2_prefetch: prefetch,
    }
}

proptest! {
    /// Random op streams leave live and reference hierarchies in
    /// observably identical states at every step.
    ///
    /// Op encoding: `kind % 3` selects load/store/fetch; `kind >= 3`
    /// repeats the op back-to-back, guaranteeing the same-line MRU fast
    /// path fires on every stream (not just when the generator happens to
    /// produce adjacent duplicates). The 24 KB address range over a 1 KB
    /// L1D keeps hit and miss paths both hot; access widths up to 129
    /// bytes straddle one or two 64-byte line boundaries.
    #[test]
    fn hierarchy_matches_reference(
        ops in prop::collection::vec((0u8..6, 0u64..(24u64 << 10), 1u32..130), 1..1200),
        policy in prop::sample::select(ReplacementPolicy::ALL.to_vec()),
        prefetch in prop::sample::select(vec![
            PrefetchKind::None,
            PrefetchKind::NextLine,
            PrefetchKind::Stride,
        ]),
    ) {
        let cfg = small_config(policy, prefetch);
        let mut live = Hierarchy::new(cfg);
        let mut reference = ReferenceHierarchy::new(cfg);
        for (i, &(kind, addr, bytes)) in ops.iter().enumerate() {
            // Excluding warm-up mid-stream must not desynchronize either.
            if i == ops.len() / 2 {
                live.reset_stats();
                reference.reset_stats();
            }
            let repeats = if kind >= 3 { 2 } else { 1 };
            for _ in 0..repeats {
                let (a, b) = match kind % 3 {
                    0 => (live.load(addr, bytes), reference.load(addr, bytes)),
                    1 => (live.store(addr, bytes), reference.store(addr, bytes)),
                    _ => (live.fetch(addr), reference.fetch(addr)),
                };
                prop_assert_eq!(a, b, "service level diverged at op {}", i);
                prop_assert_eq!(
                    live.stats(),
                    reference.stats(),
                    "stats diverged at op {}",
                    i
                );
            }
        }
    }

    /// Strided walks (the encoder's dominant data pattern, and the one
    /// that exercises the stride prefetcher's full suggestion list) stay
    /// equivalent for arbitrary pitches and walk lengths.
    #[test]
    fn strided_walks_match_reference(
        pitch in 1u64..2048,
        count in 1usize..600,
        bytes in 1u32..130,
        policy in prop::sample::select(ReplacementPolicy::ALL.to_vec()),
        prefetch in prop::sample::select(vec![
            PrefetchKind::None,
            PrefetchKind::NextLine,
            PrefetchKind::Stride,
        ]),
    ) {
        let cfg = small_config(policy, prefetch);
        let mut live = Hierarchy::new(cfg);
        let mut reference = ReferenceHierarchy::new(cfg);
        for i in 0..count {
            let addr = 0x10_0000 + i as u64 * pitch;
            prop_assert_eq!(
                live.load(addr, bytes),
                reference.load(addr, bytes),
                "load diverged at step {}",
                i
            );
            prop_assert_eq!(
                live.store(addr, bytes),
                reference.store(addr, bytes),
                "store diverged at step {}",
                i
            );
        }
        prop_assert_eq!(live.stats(), reference.stats());
    }
}
