//! The pre-rewrite cache hierarchy, kept verbatim as an equivalence
//! oracle and bench baseline.
//!
//! The live [`crate::Hierarchy`] carries fast paths (MRU same-line hits,
//! mask-based set indexing, allocation-free prefetch suggestions). The
//! correctness bar for every one of them is *exact* behavioural
//! equivalence: identical [`ServiceLevel`] per access and identical
//! [`HierarchyStats`] at every point in the stream, because the simulated
//! counters are experiment results, not implementation details. This
//! module preserves the straightforward pre-rewrite implementation —
//! linear way scans, `%`-based set indexing, `Vec`-allocating prefetch
//! suggestions — so property tests (`tests/hierarchy_equivalence.rs`) can
//! replay random access streams against both and assert equality, and so
//! `vstress-bench` can report the honest before/after throughput.
//!
//! Replacement-policy state is shared with the live implementation
//! (`crate::policy::SetState`), so the two can only diverge in the logic
//! this PR rewrote — which is exactly what the oracle must pin.

use crate::cache::{AccessKind, CacheStats, LookupResult};
use crate::config::{CacheConfig, HierarchyConfig, PrefetchKind};
use crate::hierarchy::{HierarchyStats, ServiceLevel};
use crate::policy::SetState;

/// Pre-rewrite single cache: linear way scan, modulo set indexing.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    tags: Vec<u64>,
    valid: Vec<bool>,
    dirty: Vec<bool>,
    sets: Vec<SetState>,
    set_count: usize,
    ways: usize,
    line_shift: u32,
    tick: u64,
    rng: u64,
    stats: CacheStats,
}

impl ReferenceCache {
    /// Builds a cache from its geometry (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let set_count = config.sets();
        let ways = config.ways;
        ReferenceCache {
            tags: vec![0; set_count * ways],
            valid: vec![false; set_count * ways],
            dirty: vec![false; set_count * ways],
            sets: (0..set_count).map(|_| SetState::new(config.policy, ways)).collect(),
            set_count,
            ways,
            line_shift: config.line_bytes.trailing_zeros(),
            tick: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            stats: CacheStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    /// Converts a byte address to this cache's line address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line % self.set_count as u64) as usize
    }

    #[inline]
    fn slot(&self, set: usize, way: usize) -> usize {
        set * self.ways + way
    }

    /// Looks up `line`; on miss, installs it (evicting as needed).
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> LookupResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.valid[s] && self.tags[s] == line {
                self.stats.hits += 1;
                self.sets[set].touch(way, self.ways, self.tick);
                if kind == AccessKind::Write {
                    self.dirty[s] = true;
                }
                return LookupResult { hit: true, writeback: None };
            }
        }
        self.stats.misses += 1;
        let writeback = self.fill_internal(line, kind == AccessKind::Write);
        LookupResult { hit: false, writeback }
    }

    /// Installs `line` without counting an access (prefetch / fill path).
    pub fn fill_line(&mut self, line: u64, dirty: bool) -> Option<u64> {
        self.tick += 1;
        let set = self.set_of(line);
        for way in 0..self.ways {
            let s = self.slot(set, way);
            if self.valid[s] && self.tags[s] == line {
                if dirty {
                    self.dirty[s] = true;
                }
                return None;
            }
        }
        self.stats.prefetch_fills += 1;
        self.fill_internal(line, dirty)
    }

    fn fill_internal(&mut self, line: u64, dirty: bool) -> Option<u64> {
        let set = self.set_of(line);
        let mut victim = None;
        for way in 0..self.ways {
            if !self.valid[self.slot(set, way)] {
                victim = Some(way);
                break;
            }
        }
        let way = victim.unwrap_or_else(|| self.sets[set].victim(self.ways, &mut self.rng));
        let s = self.slot(set, way);
        let evicted = if self.valid[s] && self.dirty[s] {
            self.stats.writebacks += 1;
            Some(self.tags[s])
        } else {
            None
        };
        self.tags[s] = line;
        self.valid[s] = true;
        self.dirty[s] = dirty;
        self.sets[set].touch(way, self.ways, self.tick);
        evicted
    }

    /// Whether `line` is currently resident (no state change).
    pub fn contains_line(&self, line: u64) -> bool {
        let set = self.set_of(line);
        (0..self.ways).any(|w| {
            let s = self.slot(set, w);
            self.valid[s] && self.tags[s] == line
        })
    }
}

/// Pre-rewrite next-line prefetcher (behaviour identical to the live one;
/// kept so the oracle is self-contained).
#[derive(Debug, Clone)]
struct ReferenceNextLine {
    recent: [u64; 8],
    cursor: usize,
}

impl ReferenceNextLine {
    fn new() -> Self {
        ReferenceNextLine { recent: [u64::MAX; 8], cursor: 0 }
    }

    fn on_miss(&mut self, line: u64) -> Option<u64> {
        let candidate = line + 1;
        if self.recent.contains(&candidate) {
            return None;
        }
        self.recent[self.cursor] = candidate;
        self.cursor = (self.cursor + 1) % self.recent.len();
        Some(candidate)
    }
}

/// Pre-rewrite stride prefetcher: allocates a `Vec<u64>` per demand miss.
#[derive(Debug, Clone)]
struct ReferenceStride {
    last_line: u64,
    stride: i64,
    confidence: u8,
    degree: u32,
}

impl ReferenceStride {
    fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        ReferenceStride { last_line: u64::MAX, stride: 0, confidence: 0, degree }
    }

    fn on_miss(&mut self, line: u64) -> Vec<u64> {
        let mut out = Vec::new();
        if self.last_line != u64::MAX {
            let delta = line as i64 - self.last_line as i64;
            if delta != 0 && delta == self.stride {
                self.confidence = (self.confidence + 1).min(3);
            } else {
                self.stride = delta;
                self.confidence = 0;
            }
            if self.confidence >= 2 && self.stride != 0 {
                for k in 1..=self.degree as i64 {
                    let target = line as i64 + self.stride * k;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            }
        }
        self.last_line = line;
        out
    }
}

#[derive(Debug)]
enum ReferencePrefetcher {
    None,
    NextLine(ReferenceNextLine),
    Stride(ReferenceStride),
}

/// Pre-rewrite three-level hierarchy: division-based line splitting, no
/// MRU fast path, heap-allocating prefetch suggestions.
#[derive(Debug)]
pub struct ReferenceHierarchy {
    l1i: ReferenceCache,
    l1d: ReferenceCache,
    l2: ReferenceCache,
    llc: ReferenceCache,
    prefetcher: ReferencePrefetcher,
    config: HierarchyConfig,
    memory_accesses: u64,
    memory_writebacks: u64,
}

impl ReferenceHierarchy {
    /// Builds a hierarchy from its configuration (see
    /// [`HierarchyConfig::validate`]).
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate();
        ReferenceHierarchy {
            l1i: ReferenceCache::new(config.l1i),
            l1d: ReferenceCache::new(config.l1d),
            l2: ReferenceCache::new(config.l2),
            llc: ReferenceCache::new(config.llc),
            prefetcher: match config.l2_prefetch {
                PrefetchKind::None => ReferencePrefetcher::None,
                PrefetchKind::NextLine => ReferencePrefetcher::NextLine(ReferenceNextLine::new()),
                PrefetchKind::Stride => ReferencePrefetcher::Stride(ReferenceStride::new(2)),
            },
            config,
            memory_accesses: 0,
            memory_writebacks: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Load of `bytes` bytes at byte address `addr`.
    pub fn load(&mut self, addr: u64, bytes: u32) -> ServiceLevel {
        self.data_access(addr, bytes, AccessKind::Read)
    }

    /// Store of `bytes` bytes at byte address `addr`.
    pub fn store(&mut self, addr: u64, bytes: u32) -> ServiceLevel {
        self.data_access(addr, bytes, AccessKind::Write)
    }

    /// Instruction fetch of one line-aligned block at `addr`.
    pub fn fetch(&mut self, addr: u64) -> ServiceLevel {
        let line = self.l1i.line_of(addr);
        if self.l1i.access_line(line, AccessKind::Read).hit {
            return ServiceLevel::L1;
        }
        self.refill_from_l2(line, AccessKind::Read)
    }

    /// Per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            memory_accesses: self.memory_accesses,
            memory_writebacks: self.memory_writebacks,
        }
    }

    /// Resets statistics, keeping contents.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.memory_accesses = 0;
        self.memory_writebacks = 0;
    }

    fn data_access(&mut self, addr: u64, bytes: u32, kind: AccessKind) -> ServiceLevel {
        let line_bytes = self.l1d.line_bytes() as u64;
        let first = addr / line_bytes;
        let last = (addr + bytes.max(1) as u64 - 1) / line_bytes;
        let mut worst = ServiceLevel::L1;
        for line in first..=last {
            let level = self.data_access_line(line, kind);
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    fn data_access_line(&mut self, line: u64, kind: AccessKind) -> ServiceLevel {
        let l1 = self.l1d.access_line(line, kind);
        if l1.hit {
            return ServiceLevel::L1;
        }
        if let Some(victim) = l1.writeback {
            if let Some(l2_victim) = self.l2.fill_line(victim, true) {
                if self.llc.fill_line(l2_victim, true).is_some() {
                    self.memory_writebacks += 1;
                }
            }
        }
        self.refill_from_l2(line, kind)
    }

    fn refill_from_l2(&mut self, line: u64, _kind: AccessKind) -> ServiceLevel {
        let l2_result = self.l2.access_line(line, AccessKind::Read);
        if let Some(victim) = l2_result.writeback {
            if let Some(llc_victim) = self.llc.fill_line(victim, true) {
                let _ = llc_victim;
                self.memory_writebacks += 1;
            }
        }
        if l2_result.hit {
            return ServiceLevel::L2;
        }
        let llc_result = self.llc.access_line(line, AccessKind::Read);
        if let Some(victim) = llc_result.writeback {
            let _ = victim;
            self.memory_writebacks += 1;
        }
        for pf_line in self.prefetch_suggestions(line) {
            self.install_prefetch(pf_line);
        }
        if llc_result.hit {
            ServiceLevel::Llc
        } else {
            self.memory_accesses += 1;
            ServiceLevel::Memory
        }
    }

    fn prefetch_suggestions(&mut self, miss_line: u64) -> Vec<u64> {
        match &mut self.prefetcher {
            ReferencePrefetcher::None => Vec::new(),
            ReferencePrefetcher::NextLine(p) => p.on_miss(miss_line).into_iter().collect(),
            ReferencePrefetcher::Stride(p) => p.on_miss(miss_line),
        }
    }

    fn install_prefetch(&mut self, line: u64) {
        if let Some(victim) = self.l2.fill_line(line, false) {
            if self.llc.fill_line(victim, true).is_some() {
                self.memory_writebacks += 1;
            }
        }
        let _ = self.llc.fill_line(line, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;

    fn small() -> ReferenceHierarchy {
        let mk = |size| CacheConfig {
            size_bytes: size,
            ways: 4,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        };
        ReferenceHierarchy::new(HierarchyConfig {
            l1i: mk(1 << 10),
            l1d: mk(1 << 10),
            l2: mk(4 << 10),
            llc: mk(16 << 10),
            lat_l1: 4,
            lat_l2: 12,
            lat_llc: 38,
            lat_mem: 170,
            l2_prefetch: PrefetchKind::None,
        })
    }

    #[test]
    fn reference_behaves_like_a_cache() {
        let mut h = small();
        assert_eq!(h.load(0x1000, 4), ServiceLevel::Memory);
        assert_eq!(h.load(0x1000, 4), ServiceLevel::L1);
        assert_eq!(h.fetch(0x4000_0000), ServiceLevel::Memory);
        assert_eq!(h.fetch(0x4000_0000), ServiceLevel::L1);
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1i.accesses, 2);
    }
}
