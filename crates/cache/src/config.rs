//! Cache and hierarchy geometry.

use crate::policy::ReplacementPolicy;

/// Hardware prefetcher attached to the L2 (the paper's Broadwell has both
/// an adjacent-line and a streamer/stride prefetcher; the ablation benches
/// compare them).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub enum PrefetchKind {
    /// No prefetching.
    #[default]
    None,
    /// Adjacent-line prefetch on every demand miss.
    NextLine,
    /// Constant-stride streamer (degree 2).
    Stride,
}

/// Geometry of a single cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes; must be `ways * line_bytes * 2^k`.
    pub size_bytes: usize,
    /// Associativity.
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
    /// Replacement policy.
    pub policy: ReplacementPolicy,
}

impl CacheConfig {
    /// Creates a config with LRU replacement.
    pub fn lru(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        CacheConfig { size_bytes, ways, line_bytes, policy: ReplacementPolicy::Lru }
    }

    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (see [`CacheConfig::validate`]).
    pub fn sets(&self) -> usize {
        self.validate();
        self.size_bytes / (self.ways * self.line_bytes)
    }

    /// Validates the geometry.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero, the line size is not a power of two, or
    /// capacity is not an integer power-of-two number of sets.
    pub fn validate(&self) {
        assert!(self.size_bytes > 0 && self.ways > 0 && self.line_bytes > 0);
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert_eq!(
            self.size_bytes % (self.ways * self.line_bytes),
            0,
            "capacity must be a whole number of sets"
        );
        let sets = self.size_bytes / (self.ways * self.line_bytes);
        assert!(sets.is_power_of_two(), "set count must be a power of two, got {sets}");
    }
}

/// Geometry of a full L1I/L1D/L2/LLC hierarchy plus load-to-use latencies
/// in cycles (used by the pipeline model to charge miss penalties).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyConfig {
    /// Instruction cache.
    pub l1i: CacheConfig,
    /// Data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Shared last-level cache.
    pub llc: CacheConfig,
    /// L1 hit latency (cycles).
    pub lat_l1: u32,
    /// L2 hit latency.
    pub lat_l2: u32,
    /// LLC hit latency.
    pub lat_llc: u32,
    /// Memory latency.
    pub lat_mem: u32,
    /// Prefetcher attached to the L2.
    pub l2_prefetch: PrefetchKind,
}

impl HierarchyConfig {
    /// The paper's evaluation machine: Xeon E5-2650 v4 (Broadwell).
    ///
    /// 32 KB 8-way L1I and L1D, 256 KB 8-way L2, 30 MB 20-way shared LLC,
    /// 64 B lines throughout.
    pub fn broadwell() -> Self {
        HierarchyConfig {
            l1i: CacheConfig::lru(32 << 10, 8, 64),
            l1d: CacheConfig::lru(32 << 10, 8, 64),
            l2: CacheConfig::lru(256 << 10, 8, 64),
            // 30 MB is not a power-of-two set count at 20 ways; model the
            // nearest simulable geometry: 32 MB, 16-way.
            llc: CacheConfig::lru(32 << 20, 16, 64),
            lat_l1: 4,
            lat_l2: 12,
            lat_llc: 38,
            lat_mem: 170,
            l2_prefetch: PrefetchKind::None,
        }
    }

    /// Broadwell geometry with the data capacities scaled down by
    /// `divisor` for the reduced-pixel fidelity mode: a clip scaled by
    /// 1/k² in pixels meets data caches scaled by the same factor, which
    /// preserves the capacity-pressure relationships that drive the
    /// paper's Fig. 6 trends (frames larger than L1D/L2, references
    /// fitting in the LLC). Floors keep each level functional: the L1D
    /// floor (8 KB) reflects that block-level working sets (motion-search
    /// windows, transform tiles, scratch) do not shrink with the frame;
    /// the L1I keeps its full size because code footprints do not shrink
    /// at all.
    ///
    /// # Panics
    ///
    /// Panics unless `divisor` is a power of two between 1 and 64.
    pub fn broadwell_scaled(divisor: usize) -> Self {
        assert!(divisor.is_power_of_two() && divisor <= 64, "divisor must be 2^k <= 64");
        let mut c = Self::broadwell();
        let shrink = |cfg: &mut CacheConfig, floor: usize| {
            cfg.size_bytes =
                (cfg.size_bytes / divisor).max(floor).max(cfg.ways * cfg.line_bytes * 2);
        };
        shrink(&mut c.l1d, 8 << 10);
        shrink(&mut c.l2, 32 << 10);
        shrink(&mut c.llc, 1 << 20);
        c
    }

    /// Validates every level.
    ///
    /// # Panics
    ///
    /// Panics if any level's geometry is inconsistent or line sizes differ.
    pub fn validate(&self) {
        self.l1i.validate();
        self.l1d.validate();
        self.l2.validate();
        self.llc.validate();
        assert!(
            self.l1i.line_bytes == self.l1d.line_bytes
                && self.l1d.line_bytes == self.l2.line_bytes
                && self.l2.line_bytes == self.llc.line_bytes,
            "hierarchy requires a uniform line size"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadwell_is_valid() {
        HierarchyConfig::broadwell().validate();
    }

    #[test]
    fn sets_computation() {
        let c = CacheConfig::lru(32 << 10, 8, 64);
        assert_eq!(c.sets(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_line_size_panics() {
        CacheConfig::lru(32 << 10, 8, 48).validate();
    }

    #[test]
    #[should_panic(expected = "set count")]
    fn non_pow2_sets_panic() {
        CacheConfig::lru(30 << 20, 20, 64).validate();
    }

    #[test]
    fn scaled_geometry_remains_valid() {
        for d in [1usize, 2, 4, 8, 16, 32, 64] {
            HierarchyConfig::broadwell_scaled(d).validate();
        }
    }

    #[test]
    fn scaling_shrinks_but_keeps_floor() {
        let c = HierarchyConfig::broadwell_scaled(64);
        assert!(c.l1d.size_bytes >= c.l1d.ways * c.l1d.line_bytes * 2);
        assert!(c.llc.size_bytes < (32 << 20));
    }
}
