//! Simple hardware prefetchers.

/// A fixed-capacity list of prefetch suggestions.
///
/// Prefetch suggestions are produced on every L2 demand miss — the
/// hottest path of the whole simulation — so they must not touch the
/// heap. Real prefetch engines have a small fixed issue width anyway;
/// [`PrefetchList::CAP`] bounds the degree a prefetcher may be built
/// with.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchList {
    lines: [u64; PrefetchList::CAP],
    len: u8,
}

impl PrefetchList {
    /// Maximum number of suggestions one miss may produce.
    pub const CAP: usize = 8;

    /// Appends a suggestion.
    ///
    /// # Panics
    ///
    /// Panics if the list is full (prefetcher degrees are validated
    /// against [`PrefetchList::CAP`] at construction).
    #[inline]
    pub fn push(&mut self, line: u64) {
        self.lines[self.len as usize] = line;
        self.len += 1;
    }

    /// The suggested lines, in issue order.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.lines[..self.len as usize]
    }

    /// Number of suggestions.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether no lines were suggested.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A next-line (sequential) prefetcher with a small stream filter.
///
/// On each demand miss it suggests the following line; a tiny history of
/// recent triggers suppresses duplicate suggestions. This mirrors the
/// L2 adjacent-line prefetcher present on the paper's Broadwell machine
/// and drives the "prefetcher on/off" ablation bench.
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    recent: [u64; 8],
    cursor: usize,
}

impl NextLinePrefetcher {
    /// A prefetcher with an empty filter.
    pub fn new() -> Self {
        NextLinePrefetcher { recent: [u64::MAX; 8], cursor: 0 }
    }

    /// Called on a demand miss for `line`; returns a line to prefetch, or
    /// `None` if the suggestion was recently issued.
    pub fn on_miss(&mut self, line: u64) -> Option<u64> {
        let candidate = line + 1;
        if self.recent.contains(&candidate) {
            return None;
        }
        self.recent[self.cursor] = candidate;
        self.cursor = (self.cursor + 1) % self.recent.len();
        Some(candidate)
    }
}

impl Default for NextLinePrefetcher {
    fn default() -> Self {
        Self::new()
    }
}

/// A PC-less stride prefetcher: detects constant strides in the miss
/// stream and prefetches ahead — the other prefetcher family present on
/// the paper's Broadwell machine (the L2 streamer).
///
/// Encoders produce strong stride patterns (row walks over planes with a
/// fixed pitch), which a next-line prefetcher misses whenever the pitch
/// exceeds one line.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    last_line: u64,
    stride: i64,
    confidence: u8,
    /// Lines to run ahead once the stride is confirmed.
    degree: u32,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher issuing `degree` lines ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or exceeds [`PrefetchList::CAP`].
    pub fn new(degree: u32) -> Self {
        assert!(degree > 0, "degree must be positive");
        assert!(degree as usize <= PrefetchList::CAP, "degree exceeds the inline suggestion list");
        StridePrefetcher { last_line: u64::MAX, stride: 0, confidence: 0, degree }
    }

    /// Observes a demand miss and returns lines to prefetch (empty until
    /// the stride is confirmed by two consecutive matches).
    pub fn on_miss(&mut self, line: u64) -> PrefetchList {
        let mut out = PrefetchList::default();
        if self.last_line != u64::MAX {
            let delta = line as i64 - self.last_line as i64;
            if delta != 0 && delta == self.stride {
                self.confidence = (self.confidence + 1).min(3);
            } else {
                self.stride = delta;
                self.confidence = 0;
            }
            if self.confidence >= 2 && self.stride != 0 {
                for k in 1..=self.degree as i64 {
                    let target = line as i64 + self.stride * k;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            }
        }
        self.last_line = line;
        out
    }
}

impl Default for StridePrefetcher {
    fn default() -> Self {
        Self::new(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suggests_next_line_once() {
        let mut p = NextLinePrefetcher::new();
        assert_eq!(p.on_miss(10), Some(11));
        assert_eq!(p.on_miss(10), None, "duplicate suppressed");
        assert_eq!(p.on_miss(11), Some(12));
    }

    #[test]
    fn stride_detects_constant_pitch() {
        let mut p = StridePrefetcher::new(2);
        // Stride of 5 lines (a plane pitch larger than one line).
        assert!(p.on_miss(100).is_empty());
        assert!(p.on_miss(105).is_empty()); // stride learned, low confidence
        assert!(p.on_miss(110).is_empty()); // confidence 1
        let pf = p.on_miss(115); // confidence 2: fire
        assert_eq!(pf.as_slice(), &[120, 125]);
    }

    #[test]
    fn stride_resets_on_pattern_break() {
        let mut p = StridePrefetcher::new(1);
        for l in [10u64, 20, 30, 40] {
            p.on_miss(l);
        }
        assert_eq!(p.on_miss(50).as_slice(), &[60]);
        // Break the pattern: must stop firing until retrained.
        assert!(p.on_miss(1000).is_empty());
        assert!(p.on_miss(1001).is_empty());
        assert!(p.on_miss(1002).is_empty());
        assert_eq!(p.on_miss(1003).as_slice(), &[1004]);
    }

    #[test]
    fn negative_strides_work() {
        let mut p = StridePrefetcher::new(1);
        for l in [100u64, 90, 80, 70] {
            p.on_miss(l);
        }
        assert_eq!(p.on_miss(60).as_slice(), &[50]);
    }

    #[test]
    fn prefetch_list_is_bounded() {
        let mut l = PrefetchList::default();
        assert!(l.is_empty());
        for i in 0..PrefetchList::CAP as u64 {
            l.push(i);
        }
        assert_eq!(l.len(), PrefetchList::CAP);
        assert_eq!(l.as_slice()[0], 0);
    }

    #[test]
    #[should_panic(expected = "inline suggestion list")]
    fn oversized_degree_is_rejected() {
        StridePrefetcher::new(PrefetchList::CAP as u32 + 1);
    }

    #[test]
    fn filter_is_finite() {
        let mut p = NextLinePrefetcher::new();
        // Nine distinct triggers overflow the 8-entry filter, displacing
        // the first suggestion (line 1).
        for l in 0..9 {
            assert!(p.on_miss(l * 100).is_some());
        }
        assert_eq!(p.on_miss(0), Some(1));
    }
}
