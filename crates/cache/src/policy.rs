//! Replacement policies.

/// Victim-selection policy within a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used (per-way timestamps).
    Lru,
    /// Tree pseudo-LRU (the common hardware approximation).
    TreePlru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random (deterministic xorshift).
    Random,
}

impl ReplacementPolicy {
    /// All policies, for ablation sweeps.
    pub const ALL: [ReplacementPolicy; 4] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::TreePlru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::TreePlru => "plru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Random => "random",
        }
    }
}

/// Per-set replacement state, sized for `ways`.
#[derive(Debug, Clone)]
pub(crate) enum SetState {
    /// Timestamp per way.
    Lru { stamps: Vec<u64> },
    /// One bit per internal node of a complete binary tree over the ways.
    TreePlru { bits: Vec<bool> },
    /// Next victim pointer.
    Fifo { next: usize },
    /// Shared xorshift lives in the cache; sets are stateless.
    Random,
}

impl SetState {
    pub(crate) fn new(policy: ReplacementPolicy, ways: usize) -> Self {
        match policy {
            ReplacementPolicy::Lru => SetState::Lru { stamps: vec![0; ways] },
            ReplacementPolicy::TreePlru => {
                assert!(ways.is_power_of_two(), "tree PLRU requires power-of-two ways");
                SetState::TreePlru { bits: vec![false; ways.max(2) - 1] }
            }
            ReplacementPolicy::Fifo => SetState::Fifo { next: 0 },
            ReplacementPolicy::Random => SetState::Random,
        }
    }

    /// Records a touch of `way` at logical time `tick`.
    pub(crate) fn touch(&mut self, way: usize, ways: usize, tick: u64) {
        match self {
            SetState::Lru { stamps } => stamps[way] = tick,
            SetState::TreePlru { bits } => {
                // Walk root->leaf; set each node to point AWAY from `way`.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let right = way >= mid;
                    // bit=true means the next victim is on the left; a touch
                    // on the right half must steer the victim left.
                    bits[node] = right;
                    node = 2 * node + if right { 2 } else { 1 };
                    if right {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                }
            }
            SetState::Fifo { .. } | SetState::Random => {}
        }
    }

    /// Chooses a victim way; `rng` is the cache-wide xorshift state.
    pub(crate) fn victim(&mut self, ways: usize, rng: &mut u64) -> usize {
        match self {
            SetState::Lru { stamps } => {
                let mut best = 0;
                for w in 1..ways {
                    if stamps[w] < stamps[best] {
                        best = w;
                    }
                }
                best
            }
            SetState::TreePlru { bits } => {
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let go_left = bits[node];
                    node = 2 * node + if go_left { 1 } else { 2 };
                    if go_left {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
                lo
            }
            SetState::Fifo { next } => {
                let v = *next;
                *next = (*next + 1) % ways;
                v
            }
            SetState::Random => {
                *rng ^= *rng << 13;
                *rng ^= *rng >> 7;
                *rng ^= *rng << 17;
                (*rng % ways as u64) as usize
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = SetState::new(ReplacementPolicy::Lru, 4);
        let mut rng = 1u64;
        for (t, w) in [(1u64, 0usize), (2, 1), (3, 2), (4, 3), (5, 0)] {
            s.touch(w, 4, t);
        }
        // Way 1 is now oldest (touched at t=2).
        assert_eq!(s.victim(4, &mut rng), 1);
    }

    #[test]
    fn fifo_cycles() {
        let mut s = SetState::new(ReplacementPolicy::Fifo, 3);
        let mut rng = 1u64;
        assert_eq!(s.victim(3, &mut rng), 0);
        assert_eq!(s.victim(3, &mut rng), 1);
        assert_eq!(s.victim(3, &mut rng), 2);
        assert_eq!(s.victim(3, &mut rng), 0);
    }

    #[test]
    fn plru_never_picks_most_recent() {
        let mut s = SetState::new(ReplacementPolicy::TreePlru, 8);
        let mut rng = 1u64;
        for round in 0..100 {
            let touched = round % 8;
            s.touch(touched, 8, round as u64);
            let v = s.victim(8, &mut rng);
            assert_ne!(v, touched, "PLRU must steer away from the last touch");
        }
    }

    #[test]
    fn random_stays_in_range() {
        let mut s = SetState::new(ReplacementPolicy::Random, 6);
        let mut rng = 0xdead_beef;
        for _ in 0..1000 {
            assert!(s.victim(6, &mut rng) < 6);
        }
    }

    #[test]
    fn labels_unique() {
        let mut l: Vec<_> = ReplacementPolicy::ALL.iter().map(|p| p.label()).collect();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 4);
    }
}
