//! A single set-associative cache.

use crate::config::CacheConfig;
use crate::policy::{ReplacementPolicy, SetState};

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read (load or instruction fetch).
    Read,
    /// Write (store).
    Write,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CacheStats {
    /// Total lookups (excluding fills from below).
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions (write-backs issued to the next level).
    pub writebacks: u64,
    /// Prefetch fills that were later referenced (issued by a prefetcher).
    pub prefetch_fills: u64,
}

impl CacheStats {
    /// Misses per kilo-instruction given a retired-instruction count.
    pub fn mpki(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.misses as f64 / instructions as f64 * 1000.0
        }
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupResult {
    /// Whether the line was present.
    pub hit: bool,
    /// Line address of a dirty line evicted to make room, if any.
    pub writeback: Option<u64>,
}

/// One way of one set: the resident tag plus its packed state, kept
/// adjacent so a lookup touches one cache line instead of three arrays.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Full line address of the resident line (meaningless while invalid).
    tag: u64,
    /// Bit 0 = valid, bit 1 = dirty, bits 2.. = the LRU timestamp
    /// (maintained only under [`ReplacementPolicy::Lru`]).
    meta: u64,
}

const VALID: u64 = 1;
const DIRTY: u64 = 2;
/// Shift that positions the LRU stamp above the valid/dirty bits.
const STAMP_SHIFT: u32 = 2;

/// A set-associative cache over line addresses.
///
/// The cache operates on *line* addresses (`byte_addr >> line_shift`);
/// splitting byte accesses into line touches is the hierarchy's job.
///
/// ```
/// use vstress_cache::{AccessKind, Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::lru(32 << 10, 8, 64));
/// assert!(!c.access_line(42, AccessKind::Read).hit); // cold miss
/// assert!(c.access_line(42, AccessKind::Read).hit);  // now resident
/// assert_eq!(c.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    /// `set_count * ways` slots, set-major (way 0..ways of set 0 first).
    slots: Vec<Slot>,
    /// Per-set replacement state for the non-LRU policies. Empty under
    /// LRU, whose timestamps live directly in [`Slot::meta`].
    sets: Vec<SetState>,
    /// Whether the stamp-in-slot LRU fast path is active.
    lru: bool,
    /// `set_count - 1`; set counts are validated powers of two, so masking
    /// is exactly the old `line % set_count`.
    set_mask: u64,
    ways: usize,
    line_shift: u32,
    tick: u64,
    rng: u64,
    /// Flat slot / set / way of the most recently hit or filled line.
    /// `access_line` checks this slot before scanning the set: consecutive
    /// touches of the same line (the dominant pattern in probe streams)
    /// skip the way scan while performing the identical state updates.
    mru_slot: usize,
    mru_set: usize,
    mru_way: usize,
    /// Per-set most-recent way, a search accelerator for the scan path:
    /// probe streams alternate between a few lines in *different* sets
    /// (source vs. reference planes), which defeats the single MRU slot
    /// while each set's hot way stays stable. A stale hint is harmless —
    /// the tag comparison rejects it and the full scan runs; a matching
    /// hint is the unique matching way, so taking it performs exactly
    /// the updates the scan would have.
    way_hints: Vec<u8>,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from its geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid (see [`CacheConfig::validate`]).
    pub fn new(config: CacheConfig) -> Self {
        config.validate();
        let set_count = config.sets();
        let ways = config.ways;
        let lru = config.policy == ReplacementPolicy::Lru;
        Cache {
            slots: vec![Slot { tag: 0, meta: 0 }; set_count * ways],
            sets: if lru {
                Vec::new()
            } else {
                (0..set_count).map(|_| SetState::new(config.policy, ways)).collect()
            },
            lru,
            set_mask: set_count as u64 - 1,
            ways,
            line_shift: config.line_bytes.trailing_zeros(),
            tick: 0,
            rng: 0x9e37_79b9_7f4a_7c15,
            // Slot 0 starts invalid, so the MRU fast path cannot fire
            // before the first fill.
            mru_slot: 0,
            mru_set: 0,
            mru_way: 0,
            way_hints: vec![0; set_count],
            stats: CacheStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        1 << self.line_shift
    }

    /// Converts a byte address to this cache's line address.
    #[inline]
    pub fn line_of(&self, byte_addr: u64) -> u64 {
        byte_addr >> self.line_shift
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved — used to exclude warmup).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Records a touch of `slot` (= `set * ways + way`) at the current
    /// tick: a stamp write for LRU, the policy state machine otherwise.
    #[inline]
    fn touch(&mut self, slot: usize, set: usize, way: usize) {
        if self.lru {
            let m = &mut self.slots[slot].meta;
            *m = (self.tick << STAMP_SHIFT) | (*m & (VALID | DIRTY));
        } else {
            self.sets[set].touch(way, self.ways, self.tick);
        }
    }

    /// Looks up `line`; on miss, installs it (evicting as needed).
    ///
    /// Returns whether it hit and any dirty line evicted.
    #[inline]
    pub fn access_line(&mut self, line: u64, kind: AccessKind) -> LookupResult {
        // MRU fast path. A valid slot whose tag matches can only belong to
        // `line`'s own set (tags are full line addresses and lines install
        // only in their home set), so this is a true hit; every state
        // update matches the scan path below exactly.
        let mru = self.slots[self.mru_slot];
        if mru.meta & VALID != 0 && mru.tag == line {
            self.tick += 1;
            self.stats.accesses += 1;
            self.stats.hits += 1;
            self.touch(self.mru_slot, self.mru_set, self.mru_way);
            if kind == AccessKind::Write {
                self.slots[self.mru_slot].meta |= DIRTY;
            }
            return LookupResult { hit: true, writeback: None };
        }
        self.access_line_scan(line, kind)
    }

    /// [`Cache::access_line`] minus the MRU probe: the full set scan with
    /// identical counting and state updates.
    ///
    /// The hierarchy calls this directly for L1D accesses that already
    /// failed its own last-line check — the cache's MRU slot always holds
    /// that same last line (every hit and every fill install the touched
    /// line as MRU), so the probe above cannot match and re-running it
    /// would be pure overhead. Calling this where the MRU probe *could*
    /// match is still correct, just slower: a scan hit on the MRU way
    /// performs the same updates and re-installs the same `mru_*` values.
    #[inline]
    pub(crate) fn access_line_scan(&mut self, line: u64, kind: AccessKind) -> LookupResult {
        self.tick += 1;
        self.stats.accesses += 1;
        let set = self.set_of(line);
        let base = set * self.ways;
        if self.lru {
            // LRU fast scan: probe the set's hinted way first, then
            // iterate the set as a slice (one bounds check); either hit
            // folds the stamp update and dirty bit into a single meta
            // write — the value stored is exactly what `touch` followed
            // by the `|= DIRTY` write would have produced.
            let stamp = self.tick << STAMP_SHIFT;
            let dirty = if kind == AccessKind::Write { DIRTY } else { 0 };
            let hint = usize::from(self.way_hints[set]);
            let hs = base + hint;
            let hinted = self.slots[hs];
            if hinted.meta & VALID != 0 && hinted.tag == line {
                self.slots[hs].meta = stamp | (hinted.meta & (VALID | DIRTY)) | dirty;
                self.stats.hits += 1;
                self.mru_slot = hs;
                self.mru_set = set;
                self.mru_way = hint;
                return LookupResult { hit: true, writeback: None };
            }
            for (way, slot) in self.slots[base..base + self.ways].iter_mut().enumerate() {
                if slot.meta & VALID != 0 && slot.tag == line {
                    slot.meta = stamp | (slot.meta & (VALID | DIRTY)) | dirty;
                    self.stats.hits += 1;
                    self.mru_slot = base + way;
                    self.mru_set = set;
                    self.mru_way = way;
                    self.way_hints[set] = way as u8;
                    return LookupResult { hit: true, writeback: None };
                }
            }
        } else {
            for way in 0..self.ways {
                let s = base + way;
                let slot = self.slots[s];
                if slot.meta & VALID != 0 && slot.tag == line {
                    self.stats.hits += 1;
                    self.touch(s, set, way);
                    if kind == AccessKind::Write {
                        self.slots[s].meta |= DIRTY;
                    }
                    self.mru_slot = s;
                    self.mru_set = set;
                    self.mru_way = way;
                    self.way_hints[set] = way as u8;
                    return LookupResult { hit: true, writeback: None };
                }
            }
        }
        self.stats.misses += 1;
        let writeback = self.fill_internal(line, kind == AccessKind::Write);
        LookupResult { hit: false, writeback }
    }

    /// The state updates of a hit on the MRU line, skipping the lookup.
    ///
    /// Callers must guarantee the line they mean is the one the MRU slot
    /// holds — the hierarchy uses this for back-to-back accesses to the
    /// last touched L1 line, which stays resident (and MRU) because only
    /// its own accesses can evict it.
    #[inline]
    pub(crate) fn mru_hit(&mut self, line: u64, kind: AccessKind) {
        debug_assert!(
            self.slots[self.mru_slot].meta & VALID != 0 && self.slots[self.mru_slot].tag == line,
            "mru_hit caller invariant broken for line {line:#x}"
        );
        self.tick += 1;
        self.stats.accesses += 1;
        self.stats.hits += 1;
        if self.lru {
            // One fused meta write — `touch`'s stamp plus the dirty bit.
            let m = &mut self.slots[self.mru_slot].meta;
            *m = (self.tick << STAMP_SHIFT)
                | (*m & (VALID | DIRTY))
                | if kind == AccessKind::Write { DIRTY } else { 0 };
        } else {
            self.touch(self.mru_slot, self.mru_set, self.mru_way);
            if kind == AccessKind::Write {
                self.slots[self.mru_slot].meta |= DIRTY;
            }
        }
    }

    /// Installs `line` without counting an access (prefetch / fill path).
    /// Returns a dirty evicted line, if any.
    pub fn fill_line(&mut self, line: u64, dirty: bool) -> Option<u64> {
        self.tick += 1;
        // Already present? Nothing to do (common for overlapping prefetch).
        let set = self.set_of(line);
        let base = set * self.ways;
        for way in 0..self.ways {
            let slot = self.slots[base + way];
            if slot.meta & VALID != 0 && slot.tag == line {
                if dirty {
                    self.slots[base + way].meta |= DIRTY;
                }
                return None;
            }
        }
        self.stats.prefetch_fills += 1;
        self.fill_internal(line, dirty)
    }

    fn fill_internal(&mut self, line: u64, dirty: bool) -> Option<u64> {
        let set = self.set_of(line);
        let base = set * self.ways;
        // Prefer an invalid way.
        let mut victim = None;
        for way in 0..self.ways {
            if self.slots[base + way].meta & VALID == 0 {
                victim = Some(way);
                break;
            }
        }
        let way = match victim {
            Some(w) => w,
            // Oldest stamp wins, first way on ties — the same strictly-less
            // scan the per-set stamp vector used to perform.
            None if self.lru => {
                let mut best = 0;
                let mut best_stamp = self.slots[base].meta >> STAMP_SHIFT;
                for w in 1..self.ways {
                    let stamp = self.slots[base + w].meta >> STAMP_SHIFT;
                    if stamp < best_stamp {
                        best = w;
                        best_stamp = stamp;
                    }
                }
                best
            }
            None => self.sets[set].victim(self.ways, &mut self.rng),
        };
        let s = base + way;
        let old = self.slots[s];
        let evicted = if old.meta & (VALID | DIRTY) == (VALID | DIRTY) {
            self.stats.writebacks += 1;
            Some(old.tag)
        } else {
            None
        };
        self.slots[s] = Slot { tag: line, meta: VALID | if dirty { DIRTY } else { 0 } };
        self.touch(s, set, way);
        self.mru_slot = s;
        self.mru_set = set;
        self.mru_way = way;
        self.way_hints[set] = way as u8;
        evicted
    }

    /// Whether `line` is currently resident (no state change).
    pub fn contains_line(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        (0..self.ways).any(|w| {
            let slot = self.slots[base + w];
            slot.meta & VALID != 0 && slot.tag == line
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;

    fn tiny(policy: ReplacementPolicy) -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, ways: 2, line_bytes: 64, policy })
    }

    #[test]
    fn first_access_misses_second_hits() {
        let mut c = tiny(ReplacementPolicy::Lru);
        assert!(!c.access_line(5, AccessKind::Read).hit);
        assert!(c.access_line(5, AccessKind::Read).hit);
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn conflict_eviction_respects_lru() {
        let mut c = tiny(ReplacementPolicy::Lru);
        // Lines 0, 4, 8 map to set 0 (4 sets).
        c.access_line(0, AccessKind::Read);
        c.access_line(4, AccessKind::Read);
        c.access_line(0, AccessKind::Read); // 4 is now LRU
        c.access_line(8, AccessKind::Read); // evicts 4
        assert!(c.contains_line(0));
        assert!(!c.contains_line(4));
        assert!(c.contains_line(8));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access_line(0, AccessKind::Write);
        c.access_line(4, AccessKind::Read);
        let r = c.access_line(8, AccessKind::Read); // evicts dirty line 0
        assert_eq!(r.writeback, Some(0));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.access_line(0, AccessKind::Read);
        c.access_line(4, AccessKind::Read);
        let r = c.access_line(8, AccessKind::Read);
        assert_eq!(r.writeback, None);
    }

    #[test]
    fn hit_ratio_of_working_set_fitting_in_cache_is_one_after_warmup() {
        let mut c = tiny(ReplacementPolicy::Lru);
        let lines: Vec<u64> = (0..8).collect(); // exactly capacity
        for &l in &lines {
            c.access_line(l, AccessKind::Read);
        }
        c.reset_stats();
        for _ in 0..10 {
            for &l in &lines {
                assert!(c.access_line(l, AccessKind::Read).hit);
            }
        }
        assert_eq!(c.stats().miss_ratio(), 0.0);
    }

    #[test]
    fn fill_line_does_not_count_access() {
        let mut c = tiny(ReplacementPolicy::Lru);
        c.fill_line(3, false);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access_line(3, AccessKind::Read).hit);
    }

    #[test]
    fn mpki_accounting() {
        let s = CacheStats { misses: 50, ..CacheStats::default() };
        assert!((s.mpki(10_000) - 5.0).abs() < 1e-12);
        assert_eq!(s.mpki(0), 0.0);
    }

    #[test]
    fn all_policies_function() {
        for p in ReplacementPolicy::ALL {
            let mut c = tiny(p);
            for l in 0..100u64 {
                c.access_line(l % 16, AccessKind::Read);
            }
            let s = c.stats();
            assert_eq!(s.accesses, 100);
            assert_eq!(s.hits + s.misses, 100);
        }
    }

    #[test]
    fn line_of_uses_line_shift() {
        let c = tiny(ReplacementPolicy::Lru);
        assert_eq!(c.line_of(0), 0);
        assert_eq!(c.line_of(63), 0);
        assert_eq!(c.line_of(64), 1);
        assert_eq!(c.line_bytes(), 64);
    }

    #[test]
    fn slot_layout_matches_reference_lru_semantics() {
        // A longer adversarial trace against an 8-way LRU set: the packed
        // stamp-in-slot scan must evict in exactly the order a per-way
        // timestamp vector would.
        let mut c = Cache::new(CacheConfig::lru(8 * 64, 8, 64)); // 1 set, 8 ways
        let mut resident: Vec<u64> = Vec::new(); // LRU order, oldest first
        let mut x = 0x1234_5678_u64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let line = x % 24;
            let hit = c.access_line(line, AccessKind::Read).hit;
            let was = resident.iter().position(|&l| l == line);
            assert_eq!(hit, was.is_some(), "residency diverged for line {line}");
            if let Some(i) = was {
                resident.remove(i);
            } else if resident.len() == 8 {
                resident.remove(0);
            }
            resident.push(line);
        }
    }
}
