//! The three-level cache hierarchy.

use crate::cache::{AccessKind, Cache, CacheStats};
use crate::config::{HierarchyConfig, PrefetchKind};
use crate::prefetch::{NextLinePrefetcher, PrefetchList, StridePrefetcher};
use vstress_trace::record::{MemAccess, MemSink};

/// The L2 prefetch engine variants.
#[derive(Debug)]
enum Prefetcher {
    None,
    NextLine(NextLinePrefetcher),
    Stride(StridePrefetcher),
}

/// The level that ultimately serviced an access (deepest level touched).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum ServiceLevel {
    /// Hit in the first-level cache.
    L1,
    /// Filled from the private L2.
    L2,
    /// Filled from the shared last-level cache.
    Llc,
    /// Filled from DRAM.
    Memory,
}

/// Per-level statistics of a [`Hierarchy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct HierarchyStats {
    /// Instruction-cache counters.
    pub l1i: CacheStats,
    /// Data-cache counters.
    pub l1d: CacheStats,
    /// Unified L2 counters.
    pub l2: CacheStats,
    /// Last-level-cache counters.
    pub llc: CacheStats,
    /// Demand accesses that reached DRAM.
    pub memory_accesses: u64,
    /// Write-backs that reached DRAM.
    pub memory_writebacks: u64,
}

/// A private L1I + L1D, private unified L2, and an LLC, with write-back
/// write-allocate behaviour at every level.
///
/// Consumes byte-addressed accesses (splitting any that straddle lines)
/// and reports which level serviced each one, so the pipeline model can
/// charge the appropriate latency. Implements
/// [`vstress_trace::record::MemSink`] so it can be attached
/// directly to an instrumented encode.
#[derive(Debug)]
pub struct Hierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    llc: Cache,
    prefetcher: Prefetcher,
    config: HierarchyConfig,
    /// Uniform line shift (validated identical across levels); turns the
    /// per-access line-splitting divisions into shifts.
    line_shift: u32,
    /// The last line passed to an L1D lookup. A repeat access is a
    /// guaranteed L1 hit — only the line's own L1D accesses can evict it,
    /// and the previous one left it resident and MRU — so the hierarchy
    /// can skip the lookup entirely (`Cache::mru_hit` applies the
    /// identical stat/replacement updates). `u64::MAX` is a safe
    /// sentinel: synthetic probe addresses never reach the top line.
    l1d_mru_line: u64,
    memory_accesses: u64,
    memory_writebacks: u64,
}

impl Hierarchy {
    /// Builds a hierarchy from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`HierarchyConfig::validate`]).
    pub fn new(config: HierarchyConfig) -> Self {
        config.validate();
        Hierarchy {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            llc: Cache::new(config.llc),
            prefetcher: match config.l2_prefetch {
                PrefetchKind::None => Prefetcher::None,
                PrefetchKind::NextLine => Prefetcher::NextLine(NextLinePrefetcher::new()),
                PrefetchKind::Stride => Prefetcher::Stride(StridePrefetcher::new(2)),
            },
            config,
            line_shift: config.l1d.line_bytes.trailing_zeros(),
            l1d_mru_line: u64::MAX,
            memory_accesses: 0,
            memory_writebacks: 0,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Load of `bytes` bytes at byte address `addr`.
    #[inline]
    pub fn load(&mut self, addr: u64, bytes: u32) -> ServiceLevel {
        self.data_access(addr, bytes, AccessKind::Read)
    }

    /// Store of `bytes` bytes at byte address `addr`.
    #[inline]
    pub fn store(&mut self, addr: u64, bytes: u32) -> ServiceLevel {
        self.data_access(addr, bytes, AccessKind::Write)
    }

    /// Instruction fetch of one line-aligned block at `addr`.
    #[inline]
    pub fn fetch(&mut self, addr: u64) -> ServiceLevel {
        let line = self.l1i.line_of(addr);
        if self.l1i.access_line(line, AccessKind::Read).hit {
            return ServiceLevel::L1;
        }
        // Instruction lines are never dirty in L1I.
        self.refill_from_l2(line, AccessKind::Read)
    }

    /// Load-to-use latency in cycles for a given service level.
    pub fn latency(&self, level: ServiceLevel) -> u32 {
        match level {
            ServiceLevel::L1 => self.config.lat_l1,
            ServiceLevel::L2 => self.config.lat_l2,
            ServiceLevel::Llc => self.config.lat_llc,
            ServiceLevel::Memory => self.config.lat_mem,
        }
    }

    /// Per-level statistics.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            llc: self.llc.stats(),
            memory_accesses: self.memory_accesses,
            memory_writebacks: self.memory_writebacks,
        }
    }

    /// Resets statistics, keeping contents (to exclude warm-up).
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        self.llc.reset_stats();
        self.memory_accesses = 0;
        self.memory_writebacks = 0;
    }

    #[inline]
    fn data_access(&mut self, addr: u64, bytes: u32, kind: AccessKind) -> ServiceLevel {
        // Line sizes are powers of two, so shifting is exactly the
        // division the reference performs.
        let first = addr >> self.line_shift;
        let last = (addr + bytes.max(1) as u64 - 1) >> self.line_shift;
        if first == last {
            return self.data_access_line(first, kind);
        }
        let mut worst = ServiceLevel::L1;
        for line in first..=last {
            let level = self.data_access_line(line, kind);
            if level > worst {
                worst = level;
            }
        }
        worst
    }

    #[inline]
    fn data_access_line(&mut self, line: u64, kind: AccessKind) -> ServiceLevel {
        if line == self.l1d_mru_line {
            self.l1d.mru_hit(line, kind);
            return ServiceLevel::L1;
        }
        self.l1d_mru_line = line;
        // The L1D's MRU slot holds the line we just compared against
        // (`l1d_mru_line` tracks exactly the cache's MRU installs), so
        // skip straight to the set scan.
        let l1 = self.l1d.access_line_scan(line, kind);
        if l1.hit {
            return ServiceLevel::L1;
        }
        // Write-allocate: access_line installed the line; push its dirty
        // victim (if any) down into L2.
        if let Some(victim) = l1.writeback {
            if let Some(l2_victim) = self.l2.fill_line(victim, true) {
                if self.llc.fill_line(l2_victim, true).is_some() {
                    self.memory_writebacks += 1;
                }
            }
        }
        self.refill_from_l2(line, kind)
    }

    /// Handles an L1 miss for `line`: looks it up in L2, then LLC, then
    /// memory, propagating any dirty victims downward. Returns the level
    /// that supplied the data.
    fn refill_from_l2(&mut self, line: u64, _kind: AccessKind) -> ServiceLevel {
        let l2_result = self.l2.access_line(line, AccessKind::Read);
        if let Some(victim) = l2_result.writeback {
            if let Some(llc_victim) = self.llc.fill_line(victim, true) {
                let _ = llc_victim;
                self.memory_writebacks += 1;
            }
        }
        if l2_result.hit {
            return ServiceLevel::L2;
        }
        let llc_result = self.llc.access_line(line, AccessKind::Read);
        if let Some(victim) = llc_result.writeback {
            let _ = victim;
            self.memory_writebacks += 1;
        }
        let suggestions = self.prefetch_suggestions(line);
        for &pf_line in suggestions.as_slice() {
            self.install_prefetch(pf_line);
        }
        if llc_result.hit {
            ServiceLevel::Llc
        } else {
            self.memory_accesses += 1;
            ServiceLevel::Memory
        }
    }

    fn prefetch_suggestions(&mut self, miss_line: u64) -> PrefetchList {
        let mut out = PrefetchList::default();
        match &mut self.prefetcher {
            Prefetcher::None => {}
            Prefetcher::NextLine(p) => {
                if let Some(l) = p.on_miss(miss_line) {
                    out.push(l);
                }
            }
            Prefetcher::Stride(p) => out = p.on_miss(miss_line),
        }
        out
    }

    /// Installs a prefetched line into L2 (and LLC), propagating victims.
    fn install_prefetch(&mut self, line: u64) {
        if let Some(victim) = self.l2.fill_line(line, false) {
            if self.llc.fill_line(victim, true).is_some() {
                self.memory_writebacks += 1;
            }
        }
        let _ = self.llc.fill_line(line, false);
    }
}

impl MemSink for Hierarchy {
    #[inline]
    fn observe_access(&mut self, access: MemAccess) {
        if access.is_store {
            self.store(access.addr, access.bytes);
        } else {
            self.load(access.addr, access.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::ReplacementPolicy;

    fn small() -> Hierarchy {
        // 1 KB L1, 4 KB L2, 16 KB LLC — tiny so tests exercise evictions.
        let mk = |size| CacheConfig {
            size_bytes: size,
            ways: 4,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        };
        Hierarchy::new(HierarchyConfig {
            l1i: mk(1 << 10),
            l1d: mk(1 << 10),
            l2: mk(4 << 10),
            llc: mk(16 << 10),
            lat_l1: 4,
            lat_l2: 12,
            lat_llc: 38,
            lat_mem: 170,
            l2_prefetch: crate::config::PrefetchKind::None,
        })
    }

    #[test]
    fn first_touch_goes_to_memory_then_hits_l1() {
        let mut h = small();
        assert_eq!(h.load(0x1000, 4), ServiceLevel::Memory);
        assert_eq!(h.load(0x1000, 4), ServiceLevel::L1);
        assert_eq!(h.load(0x1004, 4), ServiceLevel::L1, "same line");
    }

    #[test]
    fn l1_victim_is_found_in_l2() {
        let mut h = small();
        // L1D: 1KB/4w/64B = 4 sets. Lines 0,4,8,12,16 alias set 0.
        for i in 0..5u64 {
            h.load(i * 4 * 64, 4);
        }
        // Line 0 was evicted from L1 but lives in L2.
        assert_eq!(h.load(0, 4), ServiceLevel::L2);
    }

    #[test]
    fn straddling_access_touches_two_lines() {
        let mut h = small();
        assert_eq!(h.load(0x1000 + 60, 8), ServiceLevel::Memory);
        // Both lines now resident.
        assert_eq!(h.load(0x1000 + 32, 4), ServiceLevel::L1);
        assert_eq!(h.load(0x1000 + 64, 4), ServiceLevel::L1);
        assert_eq!(h.stats().l1d.accesses, 4);
    }

    #[test]
    fn dirty_data_writes_back_through_the_hierarchy() {
        let mut h = small();
        // Dirty many aliasing lines to force L1 writebacks into L2.
        for i in 0..32u64 {
            h.store(i * 4 * 64, 4);
        }
        assert!(h.stats().l1d.writebacks > 0);
    }

    #[test]
    fn fetch_uses_the_instruction_cache() {
        let mut h = small();
        assert_eq!(h.fetch(0x4000_0000), ServiceLevel::Memory);
        assert_eq!(h.fetch(0x4000_0000), ServiceLevel::L1);
        assert_eq!(h.stats().l1i.accesses, 2);
        assert_eq!(h.stats().l1d.accesses, 0);
    }

    #[test]
    fn latencies_come_from_config() {
        let h = small();
        assert_eq!(h.latency(ServiceLevel::L1), 4);
        assert_eq!(h.latency(ServiceLevel::Memory), 170);
    }

    #[test]
    fn service_levels_order_by_depth() {
        assert!(ServiceLevel::L1 < ServiceLevel::L2);
        assert!(ServiceLevel::Llc < ServiceLevel::Memory);
    }

    #[test]
    fn mem_sink_dispatches_loads_and_stores() {
        let mut h = small();
        h.observe_access(MemAccess { addr: 0x9000, bytes: 32, is_store: false });
        h.observe_access(MemAccess { addr: 0x9000, bytes: 32, is_store: true });
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 2);
        assert_eq!(s.l1d.hits, 1);
    }

    #[test]
    fn working_set_larger_than_llc_thrashes() {
        let mut h = small();
        // 64 KB working set streamed twice: misses dominate (16KB LLC).
        for _ in 0..2 {
            for addr in (0..(64 << 10) as u64).step_by(64) {
                h.load(0x10_0000 + addr, 4);
            }
        }
        let s = h.stats();
        assert!(s.llc.misses as f64 > s.llc.accesses as f64 * 0.9);
        assert!(s.memory_accesses > 0);
    }

    #[test]
    fn prefetchers_reduce_l2_misses_on_streaming() {
        use crate::config::PrefetchKind;
        let mk = |pf: PrefetchKind| {
            let mut cfg = small().config;
            cfg.l2_prefetch = pf;
            Hierarchy::new(cfg)
        };
        let run = |h: &mut Hierarchy| {
            for addr in (0..(8 << 10) as u64).step_by(64) {
                h.load(0x20_0000 + addr, 4);
            }
            h.stats().l2.misses
        };
        let without = run(&mut mk(PrefetchKind::None));
        let next = run(&mut mk(PrefetchKind::NextLine));
        let stride = run(&mut mk(PrefetchKind::Stride));
        assert!(next < without, "next-line should cut streaming L2 misses: {next} vs {without}");
        assert!(stride < without, "stride should cut streaming L2 misses: {stride} vs {without}");
    }

    #[test]
    fn stride_prefetcher_wins_on_strided_walks() {
        use crate::config::PrefetchKind;
        // Walk every 4th line (a plane pitch of 256 bytes): next-line
        // fetches useless neighbours, the streamer locks onto the stride.
        let mk = |pf: PrefetchKind| {
            let mut cfg = small().config;
            cfg.l2_prefetch = pf;
            Hierarchy::new(cfg)
        };
        let run = |h: &mut Hierarchy| {
            for i in 0..256u64 {
                h.load(0x40_0000 + i * 256, 4);
            }
            h.stats().l2.misses
        };
        let next = run(&mut mk(PrefetchKind::NextLine));
        let stride = run(&mut mk(PrefetchKind::Stride));
        assert!(stride < next, "streamer must beat next-line on strides: {stride} vs {next}");
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut h = small();
        h.load(0x5000, 4);
        h.reset_stats();
        assert_eq!(h.stats().l1d.accesses, 0);
        assert_eq!(h.load(0x5000, 4), ServiceLevel::L1, "contents survived reset");
    }
}
