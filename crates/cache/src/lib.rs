//! Cache-hierarchy simulation for the `vstress` workbench.
//!
//! Models the memory system of the paper's evaluation machine (Intel Xeon
//! E5-2650 v4, Broadwell): per-core 32 KB L1I and L1D, a private 256 KB L2,
//! and a 30 MB shared last-level cache. The hierarchy consumes the real
//! data addresses emitted by the instrumented encoders (see
//! [`vstress_trace::Probe`]) and reports per-level hits, misses and MPKI —
//! the quantities behind the paper's Fig. 6b–6d.
//!
//! ```
//! use vstress_cache::{Hierarchy, HierarchyConfig};
//!
//! let mut mem = Hierarchy::new(HierarchyConfig::broadwell());
//! // Stream over one 16 KiB buffer: the first pass misses, later passes hit L1.
//! for pass in 0..3 {
//!     for addr in (0..16384u64).step_by(64) {
//!         mem.load(0x10_0000 + addr, 32);
//!     }
//!     if pass == 0 {
//!         assert!(mem.stats().l1d.misses > 0);
//!     }
//! }
//! let s = mem.stats();
//! assert!(s.l1d.hits > s.l1d.misses);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod multicore;
pub mod policy;
pub mod prefetch;
pub mod reference;

pub use cache::{AccessKind, Cache, CacheStats};
pub use config::{CacheConfig, HierarchyConfig};
pub use hierarchy::{Hierarchy, HierarchyStats, ServiceLevel};
pub use multicore::MulticoreHierarchy;
pub use policy::ReplacementPolicy;
pub use prefetch::PrefetchList;
pub use reference::ReferenceHierarchy;
