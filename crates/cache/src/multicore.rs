//! Multi-core hierarchy: private L1/L2 per core, one shared LLC.
//!
//! Used by the thread-scalability study (paper Figs. 12–16): worker
//! threads' access streams are interleaved through per-core private levels
//! into a single shared LLC, so capacity contention between threads —
//! the mechanism behind x265's backend-bound growth — emerges naturally.

use crate::cache::{AccessKind, Cache, CacheStats};
use crate::config::HierarchyConfig;
use crate::hierarchy::ServiceLevel;

/// Per-core private caches.
#[derive(Debug)]
struct CorePrivate {
    l1d: Cache,
    l2: Cache,
}

/// `n` cores of private L1D + L2 in front of one shared LLC.
///
/// Instruction-side modelling is omitted here (the threading study's
/// frontend behaviour is carried by the per-thread pipeline models); only
/// the data path contends.
#[derive(Debug)]
pub struct MulticoreHierarchy {
    cores: Vec<CorePrivate>,
    llc: Cache,
    config: HierarchyConfig,
    memory_accesses: u64,
}

impl MulticoreHierarchy {
    /// Builds an `n`-core hierarchy from a per-core configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or the configuration is invalid.
    pub fn new(config: HierarchyConfig, n: usize) -> Self {
        assert!(n > 0, "need at least one core");
        config.validate();
        MulticoreHierarchy {
            cores: (0..n)
                .map(|_| CorePrivate { l1d: Cache::new(config.l1d), l2: Cache::new(config.l2) })
                .collect(),
            llc: Cache::new(config.llc),
            config,
            memory_accesses: 0,
        }
    }

    /// Number of cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Data access by `core`; returns the servicing level.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, bytes: u32, is_store: bool) -> ServiceLevel {
        let kind = if is_store { AccessKind::Write } else { AccessKind::Read };
        let line_bytes = self.cores[core].l1d.line_bytes() as u64;
        let first = addr / line_bytes;
        let last = (addr + bytes.max(1) as u64 - 1) / line_bytes;
        let mut worst = ServiceLevel::L1;
        for line in first..=last {
            let lvl = self.access_line(core, line, kind);
            if lvl > worst {
                worst = lvl;
            }
        }
        worst
    }

    fn access_line(&mut self, core: usize, line: u64, kind: AccessKind) -> ServiceLevel {
        let c = &mut self.cores[core];
        let l1 = c.l1d.access_line(line, kind);
        if l1.hit {
            return ServiceLevel::L1;
        }
        if let Some(victim) = l1.writeback {
            if let Some(l2_victim) = c.l2.fill_line(victim, true) {
                let _ = self.llc.fill_line(l2_victim, true);
            }
        }
        let l2 = c.l2.access_line(line, AccessKind::Read);
        if let Some(victim) = l2.writeback {
            let _ = self.llc.fill_line(victim, true);
        }
        if l2.hit {
            return ServiceLevel::L2;
        }
        let llc = self.llc.access_line(line, AccessKind::Read);
        if llc.hit {
            ServiceLevel::Llc
        } else {
            self.memory_accesses += 1;
            ServiceLevel::Memory
        }
    }

    /// Latency in cycles for a service level (shared with the single-core
    /// hierarchy's configuration).
    pub fn latency(&self, level: ServiceLevel) -> u32 {
        match level {
            ServiceLevel::L1 => self.config.lat_l1,
            ServiceLevel::L2 => self.config.lat_l2,
            ServiceLevel::Llc => self.config.lat_llc,
            ServiceLevel::Memory => self.config.lat_mem,
        }
    }

    /// Shared-LLC statistics.
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// One core's L1D statistics.
    pub fn l1d_stats(&self, core: usize) -> CacheStats {
        self.cores[core].l1d.stats()
    }

    /// Demand accesses that reached DRAM.
    pub fn memory_accesses(&self) -> u64 {
        self.memory_accesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::policy::ReplacementPolicy;

    fn cfg() -> HierarchyConfig {
        let mk = |size| CacheConfig {
            size_bytes: size,
            ways: 4,
            line_bytes: 64,
            policy: ReplacementPolicy::Lru,
        };
        HierarchyConfig {
            l1i: mk(1 << 10),
            l1d: mk(1 << 10),
            l2: mk(4 << 10),
            llc: mk(16 << 10),
            lat_l1: 4,
            lat_l2: 12,
            lat_llc: 38,
            lat_mem: 170,
            l2_prefetch: crate::config::PrefetchKind::None,
        }
    }

    #[test]
    fn private_levels_are_independent() {
        let mut m = MulticoreHierarchy::new(cfg(), 2);
        m.access(0, 0x1000, 4, false);
        // Core 1 misses its own L1/L2 but finds the line in the shared LLC.
        assert_eq!(m.access(1, 0x1000, 4, false), ServiceLevel::Llc);
        assert_eq!(m.access(1, 0x1000, 4, false), ServiceLevel::L1);
    }

    #[test]
    fn llc_contention_grows_with_cores() {
        // Each core streams a disjoint 8 KB buffer; 4 cores = 32 KB total,
        // twice the 16 KB LLC — misses explode versus the 1-core run.
        let run = |cores: usize| {
            let mut m = MulticoreHierarchy::new(cfg(), cores);
            for rep in 0..4 {
                let _ = rep;
                for c in 0..cores {
                    let base = 0x10_0000 + (c as u64) * (64 << 10);
                    for addr in (0..(8 << 10) as u64).step_by(64) {
                        m.access(c, base + addr, 4, false);
                    }
                }
            }
            m.llc_stats().miss_ratio()
        };
        let solo = run(1);
        let four = run(4);
        assert!(four > solo, "shared-LLC miss ratio must grow: {four} vs {solo}");
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_panics() {
        let _ = MulticoreHierarchy::new(cfg(), 0);
    }

    #[test]
    fn memory_counter_advances() {
        let mut m = MulticoreHierarchy::new(cfg(), 1);
        m.access(0, 0x500000, 4, false);
        assert_eq!(m.memory_accesses(), 1);
        assert_eq!(m.latency(ServiceLevel::Memory), 170);
    }
}
