//! A single raster plane of 8-bit samples.

use crate::error::VideoError;

/// Alignment (in samples) of each row of a [`Plane`].
///
/// Real encoders pad rows so that SIMD kernels can read whole vectors; we
/// keep the same layout so the instrumented address streams show realistic
/// strides.
pub const ROW_ALIGN: usize = 32;

/// A rectangular array of 8-bit samples with a padded stride.
///
/// `Plane` is the unit of pixel storage for both luma and chroma.
/// The accessible region is `width x height`; each row occupies
/// [`Plane::stride`] samples so rows start on a [`ROW_ALIGN`] boundary.
#[derive(Debug)]
pub struct Plane {
    data: Vec<u8>,
    width: usize,
    height: usize,
    stride: usize,
    /// Synthetic base address reported to instrumentation (see
    /// [`vstress_trace::probe_addr`]); unique per plane, page-aligned.
    probe_base: u64,
}

impl Clone for Plane {
    fn clone(&self) -> Self {
        // A clone is a distinct buffer, so it gets its own synthetic
        // address region — just as a real copy gets its own allocation.
        Plane {
            data: self.data.clone(),
            width: self.width,
            height: self.height,
            stride: self.stride,
            probe_base: vstress_trace::probe_addr::alloc(self.data.len()),
        }
    }
}

impl PartialEq for Plane {
    fn eq(&self, other: &Self) -> bool {
        // Identity is pixel content and geometry; the synthetic probe
        // address is an instrumentation detail.
        self.width == other.width
            && self.height == other.height
            && self.stride == other.stride
            && self.data == other.data
    }
}

impl Eq for Plane {}

impl Plane {
    /// Creates a plane filled with `fill`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidDimensions`] if either dimension is zero
    /// or absurdly large (> 2^16).
    pub fn new(width: usize, height: usize, fill: u8) -> Result<Self, VideoError> {
        if width == 0 || height == 0 {
            return Err(VideoError::InvalidDimensions {
                width,
                height,
                reason: "dimensions must be nonzero",
            });
        }
        if width > 1 << 16 || height > 1 << 16 {
            return Err(VideoError::InvalidDimensions {
                width,
                height,
                reason: "dimensions exceed 65536",
            });
        }
        let stride = width.div_ceil(ROW_ALIGN) * ROW_ALIGN;
        let data = vec![fill; stride * height];
        let probe_base = vstress_trace::probe_addr::alloc(data.len());
        Ok(Plane { data, width, height, stride, probe_base })
    }

    /// Width of the accessible region in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the accessible region in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance in samples between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Base address of the plane's buffer as seen by instrumentation.
    ///
    /// This is a *synthetic* page-aligned address, unique per plane (see
    /// [`vstress_trace::probe_addr`]): the cache simulator sees the real
    /// layout and strides, while the address stream stays a pure function
    /// of the program's deterministic allocation order — live heap
    /// addresses would leak allocator/ASLR jitter into the statistics.
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.probe_base
    }

    /// Address of the sample at `(x, y)`, for instrumentation.
    #[inline]
    pub fn sample_addr(&self, x: usize, y: usize) -> u64 {
        debug_assert!(x < self.width && y < self.height);
        self.base_addr() + (y * self.stride + x) as u64
    }

    /// Returns the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x]
    }

    /// Returns the sample at `(x, y)`, clamping coordinates to the plane
    /// edge (the standard "border extension" used by motion search).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.stride + cx]
    }

    /// Sets the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x] = v;
    }

    /// Immutable view of one row (the accessible `width` samples).
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutable view of one row (the accessible `width` samples).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Copies a `w x h` block starting at `(x, y)` into `dst` (row-major,
    /// `w * h` samples).
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BlockOutOfBounds`] if the block does not fit.
    pub fn read_block(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        dst: &mut Vec<u8>,
    ) -> Result<(), VideoError> {
        self.check_block(x, y, w, h)?;
        dst.clear();
        dst.reserve(w * h);
        for row in 0..h {
            let start = (y + row) * self.stride + x;
            dst.extend_from_slice(&self.data[start..start + w]);
        }
        Ok(())
    }

    /// Writes a `w x h` row-major block at `(x, y)` from `src`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BlockOutOfBounds`] if the block does not fit,
    /// or [`VideoError::GeometryMismatch`] if `src.len() != w * h`.
    pub fn write_block(
        &mut self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        src: &[u8],
    ) -> Result<(), VideoError> {
        self.check_block(x, y, w, h)?;
        if src.len() != w * h {
            return Err(VideoError::GeometryMismatch { what: "block source and dimensions" });
        }
        for row in 0..h {
            let start = (y + row) * self.stride + x;
            self.data[start..start + w].copy_from_slice(&src[row * w..(row + 1) * w]);
        }
        Ok(())
    }

    /// Fills the whole accessible region with `v`.
    pub fn fill(&mut self, v: u8) {
        for y in 0..self.height {
            let start = y * self.stride;
            self.data[start..start + self.width].fill(v);
        }
    }

    fn check_block(&self, x: usize, y: usize, w: usize, h: usize) -> Result<(), VideoError> {
        if w == 0 || h == 0 || x + w > self.width || y + h > self.height {
            return Err(VideoError::BlockOutOfBounds {
                x,
                y,
                w,
                h,
                plane_w: self.width,
                plane_h: self.height,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dimensions() {
        assert!(Plane::new(0, 4, 0).is_err());
        assert!(Plane::new(4, 0, 0).is_err());
    }

    #[test]
    fn stride_is_aligned_and_at_least_width() {
        for w in [1, 7, 31, 32, 33, 100, 640] {
            let p = Plane::new(w, 2, 0).unwrap();
            assert!(p.stride() >= w);
            assert_eq!(p.stride() % ROW_ALIGN, 0);
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut p = Plane::new(10, 10, 0).unwrap();
        p.set(3, 7, 200);
        assert_eq!(p.get(3, 7), 200);
        assert_eq!(p.get(7, 3), 0);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let mut p = Plane::new(4, 4, 9).unwrap();
        p.set(0, 0, 1);
        p.set(3, 3, 5);
        assert_eq!(p.get_clamped(-10, -10), 1);
        assert_eq!(p.get_clamped(100, 100), 5);
    }

    #[test]
    fn block_roundtrip() {
        let mut p = Plane::new(16, 16, 0).unwrap();
        let src: Vec<u8> = (0..64).map(|i| i as u8).collect();
        p.write_block(4, 4, 8, 8, &src).unwrap();
        let mut out = Vec::new();
        p.read_block(4, 4, 8, 8, &mut out).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn block_out_of_bounds_is_rejected() {
        let p = Plane::new(8, 8, 0).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            p.read_block(4, 4, 8, 8, &mut out),
            Err(VideoError::BlockOutOfBounds { .. })
        ));
    }

    #[test]
    fn write_block_rejects_wrong_source_len() {
        let mut p = Plane::new(8, 8, 0).unwrap();
        assert!(p.write_block(0, 0, 4, 4, &[0u8; 15]).is_err());
    }

    #[test]
    fn sample_addr_reflects_layout() {
        let p = Plane::new(40, 4, 0).unwrap();
        assert_eq!(p.sample_addr(0, 0), p.base_addr());
        assert_eq!(p.sample_addr(3, 2), p.base_addr() + (2 * p.stride() + 3) as u64);
    }

    #[test]
    fn fill_only_touches_accessible_region() {
        let mut p = Plane::new(5, 5, 0).unwrap();
        p.fill(77);
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(p.get(x, y), 77);
            }
        }
    }
}
