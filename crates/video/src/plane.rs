//! A single raster plane of 8-bit samples.

use crate::error::VideoError;

/// Alignment (in samples) of each row of a [`Plane`].
///
/// Real encoders pad rows so that SIMD kernels can read whole vectors; we
/// keep the same layout so the instrumented address streams show realistic
/// strides.
pub const ROW_ALIGN: usize = 32;

/// Border width (in samples) of the edge-padded shadow built by
/// [`Plane::pad_borders`].
///
/// Must cover the largest motion displacement a kernel may read:
/// full-pel MV clamp plus the half-pel filter tap. The search range in
/// every preset is well below this.
pub const PAD: usize = 64;

/// The edge-padded shadow copy of a plane (see [`Plane::pad_borders`]).
///
/// Layout: `(width + 2*PAD) x (height + 2*PAD)` samples, rows spaced
/// `stride` apart, where sample `(x, y)` of the *plane* (coordinates
/// may be negative or past the edge, up to `PAD` out) lives at
/// `(y + PAD) * stride + PAD + x` and equals `Plane::get_clamped(x, y)`.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PaddedShadow {
    data: Vec<u8>,
    stride: usize,
}

/// A rectangular array of 8-bit samples with a padded stride.
///
/// `Plane` is the unit of pixel storage for both luma and chroma.
/// The accessible region is `width x height`; each row occupies
/// [`Plane::stride`] samples so rows start on a [`ROW_ALIGN`] boundary.
#[derive(Debug)]
pub struct Plane {
    data: Vec<u8>,
    width: usize,
    height: usize,
    stride: usize,
    /// Synthetic base address reported to instrumentation (see
    /// [`vstress_trace::probe_addr`]); unique per plane, page-aligned.
    probe_base: u64,
    /// Edge-padded shadow, present only between a [`Plane::pad_borders`]
    /// call and the next mutation. Purely an access-path accelerator:
    /// it has no probe identity of its own — instrumentation always
    /// reports the canonical `probe_base`/`stride` addresses.
    padded: Option<Box<PaddedShadow>>,
}

impl Clone for Plane {
    fn clone(&self) -> Self {
        // A clone is a distinct buffer, so it gets its own synthetic
        // address region — just as a real copy gets its own allocation.
        // The padded shadow carries no probe identity, so it is cloned
        // as plain data (reference frames stay padded through cloning).
        Plane {
            data: self.data.clone(),
            width: self.width,
            height: self.height,
            stride: self.stride,
            probe_base: vstress_trace::probe_addr::alloc(self.data.len()),
            padded: self.padded.clone(),
        }
    }
}

impl PartialEq for Plane {
    fn eq(&self, other: &Self) -> bool {
        // Identity is pixel content and geometry; the synthetic probe
        // address is an instrumentation detail.
        self.width == other.width
            && self.height == other.height
            && self.stride == other.stride
            && self.data == other.data
    }
}

impl Eq for Plane {}

impl Plane {
    /// Creates a plane filled with `fill`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidDimensions`] if either dimension is zero
    /// or absurdly large (> 2^16).
    pub fn new(width: usize, height: usize, fill: u8) -> Result<Self, VideoError> {
        if width == 0 || height == 0 {
            return Err(VideoError::InvalidDimensions {
                width,
                height,
                reason: "dimensions must be nonzero",
            });
        }
        if width > 1 << 16 || height > 1 << 16 {
            return Err(VideoError::InvalidDimensions {
                width,
                height,
                reason: "dimensions exceed 65536",
            });
        }
        let stride = width.div_ceil(ROW_ALIGN) * ROW_ALIGN;
        let data = vec![fill; stride * height];
        let probe_base = vstress_trace::probe_addr::alloc(data.len());
        Ok(Plane { data, width, height, stride, probe_base, padded: None })
    }

    /// Width of the accessible region in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Height of the accessible region in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Distance in samples between the starts of consecutive rows.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Base address of the plane's buffer as seen by instrumentation.
    ///
    /// This is a *synthetic* page-aligned address, unique per plane (see
    /// [`vstress_trace::probe_addr`]): the cache simulator sees the real
    /// layout and strides, while the address stream stays a pure function
    /// of the program's deterministic allocation order — live heap
    /// addresses would leak allocator/ASLR jitter into the statistics.
    #[inline]
    pub fn base_addr(&self) -> u64 {
        self.probe_base
    }

    /// Address of the sample at `(x, y)`, for instrumentation.
    #[inline]
    pub fn sample_addr(&self, x: usize, y: usize) -> u64 {
        debug_assert!(x < self.width && y < self.height);
        self.base_addr() + (y * self.stride + x) as u64
    }

    /// Returns the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(x, y)` is out of bounds.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.stride + x]
    }

    /// Returns the sample at `(x, y)`, clamping coordinates to the plane
    /// edge (the standard "border extension" used by motion search).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.stride + cx]
    }

    /// Builds (or refreshes) the edge-padded shadow: a copy of the
    /// plane with every border sample replicated [`PAD`] samples
    /// outward, so reads at clamped coordinates become contiguous row
    /// slices instead of per-sample [`Plane::get_clamped`] calls.
    ///
    /// The shadow is an access-path detail only: [`Plane::sample_addr`]
    /// and [`Plane::base_addr`] still describe the canonical unpadded
    /// layout, so the instrumented address stream (and therefore
    /// simulated cache indexing) is unchanged. Any mutation of the
    /// plane drops the shadow; call this again once the plane is final
    /// (the encoder pads each reconstruction before it becomes a
    /// reference frame).
    pub fn pad_borders(&mut self) {
        if self.padded.is_some() {
            return;
        }
        let pw = self.width + 2 * PAD;
        let pstride = pw.div_ceil(ROW_ALIGN) * ROW_ALIGN;
        let ph = self.height + 2 * PAD;
        let mut buf = vec![0u8; pstride * ph];
        for (py, drow) in buf.chunks_exact_mut(pstride).enumerate() {
            let sy = (py as isize - PAD as isize).clamp(0, self.height as isize - 1) as usize;
            let srow = self.row(sy);
            drow[..PAD].fill(srow[0]);
            drow[PAD..PAD + self.width].copy_from_slice(srow);
            drow[PAD + self.width..pw].fill(srow[self.width - 1]);
        }
        self.padded = Some(Box::new(PaddedShadow { data: buf, stride: pstride }));
    }

    /// Whether the edge-padded shadow is present and current.
    #[inline]
    pub fn is_padded(&self) -> bool {
        self.padded.is_some()
    }

    /// One row of the edge-padded shadow, covering `x` in
    /// `[-PAD, width + PAD)`; index the returned slice with `x + PAD`.
    ///
    /// `y` may range over `[-PAD, height + PAD)`; rows outside that
    /// window (or an absent shadow) return `None`, and callers fall
    /// back to [`Plane::get_clamped`]. Every sample equals
    /// `get_clamped` at the same plane coordinates.
    #[inline]
    pub fn padded_row(&self, y: isize) -> Option<&[u8]> {
        let shadow = self.padded.as_deref()?;
        if y < -(PAD as isize) || y >= (self.height + PAD) as isize {
            return None;
        }
        let py = (y + PAD as isize) as usize;
        let start = py * shadow.stride;
        Some(&shadow.data[start..start + self.width + 2 * PAD])
    }

    /// Sets the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.padded = None;
        self.data[y * self.stride + x] = v;
    }

    /// Iterator over `h` row slices of width `w` starting at `(x, y0)`:
    /// the hot-kernel access path. One address computation up front,
    /// stride walking after — no per-row multiply or double-ended
    /// bounds check like repeated [`Plane::row`] calls would cost.
    ///
    /// # Panics
    ///
    /// Panics (in release too — the slice math is the check) if the
    /// `w x h` block at `(x, y0)` exceeds the plane.
    #[inline]
    pub fn block_rows(
        &self,
        x: usize,
        y0: usize,
        w: usize,
        h: usize,
    ) -> impl Iterator<Item = &[u8]> {
        assert!(x + w <= self.width && y0 + h <= self.height);
        let start = y0 * self.stride + x;
        self.data[start..].chunks(self.stride).take(h).map(move |c| &c[..w])
    }

    /// Immutable view of one row (the accessible `width` samples).
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        let start = y * self.stride;
        &self.data[start..start + self.width]
    }

    /// Mutable view of one row (the accessible `width` samples).
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        self.padded = None;
        let start = y * self.stride;
        &mut self.data[start..start + self.width]
    }

    /// Copies a `w x h` block starting at `(x, y)` into `dst` (row-major,
    /// `w * h` samples).
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BlockOutOfBounds`] if the block does not fit.
    pub fn read_block(
        &self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        dst: &mut Vec<u8>,
    ) -> Result<(), VideoError> {
        self.check_block(x, y, w, h)?;
        dst.clear();
        dst.reserve(w * h);
        for row in 0..h {
            let start = (y + row) * self.stride + x;
            dst.extend_from_slice(&self.data[start..start + w]);
        }
        Ok(())
    }

    /// Writes a `w x h` row-major block at `(x, y)` from `src`.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::BlockOutOfBounds`] if the block does not fit,
    /// or [`VideoError::GeometryMismatch`] if `src.len() != w * h`.
    pub fn write_block(
        &mut self,
        x: usize,
        y: usize,
        w: usize,
        h: usize,
        src: &[u8],
    ) -> Result<(), VideoError> {
        self.check_block(x, y, w, h)?;
        if src.len() != w * h {
            return Err(VideoError::GeometryMismatch { what: "block source and dimensions" });
        }
        self.padded = None;
        for row in 0..h {
            let start = (y + row) * self.stride + x;
            self.data[start..start + w].copy_from_slice(&src[row * w..(row + 1) * w]);
        }
        Ok(())
    }

    /// Fills the whole accessible region with `v`.
    pub fn fill(&mut self, v: u8) {
        self.padded = None;
        for y in 0..self.height {
            let start = y * self.stride;
            self.data[start..start + self.width].fill(v);
        }
    }

    fn check_block(&self, x: usize, y: usize, w: usize, h: usize) -> Result<(), VideoError> {
        if w == 0 || h == 0 || x + w > self.width || y + h > self.height {
            return Err(VideoError::BlockOutOfBounds {
                x,
                y,
                w,
                h,
                plane_w: self.width,
                plane_h: self.height,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_zero_dimensions() {
        assert!(Plane::new(0, 4, 0).is_err());
        assert!(Plane::new(4, 0, 0).is_err());
    }

    #[test]
    fn stride_is_aligned_and_at_least_width() {
        for w in [1, 7, 31, 32, 33, 100, 640] {
            let p = Plane::new(w, 2, 0).unwrap();
            assert!(p.stride() >= w);
            assert_eq!(p.stride() % ROW_ALIGN, 0);
        }
    }

    #[test]
    fn get_set_roundtrip() {
        let mut p = Plane::new(10, 10, 0).unwrap();
        p.set(3, 7, 200);
        assert_eq!(p.get(3, 7), 200);
        assert_eq!(p.get(7, 3), 0);
    }

    #[test]
    fn clamped_access_extends_borders() {
        let mut p = Plane::new(4, 4, 9).unwrap();
        p.set(0, 0, 1);
        p.set(3, 3, 5);
        assert_eq!(p.get_clamped(-10, -10), 1);
        assert_eq!(p.get_clamped(100, 100), 5);
    }

    #[test]
    fn block_roundtrip() {
        let mut p = Plane::new(16, 16, 0).unwrap();
        let src: Vec<u8> = (0..64).map(|i| i as u8).collect();
        p.write_block(4, 4, 8, 8, &src).unwrap();
        let mut out = Vec::new();
        p.read_block(4, 4, 8, 8, &mut out).unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn block_out_of_bounds_is_rejected() {
        let p = Plane::new(8, 8, 0).unwrap();
        let mut out = Vec::new();
        assert!(matches!(
            p.read_block(4, 4, 8, 8, &mut out),
            Err(VideoError::BlockOutOfBounds { .. })
        ));
    }

    #[test]
    fn write_block_rejects_wrong_source_len() {
        let mut p = Plane::new(8, 8, 0).unwrap();
        assert!(p.write_block(0, 0, 4, 4, &[0u8; 15]).is_err());
    }

    #[test]
    fn sample_addr_reflects_layout() {
        let p = Plane::new(40, 4, 0).unwrap();
        assert_eq!(p.sample_addr(0, 0), p.base_addr());
        assert_eq!(p.sample_addr(3, 2), p.base_addr() + (2 * p.stride() + 3) as u64);
    }

    #[test]
    fn padded_shadow_matches_get_clamped_everywhere() {
        let mut p = Plane::new(13, 7, 0).unwrap();
        for y in 0..7 {
            for x in 0..13 {
                p.set(x, y, ((x * 31 + y * 17) % 251) as u8);
            }
        }
        p.pad_borders();
        assert!(p.is_padded());
        let pad = PAD as isize;
        for y in -pad..(7 + pad) {
            let row = p.padded_row(y).expect("row in padded range");
            assert_eq!(row.len(), 13 + 2 * PAD);
            for x in -pad..(13 + pad) {
                assert_eq!(row[(x + pad) as usize], p.get_clamped(x, y), "({x}, {y})");
            }
        }
        assert!(p.padded_row(-pad - 1).is_none());
        assert!(p.padded_row(7 + pad).is_none());
    }

    #[test]
    fn mutation_drops_the_padded_shadow() {
        let mut p = Plane::new(8, 8, 3).unwrap();
        p.pad_borders();
        assert!(p.is_padded());
        p.set(0, 0, 4);
        assert!(!p.is_padded());
        assert!(p.padded_row(0).is_none());

        p.pad_borders();
        p.row_mut(2)[0] = 9;
        assert!(!p.is_padded());

        p.pad_borders();
        p.write_block(0, 0, 2, 2, &[1, 2, 3, 4]).unwrap();
        assert!(!p.is_padded());

        p.pad_borders();
        p.fill(0);
        assert!(!p.is_padded());
    }

    #[test]
    fn clone_preserves_padding_but_not_probe_identity() {
        let mut p = Plane::new(6, 6, 1).unwrap();
        p.pad_borders();
        let q = p.clone();
        assert!(q.is_padded());
        assert_ne!(p.base_addr(), q.base_addr());
        assert_eq!(q.padded_row(-1).unwrap()[0], 1);
    }

    #[test]
    fn pad_borders_is_idempotent() {
        let mut p = Plane::new(4, 4, 7).unwrap();
        p.pad_borders();
        let first = p.padded_row(0).unwrap().to_vec();
        p.pad_borders();
        assert_eq!(p.padded_row(0).unwrap(), &first[..]);
    }

    #[test]
    fn fill_only_touches_accessible_region() {
        let mut p = Plane::new(5, 5, 0).unwrap();
        p.fill(77);
        for y in 0..5 {
            for x in 0..5 {
                assert_eq!(p.get(x, y), 77);
            }
        }
    }
}
