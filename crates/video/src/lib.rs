//! Video substrate for the `vstress` workbench.
//!
//! This crate provides everything the encoder models in
//! [`vstress-codecs`](https://docs.rs/vstress-codecs) consume as *input* and
//! produce as *quality evidence*:
//!
//! * [`Plane`] and [`Frame`] — planar 4:2:0 YUV raster storage with padded
//!   strides and block views, mirroring what a real encoder operates on.
//! * [`vbench`] — the fifteen clip descriptions from Table 1 of the paper
//!   (*"Do Video Encoding Workloads Stress the Microarchitecture?"*,
//!   IISWC 2023) and a deterministic synthesizer that manufactures clips
//!   with the listed resolution, frame-rate and entropy characteristics.
//! * [`metrics`] — PSNR, MSE and bitrate calculations.
//! * [`bdrate`] — Bjøntegaard delta-rate between two rate/quality curves.
//! * [`y4m`] — YUV4MPEG2 file I/O, so real footage can stand in for the
//!   synthesizer.
//!
//! # Quickstart
//!
//! ```
//! use vstress_video::vbench::{self, FidelityConfig};
//!
//! let spec = vbench::clip("game1").expect("game1 is a vbench clip");
//! let clip = spec.synthesize(&FidelityConfig::default());
//! assert!(clip.frames().len() >= 2);
//! let (w, h) = clip.dimensions();
//! assert_eq!(w % 2, 0);
//! assert_eq!(h % 2, 0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bdrate;
pub mod error;
pub mod frame;
pub mod metrics;
pub mod plane;
pub mod synth;
pub mod vbench;
pub mod y4m;

pub use error::VideoError;
pub use frame::{Clip, Frame};
pub use plane::{Plane, PAD};
