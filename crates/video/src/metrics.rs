//! Quality and rate metrics: MSE, PSNR and bitrate.

use crate::error::VideoError;
use crate::frame::{Clip, Frame};
use crate::plane::Plane;

/// PSNR cap used when two signals are identical (MSE = 0), following the
/// common tooling convention of reporting 100 dB instead of infinity.
pub const PSNR_CAP_DB: f64 = 100.0;

/// Mean squared error between the accessible regions of two planes.
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] if the planes differ in size.
pub fn plane_mse(a: &Plane, b: &Plane) -> Result<f64, VideoError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(VideoError::GeometryMismatch { what: "planes for MSE" });
    }
    let mut acc = 0u64;
    for y in 0..a.height() {
        let (ra, rb) = (a.row(y), b.row(y));
        for (&pa, &pb) in ra.iter().zip(rb) {
            let d = pa as i64 - pb as i64;
            acc += (d * d) as u64;
        }
    }
    Ok(acc as f64 / (a.width() * a.height()) as f64)
}

/// Converts an MSE to PSNR in dB for 8-bit content, capped at
/// [`PSNR_CAP_DB`].
pub fn mse_to_psnr(mse: f64) -> f64 {
    if mse <= 0.0 {
        PSNR_CAP_DB
    } else {
        (10.0 * ((255.0 * 255.0) / mse).log10()).min(PSNR_CAP_DB)
    }
}

/// Luma PSNR between two frames.
///
/// The paper (like most encoder comparisons) reports luma PSNR; chroma
/// planes are excluded here and measured separately by
/// [`frame_psnr_weighted`] when a combined figure is wanted.
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] if the frames differ in size.
pub fn frame_psnr(a: &Frame, b: &Frame) -> Result<f64, VideoError> {
    Ok(mse_to_psnr(plane_mse(a.luma(), b.luma())?))
}

/// 6:1:1-weighted YUV PSNR (the weighting used by the AOM test tooling).
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] if the frames differ in size.
pub fn frame_psnr_weighted(a: &Frame, b: &Frame) -> Result<f64, VideoError> {
    let y = plane_mse(a.luma(), b.luma())?;
    let u = plane_mse(a.cb(), b.cb())?;
    let v = plane_mse(a.cr(), b.cr())?;
    Ok(mse_to_psnr((6.0 * y + u + v) / 8.0))
}

/// Average per-frame luma PSNR across two equal-length clips.
///
/// This is the paper's sequence-PSNR convention: "typically, the PSNR of
/// each frame is averaged to find the PSNR of an entire video sequence".
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] if the clips differ in frame
/// count or frame geometry.
pub fn sequence_psnr(a: &Clip, b: &Clip) -> Result<f64, VideoError> {
    if a.frames().len() != b.frames().len() {
        return Err(VideoError::GeometryMismatch { what: "clips for sequence PSNR" });
    }
    let mut total = 0.0;
    for (fa, fb) in a.frames().iter().zip(b.frames()) {
        total += frame_psnr(fa, fb)?;
    }
    Ok(total / a.frames().len() as f64)
}

/// Bitrate in kilobits per second given a payload size and clip timing.
///
/// `bits` is the total encoded size; duration comes from
/// `frame_count / fps`, matching how the paper reports kbps.
pub fn bitrate_kbps(bits: u64, frame_count: usize, fps: f64) -> f64 {
    if frame_count == 0 || !(fps.is_finite() && fps > 0.0) {
        return 0.0;
    }
    let seconds = frame_count as f64 / fps;
    bits as f64 / seconds / 1000.0
}

/// Structural similarity (SSIM) between two planes, computed over 8x8
/// windows with the standard constants — the perceptual companion metric
/// to PSNR used throughout encoder evaluations.
///
/// Returns a value in `[-1, 1]` (1 = identical).
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] if the planes differ in size.
pub fn plane_ssim(a: &Plane, b: &Plane) -> Result<f64, VideoError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(VideoError::GeometryMismatch { what: "planes for SSIM" });
    }
    const C1: f64 = 6.5025; // (0.01 * 255)^2
    const C2: f64 = 58.5225; // (0.03 * 255)^2
    let win = 8usize;
    let mut total = 0.0;
    let mut windows = 0usize;
    let (w, h) = (a.width(), a.height());
    let mut y = 0;
    while y + win <= h {
        let mut x = 0;
        while x + win <= w {
            let n = (win * win) as f64;
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
            for dy in 0..win {
                for dx in 0..win {
                    let va = a.get(x + dx, y + dy) as f64;
                    let vb = b.get(x + dx, y + dy) as f64;
                    sa += va;
                    sb += vb;
                    saa += va * va;
                    sbb += vb * vb;
                    sab += va * vb;
                }
            }
            let mu_a = sa / n;
            let mu_b = sb / n;
            let var_a = saa / n - mu_a * mu_a;
            let var_b = sbb / n - mu_b * mu_b;
            let cov = sab / n - mu_a * mu_b;
            let ssim = ((2.0 * mu_a * mu_b + C1) * (2.0 * cov + C2))
                / ((mu_a * mu_a + mu_b * mu_b + C1) * (var_a + var_b + C2));
            total += ssim;
            windows += 1;
            x += win;
        }
        y += win;
    }
    if windows == 0 {
        return Err(VideoError::GeometryMismatch { what: "planes too small for an SSIM window" });
    }
    Ok(total / windows as f64)
}

/// Mean luma SSIM across two equal-length clips.
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] on mismatched clips.
pub fn sequence_ssim(a: &Clip, b: &Clip) -> Result<f64, VideoError> {
    if a.frames().len() != b.frames().len() {
        return Err(VideoError::GeometryMismatch { what: "clips for sequence SSIM" });
    }
    let mut total = 0.0;
    for (fa, fb) in a.frames().iter().zip(b.frames()) {
        total += plane_ssim(fa.luma(), fb.luma())?;
    }
    Ok(total / a.frames().len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(w: usize, h: usize, v: u8) -> Frame {
        let mut f = Frame::new(w, h).unwrap();
        f.luma_mut().fill(v);
        f
    }

    #[test]
    fn identical_planes_have_capped_psnr() {
        let f = flat(16, 16, 120);
        assert_eq!(frame_psnr(&f, &f).unwrap(), PSNR_CAP_DB);
    }

    #[test]
    fn known_mse_value() {
        let a = flat(16, 16, 100);
        let b = flat(16, 16, 110);
        let mse = plane_mse(a.luma(), b.luma()).unwrap();
        assert!((mse - 100.0).abs() < 1e-9);
        let psnr = mse_to_psnr(mse);
        assert!((psnr - 28.13).abs() < 0.01, "got {psnr}");
    }

    #[test]
    fn psnr_decreases_with_distortion() {
        let a = flat(16, 16, 100);
        let near = flat(16, 16, 102);
        let far = flat(16, 16, 130);
        assert!(frame_psnr(&a, &near).unwrap() > frame_psnr(&a, &far).unwrap());
    }

    #[test]
    fn mismatched_geometry_rejected() {
        let a = flat(16, 16, 0);
        let b = flat(32, 16, 0);
        assert!(frame_psnr(&a, &b).is_err());
    }

    #[test]
    fn weighted_psnr_includes_chroma() {
        let a = flat(16, 16, 100);
        let mut b = flat(16, 16, 100);
        b.cb_mut().fill(90);
        assert_eq!(frame_psnr(&a, &b).unwrap(), PSNR_CAP_DB);
        assert!(frame_psnr_weighted(&a, &b).unwrap() < PSNR_CAP_DB);
    }

    #[test]
    fn ssim_identical_is_one() {
        let f = flat(16, 16, 77);
        let s = plane_ssim(f.luma(), f.luma()).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "got {s}");
    }

    #[test]
    fn ssim_decreases_with_structural_damage() {
        let mut a = Frame::new(32, 32).unwrap();
        for y in 0..32 {
            for x in 0..32 {
                a.luma_mut().set(x, y, ((x * 8) ^ (y * 8)) as u8);
            }
        }
        // Mild uniform shift barely hurts SSIM; scrambling structure does.
        let mut shifted = a.clone();
        for y in 0..32 {
            for x in 0..32 {
                let v = shifted.luma().get(x, y).saturating_add(6);
                shifted.luma_mut().set(x, y, v);
            }
        }
        let mut scrambled = a.clone();
        for y in 0..32 {
            for x in 0..32 {
                scrambled.luma_mut().set(x, y, a.luma().get(31 - x, y));
            }
        }
        let s_shift = plane_ssim(a.luma(), shifted.luma()).unwrap();
        let s_scram = plane_ssim(a.luma(), scrambled.luma()).unwrap();
        assert!(s_shift > s_scram, "shift {s_shift} vs scramble {s_scram}");
        assert!(s_shift > 0.9);
    }

    #[test]
    fn ssim_rejects_tiny_planes() {
        let a = Plane::new(4, 4, 0).unwrap();
        assert!(plane_ssim(&a, &a).is_err());
    }

    #[test]
    fn bitrate_math() {
        // 1 Mbit over 1 second => 1000 kbps.
        assert!((bitrate_kbps(1_000_000, 30, 30.0) - 1000.0).abs() < 1e-9);
        // Degenerate inputs are safe.
        assert_eq!(bitrate_kbps(100, 0, 30.0), 0.0);
        assert_eq!(bitrate_kbps(100, 30, f64::NAN), 0.0);
    }
}
