//! Frames (4:2:0 YUV triplets) and clips (frame sequences).

use crate::error::VideoError;
use crate::plane::Plane;

/// One 4:2:0 picture: a luma plane plus two half-resolution chroma planes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a mid-grey frame of `width x height` luma samples.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidDimensions`] if either dimension is zero
    /// or odd (4:2:0 chroma needs even luma dimensions).
    pub fn new(width: usize, height: usize) -> Result<Self, VideoError> {
        if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
            return Err(VideoError::InvalidDimensions {
                width,
                height,
                reason: "4:2:0 frames need nonzero, even dimensions",
            });
        }
        Ok(Frame {
            y: Plane::new(width, height, 128)?,
            u: Plane::new(width / 2, height / 2, 128)?,
            v: Plane::new(width / 2, height / 2, 128)?,
        })
    }

    /// Luma width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// The luma plane.
    #[inline]
    pub fn luma(&self) -> &Plane {
        &self.y
    }

    /// Mutable luma plane.
    #[inline]
    pub fn luma_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// The Cb chroma plane (half resolution).
    #[inline]
    pub fn cb(&self) -> &Plane {
        &self.u
    }

    /// Mutable Cb chroma plane.
    #[inline]
    pub fn cb_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// The Cr chroma plane (half resolution).
    #[inline]
    pub fn cr(&self) -> &Plane {
        &self.v
    }

    /// Mutable Cr chroma plane.
    #[inline]
    pub fn cr_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// Total number of samples across all three planes.
    pub fn sample_count(&self) -> usize {
        self.width() * self.height() * 3 / 2
    }
}

/// A finite sequence of equally sized frames with a nominal frame rate.
#[derive(Debug, Clone)]
pub struct Clip {
    name: String,
    frames: Vec<Frame>,
    fps: f64,
}

impl Clip {
    /// Creates a clip from pre-built frames.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::GeometryMismatch`] if `frames` is empty or the
    /// frames disagree on dimensions, and [`VideoError::InvalidDimensions`]
    /// if `fps` is not strictly positive and finite.
    pub fn from_frames(
        name: impl Into<String>,
        frames: Vec<Frame>,
        fps: f64,
    ) -> Result<Self, VideoError> {
        if frames.is_empty() {
            return Err(VideoError::GeometryMismatch { what: "clip and empty frame list" });
        }
        let (w, h) = (frames[0].width(), frames[0].height());
        if frames.iter().any(|f| f.width() != w || f.height() != h) {
            return Err(VideoError::GeometryMismatch { what: "frames within a clip" });
        }
        if !(fps.is_finite() && fps > 0.0) {
            return Err(VideoError::InvalidDimensions {
                width: w,
                height: h,
                reason: "fps must be finite and positive",
            });
        }
        Ok(Clip { name: name.into(), frames, fps })
    }

    /// The clip's name (matches the vbench clip name for synthesized clips).
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The frames of the clip, in display order.
    #[inline]
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Nominal frames per second.
    #[inline]
    pub fn fps(&self) -> f64 {
        self.fps
    }

    /// Luma `(width, height)` shared by every frame.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.frames[0].width(), self.frames[0].height())
    }

    /// Duration in seconds implied by the frame count and frame rate.
    pub fn duration_seconds(&self) -> f64 {
        self.frames.len() as f64 / self.fps
    }

    /// Total luma+chroma samples across the whole clip.
    pub fn total_samples(&self) -> usize {
        self.frames.iter().map(Frame::sample_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_rejects_odd_dimensions() {
        assert!(Frame::new(13, 8).is_err());
        assert!(Frame::new(8, 13).is_err());
        assert!(Frame::new(0, 0).is_err());
    }

    #[test]
    fn frame_chroma_is_half_resolution() {
        let f = Frame::new(64, 48).unwrap();
        assert_eq!(f.cb().width(), 32);
        assert_eq!(f.cb().height(), 24);
        assert_eq!(f.cr().width(), 32);
        assert_eq!(f.sample_count(), 64 * 48 * 3 / 2);
    }

    #[test]
    fn clip_rejects_mismatched_frames() {
        let a = Frame::new(16, 16).unwrap();
        let b = Frame::new(32, 16).unwrap();
        assert!(Clip::from_frames("x", vec![a, b], 30.0).is_err());
    }

    #[test]
    fn clip_rejects_empty_and_bad_fps() {
        assert!(Clip::from_frames("x", vec![], 30.0).is_err());
        let a = Frame::new(16, 16).unwrap();
        assert!(Clip::from_frames("x", vec![a.clone()], 0.0).is_err());
        assert!(Clip::from_frames("x", vec![a], f64::NAN).is_err());
    }

    #[test]
    fn clip_duration() {
        let frames = vec![Frame::new(16, 16).unwrap(); 30];
        let c = Clip::from_frames("x", frames, 30.0).unwrap();
        assert!((c.duration_seconds() - 1.0).abs() < 1e-12);
        assert_eq!(c.dimensions(), (16, 16));
    }
}
