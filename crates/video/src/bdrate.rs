//! Bjøntegaard delta rate (BD-Rate) between rate/quality curves.
//!
//! BD-Rate (Bjøntegaard, VCEG-M33) reports the average percent bitrate
//! difference between two encoders at equal quality. Following the standard
//! method, each curve's `log10(bitrate)` is interpolated as a function of
//! PSNR with a piecewise-cubic Hermite interpolant (PCHIP, as used by the
//! JCT-VC reference tooling), both interpolants are integrated over the
//! overlapping PSNR range, and the difference of means is converted back to
//! a percentage.

use crate::error::VideoError;

/// One operating point on a rate/quality curve.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RatePoint {
    /// Bitrate in kilobits per second; must be positive.
    pub bitrate_kbps: f64,
    /// Quality in dB (PSNR).
    pub psnr_db: f64,
}

/// Computes BD-Rate of `test` relative to `anchor`, in percent.
///
/// Negative values mean `test` achieves the same PSNR with *less* bitrate
/// than `anchor` (better compression). Both curves need at least four
/// points, the convention of the reference implementation.
///
/// ```
/// use vstress_video::bdrate::{bd_rate, RatePoint};
///
/// let anchor: Vec<RatePoint> = [(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0), (4000.0, 41.0)]
///     .map(|(r, q)| RatePoint { bitrate_kbps: r, psnr_db: q })
///     .into();
/// // Same quality at half the rate: BD-Rate is -50%.
/// let test: Vec<RatePoint> =
///     anchor.iter().map(|p| RatePoint { bitrate_kbps: p.bitrate_kbps / 2.0, ..*p }).collect();
/// let bd = bd_rate(&anchor, &test)?;
/// assert!((bd + 50.0).abs() < 0.5);
/// # Ok::<(), vstress_video::VideoError>(())
/// ```
///
/// # Errors
///
/// * [`VideoError::CurveTooShort`] if either curve has fewer than 4 points.
/// * [`VideoError::GeometryMismatch`] if the curves' PSNR ranges do not
///   overlap or contain non-finite/non-positive values.
pub fn bd_rate(anchor: &[RatePoint], test: &[RatePoint]) -> Result<f64, VideoError> {
    let a = prepare(anchor)?;
    let t = prepare(test)?;
    let lo = a.first_q().max(t.first_q());
    let hi = a.last_q().min(t.last_q());
    if hi <= lo {
        return Err(VideoError::GeometryMismatch { what: "PSNR ranges of BD-Rate curves" });
    }
    let int_a = a.integrate(lo, hi);
    let int_t = t.integrate(lo, hi);
    let avg_diff = (int_t - int_a) / (hi - lo);
    Ok((10f64.powf(avg_diff) - 1.0) * 100.0)
}

/// A monotone piecewise-cubic Hermite interpolant of `log10(rate)` vs PSNR.
#[derive(Debug)]
struct Pchip {
    /// Quality values, strictly increasing.
    q: Vec<f64>,
    /// log10(bitrate) values.
    r: Vec<f64>,
    /// Endpoint derivatives (Fritsch–Carlson).
    d: Vec<f64>,
}

fn prepare(points: &[RatePoint]) -> Result<Pchip, VideoError> {
    if points.len() < 4 {
        return Err(VideoError::CurveTooShort { got: points.len(), need: 4 });
    }
    let mut pts: Vec<RatePoint> = points.to_vec();
    for p in &pts {
        if !(p.bitrate_kbps.is_finite() && p.bitrate_kbps > 0.0 && p.psnr_db.is_finite()) {
            return Err(VideoError::GeometryMismatch { what: "BD-Rate curve values" });
        }
    }
    pts.sort_by(|x, y| x.psnr_db.partial_cmp(&y.psnr_db).expect("finite PSNR"));
    pts.dedup_by(|a, b| (a.psnr_db - b.psnr_db).abs() < 1e-9);
    if pts.len() < 4 {
        return Err(VideoError::CurveTooShort { got: pts.len(), need: 4 });
    }
    let q: Vec<f64> = pts.iter().map(|p| p.psnr_db).collect();
    let r: Vec<f64> = pts.iter().map(|p| p.bitrate_kbps.log10()).collect();
    let d = fritsch_carlson(&q, &r);
    Ok(Pchip { q, r, d })
}

/// Fritsch–Carlson monotone derivative estimates for PCHIP.
fn fritsch_carlson(x: &[f64], y: &[f64]) -> Vec<f64> {
    let n = x.len();
    let mut h = vec![0.0; n - 1];
    let mut delta = vec![0.0; n - 1];
    for i in 0..n - 1 {
        h[i] = x[i + 1] - x[i];
        delta[i] = (y[i + 1] - y[i]) / h[i];
    }
    let mut d = vec![0.0; n];
    d[0] = endpoint_derivative(h[0], h[1], delta[0], delta[1]);
    d[n - 1] = endpoint_derivative(h[n - 2], h[n - 3], delta[n - 2], delta[n - 3]);
    for i in 1..n - 1 {
        if delta[i - 1] * delta[i] <= 0.0 {
            d[i] = 0.0;
        } else {
            let w1 = 2.0 * h[i] + h[i - 1];
            let w2 = h[i] + 2.0 * h[i - 1];
            d[i] = (w1 + w2) / (w1 / delta[i - 1] + w2 / delta[i]);
        }
    }
    d
}

/// The PCHIP boundary derivative (as in the JCT-VC BD-rate tooling and
/// MATLAB's `pchip`): the non-centered three-point estimate
/// `((2·h0 + h1)·δ0 − h0·δ1) / (h0 + h1)` for the interval pair nearest
/// the endpoint, clamped for monotonicity — zeroed when its sign
/// disagrees with the first secant, capped at `3·δ0` when the adjacent
/// secants disagree in sign and it overshoots. Using the raw first
/// secant instead (the previous behaviour) is only first-order accurate
/// and skews the integral of every boundary segment.
fn endpoint_derivative(h0: f64, h1: f64, delta0: f64, delta1: f64) -> f64 {
    let d = ((2.0 * h0 + h1) * delta0 - h0 * delta1) / (h0 + h1);
    if d * delta0 <= 0.0 {
        0.0
    } else if delta0 * delta1 <= 0.0 && d.abs() > 3.0 * delta0.abs() {
        3.0 * delta0
    } else {
        d
    }
}

impl Pchip {
    fn first_q(&self) -> f64 {
        self.q[0]
    }

    fn last_q(&self) -> f64 {
        *self.q.last().expect("nonempty")
    }

    /// Integrates the interpolant between `lo` and `hi` (both inside the
    /// knot range) by summing exact cubic-segment integrals.
    fn integrate(&self, lo: f64, hi: f64) -> f64 {
        let mut total = 0.0;
        for i in 0..self.q.len() - 1 {
            let (x0, x1) = (self.q[i], self.q[i + 1]);
            let a = lo.max(x0);
            let b = hi.min(x1);
            if b <= a {
                continue;
            }
            total += self.segment_integral(i, a, b);
        }
        total
    }

    /// Integral of Hermite segment `i` from `a` to `b` via 4-point
    /// Gauss–Legendre quadrature (exact for cubics).
    fn segment_integral(&self, i: usize, a: f64, b: f64) -> f64 {
        const GL_X: [f64; 4] =
            [-0.861136311594053, -0.339981043584856, 0.339981043584856, 0.861136311594053];
        const GL_W: [f64; 4] =
            [0.347854845137454, 0.652145154862546, 0.652145154862546, 0.347854845137454];
        let half = (b - a) / 2.0;
        let mid = (a + b) / 2.0;
        let mut acc = 0.0;
        for k in 0..4 {
            acc += GL_W[k] * self.eval_segment(i, mid + half * GL_X[k]);
        }
        acc * half
    }

    /// Evaluates Hermite segment `i` at quality `x`.
    fn eval_segment(&self, i: usize, x: f64) -> f64 {
        let h = self.q[i + 1] - self.q[i];
        let t = (x - self.q[i]) / h;
        let t2 = t * t;
        let t3 = t2 * t;
        let h00 = 2.0 * t3 - 3.0 * t2 + 1.0;
        let h10 = t3 - 2.0 * t2 + t;
        let h01 = -2.0 * t3 + 3.0 * t2;
        let h11 = t3 - t2;
        h00 * self.r[i] + h10 * h * self.d[i] + h01 * self.r[i + 1] + h11 * h * self.d[i + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(points: &[(f64, f64)]) -> Vec<RatePoint> {
        points.iter().map(|&(r, q)| RatePoint { bitrate_kbps: r, psnr_db: q }).collect()
    }

    #[test]
    fn identical_curves_give_zero() {
        let c = curve(&[(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0), (4000.0, 41.0)]);
        let bd = bd_rate(&c, &c).unwrap();
        assert!(bd.abs() < 1e-9, "got {bd}");
    }

    #[test]
    fn uniformly_cheaper_curve_is_negative() {
        let anchor = curve(&[(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0), (4000.0, 41.0)]);
        // Same quality ladder at half the rate => BD-Rate = -50%.
        let test = curve(&[(250.0, 32.0), (500.0, 35.0), (1000.0, 38.0), (2000.0, 41.0)]);
        let bd = bd_rate(&anchor, &test).unwrap();
        assert!((bd + 50.0).abs() < 0.5, "got {bd}");
    }

    #[test]
    fn uniformly_pricier_curve_is_positive() {
        let anchor = curve(&[(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0), (4000.0, 41.0)]);
        let test = curve(&[(1000.0, 32.0), (2000.0, 35.0), (4000.0, 38.0), (8000.0, 41.0)]);
        let bd = bd_rate(&anchor, &test).unwrap();
        assert!((bd - 100.0).abs() < 1.0, "got {bd}");
    }

    #[test]
    fn antisymmetryish_sign_flip() {
        let a = curve(&[(500.0, 31.0), (900.0, 34.5), (2100.0, 38.2), (4100.0, 40.9)]);
        let b = curve(&[(450.0, 31.5), (800.0, 35.0), (1800.0, 38.5), (3600.0, 41.5)]);
        let ab = bd_rate(&a, &b).unwrap();
        let ba = bd_rate(&b, &a).unwrap();
        assert!(ab * ba < 0.0, "BD-Rate must flip sign when curves swap: {ab} vs {ba}");
    }

    #[test]
    fn short_curves_rejected() {
        let c = curve(&[(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0)]);
        assert!(matches!(bd_rate(&c, &c), Err(VideoError::CurveTooShort { .. })));
    }

    #[test]
    fn disjoint_quality_ranges_rejected() {
        let a = curve(&[(500.0, 30.0), (600.0, 31.0), (700.0, 32.0), (800.0, 33.0)]);
        let b = curve(&[(500.0, 40.0), (600.0, 41.0), (700.0, 42.0), (800.0, 43.0)]);
        assert!(bd_rate(&a, &b).is_err());
    }

    #[test]
    fn nonpositive_rate_rejected() {
        let a = curve(&[(0.0, 30.0), (600.0, 31.0), (700.0, 32.0), (800.0, 33.0)]);
        assert!(bd_rate(&a, &a).is_err());
    }

    #[test]
    fn endpoint_derivatives_are_exact_for_quadratics() {
        // The three-point boundary formula reproduces quadratics exactly;
        // the raw first secant (the old behaviour) cannot. y = (x+1)^2 on
        // x = 0..3: y' = 2(x+1), so d[0] = 2 and d[3] = 8.
        let x = [0.0, 1.0, 2.0, 3.0];
        let y = [1.0, 4.0, 9.0, 16.0];
        let d = fritsch_carlson(&x, &y);
        assert!((d[0] - 2.0).abs() < 1e-12, "left endpoint: got {}", d[0]);
        assert!((d[3] - 8.0).abs() < 1e-12, "right endpoint: got {}", d[3]);
    }

    #[test]
    fn endpoint_derivative_clamps_for_monotonicity() {
        // Sign disagreement with the first secant zeroes the derivative.
        assert_eq!(endpoint_derivative(1.0, 1.0, 0.1, 5.0), 0.0);
        // Adjacent secants of opposite sign with overshoot cap at 3·δ0.
        let d = endpoint_derivative(1.0, 0.01, 1.0, -200.0);
        assert!((d - 3.0).abs() < 1e-12, "got {d}");
        // The plain well-behaved case passes through unclamped.
        let d = endpoint_derivative(1.0, 1.0, 2.0, 4.0);
        assert!((d - ((3.0 * 2.0 - 4.0) / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn resampling_a_closed_form_cubic_curve_is_near_zero() {
        // Both curves sample the same closed-form monotone cubic
        // log10(rate) = f(q), so the true BD-Rate over the overlap is 0.
        // With the reference endpoint formula the interpolants agree to
        // well under 0.1%; the raw-secant endpoints miss by much more on
        // the boundary segments.
        let f = |q: f64| {
            let u = q - 30.0;
            2.0 + 0.06 * u + 0.002 * u * u + 0.0001 * u * u * u
        };
        let sample = |qs: &[f64]| -> Vec<RatePoint> {
            qs.iter().map(|&q| RatePoint { bitrate_kbps: 10f64.powf(f(q)), psnr_db: q }).collect()
        };
        let anchor = sample(&[30.0, 33.0, 38.0, 41.0, 45.0]);
        let test = sample(&[30.5, 34.0, 37.0, 40.0, 44.5]);
        let bd = bd_rate(&anchor, &test).unwrap();
        assert!(bd.abs() < 0.1, "resampled cubic should give ~0% BD-Rate, got {bd}");
    }

    #[test]
    fn unsorted_input_is_handled() {
        let sorted = curve(&[(500.0, 32.0), (1000.0, 35.0), (2000.0, 38.0), (4000.0, 41.0)]);
        let shuffled = curve(&[(2000.0, 38.0), (500.0, 32.0), (4000.0, 41.0), (1000.0, 35.0)]);
        let bd = bd_rate(&sorted, &shuffled).unwrap();
        assert!(bd.abs() < 1e-9);
    }
}
