//! The vbench clip catalogue (Table 1 of the paper) and its synthesizer.
//!
//! The paper evaluates on vbench, "a video benchmarking suite containing a
//! set of 15 five-second-long videos of varying resolutions, framerates, and
//! complexities (measured as entropy)". The original footage cannot be
//! redistributed, so [`ClipSpec::synthesize`] manufactures a deterministic
//! stand-in with the listed resolution class, frame rate and entropy (see
//! [`crate::synth`] for the substitution rationale).
//!
//! Table 1 in the paper lists `bike` twice and omits `house`, which appears
//! in its Table 2 (instruction mix). We keep the fifteen *unique* vbench
//! clips: the fourteen unique rows from Table 1 plus `house`.

use crate::error::VideoError;
use crate::frame::Clip;
use crate::synth::{SceneClass, SynthParams};

/// Resolution classes used by vbench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Resolution {
    /// 854 x 480.
    P480,
    /// 1280 x 720.
    P720,
    /// 1920 x 1080.
    P1080,
    /// 3840 x 2160.
    P2160,
}

impl Resolution {
    /// Full luma dimensions `(width, height)` of this class.
    pub fn full_dimensions(self) -> (usize, usize) {
        match self {
            Resolution::P480 => (854, 480),
            Resolution::P720 => (1280, 720),
            Resolution::P1080 => (1920, 1080),
            Resolution::P2160 => (3840, 2160),
        }
    }

    /// Short display label (`"720p"` etc.).
    pub fn label(self) -> &'static str {
        match self {
            Resolution::P480 => "480p",
            Resolution::P720 => "720p",
            Resolution::P1080 => "1080p",
            Resolution::P2160 => "2160p",
        }
    }
}

/// Static description of one vbench clip (one Table 1 row).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ClipSpec {
    /// Clip name as used throughout the paper's figures.
    pub name: &'static str,
    /// Resolution class.
    pub resolution: Resolution,
    /// Frames per second.
    pub fps: u32,
    /// vbench entropy (spatio-temporal complexity), 0–8.
    pub entropy: f64,
    /// Content class driving the synthesizer.
    pub class: SceneClass,
}

/// Controls the pixel scale at which clips are synthesized.
///
/// Encoding full-resolution five-second clips through five software encoder
/// models is not tractable in a test/benchmark loop, so clips are scaled
/// down uniformly. Because the scale factor is identical for every encoder
/// and every clip, all *ratios* and *trends* the paper reports are
/// preserved; raise the fidelity to approach absolute scale.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FidelityConfig {
    /// Divisor applied to each full-resolution dimension (e.g. 8 turns
    /// 1920x1080 into 240x134 → rounded to 240x136).
    pub dimension_divisor: usize,
    /// Number of frames to synthesize (the real clips are 5 s long; the
    /// default models a shorter excerpt).
    pub frame_count: usize,
    /// Base seed mixed with the clip name for deterministic synthesis.
    pub seed: u64,
}

impl Default for FidelityConfig {
    fn default() -> Self {
        FidelityConfig { dimension_divisor: 8, frame_count: 8, seed: 0x5ee1 }
    }
}

impl FidelityConfig {
    /// A reduced-cost profile for unit tests and doc examples.
    pub fn smoke() -> Self {
        FidelityConfig { dimension_divisor: 16, frame_count: 4, seed: 0x5ee1 }
    }

    /// Scaled, even-rounded dimensions for a resolution class.
    pub fn scaled_dimensions(&self, res: Resolution) -> (usize, usize) {
        let (w, h) = res.full_dimensions();
        let round_even = |v: usize| ((v / self.dimension_divisor).max(8) + 1) & !1;
        (round_even(w), round_even(h))
    }
}

impl ClipSpec {
    /// Synthesizes this clip at the given fidelity.
    ///
    /// The result is deterministic in `(self.name, fidelity.seed)`.
    pub fn synthesize(&self, fidelity: &FidelityConfig) -> Clip {
        let (width, height) = fidelity.scaled_dimensions(self.resolution);
        let params = SynthParams {
            width,
            height,
            frame_count: fidelity.frame_count,
            fps: self.fps as f64,
            entropy: self.entropy,
            class: self.class,
            seed: fidelity.seed ^ name_hash(self.name),
        };
        params.synthesize(self.name).expect("catalogue specs always have valid dimensions")
    }
}

fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// The fifteen vbench clips (Table 1, deduplicated, plus `house`).
pub const CATALOGUE: [ClipSpec; 15] = [
    ClipSpec {
        name: "desktop",
        resolution: Resolution::P720,
        fps: 30,
        entropy: 0.2,
        class: SceneClass::Screen,
    },
    ClipSpec {
        name: "presentation",
        resolution: Resolution::P1080,
        fps: 25,
        entropy: 0.2,
        class: SceneClass::Screen,
    },
    ClipSpec {
        name: "bike",
        resolution: Resolution::P720,
        fps: 29,
        entropy: 0.92,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "funny",
        resolution: Resolution::P1080,
        fps: 30,
        entropy: 2.5,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "house",
        resolution: Resolution::P720,
        fps: 29,
        entropy: 3.0,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "cricket",
        resolution: Resolution::P720,
        fps: 30,
        entropy: 3.4,
        class: SceneClass::Action,
    },
    ClipSpec {
        name: "game1",
        resolution: Resolution::P1080,
        fps: 60,
        entropy: 4.6,
        class: SceneClass::Game,
    },
    ClipSpec {
        name: "game2",
        resolution: Resolution::P720,
        fps: 30,
        entropy: 4.9,
        class: SceneClass::Game,
    },
    ClipSpec {
        name: "girl",
        resolution: Resolution::P720,
        fps: 30,
        entropy: 5.9,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "chicken",
        resolution: Resolution::P2160,
        fps: 30,
        entropy: 5.9,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "game3",
        resolution: Resolution::P720,
        fps: 59,
        entropy: 6.1,
        class: SceneClass::Game,
    },
    ClipSpec {
        name: "cat",
        resolution: Resolution::P480,
        fps: 29,
        entropy: 6.8,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "holi",
        resolution: Resolution::P480,
        fps: 30,
        entropy: 7.0,
        class: SceneClass::Action,
    },
    ClipSpec {
        name: "landscape",
        resolution: Resolution::P1080,
        fps: 29,
        entropy: 7.2,
        class: SceneClass::Natural,
    },
    ClipSpec {
        name: "hall",
        resolution: Resolution::P1080,
        fps: 29,
        entropy: 7.7,
        class: SceneClass::Action,
    },
];

/// Looks up a clip spec by name.
///
/// # Errors
///
/// Returns [`VideoError::UnknownClip`] if `name` is not in the catalogue.
pub fn clip(name: &str) -> Result<&'static ClipSpec, VideoError> {
    CATALOGUE
        .iter()
        .find(|c| c.name == name)
        .ok_or_else(|| VideoError::UnknownClip(name.to_owned()))
}

/// Clip names in catalogue (entropy-ascending-ish) order.
pub fn clip_names() -> impl Iterator<Item = &'static str> {
    CATALOGUE.iter().map(|c| c.name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::spatial_activity;

    #[test]
    fn catalogue_has_fifteen_unique_clips() {
        let mut names: Vec<_> = clip_names().collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15);
    }

    #[test]
    fn lookup_known_and_unknown() {
        assert_eq!(clip("game1").unwrap().fps, 60);
        assert!(matches!(clip("nope"), Err(VideoError::UnknownClip(_))));
    }

    #[test]
    fn scaled_dimensions_are_even_and_bounded() {
        let f = FidelityConfig::default();
        for spec in &CATALOGUE {
            let (w, h) = f.scaled_dimensions(spec.resolution);
            assert_eq!(w % 2, 0);
            assert_eq!(h % 2, 0);
            assert!(w >= 8 && h >= 8);
            let (fw, _) = spec.resolution.full_dimensions();
            assert!(w <= fw);
        }
    }

    #[test]
    fn synthesis_matches_spec() {
        let f = FidelityConfig::smoke();
        let c = clip("desktop").unwrap().synthesize(&f);
        assert_eq!(c.name(), "desktop");
        assert_eq!(c.frames().len(), f.frame_count);
        assert_eq!(c.fps(), 30.0);
    }

    #[test]
    fn entropy_ordering_survives_synthesis() {
        let f = FidelityConfig::smoke();
        let lo = clip("desktop").unwrap().synthesize(&f);
        let hi = clip("hall").unwrap().synthesize(&f);
        assert!(spatial_activity(&hi) > spatial_activity(&lo));
    }

    #[test]
    fn resolution_labels() {
        assert_eq!(Resolution::P2160.label(), "2160p");
        assert_eq!(Resolution::P480.full_dimensions(), (854, 480));
    }
}
