//! YUV4MPEG2 (Y4M) file I/O — the interchange format every real encoder
//! toolchain speaks, so clips can come from (and go back to) actual video
//! files instead of the synthesizer.
//!
//! Supported: progressive 4:2:0 (`C420`, `C420jpeg`, `C420mpeg2`,
//! `C420paldv` — all stored identically at this layer), any size/rate.

use crate::error::VideoError;
use crate::frame::{Clip, Frame};
use std::io::{BufRead, Write};

/// Writes `clip` as a Y4M stream.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_y4m<W: Write>(clip: &Clip, mut out: W) -> std::io::Result<()> {
    let (w, h) = clip.dimensions();
    // Rational frame rate: round to a denominator of 1000 (covers the
    // NTSC-ish rates vbench uses).
    let num = (clip.fps() * 1000.0).round() as u64;
    writeln!(out, "YUV4MPEG2 W{w} H{h} F{num}:1000 Ip A1:1 C420jpeg")?;
    for frame in clip.frames() {
        writeln!(out, "FRAME")?;
        for plane in [frame.luma(), frame.cb(), frame.cr()] {
            for y in 0..plane.height() {
                out.write_all(plane.row(y))?;
            }
        }
    }
    Ok(())
}

/// Reads a Y4M stream into a [`Clip`].
///
/// # Errors
///
/// Returns [`VideoError::GeometryMismatch`] for malformed headers,
/// unsupported chroma subsampling, or truncated frame data.
pub fn read_y4m<R: BufRead>(mut input: R, name: &str) -> Result<Clip, VideoError> {
    let mut header = String::new();
    input
        .read_line(&mut header)
        .map_err(|_| VideoError::GeometryMismatch { what: "y4m stream and reader" })?;
    let header = header.trim_end();
    if !header.starts_with("YUV4MPEG2") {
        return Err(VideoError::GeometryMismatch { what: "y4m signature and input" });
    }
    let mut width = 0usize;
    let mut height = 0usize;
    let mut fps = 30.0f64;
    for token in header.split_whitespace().skip(1) {
        let (tag, value) = token.split_at(1);
        match tag {
            "W" => width = value.parse().unwrap_or(0),
            "H" => height = value.parse().unwrap_or(0),
            "F" => {
                if let Some((n, d)) = value.split_once(':') {
                    let n: f64 = n.parse().unwrap_or(30.0);
                    let d: f64 = d.parse().unwrap_or(1.0);
                    if d > 0.0 {
                        fps = n / d;
                    }
                }
            }
            "C" if !value.starts_with("420") => {
                return Err(VideoError::GeometryMismatch {
                    what: "y4m chroma subsampling and 4:2:0 reader",
                });
            }
            _ => {}
        }
    }
    if width == 0 || height == 0 || !width.is_multiple_of(2) || !height.is_multiple_of(2) {
        return Err(VideoError::InvalidDimensions {
            width,
            height,
            reason: "y4m header must carry even, nonzero W/H",
        });
    }

    let mut frames = Vec::new();
    let y_len = width * height;
    let c_len = (width / 2) * (height / 2);
    let mut buf = vec![0u8; y_len.max(c_len)];
    loop {
        let mut marker = String::new();
        let n = input
            .read_line(&mut marker)
            .map_err(|_| VideoError::GeometryMismatch { what: "y4m frame marker and reader" })?;
        if n == 0 {
            break; // clean EOF
        }
        if !marker.trim_end().starts_with("FRAME") {
            return Err(VideoError::GeometryMismatch { what: "y4m frame marker and input" });
        }
        let mut frame = Frame::new(width, height)?;
        for (plane_idx, len) in [(0usize, y_len), (1, c_len), (2, c_len)] {
            let dst = &mut buf[..len];
            std::io::Read::read_exact(&mut input, dst)
                .map_err(|_| VideoError::GeometryMismatch { what: "y4m frame data and size" })?;
            let plane = match plane_idx {
                0 => frame.luma_mut(),
                1 => frame.cb_mut(),
                _ => frame.cr_mut(),
            };
            let pw = plane.width();
            for y in 0..plane.height() {
                plane.row_mut(y).copy_from_slice(&dst[y * pw..(y + 1) * pw]);
            }
        }
        frames.push(frame);
    }
    Clip::from_frames(name, frames, fps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbench::{self, FidelityConfig};

    #[test]
    fn roundtrip_preserves_every_sample() {
        let clip = vbench::clip("cat").unwrap().synthesize(&FidelityConfig::smoke());
        let mut bytes = Vec::new();
        write_y4m(&clip, &mut bytes).unwrap();
        let back = read_y4m(std::io::Cursor::new(&bytes), "cat").unwrap();
        assert_eq!(back.frames().len(), clip.frames().len());
        assert!((back.fps() - clip.fps()).abs() < 1e-9);
        for (a, b) in clip.frames().iter().zip(back.frames()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn header_is_standard() {
        let clip = vbench::clip("desktop").unwrap().synthesize(&FidelityConfig::smoke());
        let mut bytes = Vec::new();
        write_y4m(&clip, &mut bytes).unwrap();
        let header = String::from_utf8_lossy(&bytes[..60]);
        assert!(header.starts_with("YUV4MPEG2 W"));
        assert!(header.contains(" C420jpeg"));
    }

    #[test]
    fn rejects_garbage_and_wrong_chroma() {
        assert!(read_y4m(std::io::Cursor::new(b"not y4m at all\n".to_vec()), "x").is_err());
        let bad = b"YUV4MPEG2 W16 H16 F30:1 Ip A1:1 C444\n".to_vec();
        assert!(read_y4m(std::io::Cursor::new(bad), "x").is_err());
    }

    #[test]
    fn rejects_truncated_frames() {
        let clip = vbench::clip("cat").unwrap().synthesize(&FidelityConfig::smoke());
        let mut bytes = Vec::new();
        write_y4m(&clip, &mut bytes).unwrap();
        bytes.truncate(bytes.len() - 7);
        assert!(read_y4m(std::io::Cursor::new(&bytes), "cat").is_err());
    }

    #[test]
    fn zero_frames_is_rejected_by_clip_constructor() {
        let bad = b"YUV4MPEG2 W16 H16 F30:1 Ip A1:1 C420jpeg\n".to_vec();
        assert!(read_y4m(std::io::Cursor::new(bad), "x").is_err());
    }
}
