//! Deterministic synthetic video content.
//!
//! The paper's workloads are the fifteen clips of the vbench suite — real
//! footage from Netflix, Xiph.org and SPEC2017 that cannot be redistributed
//! here. vbench's own thesis (Lottarini et al., ASPLOS'18) is that encoder
//! behaviour is captured by three clip properties: **resolution**,
//! **frame rate** and **entropy** (spatial/temporal complexity). This module
//! manufactures clips that hit those three axes deterministically, so every
//! experiment in the workbench is reproducible bit-for-bit.
//!
//! The generator layers:
//!
//! 1. a multi-octave value-noise texture field (entropy sets the number of
//!    octaves and the high-frequency amplitude),
//! 2. global pan motion plus independently moving textured sprites
//!    (entropy sets sprite count and motion magnitude),
//! 3. scene-class overlays — flat panels and glyph-like blocks for
//!    desktop/presentation content, high-contrast moving detail for games
//!    and sports.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::error::VideoError;
use crate::frame::{Clip, Frame};
use crate::plane::Plane;

/// Broad content class of a synthetic clip.
///
/// Classes change the *kind* of detail in the clip, matching the qualitative
/// spread of vbench (screen content vs natural footage vs game captures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SceneClass {
    /// Mostly static screen content: flat panels, sharp edges, glyph rows.
    Screen,
    /// Natural video: smooth textures, gentle global motion.
    Natural,
    /// Game capture: hard edges, sprites, fast erratic motion.
    Game,
    /// Sports/high-action footage: large coherent motion, crowd texture.
    Action,
}

/// Parameters controlling synthesis of one clip.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SynthParams {
    /// Luma width in samples (must be even).
    pub width: usize,
    /// Luma height in samples (must be even).
    pub height: usize,
    /// Number of frames to generate.
    pub frame_count: usize,
    /// Nominal frames per second recorded on the clip.
    pub fps: f64,
    /// vbench-style entropy in `[0, 8]`; higher means more spatial detail
    /// and more motion.
    pub entropy: f64,
    /// Content class.
    pub class: SceneClass,
    /// Seed for the deterministic generator.
    pub seed: u64,
}

impl SynthParams {
    /// Generates the clip described by these parameters.
    ///
    /// # Errors
    ///
    /// Returns [`VideoError::InvalidDimensions`] for zero/odd dimensions or
    /// a zero frame count.
    pub fn synthesize(&self, name: &str) -> Result<Clip, VideoError> {
        if self.frame_count == 0 {
            return Err(VideoError::InvalidDimensions {
                width: self.width,
                height: self.height,
                reason: "frame count must be nonzero",
            });
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        let field = NoiseField::new(&mut rng, self.entropy);
        let sprites = Sprite::spawn(&mut rng, self);
        let mut frames = Vec::with_capacity(self.frame_count);
        for t in 0..self.frame_count {
            frames.push(self.render_frame(t, &field, &sprites)?);
        }
        Clip::from_frames(name, frames, self.fps)
    }

    fn render_frame(
        &self,
        t: usize,
        field: &NoiseField,
        sprites: &[Sprite],
    ) -> Result<Frame, VideoError> {
        let mut frame = Frame::new(self.width, self.height)?;
        let motion = self.global_motion(t);
        render_luma(frame.luma_mut(), t, field, sprites, motion, self);
        render_chroma(frame.cb_mut(), field, motion, 31, self);
        render_chroma(frame.cr_mut(), field, motion, 67, self);
        Ok(frame)
    }

    /// Global pan offset at frame `t`, in luma samples.
    fn global_motion(&self, t: usize) -> (f64, f64) {
        let speed = match self.class {
            SceneClass::Screen => 0.0,
            SceneClass::Natural => 0.4 + self.entropy * 0.15,
            SceneClass::Game => 0.8 + self.entropy * 0.35,
            SceneClass::Action => 1.0 + self.entropy * 0.30,
        };
        let phase = t as f64 * 0.21;
        (speed * t as f64, speed * 0.5 * t as f64 + 2.0 * phase.sin())
    }
}

/// Multi-octave value-noise lattice.
///
/// Each octave is a coarse lattice of random values sampled with bilinear
/// interpolation; octave frequency doubles and amplitude decays. Entropy
/// controls the octave count and the persistence (how slowly amplitude
/// decays), which directly sets the spatial information content.
#[derive(Debug)]
struct NoiseField {
    octaves: Vec<Octave>,
}

#[derive(Debug)]
struct Octave {
    lattice: Vec<i16>,
    size: usize,
    cell: f64,
    amplitude: f64,
}

impl NoiseField {
    fn new(rng: &mut SmallRng, entropy: f64) -> Self {
        let octave_count = 2 + (entropy.clamp(0.0, 8.0) * 0.6).round() as usize;
        let persistence = 0.35 + entropy.clamp(0.0, 8.0) / 8.0 * 0.45;
        let mut octaves = Vec::with_capacity(octave_count);
        let mut amplitude = 64.0;
        let mut cell = 64.0;
        for _ in 0..octave_count {
            let size = 64;
            let lattice = (0..size * size).map(|_| rng.gen_range(-128i16..=127)).collect();
            octaves.push(Octave { lattice, size, cell, amplitude });
            amplitude *= persistence;
            cell /= 2.0;
        }
        NoiseField { octaves }
    }

    /// Samples the field at continuous coordinates; output roughly in
    /// `[-96, 96]`.
    ///
    /// This is the straightforward per-point reference form; the render
    /// loops use `NoiseField::row_state` + `NoiseField::sample_in_row`,
    /// which hoist the y-dependent half of the work out of the pixel loop
    /// and are pinned bit-identical to this form by a property test.
    #[cfg(test)]
    fn sample(&self, x: f64, y: f64) -> f64 {
        let mut acc = 0.0;
        for oct in &self.octaves {
            let fx = x / oct.cell;
            let fy = y / oct.cell;
            let x0 = fx.floor();
            let y0 = fy.floor();
            let tx = fx - x0;
            let ty = fy - y0;
            let n = oct.size as i64;
            let xi = (x0 as i64).rem_euclid(n) as usize;
            let yi = (y0 as i64).rem_euclid(n) as usize;
            let xj = (xi + 1) % oct.size;
            let yj = (yi + 1) % oct.size;
            let v00 = oct.lattice[yi * oct.size + xi] as f64;
            let v10 = oct.lattice[yi * oct.size + xj] as f64;
            let v01 = oct.lattice[yj * oct.size + xi] as f64;
            let v11 = oct.lattice[yj * oct.size + xj] as f64;
            let top = v00 + (v10 - v00) * smooth(tx);
            let bot = v01 + (v11 - v01) * smooth(tx);
            acc += (top + (bot - top) * smooth(ty)) / 128.0 * oct.amplitude;
        }
        acc
    }

    /// Precomputes, per octave, everything `sample` derives from `y`
    /// alone: the two lattice row offsets and the smoothed vertical
    /// interpolation weight. One call per rendered row replaces one per
    /// pixel.
    fn row_state(&self, y: f64) -> ([OctaveRow; MAX_OCTAVES], usize) {
        let mut rows = [OctaveRow::default(); MAX_OCTAVES];
        for (oct, row) in self.octaves.iter().zip(rows.iter_mut()) {
            let fy = y / oct.cell;
            let y0 = fy.floor();
            let ty = fy - y0;
            let n = oct.size as i64;
            let yi = (y0 as i64).rem_euclid(n) as usize;
            let yj = (yi + 1) % oct.size;
            *row = OctaveRow { row0: yi * oct.size, row1: yj * oct.size, sm_ty: smooth(ty) };
        }
        (rows, self.octaves.len())
    }

    /// Samples at horizontal position `x` within a row prepared by
    /// `NoiseField::row_state`. Performs the identical arithmetic, in the
    /// identical order, as the reference `NoiseField::sample`.
    fn sample_in_row(&self, x: f64, rows: &[OctaveRow]) -> f64 {
        let mut acc = 0.0;
        for (oct, row) in self.octaves.iter().zip(rows) {
            let fx = x / oct.cell;
            let x0 = fx.floor();
            let tx = fx - x0;
            let n = oct.size as i64;
            let xi = (x0 as i64).rem_euclid(n) as usize;
            let xj = (xi + 1) % oct.size;
            let v00 = oct.lattice[row.row0 + xi] as f64;
            let v10 = oct.lattice[row.row0 + xj] as f64;
            let v01 = oct.lattice[row.row1 + xi] as f64;
            let v11 = oct.lattice[row.row1 + xj] as f64;
            let sm_tx = smooth(tx);
            let top = v00 + (v10 - v00) * sm_tx;
            let bot = v01 + (v11 - v01) * sm_tx;
            acc += (top + (bot - top) * row.sm_ty) / 128.0 * oct.amplitude;
        }
        acc
    }
}

/// Upper bound on the octave count: `2 + (8.0 * 0.6).round()`.
const MAX_OCTAVES: usize = 8;

/// The y-dependent half of one octave's bilinear sample, hoisted out of
/// the pixel loop by [`NoiseField::row_state`].
#[derive(Debug, Clone, Copy, Default)]
struct OctaveRow {
    /// Lattice offset of the row containing the sample point.
    row0: usize,
    /// Lattice offset of the row below (wrapped).
    row1: usize,
    /// `smooth(ty)` — the vertical interpolation weight.
    sm_ty: f64,
}

#[inline]
fn smooth(t: f64) -> f64 {
    t * t * (3.0 - 2.0 * t)
}

/// An independently moving textured rectangle.
#[derive(Debug)]
struct Sprite {
    x0: f64,
    y0: f64,
    vx: f64,
    vy: f64,
    w: usize,
    h: usize,
    tone: i32,
    texture_seed: u64,
}

impl Sprite {
    fn spawn(rng: &mut SmallRng, p: &SynthParams) -> Vec<Sprite> {
        let count = match p.class {
            SceneClass::Screen => (p.entropy * 0.8) as usize,
            SceneClass::Natural => 1 + (p.entropy * 0.9) as usize,
            SceneClass::Game => 2 + (p.entropy * 1.6) as usize,
            SceneClass::Action => 2 + (p.entropy * 1.2) as usize,
        };
        let vmax = 0.5 + p.entropy * 0.5;
        (0..count)
            .map(|_| {
                let w = rng.gen_range(p.width / 16..=p.width / 6).max(4);
                let h = rng.gen_range(p.height / 16..=p.height / 6).max(4);
                Sprite {
                    x0: rng.gen_range(0.0..p.width as f64),
                    y0: rng.gen_range(0.0..p.height as f64),
                    vx: rng.gen_range(-vmax..vmax),
                    vy: rng.gen_range(-vmax..vmax),
                    w,
                    h,
                    tone: rng.gen_range(-70i32..70),
                    texture_seed: rng.gen(),
                }
            })
            .collect()
    }

    /// Top-left corner at frame `t`, wrapped to the frame. Depends only on
    /// `(sprite, t)`, so the render loop computes it once per frame
    /// instead of once per pixel.
    fn position(&self, t: usize, frame_w: usize, frame_h: usize) -> (usize, usize) {
        let px = (self.x0 + self.vx * t as f64).rem_euclid(frame_w as f64) as usize;
        let py = (self.y0 + self.vy * t as f64).rem_euclid(frame_h as f64) as usize;
        (px, py)
    }

    /// Sprite-local sample value at frame `t`, if `(x, y)` lies inside it
    /// — the reference form of the hoisted `position` + `texel` pair the
    /// render loop uses, kept for the equivalence test.
    #[cfg(test)]
    fn sample(&self, x: usize, y: usize, t: usize, frame_w: usize, frame_h: usize) -> Option<i32> {
        let (px, py) = self.position(t, frame_w, frame_h);
        let dx = (x + frame_w - px) % frame_w;
        let dy = (y + frame_h - py) % frame_h;
        if dx < self.w && dy < self.h {
            Some(self.texel(dx, dy))
        } else {
            None
        }
    }

    /// Texture value at sprite-local offset `(dx, dy)` (callers have
    /// already established `dx < self.w && dy < self.h`).
    #[inline]
    fn texel(&self, dx: usize, dy: usize) -> i32 {
        let tex = hash2(self.texture_seed, (dx / 2) as u64, (dy / 2) as u64);
        self.tone + (tex % 33) as i32 - 16
    }
}

#[inline]
fn hash2(seed: u64, a: u64, b: u64) -> u64 {
    let mut x =
        seed ^ a.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ b.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

fn render_luma(
    plane: &mut Plane,
    t: usize,
    field: &NoiseField,
    sprites: &[Sprite],
    motion: (f64, f64),
    p: &SynthParams,
) {
    let (w, h) = (plane.width(), plane.height());
    // Sprite positions depend only on the frame index; the per-row pass
    // below then keeps just the sprites whose vertical span covers the
    // row, in their original order (overlap blending is order-sensitive).
    let positions: Vec<(usize, usize)> = sprites.iter().map(|s| s.position(t, w, h)).collect();
    let mut row_sprites: Vec<(&Sprite, usize, usize)> = Vec::with_capacity(sprites.len());
    for y in 0..h {
        row_sprites.clear();
        for (s, &(px, py)) in sprites.iter().zip(&positions) {
            let dy = (y + h - py) % h;
            if dy < s.h {
                row_sprites.push((s, px, dy));
            }
        }
        let (rows, n) = field.row_state(y as f64 + motion.1);
        let rows = &rows[..n];
        for x in 0..w {
            let mut v = 128.0 + field.sample_in_row(x as f64 + motion.0, rows);
            if matches!(p.class, SceneClass::Screen) {
                v = screen_overlay(v, x, y, p);
            }
            let mut vi = v as i32;
            for &(s, px, dy) in &row_sprites {
                let dx = (x + w - px) % w;
                if dx < s.w {
                    vi = 128 + s.texel(dx, dy) + (vi - 128) / 4;
                }
            }
            plane.set(x, y, vi.clamp(0, 255) as u8);
        }
    }
    if matches!(p.class, SceneClass::Game | SceneClass::Action) {
        // Hard-edged HUD/score band typical of game captures.
        let band = (h / 12).max(2);
        for y in 0..band {
            for x in 0..w {
                let glyph = hash2(p.seed, (x / 3) as u64, (y / 3) as u64).is_multiple_of(5);
                plane.set(x, y, if glyph { 235 } else { 28 });
            }
        }
    }
}

/// Replaces natural texture with flat panels plus glyph-like rows in screen
/// content; keeps a small amount of noise so the content is not degenerate.
fn screen_overlay(v: f64, x: usize, y: usize, p: &SynthParams) -> f64 {
    let panel = hash2(p.seed, (x / 48) as u64, (y / 40) as u64);
    let base = 60.0 + (panel % 160) as f64;
    let in_text_row = (y / 6).is_multiple_of(3);
    if in_text_row && hash2(p.seed ^ 1, (x / 2) as u64, (y / 6) as u64).is_multiple_of(3) {
        // Dark glyph pixel on the panel.
        (base - 90.0).max(8.0)
    } else {
        base + (v - 128.0) * 0.05
    }
}

fn render_chroma(
    plane: &mut Plane,
    field: &NoiseField,
    motion: (f64, f64),
    bias: i32,
    p: &SynthParams,
) {
    let chroma_gain = match p.class {
        SceneClass::Screen => 0.15,
        _ => 0.5,
    };
    for y in 0..plane.height() {
        let (rows, count) = field.row_state(y as f64 * 2.0 + motion.1);
        let rows = &rows[..count];
        for x in 0..plane.width() {
            let n = field.sample_in_row(x as f64 * 2.0 + motion.0 + bias as f64, rows);
            let v = 128.0 + n * chroma_gain + (bias - 49) as f64 * 0.2;
            plane.set(x, y, (v as i32).clamp(0, 255) as u8);
        }
    }
}

/// Mean per-pixel absolute difference between consecutive frames — a cheap
/// proxy for temporal complexity used by tests to validate that entropy
/// ordering is preserved by the generator.
pub fn temporal_activity(clip: &Clip) -> f64 {
    let frames = clip.frames();
    if frames.len() < 2 {
        return 0.0;
    }
    let mut total = 0u64;
    let mut n = 0u64;
    for pair in frames.windows(2) {
        let (a, b) = (pair[0].luma(), pair[1].luma());
        for y in 0..a.height() {
            for x in 0..a.width() {
                total += (a.get(x, y) as i32 - b.get(x, y) as i32).unsigned_abs() as u64;
                n += 1;
            }
        }
    }
    total as f64 / n as f64
}

/// Mean absolute horizontal gradient of the first frame — a cheap proxy for
/// spatial complexity.
pub fn spatial_activity(clip: &Clip) -> f64 {
    let y = clip.frames()[0].luma();
    let mut total = 0u64;
    let mut n = 0u64;
    for row in 0..y.height() {
        for col in 1..y.width() {
            total += (y.get(col, row) as i32 - y.get(col - 1, row) as i32).unsigned_abs() as u64;
            n += 1;
        }
    }
    total as f64 / n.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(entropy: f64, class: SceneClass) -> SynthParams {
        SynthParams { width: 64, height: 48, frame_count: 4, fps: 30.0, entropy, class, seed: 7 }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = params(4.0, SceneClass::Game).synthesize("a").unwrap();
        let b = params(4.0, SceneClass::Game).synthesize("a").unwrap();
        for (fa, fb) in a.frames().iter().zip(b.frames()) {
            assert_eq!(fa, fb);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut p = params(4.0, SceneClass::Natural);
        let a = p.synthesize("a").unwrap();
        p.seed = 8;
        let b = p.synthesize("a").unwrap();
        assert_ne!(a.frames()[0], b.frames()[0]);
    }

    #[test]
    fn higher_entropy_gives_more_spatial_detail() {
        let lo = params(0.2, SceneClass::Natural).synthesize("lo").unwrap();
        let hi = params(7.5, SceneClass::Natural).synthesize("hi").unwrap();
        assert!(spatial_activity(&hi) > spatial_activity(&lo) * 1.5);
    }

    #[test]
    fn higher_entropy_gives_more_motion() {
        let lo = params(0.5, SceneClass::Natural).synthesize("lo").unwrap();
        let hi = params(7.0, SceneClass::Action).synthesize("hi").unwrap();
        assert!(temporal_activity(&hi) > temporal_activity(&lo));
    }

    #[test]
    fn screen_content_is_mostly_static() {
        let screen = params(0.2, SceneClass::Screen).synthesize("s").unwrap();
        assert!(temporal_activity(&screen) < 2.0, "screen content should barely move");
    }

    use proptest::prelude::*;

    proptest! {
        // The row-hoisted sampling path used by the render loops must be
        // bit-identical to the per-point reference form, for any field and
        // any sample coordinate the renderer can produce.
        #[test]
        fn row_state_sampling_is_bit_identical_to_reference(
            seed in any::<u64>(),
            entropy in 0.0f64..8.0,
            x in -4096.0f64..4096.0,
            y in -4096.0f64..4096.0,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let field = NoiseField::new(&mut rng, entropy);
            let (rows, n) = field.row_state(y);
            let fast = field.sample_in_row(x, &rows[..n]);
            let reference = field.sample(x, y);
            prop_assert_eq!(fast.to_bits(), reference.to_bits());
        }

        // The per-frame `position` + per-row span filter + `texel` path
        // must reproduce the reference per-pixel `Sprite::sample` exactly,
        // including the None cases the row filter skips.
        #[test]
        fn hoisted_sprite_path_matches_reference(
            seed in any::<u64>(),
            t in 0usize..64,
            x in 0usize..128,
            y in 0usize..96,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let p = params(5.0, SceneClass::Game);
            let sprites = Sprite::spawn(&mut rng, &p);
            let (w, h) = (128usize, 96usize);
            for s in &sprites {
                let (px, py) = s.position(t, w, h);
                let dy = (y + h - py) % h;
                let dx = (x + w - px) % w;
                let fast = (dy < s.h && dx < s.w).then(|| s.texel(dx, dy));
                prop_assert_eq!(fast, s.sample(x, y, t, w, h));
            }
        }
    }

    #[test]
    fn zero_frames_rejected() {
        let mut p = params(1.0, SceneClass::Natural);
        p.frame_count = 0;
        assert!(p.synthesize("x").is_err());
    }
}
