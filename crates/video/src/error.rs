//! Error types for the video substrate.

use std::fmt;

/// Errors produced while constructing or manipulating video data.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VideoError {
    /// A plane or frame was requested with a zero or otherwise unusable
    /// dimension.
    InvalidDimensions {
        /// Requested width in samples.
        width: usize,
        /// Requested height in samples.
        height: usize,
        /// Human-readable reason the dimensions were rejected.
        reason: &'static str,
    },
    /// A block view extended past the edge of its plane.
    BlockOutOfBounds {
        /// Block x origin.
        x: usize,
        /// Block y origin.
        y: usize,
        /// Block width.
        w: usize,
        /// Block height.
        h: usize,
        /// Plane width.
        plane_w: usize,
        /// Plane height.
        plane_h: usize,
    },
    /// Two operands (frames or planes) had mismatched geometry.
    GeometryMismatch {
        /// Description of the mismatching operands.
        what: &'static str,
    },
    /// A named vbench clip does not exist.
    UnknownClip(String),
    /// A rate/quality curve had too few points for BD-Rate integration.
    CurveTooShort {
        /// Number of points supplied.
        got: usize,
        /// Minimum number of points required.
        need: usize,
    },
}

impl fmt::Display for VideoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VideoError::InvalidDimensions { width, height, reason } => {
                write!(f, "invalid dimensions {width}x{height}: {reason}")
            }
            VideoError::BlockOutOfBounds { x, y, w, h, plane_w, plane_h } => {
                write!(f, "block {w}x{h} at ({x},{y}) exceeds plane bounds {plane_w}x{plane_h}")
            }
            VideoError::GeometryMismatch { what } => {
                write!(f, "geometry mismatch between {what}")
            }
            VideoError::UnknownClip(name) => write!(f, "unknown vbench clip `{name}`"),
            VideoError::CurveTooShort { got, need } => {
                write!(f, "rate/quality curve has {got} points, BD-Rate needs {need}")
            }
        }
    }
}

impl std::error::Error for VideoError {}
