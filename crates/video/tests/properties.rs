//! Property-based tests of the video substrate's invariants.

use proptest::prelude::*;
use vstress_video::bdrate::{bd_rate, RatePoint};
use vstress_video::metrics::{bitrate_kbps, mse_to_psnr, plane_mse};
use vstress_video::Plane;

proptest! {
    /// Plane block read/write round-trips for any in-bounds geometry.
    #[test]
    fn plane_block_roundtrip(
        x in 0usize..24,
        y in 0usize..24,
        w in 1usize..8,
        h in 1usize..8,
        fill in any::<u8>(),
    ) {
        let mut p = Plane::new(32, 32, 0).unwrap();
        let src: Vec<u8> = (0..w * h).map(|i| fill.wrapping_add(i as u8)).collect();
        p.write_block(x, y, w, h, &src).unwrap();
        let mut out = Vec::new();
        p.read_block(x, y, w, h, &mut out).unwrap();
        prop_assert_eq!(out, src);
    }

    /// MSE is symmetric, zero iff identical, and PSNR is monotone in MSE.
    #[test]
    fn mse_properties(a in any::<u8>(), b in any::<u8>()) {
        let mut pa = Plane::new(8, 8, a).unwrap();
        let pb = Plane::new(8, 8, b).unwrap();
        let m1 = plane_mse(&pa, &pb).unwrap();
        let m2 = plane_mse(&pb, &pa).unwrap();
        prop_assert_eq!(m1, m2);
        prop_assert_eq!(m1 == 0.0, a == b);
        if a != b {
            prop_assert!(mse_to_psnr(m1) < mse_to_psnr(0.0));
        }
        // Perturb one sample: MSE strictly grows from equal planes.
        if a == b {
            pa.set(3, 3, a.wrapping_add(10));
            let m3 = plane_mse(&pa, &pb).unwrap();
            prop_assert!(m3 > 0.0);
        }
    }

    /// BD-Rate of a curve against itself is zero, and scaling the rate
    /// axis by k yields (k-1)*100 percent.
    #[test]
    fn bdrate_scaling_law(k in 1.1f64..4.0, base in 100.0f64..5000.0) {
        let anchor: Vec<RatePoint> = (0..5)
            .map(|i| RatePoint {
                bitrate_kbps: base * (1.6f64).powi(i),
                psnr_db: 30.0 + 2.5 * i as f64,
            })
            .collect();
        let this = bd_rate(&anchor, &anchor).unwrap();
        prop_assert!(this.abs() < 1e-6);
        let scaled: Vec<RatePoint> = anchor
            .iter()
            .map(|p| RatePoint { bitrate_kbps: p.bitrate_kbps * k, psnr_db: p.psnr_db })
            .collect();
        let bd = bd_rate(&anchor, &scaled).unwrap();
        prop_assert!((bd - (k - 1.0) * 100.0).abs() < 0.5, "k {} bd {}", k, bd);
    }

    /// BD-Rate flips sign when the curves swap roles.
    #[test]
    fn bdrate_antisymmetry_sign(shift in 1.05f64..2.0) {
        let a: Vec<RatePoint> = (0..4)
            .map(|i| RatePoint { bitrate_kbps: 500.0 * (2f64).powi(i), psnr_db: 31.0 + 3.0 * i as f64 })
            .collect();
        let b: Vec<RatePoint> =
            a.iter().map(|p| RatePoint { bitrate_kbps: p.bitrate_kbps * shift, psnr_db: p.psnr_db }).collect();
        let ab = bd_rate(&a, &b).unwrap();
        let ba = bd_rate(&b, &a).unwrap();
        prop_assert!(ab > 0.0 && ba < 0.0);
    }

    /// Bitrate scales linearly in bits and inversely in duration.
    #[test]
    fn bitrate_linearity(bits in 1u64..1_000_000, frames in 1usize..300, fps in 1.0f64..120.0) {
        let one = bitrate_kbps(bits, frames, fps);
        let double = bitrate_kbps(bits * 2, frames, fps);
        prop_assert!((double / one - 2.0).abs() < 1e-9);
        let longer = bitrate_kbps(bits, frames * 2, fps);
        prop_assert!((one / longer - 2.0).abs() < 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Y4M write/read round-trips arbitrary synthesized clips exactly.
    #[test]
    fn y4m_roundtrip_arbitrary_clips(
        seed in any::<u64>(),
        entropy in 0.0f64..8.0,
        frames in 1usize..5,
    ) {
        use vstress_video::synth::{SceneClass, SynthParams};
        use vstress_video::y4m;
        let clip = SynthParams {
            width: 48,
            height: 32,
            frame_count: frames,
            fps: 24.0,
            entropy,
            class: SceneClass::Natural,
            seed,
        }
        .synthesize("prop")
        .unwrap();
        let mut bytes = Vec::new();
        y4m::write_y4m(&clip, &mut bytes).unwrap();
        let back = y4m::read_y4m(std::io::Cursor::new(&bytes), "prop").unwrap();
        prop_assert_eq!(back.frames().len(), clip.frames().len());
        for (a, b) in clip.frames().iter().zip(back.frames()) {
            prop_assert_eq!(a, b);
        }
    }

    /// The edge-padded shadow agrees with `get_clamped` at every
    /// coordinate in the padded window, for arbitrary (odd-width,
    /// 1-pixel-tall included) geometries and contents. The shadow is the
    /// contiguous surface the SIMD kernels read when a motion vector
    /// straddles the frame border, so value agreement here is what makes
    /// the clamped fast path admissible.
    #[test]
    fn padded_shadow_matches_get_clamped(
        w in 1usize..24,
        h in 1usize..12,
        seed in any::<u64>(),
    ) {
        use vstress_video::PAD;
        let mut p = Plane::new(w, h, 0).unwrap();
        let mut x = seed | 1;
        for y in 0..h {
            for xx in 0..w {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                p.set(xx, y, (x >> 56) as u8);
            }
        }
        p.pad_borders();
        prop_assert!(p.is_padded());
        let pad = PAD as isize;
        for y in -pad..(h as isize + pad) {
            let row = p.padded_row(y).unwrap();
            for x in -pad..(w as isize + pad) {
                prop_assert_eq!(
                    row[(x + pad) as usize],
                    p.get_clamped(x, y),
                    "mismatch at ({}, {})", x, y
                );
            }
        }
        // Outside the padded window the shadow refuses to answer.
        prop_assert!(p.padded_row(-pad - 1).is_none());
        prop_assert!(p.padded_row(h as isize + pad).is_none());
    }

    /// `block_rows` — the stride-walking row iterator the kernels use —
    /// yields exactly the same slices as per-row `row()` indexing, for
    /// any in-bounds block.
    #[test]
    fn block_rows_matches_row_indexing(
        x in 0usize..24,
        y in 0usize..24,
        w in 1usize..9,
        h in 1usize..9,
        fill in any::<u8>(),
    ) {
        let mut p = Plane::new(32, 32, fill).unwrap();
        for yy in 0..32 {
            for xx in 0..32 {
                p.set(xx, yy, (xx * 13 + yy * 41) as u8 ^ fill);
            }
        }
        let from_iter: Vec<&[u8]> = p.block_rows(x, y, w, h).collect();
        prop_assert_eq!(from_iter.len(), h);
        for (i, got) in from_iter.iter().enumerate() {
            prop_assert_eq!(*got, &p.row(y + i)[x..x + w]);
        }
    }

    /// SSIM is bounded, symmetric, and maximal iff identical.
    #[test]
    fn ssim_properties(a_fill in any::<u8>(), b_fill in any::<u8>(), noise in 0u8..40) {
        use vstress_video::metrics::plane_ssim;
        let mut pa = Plane::new(16, 16, a_fill).unwrap();
        let pb = Plane::new(16, 16, b_fill).unwrap();
        // Add structure so variance is nonzero.
        for y in 0..16 {
            for x in 0..16 {
                let v = pa.get(x, y).wrapping_add(((x * 7 + y * 3) % noise.max(1) as usize) as u8);
                pa.set(x, y, v);
            }
        }
        let s_ab = plane_ssim(&pa, &pb).unwrap();
        let s_ba = plane_ssim(&pb, &pa).unwrap();
        prop_assert!((s_ab - s_ba).abs() < 1e-12, "symmetry");
        prop_assert!((-1.0..=1.0 + 1e-12).contains(&s_ab));
        let s_aa = plane_ssim(&pa, &pa).unwrap();
        prop_assert!((s_aa - 1.0).abs() < 1e-9, "self-SSIM is 1, got {}", s_aa);
    }
}
