//! Property-based tests of the predictor framework's invariants.

use proptest::prelude::*;
use vstress_bpred::{
    harness, Bimodal, BranchPredictor, Gshare, Perceptron, Tage, TageWithLoop, Tournament,
    TwoLevelLocal,
};
use vstress_trace::record::BranchRecord;

fn arbitrary_trace(seed: u64, len: usize, sites: u64, bias: u64) -> Vec<BranchRecord> {
    let mut x = seed | 1;
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            BranchRecord {
                pc: 0x5000_0000_0000 + ((x >> 20) % sites) * 4,
                taken: (x >> 55) % 100 < bias,
            }
        })
        .collect()
}

fn zoo() -> Vec<Box<dyn BranchPredictor>> {
    vec![
        Box::new(Bimodal::new(10)),
        Box::new(TwoLevelLocal::new(8, 8)),
        Box::new(Gshare::with_budget_bytes(2 << 10)),
        Box::new(Gshare::with_budget_bytes(32 << 10)),
        Box::new(Tournament::with_budget_bytes(8 << 10)),
        Box::new(Perceptron::with_budget_bytes(8 << 10)),
        Box::new(Tage::seznec_8kb()),
        Box::new(TageWithLoop::seznec_8kb()),
        Box::new(Tage::seznec_64kb()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every predictor processes every trace without panicking, counts
    /// every branch, and reports a miss rate in [0, 1].
    #[test]
    fn predictors_are_total(
        seed in any::<u64>(),
        len in 1usize..4000,
        sites in 1u64..512,
        bias in 0u64..=100,
    ) {
        let trace = arbitrary_trace(seed, len, sites, bias);
        for mut p in zoo() {
            let stats = harness::run(&mut p, &trace);
            prop_assert_eq!(stats.branches, len as u64);
            prop_assert!(stats.mispredicts <= stats.branches);
            let mr = stats.miss_rate();
            prop_assert!((0.0..=1.0).contains(&mr));
        }
    }

    /// A fully-biased branch stream converges to near-zero misses for
    /// every predictor (everything can learn "always taken").
    #[test]
    fn all_predictors_learn_constant_direction(seed in any::<u64>(), taken in any::<bool>()) {
        let trace: Vec<BranchRecord> = (0..4000)
            .map(|i| BranchRecord { pc: 0x4000 + (i % 16) * 4, taken })
            .collect();
        let _ = seed;
        for mut p in zoo() {
            let stats = harness::run(&mut p, &trace);
            prop_assert!(
                stats.miss_rate() < 0.02,
                "{} failed to learn a constant branch: {}",
                p.label(),
                stats.miss_rate()
            );
        }
    }

    /// Replaying the same trace twice through fresh predictors gives
    /// identical statistics (pure determinism).
    #[test]
    fn prediction_is_deterministic(seed in any::<u64>()) {
        let trace = arbitrary_trace(seed, 2000, 64, 60);
        for (mut a, mut b) in zoo().into_iter().zip(zoo()) {
            let sa = harness::run(&mut a, &trace);
            let sb = harness::run(&mut b, &trace);
            prop_assert_eq!(sa.mispredicts, sb.mispredicts, "{}", a.label());
        }
    }

    /// Storage accounting never exceeds twice the nominal budget label.
    #[test]
    fn storage_budgets_are_honest(budget_kb in 1u64..=64) {
        let g = Gshare::with_budget_bytes(budget_kb << 10);
        prop_assert!(g.storage_bits() <= (budget_kb << 10) * 8 + 64);
        let b = Bimodal::with_budget_bytes(budget_kb << 10);
        prop_assert!(b.storage_bits() <= (budget_kb << 10) * 8);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// On biased-but-noisy streams, the better predictor families never do
    /// meaningfully worse than bimodal — the sanity floor of the study.
    #[test]
    fn advanced_predictors_beat_the_floor(seed in any::<u64>()) {
        let trace = arbitrary_trace(seed, 20_000, 128, 80);
        let bimodal = harness::run(&mut Bimodal::new(12), &trace);
        let tage = harness::run(&mut Tage::seznec_8kb(), &trace);
        prop_assert!(
            tage.miss_rate() <= bimodal.miss_rate() + 0.02,
            "tage {} vs bimodal {}",
            tage.miss_rate(),
            bimodal.miss_rate()
        );
    }
}
