//! Pins the predictor hot paths at **zero** heap allocations.
//!
//! The folded-history TAGE rewrite replaced the per-prediction scratch
//! struct and per-table fold recomputation with flat tables and packed
//! fold lanes updated in place; nothing on the predict / update / replay
//! path touches the allocator after construction. These tests make that
//! a regression boundary, the same way
//! `crates/codecs/tests/alloc_regression.rs` pins the encoder and
//! simulation hot paths.
//!
//! The counter wraps the system allocator for this whole test binary,
//! which is why the tests live in their own integration-test file; a
//! shared lock keeps the measurement windows from overlapping when the
//! harness runs tests on parallel threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use vstress_bpred::{BranchPredictor, Gshare, Tage};
use vstress_trace::record::BranchRecord;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Serializes the tests: each one measures a window of the shared
/// counter, so another test's setup allocations must not land inside it.
static SERIAL: Mutex<()> = Mutex::new(());

/// A branchy trace shaped like encoder control flow: a few dozen static
/// sites, mixed biases, enough records to exercise TAGE allocation,
/// usefulness aging and the periodic reset sweep.
fn synthetic_trace(n: usize) -> Vec<BranchRecord> {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pc = 0x5000_0000_0000 + (x % 48) * 8;
            let taken = match x % 5 {
                0 => i % 3 != 0, // loop-ish
                1 => true,       // strongly biased
                2 => x & 8 == 0, // data-dependent
                3 => i % 7 < 5,  // periodic
                _ => x & 1 == 0, // noise
            };
            BranchRecord { pc, taken }
        })
        .collect()
}

/// The per-branch path: interleaved predict/update on both shipped TAGE
/// geometries allocates nothing — not even on mispredicts, where the
/// allocation-and-aging machinery runs.
#[test]
fn tage_predict_update_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let trace = synthetic_trace(600_000);
    for mut tage in [Tage::seznec_8kb(), Tage::seznec_64kb()] {
        let before = ALLOCS.load(Ordering::Relaxed);
        let mut mispredicts = 0u64;
        for r in &trace {
            let guess = tage.predict(r.pc);
            if guess != r.taken {
                mispredicts += 1;
            }
            tage.update(r.pc, r.taken, guess);
        }
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{}: predict/update allocated {} times over {} branches",
            tage.label(),
            after - before,
            trace.len()
        );
        // The trace must actually have exercised the mispredict machinery
        // for the zero-allocation claim to mean anything.
        assert!(mispredicts > 1_000, "trace too predictable: {mispredicts} mispredicts");
    }
}

/// The whole-trace path: `replay` (the CBP loop the characterization
/// model drives) allocates nothing, for TAGE and — as a sanity anchor —
/// gshare.
#[test]
fn replay_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let trace = synthetic_trace(400_000);
    let mut tage = Tage::seznec_8kb();
    let mut gshare = Gshare::with_budget_bytes(32 * 1024);
    let preds: [&mut dyn BranchPredictor; 2] = [&mut tage, &mut gshare];
    for pred in preds {
        let label = pred.label();
        let before = ALLOCS.load(Ordering::Relaxed);
        let mispredicts = pred.replay(&trace);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{label}: replay allocated {} times over {} branches",
            after - before,
            trace.len()
        );
        assert!(mispredicts > 0);
    }
}

/// Update-without-predict (the out-of-order corner the recompute guard
/// covers) stays allocation-free too: the guard recomputes into the
/// existing prediction state, never into fresh scratch.
#[test]
fn tage_update_without_predict_is_allocation_free() {
    let _serial = SERIAL.lock().unwrap();
    let trace = synthetic_trace(100_000);
    let mut tage = Tage::seznec_8kb();
    let before = ALLOCS.load(Ordering::Relaxed);
    for r in &trace {
        // Deliberately skip predict for every other branch.
        let guess = if r.pc & 8 == 0 { tage.predict(r.pc) } else { false };
        tage.update(r.pc, r.taken, guess);
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(after - before, 0, "guarded update allocated {} times", after - before);
}
