//! Loop predictor: captures fixed-trip-count loop branches exactly.
//!
//! Encoder kernels are full of `for` loops with constant trip counts
//! (rows of a block, coefficients of a TU); a loop predictor recognizes
//! the `T^n N` pattern and predicts the final not-taken exactly — the
//! component that, hybridized with TAGE (as in Seznec's TAGE-L), removes
//! the residual loop-exit mispredictions.

use crate::BranchPredictor;

#[derive(Debug, Clone, Copy, Default)]
struct LoopEntry {
    tag: u16,
    /// Learned trip count (taken iterations before the not-taken exit).
    trip: u16,
    /// Current iteration counter.
    current: u16,
    /// Confidence that `trip` is stable (0–3).
    confidence: u8,
    /// Trip count candidate being trained.
    candidate: u16,
    valid: bool,
}

/// A standalone loop predictor (useful mostly as a hybrid component; see
/// [`TageWithLoop`]).
#[derive(Debug, Clone)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
}

/// Outcome of a loop-table lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopHit {
    /// No entry for this branch.
    Miss,
    /// Entry exists but confidence is still low.
    LowConfidence,
    /// Confident prediction.
    Predict(bool),
}

impl LoopPredictor {
    /// Creates a loop predictor with `entries` slots.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two ≥ 2.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two() && entries >= 2);
        LoopPredictor { entries: vec![LoopEntry::default(); entries] }
    }

    #[inline]
    fn slot(&self, pc: u64) -> (usize, u16) {
        let idx = ((pc >> 2) % self.entries.len() as u64) as usize;
        let tag = ((pc >> 12) & 0xffff) as u16;
        (idx, tag)
    }

    /// Looks up the loop table.
    pub fn lookup(&self, pc: u64) -> LoopHit {
        let (idx, tag) = self.slot(pc);
        let e = &self.entries[idx];
        if !e.valid || e.tag != tag {
            return LoopHit::Miss;
        }
        if e.confidence < 2 {
            return LoopHit::LowConfidence;
        }
        LoopHit::Predict(e.current < e.trip)
    }

    /// Trains on the resolved direction.
    pub fn train(&mut self, pc: u64, taken: bool) {
        let (idx, tag) = self.slot(pc);
        let e = &mut self.entries[idx];
        if !e.valid || e.tag != tag {
            // Allocate on a not-taken (potential loop exit) only.
            if !taken {
                *e = LoopEntry {
                    tag,
                    trip: 0,
                    current: 0,
                    confidence: 0,
                    candidate: 0,
                    valid: true,
                };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            e.candidate = e.candidate.saturating_add(1);
        } else {
            // Loop exit: does the candidate trip count repeat?
            if e.candidate == e.trip && e.trip > 0 {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.trip = e.candidate;
                e.confidence = 0;
            }
            e.candidate = 0;
            e.current = 0;
        }
    }
}

/// TAGE hybridized with a loop predictor (a slim TAGE-L).
///
/// The loop component overrides TAGE only when confident; everything else
/// falls through to the underlying [`crate::Tage`].
#[derive(Debug, Clone)]
pub struct TageWithLoop {
    tage: crate::Tage,
    loops: LoopPredictor,
}

impl TageWithLoop {
    /// Wraps a TAGE predictor with a `loop_entries`-slot loop table.
    pub fn new(tage: crate::Tage, loop_entries: usize) -> Self {
        TageWithLoop { tage, loops: LoopPredictor::new(loop_entries) }
    }

    /// The paper-scale 8 KB TAGE plus a 64-entry loop table.
    pub fn seznec_8kb() -> Self {
        Self::new(crate::Tage::seznec_8kb(), 64)
    }
}

impl BranchPredictor for TageWithLoop {
    fn predict(&mut self, pc: u64) -> bool {
        match self.loops.lookup(pc) {
            LoopHit::Predict(dir) => {
                // Keep TAGE's speculative state consistent.
                let _ = self.tage.predict(pc);
                dir
            }
            _ => self.tage.predict(pc),
        }
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        self.loops.train(pc, taken);
        self.tage.update(pc, taken, predicted);
    }

    fn storage_bits(&self) -> u64 {
        // Loop entry: tag 16 + trip 16 + current 16 + conf 2 + cand 16.
        self.tage.storage_bits() + self.loops.entries.len() as u64 * 66
    }

    fn label(&self) -> String {
        format!("tage-l-{}KB", (self.storage_bits() / 8).next_power_of_two() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use crate::Tage;
    use vstress_trace::record::BranchRecord;

    fn loop_trace(trip: usize, reps: usize) -> Vec<BranchRecord> {
        let mut t = Vec::new();
        for _ in 0..reps {
            for i in 0..=trip {
                t.push(BranchRecord { pc: 0x40, taken: i < trip });
            }
        }
        t
    }

    #[test]
    fn nails_fixed_trip_loops() {
        // Period 47: beyond gshare's history and awkward for small TAGE.
        let trace = loop_trace(47, 200);
        let stats = harness::run(&mut TageWithLoop::seznec_8kb(), &trace);
        assert!(stats.miss_rate() < 0.01, "loop exits must be exact: {}", stats.miss_rate());
    }

    #[test]
    fn loop_component_beats_plain_tage_on_long_loops() {
        let trace = loop_trace(200, 60);
        let hybrid = harness::run(&mut TageWithLoop::seznec_8kb(), &trace);
        let plain = harness::run(&mut Tage::seznec_8kb(), &trace);
        assert!(
            hybrid.mispredicts <= plain.mispredicts,
            "hybrid {} vs plain {}",
            hybrid.mispredicts,
            plain.mispredicts
        );
    }

    #[test]
    fn varying_trip_counts_fall_back_to_tage() {
        // Trip count alternates 3/5: the loop table never gains confidence,
        // so the hybrid must not be (much) worse than plain TAGE.
        let mut trace = Vec::new();
        for rep in 0..500 {
            let trip = if rep % 2 == 0 { 3 } else { 5 };
            for i in 0..=trip {
                trace.push(BranchRecord { pc: 0x80, taken: i < trip });
            }
        }
        let hybrid = harness::run(&mut TageWithLoop::seznec_8kb(), &trace);
        let plain = harness::run(&mut Tage::seznec_8kb(), &trace);
        assert!(hybrid.mispredicts <= plain.mispredicts + trace.len() as u64 / 50);
    }

    #[test]
    fn lookup_states_progress() {
        let mut lp = LoopPredictor::new(16);
        assert_eq!(lp.lookup(0x40), LoopHit::Miss);
        // One full loop allocates; several more build confidence.
        for _ in 0..4 {
            for i in 0..=5 {
                lp.train(0x40, i < 5);
            }
        }
        assert!(matches!(lp.lookup(0x40), LoopHit::Predict(_)));
    }
}
