//! Trace replay harness — the CBP "simulator loop".

use crate::BranchPredictor;
use vstress_trace::record::BranchRecord;

/// Outcome statistics of replaying one branch trace through one predictor.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BpredStats {
    /// Conditional branches simulated.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Retired instructions the trace window spans (for MPKI); equals
    /// `branches` when unknown.
    pub window_instructions: u64,
}

impl BpredStats {
    /// Fraction of branches mispredicted, in `[0, 1]`.
    pub fn miss_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Mispredictions per kilo-instruction over the trace window.
    pub fn mpki(&self) -> f64 {
        if self.window_instructions == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.window_instructions as f64 * 1000.0
        }
    }
}

/// Replays `trace` through `predictor` with the CBP predict/update
/// contract. The MPKI denominator defaults to the branch count; use
/// [`run_with_window`] when the enclosing instruction window is known.
pub fn run<P: BranchPredictor>(predictor: &mut P, trace: &[BranchRecord]) -> BpredStats {
    run_with_window(predictor, trace, trace.len() as u64)
}

/// Replays `trace` and reports MPKI relative to `window_instructions`
/// (the paper's windows are 1 B instructions of which branches are a few
/// percent).
///
/// Dispatches the whole trace through one
/// [`BranchPredictor::replay`] call, so type-erased predictors pay one
/// virtual call per trace instead of two per branch.
pub fn run_with_window<P: BranchPredictor>(
    predictor: &mut P,
    trace: &[BranchRecord],
    window_instructions: u64,
) -> BpredStats {
    let mispredicts = predictor.replay(trace);
    BpredStats { branches: trace.len() as u64, mispredicts, window_instructions }
}

/// The pre-batching replay loop: predict/update dispatched per record, so
/// a type-erased predictor pays two virtual calls per branch. Kept as the
/// equivalence reference (`replay` must produce identical stats on every
/// predictor) and as the `vstress-bench` baseline.
pub fn run_per_record(
    predictor: &mut dyn BranchPredictor,
    trace: &[BranchRecord],
    window_instructions: u64,
) -> BpredStats {
    let mut mispredicts = 0u64;
    for r in trace {
        let guess = predictor.predict(r.pc);
        if guess != r.taken {
            mispredicts += 1;
        }
        predictor.update(r.pc, r.taken, guess);
    }
    BpredStats { branches: trace.len() as u64, mispredicts, window_instructions }
}

/// A streaming predictor adaptor: implements
/// [`BranchSink`](vstress_trace::record::BranchSink) so a predictor can be
/// attached directly to an instrumented encode (no trace buffering), which
/// is how the workbench computes whole-run branch MPKI (Fig. 6a / Fig. 7).
#[derive(Debug)]
pub struct OnlinePredictor<P> {
    predictor: P,
    branches: u64,
    mispredicts: u64,
}

impl<P: BranchPredictor> OnlinePredictor<P> {
    /// Wraps a predictor for online use.
    pub fn new(predictor: P) -> Self {
        OnlinePredictor { predictor, branches: 0, mispredicts: 0 }
    }

    /// Statistics so far; `window_instructions` supplies the MPKI
    /// denominator (pass total retired instructions).
    pub fn stats(&self, window_instructions: u64) -> BpredStats {
        BpredStats { branches: self.branches, mispredicts: self.mispredicts, window_instructions }
    }

    /// The wrapped predictor.
    pub fn into_inner(self) -> P {
        self.predictor
    }
}

impl<P: BranchPredictor> vstress_trace::record::BranchSink for OnlinePredictor<P> {
    #[inline]
    fn observe_branch(&mut self, pc: u64, taken: bool) {
        let guess = self.predictor.predict(pc);
        if guess != taken {
            self.mispredicts += 1;
        }
        self.branches += 1;
        self.predictor.update(pc, taken, guess);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bimodal;
    use vstress_trace::record::BranchSink;

    fn biased_trace(n: usize) -> Vec<BranchRecord> {
        (0..n).map(|i| BranchRecord { pc: 0x44, taken: i % 10 != 0 }).collect()
    }

    #[test]
    fn run_counts_branches_and_misses() {
        let trace = biased_trace(1000);
        let stats = run(&mut Bimodal::new(10), &trace);
        assert_eq!(stats.branches, 1000);
        assert!(stats.mispredicts > 0 && stats.mispredicts < 300);
        assert!((stats.miss_rate() - stats.mispredicts as f64 / 1000.0).abs() < 1e-12);
    }

    #[test]
    fn mpki_uses_window_denominator() {
        let trace = biased_trace(1000);
        let stats = run_with_window(&mut Bimodal::new(10), &trace, 100_000);
        // miss per kilo instruction = misses / 100k * 1000 = misses / 100.
        assert!((stats.mpki() - stats.mispredicts as f64 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_safe() {
        let stats = run(&mut Bimodal::new(10), &[]);
        assert_eq!(stats.branches, 0);
        assert_eq!(stats.miss_rate(), 0.0);
        assert_eq!(stats.mpki(), 0.0);
    }

    /// The batched `replay` must match the per-record reference loop
    /// exactly on every paper predictor, including through type erasure
    /// (`Box<dyn BranchPredictor>` must forward to the concrete replay).
    #[test]
    fn batched_replay_matches_per_record_reference() {
        use crate::{Gshare, Tage};
        // A mixed trace: biased loop branch, data-dependent branch, and a
        // second site with its own pattern, long enough to exercise TAGE
        // allocation.
        let mut x = 0x9e37_79b9u64;
        let trace: Vec<BranchRecord> = (0..50_000u64)
            .map(|i| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                match i % 3 {
                    0 => BranchRecord { pc: 0x100, taken: i % 24 != 23 },
                    1 => BranchRecord { pc: 0x200, taken: x & 3 == 0 },
                    _ => BranchRecord { pc: 0x300 + (x % 8) * 16, taken: x & 1 == 0 },
                }
            })
            .collect();
        let fresh: Vec<Box<dyn Fn() -> Box<dyn BranchPredictor>>> = vec![
            Box::new(|| Box::new(Gshare::with_budget_bytes(2 << 10))),
            Box::new(|| Box::new(Gshare::with_budget_bytes(32 << 10))),
            Box::new(|| Box::new(Tage::seznec_8kb())),
            Box::new(|| Box::new(Tage::seznec_64kb())),
        ];
        for mk in &fresh {
            let mut a = mk();
            let mut b = mk();
            let reference = run_per_record(a.as_mut(), &trace, 1_000_000);
            let batched = run_with_window(&mut b, &trace, 1_000_000);
            assert_eq!(reference, batched, "replay diverged for {}", mk().label());
        }
    }

    #[test]
    fn online_predictor_matches_offline_replay() {
        let trace = biased_trace(5000);
        let offline = run(&mut Bimodal::new(10), &trace);
        let mut online = OnlinePredictor::new(Bimodal::new(10));
        for r in &trace {
            online.observe_branch(r.pc, r.taken);
        }
        let stats = online.stats(trace.len() as u64);
        assert_eq!(stats.mispredicts, offline.mispredicts);
        assert_eq!(stats.branches, offline.branches);
    }
}
