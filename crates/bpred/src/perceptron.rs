//! Perceptron branch predictor (Jiménez & Lin, HPCA 2001).

use crate::history::GlobalHistory;
use crate::BranchPredictor;

/// A table of perceptrons indexed by PC, each dotting a signed weight
/// vector against the global history.
///
/// Included as an ablation point between gshare and TAGE: perceptrons
/// capture *linearly separable* history correlations with long histories
/// at modest storage, but cannot learn the non-linear patterns TAGE's
/// tagged matching can.
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `tables[i]` holds weights w_0 (bias) .. w_h for perceptron i.
    weights: Vec<Vec<i16>>,
    history: GlobalHistory,
    history_len: usize,
    /// Training threshold θ = 1.93h + 14 (the paper's optimum).
    theta: i32,
    /// Output of the last prediction (consumed by `update`).
    last_output: i32,
}

impl Perceptron {
    /// Creates a perceptron predictor with `entries` perceptrons over
    /// `history_len` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_len` is 0 or
    /// greater than 64.
    pub fn new(entries: usize, history_len: usize) -> Self {
        assert!(entries.is_power_of_two() && entries >= 2, "entries must be a power of two");
        assert!((1..=64).contains(&history_len), "history_len must be 1..=64");
        Perceptron {
            weights: vec![vec![0i16; history_len + 1]; entries],
            history: GlobalHistory::new(),
            history_len,
            theta: (1.93 * history_len as f64 + 14.0) as i32,
            last_output: 0,
        }
    }

    /// The largest perceptron predictor fitting `bytes` (8-bit weights).
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let history_len = 28usize;
        let per_entry = (history_len + 1) as u64; // ~1 byte per weight
        let entries = (bytes / per_entry).next_power_of_two().max(2) as usize;
        // next_power_of_two rounds up; halve if that overshot the budget.
        let entries =
            if entries as u64 * per_entry > bytes { (entries / 2).max(2) } else { entries };
        Self::new(entries, history_len)
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) % self.weights.len() as u64) as usize
    }

    fn output(&self, pc: u64) -> i32 {
        let w = &self.weights[self.index(pc)];
        let mut y = w[0] as i32;
        for i in 0..self.history_len {
            let x = if self.history.bit(i) { 1 } else { -1 };
            y += w[i + 1] as i32 * x;
        }
        y
    }
}

impl BranchPredictor for Perceptron {
    fn predict(&mut self, pc: u64) -> bool {
        self.last_output = self.output(pc);
        self.last_output >= 0
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        // Recompute if predict was skipped or interleaved.
        let y =
            if predicted == (self.last_output >= 0) { self.last_output } else { self.output(pc) };
        let t = if taken { 1i32 } else { -1 };
        if (y >= 0) != taken || y.abs() <= self.theta {
            let hist_len = self.history_len;
            let idx = self.index(pc);
            // Collect history signs before borrowing weights mutably.
            let signs: Vec<i16> =
                (0..hist_len).map(|i| if self.history.bit(i) { 1 } else { -1 }).collect();
            let w = &mut self.weights[idx];
            w[0] = (w[0] as i32 + t).clamp(-128, 127) as i16;
            for i in 0..hist_len {
                w[i + 1] = (w[i + 1] as i32 + t * signs[i] as i32).clamp(-128, 127) as i16;
            }
        }
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        (self.weights.len() * (self.history_len + 1)) as u64 * 8 + self.history_len as u64
    }

    fn label(&self) -> String {
        format!("perceptron-{}KB", self.storage_bits() / 8 / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use crate::Gshare;
    use vstress_trace::record::BranchRecord;

    #[test]
    fn learns_biased_branches() {
        let trace: Vec<BranchRecord> =
            (0..4000).map(|i| BranchRecord { pc: 0x10, taken: i % 9 != 0 }).collect();
        let stats = harness::run(&mut Perceptron::new(256, 16), &trace);
        assert!(stats.miss_rate() < 0.15, "miss {}", stats.miss_rate());
    }

    #[test]
    fn learns_linear_history_correlation() {
        // Branch B is taken iff branch A (two ago) was taken: a linearly
        // separable function of history, ideal perceptron territory.
        let mut trace = Vec::new();
        let mut x = 7u64;
        let mut a_outcomes = std::collections::VecDeque::from([false, false]);
        for _ in 0..8000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (x >> 60) & 1 == 1;
            trace.push(BranchRecord { pc: 0xA0, taken: a });
            let b = *a_outcomes.front().unwrap();
            trace.push(BranchRecord { pc: 0xB0, taken: b });
            a_outcomes.push_back(a);
            a_outcomes.pop_front();
        }
        let p = harness::run(&mut Perceptron::new(512, 24), &trace);
        // Half the branches (the A's) are random; B's are predictable.
        assert!(p.miss_rate() < 0.30, "perceptron should nail the B branches: {}", p.miss_rate());
        let g = harness::run(&mut Gshare::with_budget_bytes(512), &trace);
        assert!(p.miss_rate() <= g.miss_rate() + 0.02, "{} vs {}", p.miss_rate(), g.miss_rate());
    }

    #[test]
    fn budget_sizing_stays_within_bytes() {
        for kb in [4u64, 16, 64] {
            let p = Perceptron::with_budget_bytes(kb << 10);
            assert!(p.storage_bits() / 8 <= (kb << 10) + 64, "{kb}KB: {}", p.storage_bits() / 8);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Perceptron::new(100, 16);
    }
}
