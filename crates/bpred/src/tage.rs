//! TAGE — TAgged GEometric-history-length predictor (Seznec).
//!
//! A faithful small-scale TAGE: a bimodal base predictor plus `N` tagged
//! tables indexed by hashes of the PC with geometrically increasing global
//! history lengths. Prediction comes from the matching table with the
//! longest history (the *provider*); the next match (or the bimodal) is
//! the *alternate*. Entries carry 3-bit signed counters, partial tags and
//! 2-bit usefulness counters; mispredictions allocate into longer tables,
//! and usefulness is periodically aged, exactly as in the CBP reference
//! implementations.
//!
//! # Hot-path layout
//!
//! This is the rewritten fast implementation; the original lives on as
//! [`crate::reference::ReferenceTage`], and property tests pin the two
//! to identical per-branch predictions. Three structural changes:
//!
//! * **Flat tables.** All tagged tables share one contiguous `Vec`
//!   (table `t` at `t << log_entries`), removing a pointer chase per
//!   table per lookup.
//! * **Inline folded histories.** The per-table folded index/tag
//!   registers live in fixed struct-of-arrays fields updated by one
//!   tight loop per retire — same incremental O(1)-per-fold maths as
//!   [`crate::history::FoldedHistory`], without the heap `Vec` walk —
//!   and the one ejected history bit each table needs is read once and
//!   shared by its three folds.
//! * **No scratch copies.** The prediction scratch is computed into a
//!   caller-provided buffer; `predict`/`update` keep the original
//!   store-to-`last` contract, while the whole-trace [`Tage::replay`]
//!   override keeps the scratch in a stack local and writes `last` once
//!   at the end, leaving identical state to the per-record loop.

use crate::counter::SatCounter;
use crate::history::GlobalHistory;
use crate::BranchPredictor;
use vstress_trace::record::BranchRecord;

/// Geometry and budget of a [`Tage`] predictor.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TageConfig {
    /// log2 of bimodal-table entries.
    pub log_bimodal: u32,
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 of entries per tagged table.
    pub log_entries: u32,
    /// Partial-tag width in bits.
    pub tag_bits: u32,
    /// Shortest history length (table 0).
    pub min_history: usize,
    /// Longest history length (last table).
    pub max_history: usize,
    /// Updates between usefulness-aging events.
    pub u_reset_period: u64,
}

impl TageConfig {
    /// The ~8 KB configuration evaluated by the paper.
    pub fn budget_8kb() -> Self {
        TageConfig {
            log_bimodal: 12,
            num_tables: 6,
            log_entries: 9,
            tag_bits: 9,
            min_history: 4,
            max_history: 130,
            u_reset_period: 256 * 1024,
        }
    }

    /// The ~64 KB configuration evaluated by the paper.
    pub fn budget_64kb() -> Self {
        TageConfig {
            log_bimodal: 14,
            num_tables: 12,
            log_entries: 11,
            tag_bits: 12,
            min_history: 4,
            max_history: 640,
            u_reset_period: 512 * 1024,
        }
    }

    /// The geometric history length of tagged table `i`.
    pub fn history_length(&self, i: usize) -> usize {
        if self.num_tables == 1 {
            return self.min_history;
        }
        let ratio = self.max_history as f64 / self.min_history as f64;
        let l = self.min_history as f64 * ratio.powf(i as f64 / (self.num_tables - 1) as f64);
        (l.round() as usize).max(1)
    }
}

/// Most tables a [`Tage`] supports (the inline scratch and fold arrays
/// are sized for it).
const MAX_TABLES: usize = 16;
#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    /// 3-bit counter; >= 4 predicts taken.
    ctr: u8,
    tag: u16,
    /// 2-bit usefulness.
    useful: u8,
}

impl TageEntry {
    #[inline]
    fn predicts_taken(&self) -> bool {
        self.ctr >= 4
    }

    #[inline]
    fn is_weak(&self) -> bool {
        self.ctr == 3 || self.ctr == 4
    }

    #[inline]
    fn train(&mut self, taken: bool) {
        if taken {
            if self.ctr < 7 {
                self.ctr += 1;
            }
        } else if self.ctr > 0 {
            self.ctr -= 1;
        }
    }
}

/// The TAGE predictor. See the module docs for structure.
///
/// The tables/history state lives in [`TageCore`], a separate field
/// from the `last` prediction scratch, so `update` can train (`&mut
/// core`) while reading the scratch (`&last`) without copying the
/// ~100-byte scratch struct on every branch.
#[derive(Debug, Clone)]
pub struct Tage {
    core: TageCore,
    /// Scratch from the last prediction, consumed by `update`.
    last: Prediction,
}

/// All predictor state except the prediction scratch.
#[derive(Debug, Clone)]
struct TageCore {
    config: TageConfig,
    bimodal: Vec<SatCounter<2>>,
    /// All tagged tables, flat: table `t` spans
    /// `t << log_entries .. (t + 1) << log_entries`.
    table: Vec<TageEntry>,
    /// Raw outcome history, read only for the bits ejected from folds.
    global: GlobalHistory,
    /// All three folded registers of table `t`, packed into one `u64`
    /// lane: the index fold at bit 0, tag fold 1 at [`TageCore::o1`],
    /// tag fold 2 at [`TageCore::o2`]. Sub-lane offsets leave `2w` bits
    /// of room per fold (`Tage::new` asserts the geometry fits), so the
    /// shift-fold-back of each register never collides with its
    /// neighbour and one masked sweep updates all three at once — every
    /// shift amount uniform across tables, no per-lane variable shifts
    /// at all.
    fold_packed: [u64; MAX_TABLES],
    /// Per-table ejected-bit injection points: bit `o_k + (len % w_k)`
    /// set for each of the three sub-lanes.
    eject_mask: [u64; MAX_TABLES],
    /// Sub-lane bit offsets of tag fold 1 / tag fold 2.
    o1: u32,
    o2: u32,
    /// Geometric history length per table.
    hist_len: [u16; MAX_TABLES],
    /// 4-bit USE_ALT_ON_NA: trust the alternate when the provider is new.
    use_alt_on_na: u8,
    /// Branches remaining until the next usefulness-aging sweep; a
    /// countdown instead of a modulo so the steady-state update path
    /// carries no integer division.
    until_reset: u64,
    /// Which half of the usefulness bits the next aging event clears.
    age_phase: bool,
    /// Deterministic xorshift state for allocation randomization.
    rng: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Prediction {
    pc: u64,
    provider: Option<u8>,
    provider_index: u32,
    alt_pred: bool,
    provider_pred: bool,
    final_pred: bool,
    provider_is_new: bool,
    table_indices: [u32; MAX_TABLES],
    table_tags: [u16; MAX_TABLES],
}

impl Tage {
    /// Builds a TAGE predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no tables, more than 16
    /// tables, zero tag bits, or a non-increasing history range).
    pub fn new(config: TageConfig) -> Self {
        assert!(
            (1..=MAX_TABLES).contains(&config.num_tables),
            "num_tables must be 1..=16 (Prediction scratch is fixed-size)"
        );
        assert!(config.tag_bits >= 4 && config.tag_bits <= 16, "tag_bits must be 4..=16");
        assert!(config.min_history >= 1 && config.max_history > config.min_history);
        assert!(config.log_entries >= 4 && config.log_bimodal >= 4);
        let widths = [config.log_entries, config.tag_bits, config.tag_bits - 1];
        let offsets = [0, 2 * widths[0], 2 * widths[0] + 2 * widths[1]];
        assert!(
            offsets[2] + widths[2] < 64,
            "fold lanes must fit one u64: need 2*log_entries + 3*tag_bits <= 64"
        );
        let mut eject_mask = [0u64; MAX_TABLES];
        let mut hist_len = [0u16; MAX_TABLES];
        for t in 0..config.num_tables {
            let l = config.history_length(t);
            hist_len[t] = l as u16;
            for (&o, &w) in offsets.iter().zip(&widths) {
                eject_mask[t] |= 1u64 << (o + (l as u32 % w));
            }
        }
        Tage {
            core: TageCore {
                bimodal: vec![SatCounter::weakly_not_taken(); 1 << config.log_bimodal],
                table: vec![TageEntry::default(); config.num_tables << config.log_entries],
                global: GlobalHistory::new(),
                fold_packed: [0; MAX_TABLES],
                eject_mask,
                o1: offsets[1],
                o2: offsets[2],
                hist_len,
                use_alt_on_na: 8,
                until_reset: config.u_reset_period,
                age_phase: false,
                rng: 0x2545_f491_4f6c_dd1d,
                config,
            },
            last: Prediction::default(),
        }
    }

    /// The paper's 8 KB TAGE.
    pub fn seznec_8kb() -> Self {
        Self::new(TageConfig::budget_8kb())
    }

    /// The paper's 64 KB TAGE.
    pub fn seznec_64kb() -> Self {
        Self::new(TageConfig::budget_64kb())
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &TageConfig {
        &self.core.config
    }
}

impl TageCore {
    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.log_bimodal) - 1)) as usize
    }

    #[inline]
    fn table_index(&self, pc: u64, table: usize) -> u32 {
        let fold = self.fold_packed[table]; // sub-lane 0; masked below
        let mask = (1u64 << self.config.log_entries) - 1;
        let pcx = (pc >> 2) ^ (pc >> (2 + self.config.log_entries as u64 + table as u64));
        ((pcx ^ fold) & mask) as u32
    }

    #[inline]
    fn table_tag(&self, pc: u64, table: usize) -> u16 {
        let packed = self.fold_packed[table];
        let f1 = packed >> self.o1;
        let f2 = packed >> self.o2;
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((pc >> 2) ^ f1 ^ (f2 << 1)) & mask) as u16
    }

    /// Flat-table slot of entry `idx` in table `t`.
    #[inline]
    fn slot(&self, t: usize, idx: u32) -> usize {
        (t << self.config.log_entries) | idx as usize
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    /// Computes the full prediction state for `pc` into `p` — the same
    /// values the reference's `compute_prediction` returns, without
    /// materializing (and then copying) a fresh scratch struct.
    ///
    /// Dispatches on the two shipped geometries so the lane loops see a
    /// compile-time trip count (the `_inner` body inlines per arm).
    fn compute_into(&self, pc: u64, p: &mut Prediction) {
        match self.config.num_tables {
            6 => self.compute_into_inner(pc, p, 6),
            12 => self.compute_into_inner(pc, p, 12),
            n => self.compute_into_inner(pc, p, n),
        }
    }

    #[inline(always)]
    fn compute_into_inner(&self, pc: u64, p: &mut Prediction, n: usize) {
        p.pc = pc;
        p.provider = None;
        p.provider_index = 0;
        p.provider_is_new = false;
        for (t, (idx, tag)) in
            p.table_indices[..n].iter_mut().zip(&mut p.table_tags[..n]).enumerate()
        {
            *idx = self.table_index(pc, t);
            *tag = self.table_tag(pc, t);
        }
        let bim = self.bimodal[self.bimodal_index(pc)].is_taken();
        p.alt_pred = bim;
        p.provider_pred = bim;
        p.final_pred = bim;
        // Scan from longest history (last table) down, keeping a copy of
        // the provider entry so the hit is loaded exactly once.
        let mut provider = None;
        let mut pe = TageEntry::default();
        let mut alt: Option<bool> = None;
        for t in (0..n).rev() {
            let e = self.table[self.slot(t, p.table_indices[t])];
            if e.tag == p.table_tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                    pe = e;
                } else {
                    alt = Some(e.predicts_taken());
                    break;
                }
            }
        }
        if let Some(t) = provider {
            let e = pe;
            p.provider = Some(t as u8);
            p.provider_index = p.table_indices[t];
            p.provider_pred = e.predicts_taken();
            p.alt_pred = alt.unwrap_or(bim);
            p.provider_is_new = e.is_weak() && e.useful == 0;
            p.final_pred = if p.provider_is_new && self.use_alt_on_na >= 8 {
                p.alt_pred
            } else {
                p.provider_pred
            };
        }
    }

    /// The full training step for a resolved branch whose prediction
    /// state is `p` — the body of the reference's `update` after the
    /// recompute guard. `p` is caller-owned (never aliases `self`).
    fn train_with(&mut self, p: &Prediction, taken: bool) {
        match self.config.num_tables {
            6 => self.train_with_inner(p, taken, 6),
            12 => self.train_with_inner(p, taken, 12),
            n => self.train_with_inner(p, taken, n),
        }
    }

    #[inline(always)]
    fn train_with_inner(&mut self, p: &Prediction, taken: bool, n: usize) {
        let mispredicted = p.final_pred != taken;

        if let Some(t) = p.provider {
            // USE_ALT_ON_NA bookkeeping: when the provider is fresh and the
            // two predictions disagree, learn which to trust.
            if p.provider_is_new && p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if self.use_alt_on_na > 0 {
                        self.use_alt_on_na -= 1;
                    }
                } else if self.use_alt_on_na < 15 {
                    self.use_alt_on_na += 1;
                }
            }
            let slot = self.slot(t as usize, p.provider_index);
            let e = &mut self.table[slot];
            // Usefulness tracks "provider beat the alternate".
            if p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if e.useful < 3 {
                        e.useful += 1;
                    }
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
            }
            e.train(taken);
            // Keep the bimodal warm when it served as the alternate.
            let weak = e.is_weak();
            if weak {
                let bi = self.bimodal_index(p.pc);
                self.bimodal[bi].update(taken);
            }
        } else {
            let bi = self.bimodal_index(p.pc);
            self.bimodal[bi].update(taken);
        }

        if mispredicted {
            self.allocate(p, taken, n);
        }

        self.push_history_inner(taken, n);
        self.until_reset -= 1;
        if self.until_reset == 0 {
            self.until_reset = self.config.u_reset_period;
            self.age_usefulness();
        }
    }

    /// Retires one outcome into the global history and every folded
    /// register — the same O(1) inject/eject/fold-back per register as
    /// [`crate::history::FoldedHistory::update`], but on the packed
    /// lanes: one `u64` update per *table* covers its three folds. The
    /// injected outcome and the fold-back shifts are uniform across
    /// tables; the per-table ejected bit lands through the precomputed
    /// [`TageCore::eject_mask`], so the lane loop is branch-free with
    /// constant shifts only.
    #[inline(always)]
    fn push_history_inner(&mut self, taken: bool, n: usize) {
        let (w0, w1) = (self.config.log_entries, self.config.tag_bits);
        let (r0, r1, r2) = (
            ((1u64 << w0) - 1),
            ((1u64 << w1) - 1) << self.o1,
            ((1u64 << (w1 - 1)) - 1) << self.o2,
        );
        // One injected-outcome bit per sub-lane, or none.
        let inc_pat = if taken { 1 | (1u64 << self.o1) | (1u64 << self.o2) } else { 0 };
        let lanes =
            self.fold_packed[..n].iter_mut().zip(&self.eject_mask[..n]).zip(&self.hist_len[..n]);
        for ((c, &em), &len) in lanes {
            // All-ones when the bit falling out of this table's history
            // window is set; `em` routes it to the three rotation points.
            let ej = 0u64.wrapping_sub(self.global.bit(len as usize - 1) as u64);
            let mut v = (*c << 1) | inc_pat;
            v ^= ej & em;
            v ^= (v >> w0) & r0;
            v ^= (v >> w1) & r1;
            v ^= (v >> (w1 - 1)) & r2;
            *c = v & (r0 | r1 | r2);
        }
        self.global.push(taken);
    }

    /// `n` is always `config.num_tables`, passed down so the replay
    /// loop's monomorphized instantiations see a constant trip count.
    fn allocate(&mut self, p: &Prediction, taken: bool, n: usize) {
        let start = match p.provider {
            Some(t) => t as usize + 1,
            None => 0,
        };
        if start >= n {
            return;
        }
        // Seznec randomizes the first candidate table to avoid ping-ponging.
        let span = n - start;
        let skip = if span > 1 { (self.next_rand() % 2) as usize } else { 0 };
        let mut allocated = false;
        for t in (start + skip)..n {
            let slot = self.slot(t, p.table_indices[t]);
            if self.table[slot].useful == 0 {
                self.table[slot] =
                    TageEntry { ctr: if taken { 4 } else { 3 }, tag: p.table_tags[t], useful: 0 };
                allocated = true;
                break;
            }
        }
        if !allocated {
            // All candidates useful: age them so a later allocation succeeds.
            for t in start..n {
                let slot = self.slot(t, p.table_indices[t]);
                let e = &mut self.table[slot];
                if e.useful > 0 {
                    e.useful -= 1;
                }
            }
        }
    }

    fn age_usefulness(&mut self) {
        // Alternately clear the high / low usefulness bit (Seznec's
        // graceful aging) so entries lose protection over two periods.
        let mask = if self.age_phase { 0b01 } else { 0b10 };
        self.age_phase = !self.age_phase;
        for e in self.table.iter_mut() {
            e.useful &= mask;
        }
    }
}

impl BranchPredictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        // Compute straight into the retained scratch: `core` and `last`
        // are disjoint fields, so no temporary and no copy.
        self.core.compute_into(pc, &mut self.last);
        self.last.final_pred
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        // Recompute if the caller skipped predict() or interleaved PCs.
        if self.last.pc != pc {
            self.core.compute_into(pc, &mut self.last);
        }
        let _ = predicted;
        self.core.train_with(&self.last, taken);
    }

    fn storage_bits(&self) -> u64 {
        let c = &self.core.config;
        let bim = (1u64 << c.log_bimodal) * 2;
        let entry_bits = 3 + 2 + c.tag_bits as u64;
        let tagged = c.num_tables as u64 * (1u64 << c.log_entries) * entry_bits;
        bim + tagged + c.max_history as u64 + 4
    }

    fn label(&self) -> String {
        let kb = (self.storage_bits() as f64 / 8.0 / 1024.0).ceil() as u64;
        format!("tage-{}KB", kb.next_power_of_two())
    }

    /// Whole-trace replay with the prediction scratch in a stack local:
    /// per branch it runs exactly compute → compare → train, with no
    /// `last` store. `last` is written once at the end, so the post-
    /// replay state (including the predict-skip guard) is identical to
    /// the per-record loop's.
    ///
    /// The `num_tables` dispatch is hoisted out of the loop: one match
    /// per *trace* selects a fully monomorphized loop body for the two
    /// shipped geometries, so compute, train, allocation and the fold
    /// sweep all see a compile-time table count for the whole window.
    fn replay(&mut self, trace: &[BranchRecord]) -> u64 {
        match self.core.config.num_tables {
            6 => self.replay_mono(trace, 6),
            12 => self.replay_mono(trace, 12),
            n => self.replay_mono(trace, n),
        }
    }
}

impl Tage {
    #[inline(always)]
    fn replay_mono(&mut self, trace: &[BranchRecord], n: usize) -> u64 {
        let mut mispredicts = 0u64;
        let mut p = Prediction::default();
        for r in trace {
            self.core.compute_into_inner(r.pc, &mut p, n);
            if p.final_pred != r.taken {
                mispredicts += 1;
            }
            self.core.train_with_inner(&p, r.taken, n);
        }
        if !trace.is_empty() {
            self.last = p;
        }
        mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use crate::Gshare;
    use vstress_trace::record::BranchRecord;

    #[test]
    fn history_lengths_are_geometric_and_increasing() {
        let c = TageConfig::budget_8kb();
        let mut prev = 0;
        for i in 0..c.num_tables {
            let l = c.history_length(i);
            assert!(l > prev, "lengths must strictly increase: {l} after {prev}");
            prev = l;
        }
        assert_eq!(c.history_length(0), c.min_history);
        assert_eq!(c.history_length(c.num_tables - 1), c.max_history);
    }

    #[test]
    fn budgets_fit_their_labels() {
        let t8 = Tage::seznec_8kb();
        assert!(t8.storage_bits() <= 8 * 1024 * 8, "{} bits", t8.storage_bits());
        assert_eq!(t8.label(), "tage-8KB");
        let t64 = Tage::seznec_64kb();
        assert!(t64.storage_bits() <= 64 * 1024 * 8, "{} bits", t64.storage_bits());
        assert_eq!(t64.label(), "tage-64KB");
    }

    #[test]
    fn learns_long_period_pattern_that_defeats_gshare() {
        // Period-48 pattern at a single PC requires ~48 bits of history.
        let pattern: Vec<bool> = (0..48).map(|i| (i * 7) % 13 < 6).collect();
        let trace: Vec<BranchRecord> = (0..60_000)
            .map(|i| BranchRecord { pc: 0xbeef0, taken: pattern[i % pattern.len()] })
            .collect();
        let tage = harness::run(&mut Tage::seznec_8kb(), &trace);
        let gshare = harness::run(&mut Gshare::with_budget_bytes(2 << 10), &trace);
        assert!(
            tage.miss_rate() < gshare.miss_rate() * 0.5,
            "tage {} vs gshare {}",
            tage.miss_rate(),
            gshare.miss_rate()
        );
        assert!(tage.miss_rate() < 0.05, "tage should nearly nail it: {}", tage.miss_rate());
    }

    #[test]
    fn bigger_tage_is_no_worse_on_alias_heavy_trace() {
        let mut trace = Vec::new();
        let mut x = 77u64;
        for _ in 0..80_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = 0x4000 + (x % 8192) * 4;
            let taken = (pc / 4).is_multiple_of(3);
            trace.push(BranchRecord { pc, taken });
        }
        let small = harness::run(&mut Tage::seznec_8kb(), &trace);
        let large = harness::run(&mut Tage::seznec_64kb(), &trace);
        assert!(
            large.miss_rate() <= small.miss_rate() + 0.005,
            "large {} vs small {}",
            large.miss_rate(),
            small.miss_rate()
        );
    }

    #[test]
    fn update_without_predict_is_tolerated() {
        let mut t = Tage::seznec_8kb();
        for i in 0..1000 {
            t.update(0x10, i % 2 == 0, false);
        }
        // No panic, and the predictor still functions.
        let _ = t.predict(0x10);
    }

    #[test]
    #[should_panic(expected = "num_tables")]
    fn degenerate_config_panics() {
        let mut c = TageConfig::budget_8kb();
        c.num_tables = 0;
        let _ = Tage::new(c);
    }
}
