//! TAGE — TAgged GEometric-history-length predictor (Seznec).
//!
//! A faithful small-scale TAGE: a bimodal base predictor plus `N` tagged
//! tables indexed by hashes of the PC with geometrically increasing global
//! history lengths. Prediction comes from the matching table with the
//! longest history (the *provider*); the next match (or the bimodal) is
//! the *alternate*. Entries carry 3-bit signed counters, partial tags and
//! 2-bit usefulness counters; mispredictions allocate into longer tables,
//! and usefulness is periodically aged, exactly as in the CBP reference
//! implementations.

use crate::counter::SatCounter;
use crate::history::HistoryBundle;
use crate::BranchPredictor;

/// Geometry and budget of a [`Tage`] predictor.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TageConfig {
    /// log2 of bimodal-table entries.
    pub log_bimodal: u32,
    /// Number of tagged tables.
    pub num_tables: usize,
    /// log2 of entries per tagged table.
    pub log_entries: u32,
    /// Partial-tag width in bits.
    pub tag_bits: u32,
    /// Shortest history length (table 0).
    pub min_history: usize,
    /// Longest history length (last table).
    pub max_history: usize,
    /// Updates between usefulness-aging events.
    pub u_reset_period: u64,
}

impl TageConfig {
    /// The ~8 KB configuration evaluated by the paper.
    pub fn budget_8kb() -> Self {
        TageConfig {
            log_bimodal: 12,
            num_tables: 6,
            log_entries: 9,
            tag_bits: 9,
            min_history: 4,
            max_history: 130,
            u_reset_period: 256 * 1024,
        }
    }

    /// The ~64 KB configuration evaluated by the paper.
    pub fn budget_64kb() -> Self {
        TageConfig {
            log_bimodal: 14,
            num_tables: 12,
            log_entries: 11,
            tag_bits: 12,
            min_history: 4,
            max_history: 640,
            u_reset_period: 512 * 1024,
        }
    }

    /// The geometric history length of tagged table `i`.
    pub fn history_length(&self, i: usize) -> usize {
        if self.num_tables == 1 {
            return self.min_history;
        }
        let ratio = self.max_history as f64 / self.min_history as f64;
        let l = self.min_history as f64 * ratio.powf(i as f64 / (self.num_tables - 1) as f64);
        (l.round() as usize).max(1)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    /// 3-bit counter; >= 4 predicts taken.
    ctr: u8,
    tag: u16,
    /// 2-bit usefulness.
    useful: u8,
}

impl TageEntry {
    #[inline]
    fn predicts_taken(&self) -> bool {
        self.ctr >= 4
    }

    #[inline]
    fn is_weak(&self) -> bool {
        self.ctr == 3 || self.ctr == 4
    }

    #[inline]
    fn train(&mut self, taken: bool) {
        if taken {
            if self.ctr < 7 {
                self.ctr += 1;
            }
        } else if self.ctr > 0 {
            self.ctr -= 1;
        }
    }
}

/// The TAGE predictor. See the module docs for structure.
#[derive(Debug, Clone)]
pub struct Tage {
    config: TageConfig,
    bimodal: Vec<SatCounter<2>>,
    tables: Vec<Vec<TageEntry>>,
    history: HistoryBundle,
    /// 4-bit USE_ALT_ON_NA: trust the alternate when the provider is new.
    use_alt_on_na: u8,
    updates: u64,
    /// Which half of the usefulness bits the next aging event clears.
    age_phase: bool,
    /// Deterministic xorshift state for allocation randomization.
    rng: u64,
    /// Scratch from the last prediction, consumed by `update`.
    last: Prediction,
}

#[derive(Debug, Clone, Copy, Default)]
struct Prediction {
    pc: u64,
    provider: Option<usize>,
    provider_index: usize,
    alt_pred: bool,
    provider_pred: bool,
    final_pred: bool,
    provider_is_new: bool,
    table_indices: [usize; 16],
    table_tags: [u16; 16],
}

impl Tage {
    /// Builds a TAGE predictor with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (no tables, more than 16
    /// tables, zero tag bits, or a non-increasing history range).
    pub fn new(config: TageConfig) -> Self {
        assert!(
            (1..=16).contains(&config.num_tables),
            "num_tables must be 1..=16 (Prediction scratch is fixed-size)"
        );
        assert!(config.tag_bits >= 4 && config.tag_bits <= 16, "tag_bits must be 4..=16");
        assert!(config.min_history >= 1 && config.max_history > config.min_history);
        assert!(config.log_entries >= 4 && config.log_bimodal >= 4);
        let mut specs = Vec::new();
        for i in 0..config.num_tables {
            let l = config.history_length(i);
            specs.push((l, config.log_entries as usize)); // index fold
            specs.push((l, config.tag_bits as usize)); // tag fold 1
            specs.push((l, (config.tag_bits - 1) as usize)); // tag fold 2
        }
        Tage {
            bimodal: vec![SatCounter::weakly_not_taken(); 1 << config.log_bimodal],
            tables: vec![vec![TageEntry::default(); 1 << config.log_entries]; config.num_tables],
            history: HistoryBundle::new(&specs),
            use_alt_on_na: 8,
            updates: 0,
            age_phase: false,
            rng: 0x2545_f491_4f6c_dd1d,
            last: Prediction::default(),
            config,
        }
    }

    /// The paper's 8 KB TAGE.
    pub fn seznec_8kb() -> Self {
        Self::new(TageConfig::budget_8kb())
    }

    /// The paper's 64 KB TAGE.
    pub fn seznec_64kb() -> Self {
        Self::new(TageConfig::budget_64kb())
    }

    /// The configuration this predictor was built with.
    pub fn config(&self) -> &TageConfig {
        &self.config
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.log_bimodal) - 1)) as usize
    }

    #[inline]
    fn table_index(&self, pc: u64, table: usize) -> usize {
        let fold = self.history.fold(table * 3);
        let mask = (1u64 << self.config.log_entries) - 1;
        let pcx = (pc >> 2) ^ (pc >> (2 + self.config.log_entries as u64 + table as u64));
        ((pcx ^ fold) & mask) as usize
    }

    #[inline]
    fn table_tag(&self, pc: u64, table: usize) -> u16 {
        let f1 = self.history.fold(table * 3 + 1);
        let f2 = self.history.fold(table * 3 + 2);
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((pc >> 2) ^ f1 ^ (f2 << 1)) & mask) as u16
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    fn compute_prediction(&mut self, pc: u64) -> Prediction {
        let mut p = Prediction { pc, ..Prediction::default() };
        for t in 0..self.config.num_tables {
            p.table_indices[t] = self.table_index(pc, t);
            p.table_tags[t] = self.table_tag(pc, t);
        }
        let bim = self.bimodal[self.bimodal_index(pc)].is_taken();
        p.alt_pred = bim;
        p.provider_pred = bim;
        p.final_pred = bim;
        // Scan from longest history (last table) down.
        let mut provider = None;
        let mut alt: Option<bool> = None;
        for t in (0..self.config.num_tables).rev() {
            let e = &self.tables[t][p.table_indices[t]];
            if e.tag == p.table_tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else if alt.is_none() {
                    alt = Some(e.predicts_taken());
                    break;
                }
            }
        }
        if let Some(t) = provider {
            let e = &self.tables[t][p.table_indices[t]];
            p.provider = Some(t);
            p.provider_index = p.table_indices[t];
            p.provider_pred = e.predicts_taken();
            p.alt_pred = alt.unwrap_or(bim);
            p.provider_is_new = e.is_weak() && e.useful == 0;
            p.final_pred = if p.provider_is_new && self.use_alt_on_na >= 8 {
                p.alt_pred
            } else {
                p.provider_pred
            };
        }
        p
    }

    fn allocate(&mut self, p: &Prediction, taken: bool) {
        let start = match p.provider {
            Some(t) => t + 1,
            None => 0,
        };
        if start >= self.config.num_tables {
            return;
        }
        // Seznec randomizes the first candidate table to avoid ping-ponging.
        let span = self.config.num_tables - start;
        let skip = if span > 1 { (self.next_rand() % 2) as usize } else { 0 };
        let mut allocated = false;
        for t in (start + skip)..self.config.num_tables {
            let idx = p.table_indices[t];
            if self.tables[t][idx].useful == 0 {
                self.tables[t][idx] =
                    TageEntry { ctr: if taken { 4 } else { 3 }, tag: p.table_tags[t], useful: 0 };
                allocated = true;
                break;
            }
        }
        if !allocated {
            // All candidates useful: age them so a later allocation succeeds.
            for t in start..self.config.num_tables {
                let idx = p.table_indices[t];
                let e = &mut self.tables[t][idx];
                if e.useful > 0 {
                    e.useful -= 1;
                }
            }
        }
    }

    fn age_usefulness(&mut self) {
        // Alternately clear the high / low usefulness bit (Seznec's
        // graceful aging) so entries lose protection over two periods.
        let mask = if self.age_phase { 0b01 } else { 0b10 };
        self.age_phase = !self.age_phase;
        for table in &mut self.tables {
            for e in table.iter_mut() {
                e.useful &= mask;
            }
        }
    }
}

impl BranchPredictor for Tage {
    fn predict(&mut self, pc: u64) -> bool {
        let p = self.compute_prediction(pc);
        let pred = p.final_pred;
        self.last = p;
        pred
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        // Recompute if the caller skipped predict() or interleaved PCs.
        if self.last.pc != pc {
            let p = self.compute_prediction(pc);
            self.last = p;
        }
        let p = self.last;
        let _ = predicted;
        let mispredicted = p.final_pred != taken;

        if let Some(t) = p.provider {
            // USE_ALT_ON_NA bookkeeping: when the provider is fresh and the
            // two predictions disagree, learn which to trust.
            if p.provider_is_new && p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if self.use_alt_on_na > 0 {
                        self.use_alt_on_na -= 1;
                    }
                } else if self.use_alt_on_na < 15 {
                    self.use_alt_on_na += 1;
                }
            }
            let e = &mut self.tables[t][p.provider_index];
            // Usefulness tracks "provider beat the alternate".
            if p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if e.useful < 3 {
                        e.useful += 1;
                    }
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
            }
            e.train(taken);
            // Keep the bimodal warm when it served as the alternate.
            if e.is_weak() {
                let bi = self.bimodal_index(pc);
                self.bimodal[bi].update(taken);
            }
        } else {
            let bi = self.bimodal_index(pc);
            self.bimodal[bi].update(taken);
        }

        if mispredicted {
            self.allocate(&p, taken);
        }

        self.history.push(taken);
        self.updates += 1;
        if self.updates.is_multiple_of(self.config.u_reset_period) {
            self.age_usefulness();
        }
    }

    fn storage_bits(&self) -> u64 {
        let bim = (1u64 << self.config.log_bimodal) * 2;
        let entry_bits = 3 + 2 + self.config.tag_bits as u64;
        let tagged = self.config.num_tables as u64 * (1u64 << self.config.log_entries) * entry_bits;
        bim + tagged + self.config.max_history as u64 + 4
    }

    fn label(&self) -> String {
        let kb = (self.storage_bits() as f64 / 8.0 / 1024.0).ceil() as u64;
        format!("tage-{}KB", kb.next_power_of_two())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use crate::Gshare;
    use vstress_trace::record::BranchRecord;

    #[test]
    fn history_lengths_are_geometric_and_increasing() {
        let c = TageConfig::budget_8kb();
        let mut prev = 0;
        for i in 0..c.num_tables {
            let l = c.history_length(i);
            assert!(l > prev, "lengths must strictly increase: {l} after {prev}");
            prev = l;
        }
        assert_eq!(c.history_length(0), c.min_history);
        assert_eq!(c.history_length(c.num_tables - 1), c.max_history);
    }

    #[test]
    fn budgets_fit_their_labels() {
        let t8 = Tage::seznec_8kb();
        assert!(t8.storage_bits() <= 8 * 1024 * 8, "{} bits", t8.storage_bits());
        assert_eq!(t8.label(), "tage-8KB");
        let t64 = Tage::seznec_64kb();
        assert!(t64.storage_bits() <= 64 * 1024 * 8, "{} bits", t64.storage_bits());
        assert_eq!(t64.label(), "tage-64KB");
    }

    #[test]
    fn learns_long_period_pattern_that_defeats_gshare() {
        // Period-48 pattern at a single PC requires ~48 bits of history.
        let pattern: Vec<bool> = (0..48).map(|i| (i * 7) % 13 < 6).collect();
        let trace: Vec<BranchRecord> = (0..60_000)
            .map(|i| BranchRecord { pc: 0xbeef0, taken: pattern[i % pattern.len()] })
            .collect();
        let tage = harness::run(&mut Tage::seznec_8kb(), &trace);
        let gshare = harness::run(&mut Gshare::with_budget_bytes(2 << 10), &trace);
        assert!(
            tage.miss_rate() < gshare.miss_rate() * 0.5,
            "tage {} vs gshare {}",
            tage.miss_rate(),
            gshare.miss_rate()
        );
        assert!(tage.miss_rate() < 0.05, "tage should nearly nail it: {}", tage.miss_rate());
    }

    #[test]
    fn bigger_tage_is_no_worse_on_alias_heavy_trace() {
        let mut trace = Vec::new();
        let mut x = 77u64;
        for _ in 0..80_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = 0x4000 + (x % 8192) * 4;
            let taken = (pc / 4).is_multiple_of(3);
            trace.push(BranchRecord { pc, taken });
        }
        let small = harness::run(&mut Tage::seznec_8kb(), &trace);
        let large = harness::run(&mut Tage::seznec_64kb(), &trace);
        assert!(
            large.miss_rate() <= small.miss_rate() + 0.005,
            "large {} vs small {}",
            large.miss_rate(),
            small.miss_rate()
        );
    }

    #[test]
    fn update_without_predict_is_tolerated() {
        let mut t = Tage::seznec_8kb();
        for i in 0..1000 {
            t.update(0x10, i % 2 == 0, false);
        }
        // No panic, and the predictor still functions.
        let _ = t.predict(0x10);
    }

    #[test]
    #[should_panic(expected = "num_tables")]
    fn degenerate_config_panics() {
        let mut c = TageConfig::budget_8kb();
        c.num_tables = 0;
        let _ = Tage::new(c);
    }
}
