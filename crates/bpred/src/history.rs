//! Global branch history and incrementally folded history registers.

/// Maximum global history length retained (long enough for large TAGE
/// configurations).
pub const MAX_HISTORY: usize = 1024;

/// A shift register of recent branch outcomes.
///
/// Bit 0 of the logical history is the most recent outcome. Backed by a
/// circular bit buffer so pushes are O(1) regardless of history length.
#[derive(Debug, Clone)]
pub struct GlobalHistory {
    bits: [u64; MAX_HISTORY / 64],
    /// Index of the slot the *next* outcome will occupy.
    head: usize,
}

impl GlobalHistory {
    /// Creates an all-not-taken history.
    pub fn new() -> Self {
        GlobalHistory { bits: [0; MAX_HISTORY / 64], head: 0 }
    }

    /// Pushes the latest outcome.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        let w = self.head / 64;
        let b = self.head % 64;
        if taken {
            self.bits[w] |= 1 << b;
        } else {
            self.bits[w] &= !(1 << b);
        }
        self.head = (self.head + 1) % MAX_HISTORY;
    }

    /// Outcome `age` branches ago (`age = 0` is the most recent).
    #[inline]
    pub fn bit(&self, age: usize) -> bool {
        debug_assert!(age < MAX_HISTORY);
        let idx = (self.head + MAX_HISTORY - 1 - age) % MAX_HISTORY;
        (self.bits[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// The `len` most recent outcomes packed into a u64 (`len <= 64`),
    /// most recent in bit 0. Used by short-history predictors.
    #[inline]
    pub fn low_bits(&self, len: usize) -> u64 {
        debug_assert!(len <= 64);
        let mut v = 0u64;
        for age in 0..len {
            v |= (self.bit(age) as u64) << age;
        }
        v
    }
}

impl Default for GlobalHistory {
    fn default() -> Self {
        Self::new()
    }
}

/// A history register folded down to `target_bits` by XOR, maintained
/// incrementally as branches retire — the classic TAGE/CBP structure.
///
/// Folding the most recent `orig_len` history bits into `target_bits`
/// would cost O(orig_len) per branch if recomputed; instead the fold is
/// updated in O(1) by injecting the incoming bit and ejecting the bit that
/// falls off the end of the window.
#[derive(Debug, Clone)]
pub struct FoldedHistory {
    comp: u64,
    orig_len: usize,
    target_bits: usize,
    /// `orig_len % target_bits`, the rotation applied to the ejected bit.
    outpoint: usize,
}

impl FoldedHistory {
    /// Folds the most recent `orig_len` outcomes into `target_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `target_bits` is 0 or greater than 63, or if `orig_len`
    /// exceeds [`MAX_HISTORY`].
    pub fn new(orig_len: usize, target_bits: usize) -> Self {
        assert!(target_bits > 0 && target_bits < 64, "target_bits must be 1..=63");
        assert!(orig_len <= MAX_HISTORY, "orig_len exceeds retained history");
        FoldedHistory { comp: 0, orig_len, target_bits, outpoint: orig_len % target_bits }
    }

    /// Current folded value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.comp
    }

    /// Updates the fold for a new outcome, given the global history
    /// *before* this outcome is pushed (so the ejected bit is still
    /// readable at age `orig_len - 1`).
    #[inline]
    pub fn update(&mut self, history_before_push: &GlobalHistory, incoming: bool) {
        let mask = (1u64 << self.target_bits) - 1;
        // Inject the incoming bit at position 0; every older bit advances
        // one position (mod target_bits) via the overflow fold-back.
        self.comp = (self.comp << 1) | incoming as u64;
        if self.orig_len > 0 {
            // The bit leaving the window sits at position orig_len % target.
            let ejected = history_before_push.bit(self.orig_len - 1) as u64;
            self.comp ^= ejected << self.outpoint;
        }
        self.comp ^= self.comp >> self.target_bits;
        self.comp &= mask;
    }
}

/// A bundle of one [`GlobalHistory`] plus the folded registers that all
/// tagged tables of a TAGE predictor need, kept in sync by a single
/// [`HistoryBundle::push`].
#[derive(Debug, Clone)]
pub struct HistoryBundle {
    global: GlobalHistory,
    folds: Vec<FoldedHistory>,
}

impl HistoryBundle {
    /// Creates a bundle with one folded register per `(orig_len, bits)`
    /// specification.
    pub fn new(specs: &[(usize, usize)]) -> Self {
        HistoryBundle {
            global: GlobalHistory::new(),
            folds: specs.iter().map(|&(l, b)| FoldedHistory::new(l, b)).collect(),
        }
    }

    /// The raw global history.
    pub fn global(&self) -> &GlobalHistory {
        &self.global
    }

    /// Folded value of register `i`.
    #[inline]
    pub fn fold(&self, i: usize) -> u64 {
        self.folds[i].value()
    }

    /// Retires one branch outcome, updating every fold then the history.
    pub fn push(&mut self, taken: bool) {
        for f in &mut self.folds {
            f.update(&self.global, taken);
        }
        self.global.push(taken);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference fold: XOR of `target_bits`-wide chunks of the history.
    fn reference_fold(hist: &GlobalHistory, orig_len: usize, bits: usize) -> u64 {
        let mut acc = 0u64;
        let mut chunk = 0u64;
        for age in 0..orig_len {
            let pos = age % bits;
            chunk |= (hist.bit(age) as u64) << pos;
            if pos == bits - 1 || age == orig_len - 1 {
                acc ^= chunk;
                chunk = 0;
            }
        }
        acc
    }

    #[test]
    fn history_push_and_read() {
        let mut h = GlobalHistory::new();
        h.push(true);
        h.push(false);
        h.push(true);
        assert!(h.bit(0)); // newest
        assert!(!h.bit(1));
        assert!(h.bit(2));
        assert_eq!(h.low_bits(3), 0b101);
    }

    #[test]
    fn history_wraps_without_corruption() {
        let mut h = GlobalHistory::new();
        for i in 0..(MAX_HISTORY * 2 + 17) {
            h.push(i % 3 == 0);
        }
        // After pushing i = 0..n, bit(age) corresponds to i = n-1-age.
        let n = MAX_HISTORY * 2 + 17;
        for age in 0..MAX_HISTORY {
            assert_eq!(h.bit(age), (n - 1 - age).is_multiple_of(3), "age {age}");
        }
    }

    #[test]
    fn folded_history_matches_reference() {
        // Incremental fold must equal recomputation from scratch at every step.
        let (orig_len, bits) = (13, 5);
        let mut h = GlobalHistory::new();
        let mut f = FoldedHistory::new(orig_len, bits);
        let mut x = 0x1234_5678u64;
        for _ in 0..500 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let taken = (x >> 33) & 1 == 1;
            f.update(&h, taken);
            h.push(taken);
            assert_eq!(f.value(), reference_fold(&h, orig_len, bits));
        }
    }

    #[test]
    fn folded_history_various_geometries() {
        for &(orig_len, bits) in &[(4usize, 4usize), (8, 3), (64, 10), (130, 11), (300, 12)] {
            let mut h = GlobalHistory::new();
            let mut f = FoldedHistory::new(orig_len, bits);
            let mut x = 42u64;
            for step in 0..400 {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                let taken = x >> 62 & 1 == 1;
                f.update(&h, taken);
                h.push(taken);
                assert_eq!(
                    f.value(),
                    reference_fold(&h, orig_len, bits),
                    "len {orig_len} bits {bits} step {step}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "target_bits")]
    fn zero_target_bits_panics() {
        let _ = FoldedHistory::new(10, 0);
    }

    #[test]
    fn bundle_keeps_folds_in_sync() {
        let mut b = HistoryBundle::new(&[(8, 4), (32, 7)]);
        for i in 0..100 {
            b.push(i % 5 < 2);
        }
        assert_eq!(b.fold(0), reference_fold(b.global(), 8, 4));
        assert_eq!(b.fold(1), reference_fold(b.global(), 32, 7));
    }
}
