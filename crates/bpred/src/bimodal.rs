//! Bimodal (per-PC 2-bit counter) predictor.

use crate::counter::SatCounter;
use crate::BranchPredictor;

/// The classic Smith predictor: a table of 2-bit saturating counters
/// indexed by low PC bits.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SatCounter<2>>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index_bits must be 1..=28");
        Bimodal { table: vec![SatCounter::weakly_not_taken(); 1 << index_bits], index_bits }
    }

    /// Creates the largest bimodal predictor fitting in `bytes` of storage
    /// (2 bits per counter).
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let counters = (bytes * 8 / 2).max(2);
        Self::new(63 - counters.leading_zeros())
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.index_bits) - 1)) as usize
    }
}

impl BranchPredictor for Bimodal {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * 2
    }

    fn label(&self) -> String {
        format!("bimodal-{}KB", self.storage_bits() / 8 / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_biased_branch() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            let g = p.predict(0x40);
            p.update(0x40, true, g);
        }
        assert!(p.predict(0x40));
    }

    #[test]
    fn distinct_pcs_do_not_interfere_within_table() {
        let mut p = Bimodal::new(10);
        for _ in 0..4 {
            p.update(0x40, true, false);
            p.update(0x44, false, false);
        }
        assert!(p.predict(0x40));
        assert!(!p.predict(0x44));
    }

    #[test]
    fn budget_sizing() {
        let p = Bimodal::with_budget_bytes(2048);
        assert_eq!(p.storage_bits(), 2048 * 8);
        assert_eq!(p.label(), "bimodal-2KB");
    }

    #[test]
    #[should_panic(expected = "index_bits")]
    fn zero_bits_panics() {
        let _ = Bimodal::new(0);
    }
}
