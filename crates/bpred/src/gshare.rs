//! Gshare (McFarling 1993) global-history predictor.

use crate::counter::SatCounter;
use crate::BranchPredictor;
use vstress_trace::record::BranchRecord;

/// Gshare: a single table of 2-bit counters indexed by
/// `PC XOR global-history`.
///
/// This is one of the two predictor families the paper evaluates (at 2 KB
/// and 32 KB budgets). History length equals the index width, the standard
/// configuration — which means the whole history fits a single `u64`
/// shift register (most recent outcome in bit 0), maintained in O(1) per
/// branch. The pre-rewrite implementation, which read the history bit by
/// bit out of the shared circular buffer on every index computation, is
/// kept as [`crate::reference::ReferenceGshare`]; an equivalence test
/// pins the two to identical per-branch predictions.
///
/// ```
/// use vstress_bpred::{BranchPredictor, Gshare};
///
/// let mut p = Gshare::with_budget_bytes(2 << 10);
/// // An always-taken branch: once the global history saturates, the
/// // indexed counter trains and the prediction locks in.
/// for _ in 0..100 {
///     let guess = p.predict(0x40);
///     p.update(0x40, true, guess);
/// }
/// assert!(p.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SatCounter<2>>,
    /// The `index_bits` most recent outcomes, most recent in bit 0, upper
    /// bits always zero.
    history: u64,
    index_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters and an
    /// `index_bits`-long global history.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index_bits must be 1..=28");
        Gshare {
            table: vec![SatCounter::weakly_not_taken(); 1 << index_bits],
            history: 0,
            index_bits,
        }
    }

    /// Creates the largest gshare fitting in `bytes` of storage
    /// (2 bits per counter): the paper's 2 KB config yields 8Ki counters,
    /// the 32 KB config 128Ki counters.
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let counters = (bytes * 8 / 2).max(2);
        Self::new(63 - counters.leading_zeros())
    }

    #[inline]
    fn mask(&self) -> u64 {
        (1u64 << self.index_bits) - 1
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        (((pc >> 2) ^ self.history) & self.mask()) as usize
    }
}

impl BranchPredictor for Gshare {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.history = ((self.history << 1) | taken as u64) & self.mask();
    }

    fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * 2 + self.index_bits as u64
    }

    fn label(&self) -> String {
        format!("gshare-{}KB", (self.table.len() as u64 * 2) / 8 / 1024)
    }

    fn replay(&mut self, trace: &[BranchRecord]) -> u64 {
        // The predict/update pair of one branch computes the same table
        // index twice; a whole-trace replay computes it once and keeps
        // the history register in a local. Observably identical to the
        // default per-record body (same counters touched, same history).
        let mask = self.mask();
        let mut history = self.history;
        let mut mispredicts = 0u64;
        for r in trace {
            let idx = (((r.pc >> 2) ^ history) & mask) as usize;
            let guess = self.table[idx].is_taken();
            mispredicts += (guess != r.taken) as u64;
            self.table[idx].update(r.taken);
            history = ((history << 1) | r.taken as u64) & mask;
        }
        self.history = history;
        mispredicts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use vstress_trace::record::BranchRecord;

    #[test]
    fn learns_history_correlated_pattern() {
        // Alternating T/N at one PC is mispredicted forever by bimodal but
        // learned exactly by gshare once history disambiguates the phases.
        let trace: Vec<BranchRecord> =
            (0..4000).map(|i| BranchRecord { pc: 0x80, taken: i % 2 == 0 }).collect();
        let stats = harness::run(&mut Gshare::new(12), &trace);
        assert!(stats.miss_rate() < 0.02, "miss rate {}", stats.miss_rate());
    }

    #[test]
    fn bigger_table_reduces_aliasing() {
        // Many hot branches with conflicting biases alias in a tiny table.
        let mut trace = Vec::new();
        let mut x = 9u64;
        for i in 0..60_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pc = 0x1000 + (x % 4096) * 4;
            trace.push(BranchRecord { pc, taken: pc % 8 < 3 });
            let _ = i;
        }
        let small = harness::run(&mut Gshare::with_budget_bytes(256), &trace);
        let large = harness::run(&mut Gshare::with_budget_bytes(32 << 10), &trace);
        assert!(
            large.miss_rate() < small.miss_rate(),
            "large {} vs small {}",
            large.miss_rate(),
            small.miss_rate()
        );
    }

    #[test]
    fn paper_budget_labels() {
        assert_eq!(Gshare::with_budget_bytes(2 << 10).label(), "gshare-2KB");
        assert_eq!(Gshare::with_budget_bytes(32 << 10).label(), "gshare-32KB");
    }

    #[test]
    fn storage_matches_budget() {
        let p = Gshare::with_budget_bytes(2 << 10);
        // 2KB = 16384 bits of counters (plus the history register).
        assert_eq!(p.storage_bits(), 16384 + 13);
    }
}
