//! Tournament (McFarling combining) predictor.

use crate::bimodal::Bimodal;
use crate::counter::SatCounter;
use crate::gshare::Gshare;
use crate::BranchPredictor;

/// McFarling's combining predictor: a bimodal and a gshare component with
/// a per-PC chooser table that learns which component to trust.
///
/// Included as an equal-budget ablation baseline between plain gshare and
/// TAGE (DESIGN.md §6).
#[derive(Debug, Clone)]
pub struct Tournament {
    bimodal: Bimodal,
    gshare: Gshare,
    chooser: Vec<SatCounter<2>>,
    chooser_bits: u32,
}

impl Tournament {
    /// Creates a tournament predictor; each component gets roughly half of
    /// `bytes`, the chooser a fixed 1/8 share.
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let comp = (bytes * 7 / 16).max(64);
        let chooser_entries = ((bytes / 8).max(16) * 8 / 2).next_power_of_two();
        let chooser_bits = chooser_entries.trailing_zeros();
        Tournament {
            bimodal: Bimodal::with_budget_bytes(comp),
            gshare: Gshare::with_budget_bytes(comp),
            chooser: vec![SatCounter::weakly_taken(); chooser_entries as usize],
            chooser_bits,
        }
    }

    #[inline]
    fn chooser_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.chooser_bits) - 1)) as usize
    }
}

impl BranchPredictor for Tournament {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        // Chooser counter high => trust gshare.
        if self.chooser[self.chooser_index(pc)].is_taken() {
            self.gshare.predict(pc)
        } else {
            self.bimodal.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        let bim = self.bimodal.predict(pc);
        let gsh = self.gshare.predict(pc);
        // Train the chooser only when the components disagree.
        if bim != gsh {
            let idx = self.chooser_index(pc);
            self.chooser[idx].update(gsh == taken);
        }
        self.bimodal.update(pc, taken, predicted);
        self.gshare.update(pc, taken, predicted);
    }

    fn storage_bits(&self) -> u64 {
        self.bimodal.storage_bits() + self.gshare.storage_bits() + self.chooser.len() as u64 * 2
    }

    fn label(&self) -> String {
        format!("tournament-{}KB", (self.storage_bits() / 8).next_power_of_two() / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use vstress_trace::record::BranchRecord;

    fn mixed_trace() -> Vec<BranchRecord> {
        // One strongly biased branch (bimodal-friendly) interleaved with one
        // history-correlated branch (gshare-friendly).
        let mut t = Vec::new();
        for i in 0..30_000u64 {
            t.push(BranchRecord { pc: 0x100, taken: i % 17 != 0 });
            t.push(BranchRecord { pc: 0x200, taken: i % 2 == 0 });
        }
        t
    }

    #[test]
    fn beats_both_components_on_mixed_workload() {
        let trace = mixed_trace();
        let tour = harness::run(&mut Tournament::with_budget_bytes(8 << 10), &trace);
        let bim = harness::run(&mut Bimodal::with_budget_bytes(8 << 10), &trace);
        assert!(
            tour.miss_rate() <= bim.miss_rate() + 1e-9,
            "tournament {} vs bimodal {}",
            tour.miss_rate(),
            bim.miss_rate()
        );
        assert!(tour.miss_rate() < 0.05, "tournament should learn both: {}", tour.miss_rate());
    }

    #[test]
    fn storage_is_within_budget_order() {
        let p = Tournament::with_budget_bytes(8 << 10);
        let bytes = p.storage_bits() / 8;
        assert!(bytes <= 9 << 10, "{} bytes", bytes);
    }
}
