//! Kept pre-rewrite predictor implementations.
//!
//! Mirrors `vstress_cache::reference`: when a predictor's hot path is
//! rewritten for speed, the original implementation moves here verbatim
//! and stays compiled, serving two purposes —
//!
//! 1. **equivalence oracle**: property tests drive the live predictor
//!    and its reference with the same traces and assert identical
//!    per-branch predictions and final mispredict counts, so the rewrite
//!    cannot silently change simulated results;
//! 2. **bench baseline**: `vstress-bench` times the live path next to
//!    the reference, so the speedup stays measurable in every report.

use crate::counter::SatCounter;
use crate::history::GlobalHistory;
use crate::BranchPredictor;

/// The original gshare implementation: the global history lives in the
/// shared circular-buffer register and every index computation re-reads
/// it bit by bit through [`GlobalHistory::low_bits`] — O(history length)
/// per predict *and* per update. The live [`crate::Gshare`] replaces
/// this with an O(1) single-word shift register and a whole-trace
/// `replay` that computes each branch's table index once.
#[derive(Debug, Clone)]
pub struct ReferenceGshare {
    table: Vec<SatCounter<2>>,
    history: GlobalHistory,
    index_bits: u32,
}

impl ReferenceGshare {
    /// Creates a reference gshare with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index_bits must be 1..=28");
        ReferenceGshare {
            table: vec![SatCounter::weakly_not_taken(); 1 << index_bits],
            history: GlobalHistory::new(),
            index_bits,
        }
    }

    /// Creates the largest reference gshare fitting in `bytes` of
    /// storage (2 bits per counter).
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let counters = (bytes * 8 / 2).max(2);
        Self::new(63 - counters.leading_zeros())
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history.low_bits(self.index_bits as usize)) & mask) as usize
    }
}

impl BranchPredictor for ReferenceGshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * 2 + self.index_bits as u64
    }

    fn label(&self) -> String {
        format!("ref-gshare-{}KB", (self.table.len() as u64 * 2) / 8 / 1024)
    }

    // No `replay` override: the reference keeps the default per-record
    // body, exactly the pre-rewrite dispatch cost.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gshare;
    use proptest::prelude::*;
    use vstress_trace::record::BranchRecord;

    // The live gshare must agree with the kept original on every
    // single prediction, not just on aggregate counts: any divergence
    // in the history register or index hash shows up on the first
    // branch where they disagree.
    proptest! {
        #[test]
        fn live_gshare_predicts_identically_to_reference(
            steps in prop::collection::vec((0u64..1u64 << 12, any::<bool>()), 1..3000),
            index_bits in 1u32..18,
        ) {
            let mut live = Gshare::new(index_bits);
            let mut reference = ReferenceGshare::new(index_bits);
            prop_assert_eq!(live.storage_bits(), reference.storage_bits());
            for (i, &(pc_seed, taken)) in steps.iter().enumerate() {
                let pc = 0x1000 + pc_seed * 4;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "diverged at branch {} (pc {:#x})", i, pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }

        // The specialized whole-trace replay must equal the reference's
        // per-record replay on mispredict count *and* leave the live
        // predictor in a state that keeps predicting identically.
        #[test]
        fn live_replay_equals_reference_replay(
            records in prop::collection::vec((0u64..1u64 << 10, any::<bool>()), 1..3000),
            index_bits in 1u32..18,
        ) {
            let trace: Vec<BranchRecord> = records
                .iter()
                .map(|&(pc_seed, taken)| BranchRecord { pc: 0x4000 + pc_seed * 8, taken })
                .collect();
            let mut live = Gshare::new(index_bits);
            let mut reference = ReferenceGshare::new(index_bits);
            let fast = live.replay(&trace);
            let slow = reference.replay(&trace);
            prop_assert_eq!(fast, slow, "mispredict counts diverged");
            // Post-replay state check: both must carry on identically.
            for &(pc_seed, taken) in records.iter().take(200) {
                let pc = 0x4000 + pc_seed * 8;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "post-replay state diverged at pc {:#x}", pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }
    }
}
