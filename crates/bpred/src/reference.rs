//! Kept pre-rewrite predictor implementations.
//!
//! Mirrors `vstress_cache::reference`: when a predictor's hot path is
//! rewritten for speed, the original implementation moves here verbatim
//! and stays compiled, serving two purposes —
//!
//! 1. **equivalence oracle**: property tests drive the live predictor
//!    and its reference with the same traces and assert identical
//!    per-branch predictions and final mispredict counts, so the rewrite
//!    cannot silently change simulated results;
//! 2. **bench baseline**: `vstress-bench` times the live path next to
//!    the reference, so the speedup stays measurable in every report.

use crate::counter::SatCounter;
use crate::history::{GlobalHistory, HistoryBundle};
use crate::tage::TageConfig;
use crate::BranchPredictor;

/// The original gshare implementation: the global history lives in the
/// shared circular-buffer register and every index computation re-reads
/// it bit by bit through [`GlobalHistory::low_bits`] — O(history length)
/// per predict *and* per update. The live [`crate::Gshare`] replaces
/// this with an O(1) single-word shift register and a whole-trace
/// `replay` that computes each branch's table index once.
#[derive(Debug, Clone)]
pub struct ReferenceGshare {
    table: Vec<SatCounter<2>>,
    history: GlobalHistory,
    index_bits: u32,
}

impl ReferenceGshare {
    /// Creates a reference gshare with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or greater than 28.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=28).contains(&index_bits), "index_bits must be 1..=28");
        ReferenceGshare {
            table: vec![SatCounter::weakly_not_taken(); 1 << index_bits],
            history: GlobalHistory::new(),
            index_bits,
        }
    }

    /// Creates the largest reference gshare fitting in `bytes` of
    /// storage (2 bits per counter).
    pub fn with_budget_bytes(bytes: u64) -> Self {
        let counters = (bytes * 8 / 2).max(2);
        Self::new(63 - counters.leading_zeros())
    }

    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history.low_bits(self.index_bits as usize)) & mask) as usize
    }
}

impl BranchPredictor for ReferenceGshare {
    fn predict(&mut self, pc: u64) -> bool {
        self.table[self.index(pc)].is_taken()
    }

    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        self.history.push(taken);
    }

    fn storage_bits(&self) -> u64 {
        (self.table.len() as u64) * 2 + self.index_bits as u64
    }

    fn label(&self) -> String {
        format!("ref-gshare-{}KB", (self.table.len() as u64 * 2) / 8 / 1024)
    }

    // No `replay` override: the reference keeps the default per-record
    // body, exactly the pre-rewrite dispatch cost.
}

#[derive(Debug, Clone, Copy, Default)]
struct RefTageEntry {
    /// 3-bit counter; >= 4 predicts taken.
    ctr: u8,
    tag: u16,
    /// 2-bit usefulness.
    useful: u8,
}

impl RefTageEntry {
    #[inline]
    fn predicts_taken(&self) -> bool {
        self.ctr >= 4
    }

    #[inline]
    fn is_weak(&self) -> bool {
        self.ctr == 3 || self.ctr == 4
    }

    #[inline]
    fn train(&mut self, taken: bool) {
        if taken {
            if self.ctr < 7 {
                self.ctr += 1;
            }
        } else if self.ctr > 0 {
            self.ctr -= 1;
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct RefPrediction {
    pc: u64,
    provider: Option<usize>,
    provider_index: usize,
    alt_pred: bool,
    provider_pred: bool,
    final_pred: bool,
    provider_is_new: bool,
    table_indices: [usize; 16],
    table_tags: [u16; 16],
}

/// The original TAGE implementation, kept verbatim: tagged tables as a
/// `Vec<Vec<_>>` (one pointer chase per table per lookup), folded
/// histories behind the generic [`HistoryBundle`] (a heap `Vec` of fold
/// registers walked on every retire), and a ~200-byte `Prediction`
/// scratch copied twice per predict/update round-trip. The live
/// [`crate::Tage`] flattens all three; this copy pins its behaviour,
/// prediction for prediction.
#[derive(Debug, Clone)]
pub struct ReferenceTage {
    config: TageConfig,
    bimodal: Vec<SatCounter<2>>,
    tables: Vec<Vec<RefTageEntry>>,
    history: HistoryBundle,
    /// 4-bit USE_ALT_ON_NA: trust the alternate when the provider is new.
    use_alt_on_na: u8,
    updates: u64,
    /// Which half of the usefulness bits the next aging event clears.
    age_phase: bool,
    /// Deterministic xorshift state for allocation randomization.
    rng: u64,
    /// Scratch from the last prediction, consumed by `update`.
    last: RefPrediction,
}

impl ReferenceTage {
    /// Builds the reference TAGE with the given geometry (same
    /// constraints as [`crate::Tage::new`]).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (see [`crate::Tage::new`]).
    pub fn new(config: TageConfig) -> Self {
        assert!(
            (1..=16).contains(&config.num_tables),
            "num_tables must be 1..=16 (Prediction scratch is fixed-size)"
        );
        assert!(config.tag_bits >= 4 && config.tag_bits <= 16, "tag_bits must be 4..=16");
        assert!(config.min_history >= 1 && config.max_history > config.min_history);
        assert!(config.log_entries >= 4 && config.log_bimodal >= 4);
        let mut specs = Vec::new();
        for i in 0..config.num_tables {
            let l = config.history_length(i);
            specs.push((l, config.log_entries as usize)); // index fold
            specs.push((l, config.tag_bits as usize)); // tag fold 1
            specs.push((l, (config.tag_bits - 1) as usize)); // tag fold 2
        }
        ReferenceTage {
            bimodal: vec![SatCounter::weakly_not_taken(); 1 << config.log_bimodal],
            tables: vec![vec![RefTageEntry::default(); 1 << config.log_entries]; config.num_tables],
            history: HistoryBundle::new(&specs),
            use_alt_on_na: 8,
            updates: 0,
            age_phase: false,
            rng: 0x2545_f491_4f6c_dd1d,
            last: RefPrediction::default(),
            config,
        }
    }

    /// The paper's 8 KB TAGE, reference implementation.
    pub fn seznec_8kb() -> Self {
        Self::new(TageConfig::budget_8kb())
    }

    /// The paper's 64 KB TAGE, reference implementation.
    pub fn seznec_64kb() -> Self {
        Self::new(TageConfig::budget_64kb())
    }

    #[inline]
    fn bimodal_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.config.log_bimodal) - 1)) as usize
    }

    #[inline]
    fn table_index(&self, pc: u64, table: usize) -> usize {
        let fold = self.history.fold(table * 3);
        let mask = (1u64 << self.config.log_entries) - 1;
        let pcx = (pc >> 2) ^ (pc >> (2 + self.config.log_entries as u64 + table as u64));
        ((pcx ^ fold) & mask) as usize
    }

    #[inline]
    fn table_tag(&self, pc: u64, table: usize) -> u16 {
        let f1 = self.history.fold(table * 3 + 1);
        let f2 = self.history.fold(table * 3 + 2);
        let mask = (1u64 << self.config.tag_bits) - 1;
        (((pc >> 2) ^ f1 ^ (f2 << 1)) & mask) as u16
    }

    #[inline]
    fn next_rand(&mut self) -> u64 {
        self.rng ^= self.rng << 13;
        self.rng ^= self.rng >> 7;
        self.rng ^= self.rng << 17;
        self.rng
    }

    fn compute_prediction(&mut self, pc: u64) -> RefPrediction {
        let mut p = RefPrediction { pc, ..RefPrediction::default() };
        for t in 0..self.config.num_tables {
            p.table_indices[t] = self.table_index(pc, t);
            p.table_tags[t] = self.table_tag(pc, t);
        }
        let bim = self.bimodal[self.bimodal_index(pc)].is_taken();
        p.alt_pred = bim;
        p.provider_pred = bim;
        p.final_pred = bim;
        // Scan from longest history (last table) down.
        let mut provider = None;
        let mut alt: Option<bool> = None;
        for t in (0..self.config.num_tables).rev() {
            let e = &self.tables[t][p.table_indices[t]];
            if e.tag == p.table_tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else if alt.is_none() {
                    alt = Some(e.predicts_taken());
                    break;
                }
            }
        }
        if let Some(t) = provider {
            let e = &self.tables[t][p.table_indices[t]];
            p.provider = Some(t);
            p.provider_index = p.table_indices[t];
            p.provider_pred = e.predicts_taken();
            p.alt_pred = alt.unwrap_or(bim);
            p.provider_is_new = e.is_weak() && e.useful == 0;
            p.final_pred = if p.provider_is_new && self.use_alt_on_na >= 8 {
                p.alt_pred
            } else {
                p.provider_pred
            };
        }
        p
    }

    fn allocate(&mut self, p: &RefPrediction, taken: bool) {
        let start = match p.provider {
            Some(t) => t + 1,
            None => 0,
        };
        if start >= self.config.num_tables {
            return;
        }
        // Seznec randomizes the first candidate table to avoid ping-ponging.
        let span = self.config.num_tables - start;
        let skip = if span > 1 { (self.next_rand() % 2) as usize } else { 0 };
        let mut allocated = false;
        for t in (start + skip)..self.config.num_tables {
            let idx = p.table_indices[t];
            if self.tables[t][idx].useful == 0 {
                self.tables[t][idx] = RefTageEntry {
                    ctr: if taken { 4 } else { 3 },
                    tag: p.table_tags[t],
                    useful: 0,
                };
                allocated = true;
                break;
            }
        }
        if !allocated {
            // All candidates useful: age them so a later allocation succeeds.
            for t in start..self.config.num_tables {
                let idx = p.table_indices[t];
                let e = &mut self.tables[t][idx];
                if e.useful > 0 {
                    e.useful -= 1;
                }
            }
        }
    }

    fn age_usefulness(&mut self) {
        // Alternately clear the high / low usefulness bit (Seznec's
        // graceful aging) so entries lose protection over two periods.
        let mask = if self.age_phase { 0b01 } else { 0b10 };
        self.age_phase = !self.age_phase;
        for table in &mut self.tables {
            for e in table.iter_mut() {
                e.useful &= mask;
            }
        }
    }
}

impl BranchPredictor for ReferenceTage {
    fn predict(&mut self, pc: u64) -> bool {
        let p = self.compute_prediction(pc);
        let pred = p.final_pred;
        self.last = p;
        pred
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        // Recompute if the caller skipped predict() or interleaved PCs.
        if self.last.pc != pc {
            let p = self.compute_prediction(pc);
            self.last = p;
        }
        let p = self.last;
        let _ = predicted;
        let mispredicted = p.final_pred != taken;

        if let Some(t) = p.provider {
            // USE_ALT_ON_NA bookkeeping: when the provider is fresh and the
            // two predictions disagree, learn which to trust.
            if p.provider_is_new && p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if self.use_alt_on_na > 0 {
                        self.use_alt_on_na -= 1;
                    }
                } else if self.use_alt_on_na < 15 {
                    self.use_alt_on_na += 1;
                }
            }
            let e = &mut self.tables[t][p.provider_index];
            // Usefulness tracks "provider beat the alternate".
            if p.provider_pred != p.alt_pred {
                if p.provider_pred == taken {
                    if e.useful < 3 {
                        e.useful += 1;
                    }
                } else if e.useful > 0 {
                    e.useful -= 1;
                }
            }
            e.train(taken);
            // Keep the bimodal warm when it served as the alternate.
            if e.is_weak() {
                let bi = self.bimodal_index(pc);
                self.bimodal[bi].update(taken);
            }
        } else {
            let bi = self.bimodal_index(pc);
            self.bimodal[bi].update(taken);
        }

        if mispredicted {
            self.allocate(&p, taken);
        }

        self.history.push(taken);
        self.updates += 1;
        if self.updates.is_multiple_of(self.config.u_reset_period) {
            self.age_usefulness();
        }
    }

    fn storage_bits(&self) -> u64 {
        let bim = (1u64 << self.config.log_bimodal) * 2;
        let entry_bits = 3 + 2 + self.config.tag_bits as u64;
        let tagged = self.config.num_tables as u64 * (1u64 << self.config.log_entries) * entry_bits;
        bim + tagged + self.config.max_history as u64 + 4
    }

    fn label(&self) -> String {
        let kb = (self.storage_bits() as f64 / 8.0 / 1024.0).ceil() as u64;
        format!("ref-tage-{}KB", kb.next_power_of_two())
    }

    // No `replay` override, as with `ReferenceGshare`.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gshare;
    use proptest::prelude::*;
    use vstress_trace::record::BranchRecord;

    // The live gshare must agree with the kept original on every
    // single prediction, not just on aggregate counts: any divergence
    // in the history register or index hash shows up on the first
    // branch where they disagree.
    proptest! {
        #[test]
        fn live_gshare_predicts_identically_to_reference(
            steps in prop::collection::vec((0u64..1u64 << 12, any::<bool>()), 1..3000),
            index_bits in 1u32..18,
        ) {
            let mut live = Gshare::new(index_bits);
            let mut reference = ReferenceGshare::new(index_bits);
            prop_assert_eq!(live.storage_bits(), reference.storage_bits());
            for (i, &(pc_seed, taken)) in steps.iter().enumerate() {
                let pc = 0x1000 + pc_seed * 4;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "diverged at branch {} (pc {:#x})", i, pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }

        // The specialized whole-trace replay must equal the reference's
        // per-record replay on mispredict count *and* leave the live
        // predictor in a state that keeps predicting identically.
        #[test]
        fn live_replay_equals_reference_replay(
            records in prop::collection::vec((0u64..1u64 << 10, any::<bool>()), 1..3000),
            index_bits in 1u32..18,
        ) {
            let trace: Vec<BranchRecord> = records
                .iter()
                .map(|&(pc_seed, taken)| BranchRecord { pc: 0x4000 + pc_seed * 8, taken })
                .collect();
            let mut live = Gshare::new(index_bits);
            let mut reference = ReferenceGshare::new(index_bits);
            let fast = live.replay(&trace);
            let slow = reference.replay(&trace);
            prop_assert_eq!(fast, slow, "mispredict counts diverged");
            // Post-replay state check: both must carry on identically.
            for &(pc_seed, taken) in records.iter().take(200) {
                let pc = 0x4000 + pc_seed * 8;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "post-replay state diverged at pc {:#x}", pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }
    }

    /// A deliberately tiny TAGE geometry: small tables force tag
    /// aliasing and allocation pressure, and the short `u_reset_period`
    /// makes the proptest traces cross several usefulness-aging events.
    fn tiny_tage_config() -> TageConfig {
        TageConfig {
            log_bimodal: 5,
            num_tables: 4,
            log_entries: 4,
            tag_bits: 6,
            min_history: 3,
            max_history: 40,
            u_reset_period: 512,
        }
    }

    // The live TAGE (flat tables, inline folds, fused replay) must track
    // the kept original branch-for-branch. Folded-history drift, rng
    // call-site drift, or a reordered update step all surface as a
    // first-divergence here.
    proptest! {
        #[test]
        fn live_tage_predicts_identically_to_reference(
            steps in prop::collection::vec((0u64..1u64 << 8, any::<bool>()), 1..4000),
        ) {
            let mut live = crate::Tage::new(tiny_tage_config());
            let mut reference = ReferenceTage::new(tiny_tage_config());
            prop_assert_eq!(live.storage_bits(), reference.storage_bits());
            for (i, &(pc_seed, taken)) in steps.iter().enumerate() {
                let pc = 0x1000 + pc_seed * 4;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "diverged at branch {} (pc {:#x})", i, pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }

        // The fused replay must equal the canonical per-record loop on
        // mispredict count and leave state that keeps agreeing.
        #[test]
        fn live_tage_replay_equals_reference_replay(
            records in prop::collection::vec((0u64..1u64 << 8, any::<bool>()), 1..4000),
        ) {
            let trace: Vec<BranchRecord> = records
                .iter()
                .map(|&(pc_seed, taken)| BranchRecord { pc: 0x4000 + pc_seed * 8, taken })
                .collect();
            let mut live = crate::Tage::new(tiny_tage_config());
            let mut reference = ReferenceTage::new(tiny_tage_config());
            let fast = live.replay(&trace);
            let slow = reference.replay(&trace);
            prop_assert_eq!(fast, slow, "mispredict counts diverged");
            for &(pc_seed, taken) in records.iter().take(300) {
                let pc = 0x4000 + pc_seed * 8;
                let a = live.predict(pc);
                let b = reference.predict(pc);
                prop_assert_eq!(a, b, "post-replay state diverged at pc {:#x}", pc);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
        }

        // The CBP contract tolerates update() without a matching
        // predict() (and stale `last` scratch from another pc); both
        // implementations must handle it the same way.
        #[test]
        fn live_tage_tolerates_update_without_predict(
            steps in prop::collection::vec((0u64..1u64 << 8, any::<bool>(), any::<bool>()), 1..2000),
        ) {
            let mut live = crate::Tage::new(tiny_tage_config());
            let mut reference = ReferenceTage::new(tiny_tage_config());
            for &(pc_seed, taken, do_predict) in steps.iter() {
                let pc = 0x1000 + pc_seed * 4;
                let (a, b) = if do_predict {
                    (live.predict(pc), reference.predict(pc))
                } else {
                    (false, false)
                };
                prop_assert_eq!(a, b);
                live.update(pc, taken, a);
                reference.update(pc, taken, b);
            }
            // Both still agree afterwards.
            for pc_seed in 0u64..64 {
                let pc = 0x1000 + pc_seed * 4;
                prop_assert_eq!(live.predict(pc), reference.predict(pc));
            }
        }
    }

    #[test]
    fn paper_budget_tage_matches_reference_on_mixed_trace() {
        // Deterministic smoke at the real 8 KB geometry (proptests use a
        // tiny config for aging coverage; this pins the shipped one).
        let mut trace = Vec::new();
        let mut x = 0x9e37_79b9u64;
        for i in 0..120_000u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pc = 0x4000 + (x % 4096) * 4;
            let taken = match i % 3 {
                0 => (pc / 4).is_multiple_of(3),
                1 => x & 0x100 != 0,
                _ => i % 7 != 0,
            };
            trace.push(BranchRecord { pc, taken });
        }
        let mut live = crate::Tage::seznec_8kb();
        let mut reference = ReferenceTage::seznec_8kb();
        assert_eq!(live.replay(&trace), reference.replay(&trace));
        for r in trace.iter().take(500) {
            let a = live.predict(r.pc);
            let b = reference.predict(r.pc);
            assert_eq!(a, b, "post-replay divergence at pc {:#x}", r.pc);
            live.update(r.pc, r.taken, a);
            reference.update(r.pc, r.taken, b);
        }
    }
}
