//! Saturating counters, the basic storage element of direction predictors.

/// An `N`-bit saturating up/down counter.
///
/// Values live in `[0, 2^N - 1]`; the counter "predicts taken" in the upper
/// half of its range. `N = 2` is the classic Smith counter; TAGE uses
/// 3-bit signed counters which map onto `SatCounter<3>` with the midpoint
/// shifted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct SatCounter<const N: u32> {
    value: u8,
}

impl<const N: u32> SatCounter<N> {
    /// Maximum representable value.
    pub const MAX: u8 = ((1u16 << N) - 1) as u8;

    /// Creates a counter at the weakly-not-taken midpoint.
    pub fn weakly_not_taken() -> Self {
        SatCounter { value: (1 << (N - 1)) - 1 }
    }

    /// Creates a counter at the weakly-taken midpoint.
    pub fn weakly_taken() -> Self {
        SatCounter { value: 1 << (N - 1) }
    }

    /// Creates a counter at an explicit value, clamped to range.
    pub fn at(value: u8) -> Self {
        SatCounter { value: value.min(Self::MAX) }
    }

    /// Current raw value.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Whether the counter currently predicts taken.
    #[inline]
    pub fn is_taken(self) -> bool {
        self.value >= (1 << (N - 1))
    }

    /// Whether the counter is at either extreme (high confidence).
    #[inline]
    pub fn is_saturated(self) -> bool {
        self.value == 0 || self.value == Self::MAX
    }

    /// Whether the counter is at one of the two midpoints (low confidence).
    #[inline]
    pub fn is_weak(self) -> bool {
        let mid_hi = 1 << (N - 1);
        self.value == mid_hi || self.value == mid_hi - 1
    }

    /// Trains the counter toward `taken`.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < Self::MAX {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }
}

impl<const N: u32> Default for SatCounter<N> {
    fn default() -> Self {
        Self::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_counter_hysteresis() {
        let mut c = SatCounter::<2>::weakly_not_taken();
        assert!(!c.is_taken());
        c.update(true); // 1 -> 2: weakly taken
        assert!(c.is_taken());
        c.update(false); // 2 -> 1
        assert!(!c.is_taken());
    }

    #[test]
    fn saturation_at_extremes() {
        let mut c = SatCounter::<2>::at(3);
        c.update(true);
        assert_eq!(c.value(), 3);
        assert!(c.is_saturated());
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
        assert!(c.is_saturated());
    }

    #[test]
    fn strongly_taken_needs_two_flips() {
        let mut c = SatCounter::<2>::at(3);
        c.update(false);
        assert!(c.is_taken(), "one not-taken must not flip a strong counter");
        c.update(false);
        assert!(!c.is_taken());
    }

    #[test]
    fn three_bit_midpoints_are_weak() {
        assert!(SatCounter::<3>::weakly_taken().is_weak());
        assert!(SatCounter::<3>::weakly_not_taken().is_weak());
        assert!(!SatCounter::<3>::at(7).is_weak());
        assert_eq!(SatCounter::<3>::MAX, 7);
    }

    #[test]
    fn at_clamps() {
        assert_eq!(SatCounter::<2>::at(200).value(), 3);
    }
}
