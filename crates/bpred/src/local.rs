//! Two-level local-history predictor (Yeh & Patt style).

use crate::counter::SatCounter;
use crate::BranchPredictor;

/// A two-level predictor with per-branch local history: a first-level
/// table of history registers indexed by PC selects into a second-level
/// pattern table of 2-bit counters.
///
/// Not evaluated in the paper's figures, but included as an ablation
/// baseline (DESIGN.md §6): it isolates whether SVT-AV1's branches are
/// *self*-correlated (local history suffices) or *cross*-correlated
/// (global history needed, as TAGE exploits).
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u16>,
    pattern: Vec<SatCounter<2>>,
    history_bits: u32,
    pc_bits: u32,
}

impl TwoLevelLocal {
    /// Creates a local predictor with `2^pc_bits` history registers of
    /// `history_bits` bits and a `2^history_bits` pattern table.
    ///
    /// # Panics
    ///
    /// Panics if `history_bits` is 0 or exceeds 16, or `pc_bits` exceeds 24.
    pub fn new(pc_bits: u32, history_bits: u32) -> Self {
        assert!((1..=16).contains(&history_bits), "history_bits must be 1..=16");
        assert!((1..=24).contains(&pc_bits), "pc_bits must be 1..=24");
        TwoLevelLocal {
            histories: vec![0; 1 << pc_bits],
            pattern: vec![SatCounter::weakly_not_taken(); 1 << history_bits],
            history_bits,
            pc_bits,
        }
    }

    #[inline]
    fn pc_index(&self, pc: u64) -> usize {
        ((pc >> 2) & ((1 << self.pc_bits) - 1)) as usize
    }
}

impl BranchPredictor for TwoLevelLocal {
    #[inline]
    fn predict(&mut self, pc: u64) -> bool {
        let h = self.histories[self.pc_index(pc)] as usize;
        self.pattern[h].is_taken()
    }

    #[inline]
    fn update(&mut self, pc: u64, taken: bool, _predicted: bool) {
        let pi = self.pc_index(pc);
        let h = self.histories[pi] as usize;
        self.pattern[h].update(taken);
        let mask = (1u16 << self.history_bits) - 1;
        self.histories[pi] = ((self.histories[pi] << 1) | taken as u16) & mask;
    }

    fn storage_bits(&self) -> u64 {
        self.histories.len() as u64 * self.history_bits as u64 + self.pattern.len() as u64 * 2
    }

    fn label(&self) -> String {
        format!("local-{}KB", self.storage_bits() / 8 / 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness;
    use vstress_trace::record::BranchRecord;

    #[test]
    fn learns_short_periodic_pattern() {
        // Period-4 loop branch: local history of >= 4 bits nails it.
        let trace: Vec<BranchRecord> =
            (0..4000).map(|i| BranchRecord { pc: 0x90, taken: i % 4 != 3 }).collect();
        let stats = harness::run(&mut TwoLevelLocal::new(10, 10), &trace);
        assert!(stats.miss_rate() < 0.02, "miss rate {}", stats.miss_rate());
    }

    #[test]
    fn independent_branches_use_independent_histories() {
        let mut trace = Vec::new();
        for i in 0..4000 {
            trace.push(BranchRecord { pc: 0x100, taken: i % 2 == 0 });
            trace.push(BranchRecord { pc: 0x200, taken: i % 3 == 0 });
        }
        let stats = harness::run(&mut TwoLevelLocal::new(10, 12), &trace);
        assert!(stats.miss_rate() < 0.05, "miss rate {}", stats.miss_rate());
    }

    #[test]
    fn storage_accounting() {
        let p = TwoLevelLocal::new(10, 10);
        assert_eq!(p.storage_bits(), 1024 * 10 + 1024 * 2);
    }
}
