//! Trace-driven branch-predictor simulation — the stand-in for the
//! CBP-2016 framework used by the paper.
//!
//! The paper replays SVT-AV1 branch traces through the Championship Branch
//! Prediction simulator with four predictor configurations: Gshare at 2 KB
//! and 32 KB, and TAGE at 8 KB and 64 KB. This crate provides the same
//! contract: a [`BranchPredictor`] trait, faithful implementations of the
//! classic predictor families at parameterizable hardware budgets, and a
//! [`harness`] that replays a recorded branch trace and reports miss rate
//! and MPKI.
//!
//! ```
//! use vstress_bpred::{harness, Gshare, Tage};
//! use vstress_trace::record::BranchRecord;
//!
//! // A long-period loop branch: taken 7 times, not-taken once, repeatedly.
//! let trace: Vec<BranchRecord> = (0..800)
//!     .map(|i| BranchRecord { pc: 0x5000_0000_0000, taken: i % 8 != 7 })
//!     .collect();
//!
//! let g = harness::run(&mut Gshare::with_budget_bytes(2 << 10), &trace);
//! let t = harness::run(&mut Tage::seznec_8kb(), &trace);
//! assert!(t.miss_rate() <= g.miss_rate(), "TAGE should beat small gshare");
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod bimodal;
pub mod counter;
pub mod gshare;
pub mod harness;
pub mod history;
pub mod local;
pub mod looppred;
pub mod perceptron;
pub mod reference;
pub mod tage;
pub mod tournament;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use harness::{run, BpredStats};
pub use local::TwoLevelLocal;
pub use looppred::{LoopPredictor, TageWithLoop};
pub use perceptron::Perceptron;
pub use reference::{ReferenceGshare, ReferenceTage};
pub use tage::{Tage, TageConfig};
pub use tournament::Tournament;

use vstress_trace::record::BranchRecord;

/// A direction predictor for conditional branches.
///
/// The contract mirrors the CBP framework: the simulator calls
/// [`predict`](BranchPredictor::predict) to obtain a guess, then
/// [`update`](BranchPredictor::update) with the resolved direction —
/// exactly once each, in program order, for every conditional branch.
pub trait BranchPredictor {
    /// Predicts the direction of the branch at `pc`.
    fn predict(&mut self, pc: u64) -> bool;

    /// Trains on the resolved direction of the branch at `pc`.
    ///
    /// `predicted` is the value returned by the matching
    /// [`predict`](BranchPredictor::predict) call; predictors that adjust
    /// internal state differently on mispredicts need it (TAGE allocation).
    fn update(&mut self, pc: u64, taken: bool, predicted: bool);

    /// Hardware budget in bits of storage actually modelled.
    fn storage_bits(&self) -> u64;

    /// Short configuration label for reports (e.g. `"gshare-32KB"`).
    fn label(&self) -> String;

    /// Replays a whole recorded trace under the CBP contract and returns
    /// the mispredict count.
    ///
    /// The body is the canonical predict/compare/update loop; overrides
    /// must be observably identical. The method exists for dispatch cost:
    /// default trait methods are monomorphized per implementing type, so
    /// calling this through `&mut dyn BranchPredictor` costs one virtual
    /// call per *trace* — with statically dispatched predict/update
    /// inside — instead of two per *branch* (`harness::run_per_record`
    /// keeps the old loop as the equivalence reference and bench
    /// baseline).
    fn replay(&mut self, trace: &[BranchRecord]) -> u64 {
        let mut mispredicts = 0u64;
        for r in trace {
            let guess = self.predict(r.pc);
            if guess != r.taken {
                mispredicts += 1;
            }
            self.update(r.pc, r.taken, guess);
        }
        mispredicts
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for Box<P> {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        (**self).update(pc, taken, predicted);
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn replay(&mut self, trace: &[BranchRecord]) -> u64 {
        // Forward explicitly: the boxed type's monomorphized replay (not a
        // per-record loop over forwarded predict/update) must run.
        (**self).replay(trace)
    }
}

impl<P: BranchPredictor + ?Sized> BranchPredictor for &mut P {
    fn predict(&mut self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool, predicted: bool) {
        (**self).update(pc, taken, predicted);
    }

    fn storage_bits(&self) -> u64 {
        (**self).storage_bits()
    }

    fn label(&self) -> String {
        (**self).label()
    }

    fn replay(&mut self, trace: &[BranchRecord]) -> u64 {
        (**self).replay(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_object_safety() {
        let mut g = Gshare::with_budget_bytes(2048);
        let p: &mut dyn BranchPredictor = &mut g;
        let guess = p.predict(0x40);
        p.update(0x40, true, guess);
        assert!(p.storage_bits() > 0);
    }
}
