//! `vstress` — a workbench reproducing *"Do Video Encoding Workloads
//! Stress the Microarchitecture?"* (IISWC 2023) entirely in Rust.
//!
//! The paper asks why AV1 encoding (SVT-AV1) runs an order of magnitude
//! slower than x264/x265/VP9 encoders, and answers with workload
//! characterization: the slowdown is *algorithmic* (a vastly larger
//! per-block search space ⇒ more instructions), not microarchitectural
//! (IPC stays ≈ 2, retiring ≈ 50% on a 4-wide core). This crate ties the
//! workbench's components together and provides one runner per paper
//! figure/table:
//!
//! * [`vstress_video`] — frames, synthetic vbench clips, PSNR/BD-Rate;
//! * [`vstress_codecs`] — the five instrumented encoder models and the
//!   matching decoder;
//! * [`vstress_trace`] — the Pin-substitute instrumentation layer;
//! * [`vstress_bpred`] / [`vstress_cache`] / [`vstress_pipeline`] — the
//!   CBP-style predictor framework, cache hierarchy, and top-down core
//!   model;
//! * [`vstress_sched`] — the thread-scalability engine;
//! * [`experiments`] — `fig01` … `fig16` and `table1`/`table2` runners
//!   that print the same rows/series the paper reports;
//! * [`serve`] — the long-running encode service: staged pipeline with
//!   bounded queues and backpressure under deterministic synthetic
//!   traffic (`vstress-serve`).
//!
//! # Quickstart
//!
//! ```
//! use vstress::workbench::{characterize, RunSpec};
//! use vstress_codecs::{CodecId, EncoderParams};
//!
//! let spec = RunSpec::quick("desktop", CodecId::SvtAv1, EncoderParams::new(50, 8));
//! let run = characterize(&spec).expect("desktop is a vbench clip");
//! assert!(run.core.ipc() > 0.5);
//! assert!(run.mean_psnr > 20.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod cli;
pub mod exec;
pub mod experiments;
pub mod runtime;
pub mod serve;
pub mod table;
pub mod workbench;

pub use exec::{BranchWindow, RunCache, RunCacheStats, RunStore, StoreStats, SCHEMA_VERSION};
pub use serve::{ServeConfig, ServeReport, TrafficConfig};
pub use table::Table;
pub use workbench::{characterize, CharacterizationRun, RunSpec};

// Re-export the component crates so downstream users need one dependency.
pub use vstress_bpred as bpred;
pub use vstress_cache as cache;
pub use vstress_codecs as codecs;
pub use vstress_pipeline as pipeline;
pub use vstress_sched as sched;
pub use vstress_trace as trace;
pub use vstress_video as video;
