//! Figs. 4–7 — the CRF sweep: instructions/time/IPC, top-down, MPKI,
//! resource stalls and branch miss rate.
//!
//! All four figures come from the same set of instrumented runs, so
//! [`crf_sweep`] performs the sweep once and the per-figure formatters
//! slice it.

use super::ExperimentConfig;
use crate::table::{f1, f2, f3, Table};
use crate::workbench::{CharacterizationRun, WorkbenchError};
use vstress_codecs::{CodecId, EncoderParams};

/// One (clip, crf) sweep sample.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Clip name.
    pub clip: String,
    /// CRF value.
    pub crf: u8,
    /// The full characterization.
    pub run: CharacterizationRun,
}

/// Runs the SVT-AV1 preset-4 CRF sweep over the configured clips.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn crf_sweep(cfg: &ExperimentConfig) -> Result<Vec<SweepPoint>, WorkbenchError> {
    let mut points = Vec::new();
    let mut specs = Vec::new();
    for &clip_name in &cfg.clips {
        for &crf in &cfg.crf_points {
            points.push((clip_name, crf));
            specs.push(cfg.spec(clip_name, CodecId::SvtAv1, EncoderParams::new(crf, 4)));
        }
    }
    let runs = cfg.run_specs(&specs)?;
    Ok(points
        .into_iter()
        .zip(runs)
        .map(|((clip, crf), run)| SweepPoint { clip: clip.to_owned(), crf, run: (*run).clone() })
        .collect())
}

/// Fig. 4 — instruction count, execution time and IPC vs CRF.
pub fn fig04_crf_sweep(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 4 — CRF sweep (SVT-AV1, preset 4): instructions / time / IPC",
        &["Video", "CRF", "instructions", "seconds", "IPC"],
    );
    for p in points {
        t.push_row(vec![
            p.clip.clone(),
            p.crf.to_string(),
            p.run.core.instructions.to_string(),
            format!("{:.4}", p.run.seconds),
            f2(p.run.core.ipc()),
        ]);
    }
    t
}

/// Fig. 5 — top-down slot fractions vs CRF.
pub fn fig05_topdown(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 5 — top-down analysis (SVT-AV1, preset 4)",
        &["Video", "CRF", "retiring", "bad-spec", "frontend", "backend"],
    );
    for p in points {
        let td = p.run.core.topdown();
        t.push_row(vec![
            p.clip.clone(),
            p.crf.to_string(),
            f3(td.retiring),
            f3(td.bad_speculation),
            f3(td.frontend),
            f3(td.backend),
        ]);
    }
    t
}

/// Fig. 6 — branch/L1D/L2/LLC MPKI and per-structure resource stalls.
pub fn fig06_microarch(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 6 — microarchitectural analysis vs CRF (SVT-AV1, preset 4)",
        &[
            "Video",
            "CRF",
            "brMPKI",
            "L1D MPKI",
            "L2 MPKI",
            "LLC MPKI",
            "RS stalls/ki",
            "LQ stalls/ki",
            "SQ stalls/ki",
            "ROB stalls/ki",
        ],
    );
    for p in points {
        let r = &p.run.core;
        let per_ki = |v: f64| {
            if r.instructions == 0 {
                0.0
            } else {
                v / r.instructions as f64 * 1000.0
            }
        };
        t.push_row(vec![
            p.clip.clone(),
            p.crf.to_string(),
            f2(r.branch_mpki()),
            f2(r.l1d_mpki()),
            f2(r.l2_mpki()),
            f3(r.llc_mpki()),
            f2(per_ki(r.resource_stalls.rs)),
            f2(per_ki(r.resource_stalls.lq)),
            f2(per_ki(r.resource_stalls.sq)),
            f2(per_ki(r.resource_stalls.rob)),
        ]);
    }
    t
}

/// Fig. 7 — branch miss rate vs CRF.
pub fn fig07_missrate(points: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 7 — branch miss rate vs CRF (SVT-AV1, preset 4)",
        &["Video", "CRF", "miss rate %"],
    );
    for p in points {
        t.push_row(vec![
            p.clip.clone(),
            p.crf.to_string(),
            f1(p.run.core.branch_miss_rate() * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_points() -> Vec<SweepPoint> {
        let mut cfg = ExperimentConfig::quick();
        cfg.clips = vec!["bike"];
        cfg.crf_points = vec![15, 55];
        crf_sweep(&cfg).unwrap()
    }

    #[test]
    fn sweep_reproduces_the_papers_headline_trends() {
        let pts = tiny_points();
        assert_eq!(pts.len(), 2);
        let (lo, hi) = (&pts[0], &pts[1]);
        // Work falls with CRF.
        assert!(
            lo.run.core.instructions > hi.run.core.instructions,
            "{} vs {}",
            lo.run.core.instructions,
            hi.run.core.instructions
        );
        // IPC stays in the ~2 band at both ends.
        for p in [lo, hi] {
            let ipc = p.run.core.ipc();
            assert!((1.2..3.2).contains(&ipc), "IPC {ipc}");
        }
        // Retiring fraction in the paper's 0.4–0.65 band.
        for p in [lo, hi] {
            let td = p.run.core.topdown();
            assert!((0.35..0.70).contains(&td.retiring), "retiring {}", td.retiring);
            // Backend dominates frontend dominates bad speculation.
            assert!(td.backend > td.bad_speculation, "{td:?}");
        }
    }

    #[test]
    fn tables_format_all_points() {
        let pts = tiny_points();
        assert_eq!(fig04_crf_sweep(&pts).rows.len(), 2);
        assert_eq!(fig05_topdown(&pts).rows.len(), 2);
        assert_eq!(fig06_microarch(&pts).rows.len(), 2);
        assert_eq!(fig07_missrate(&pts).rows.len(), 2);
    }

    #[test]
    fn topdown_rows_sum_to_one() {
        let pts = tiny_points();
        let t = fig05_topdown(&pts);
        for row in &t.rows {
            let sum: f64 = row[2..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((sum - 1.0).abs() < 0.01, "top-down row sums to {sum}");
        }
    }
}
