//! Fig. 11 — the speed-preset sweep on the headline clip.

use super::ExperimentConfig;
use crate::table::{f1, f2, f3, Table};
use crate::workbench::{CharacterizationRun, WorkbenchError};
use vstress_codecs::{CodecId, EncoderParams};

/// Fixed CRF used by the preset sweep (the paper holds CRF constant).
pub const SWEEP_CRF: u8 = 40;

/// One preset sample.
#[derive(Debug, Clone)]
pub struct PresetPoint {
    /// SVT-AV1 preset (0 slow – 8 fast).
    pub preset: u8,
    /// The full characterization.
    pub run: CharacterizationRun,
}

/// Runs the SVT-AV1 preset sweep at fixed CRF.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn preset_sweep(cfg: &ExperimentConfig) -> Result<Vec<PresetPoint>, WorkbenchError> {
    let specs: Vec<_> = cfg
        .preset_points
        .iter()
        .map(|&preset| {
            cfg.spec(cfg.headline_clip, CodecId::SvtAv1, EncoderParams::new(SWEEP_CRF, preset))
        })
        .collect();
    let runs = cfg.run_specs(&specs)?;
    Ok(cfg
        .preset_points
        .iter()
        .zip(runs)
        .map(|(&preset, run)| PresetPoint { preset, run: (*run).clone() })
        .collect())
}

/// Fig. 11a/11b — runtime, bitrate and PSNR vs preset.
pub fn fig11ab_runtime_quality(points: &[PresetPoint]) -> Table {
    let mut t = Table::new(
        format!("Fig. 11a/b — preset sweep (SVT-AV1, CRF {SWEEP_CRF}): runtime / bitrate / PSNR"),
        &["preset", "seconds", "instructions", "kbps", "psnr dB"],
    );
    for p in points {
        t.push_row(vec![
            p.preset.to_string(),
            format!("{:.4}", p.run.seconds),
            p.run.core.instructions.to_string(),
            f1(p.run.bitrate_kbps),
            f2(p.run.mean_psnr),
        ]);
    }
    t
}

/// Fig. 11c/d/e — top-down, MPKI and resource stalls vs preset (the paper
/// finds *no noticeable trend* in these).
pub fn fig11cde_microarch(points: &[PresetPoint]) -> Table {
    let mut t = Table::new(
        format!("Fig. 11c/d/e — preset sweep (SVT-AV1, CRF {SWEEP_CRF}): microarchitectural stats"),
        &[
            "preset",
            "retiring",
            "bad-spec",
            "frontend",
            "backend",
            "brMPKI",
            "L1D MPKI",
            "L2 MPKI",
            "RS stalls/ki",
        ],
    );
    for p in points {
        let r = &p.run.core;
        let td = r.topdown();
        let per_ki = |v: f64| {
            if r.instructions == 0 {
                0.0
            } else {
                v / r.instructions as f64 * 1000.0
            }
        };
        t.push_row(vec![
            p.preset.to_string(),
            f3(td.retiring),
            f3(td.bad_speculation),
            f3(td.frontend),
            f3(td.backend),
            f2(r.branch_mpki()),
            f2(r.l1d_mpki()),
            f2(r.l2_mpki()),
            f2(per_ki(r.resource_stalls.rs)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<PresetPoint> {
        let mut cfg = ExperimentConfig::quick();
        cfg.preset_points = vec![0, 4, 8];
        preset_sweep(&cfg).unwrap()
    }

    #[test]
    fn faster_presets_are_much_faster_with_modest_quality_loss() {
        let pts = points();
        let slow = &pts[0].run;
        let fast = &pts[2].run;
        // Fig. 11a: a large runtime drop from slow to fast presets.
        assert!(
            slow.seconds > fast.seconds * 4.0,
            "slow {} vs fast {}",
            slow.seconds,
            fast.seconds
        );
        // Fig. 11b: PSNR falls only modestly (paper: ~0.8 dB; allow 3).
        assert!(
            slow.mean_psnr - fast.mean_psnr < 3.0,
            "psnr drop too large: {} -> {}",
            slow.mean_psnr,
            fast.mean_psnr
        );
        // Bitrate does not collapse.
        assert!(fast.bitrate_kbps > slow.bitrate_kbps * 0.5);
    }

    #[test]
    fn microarch_stats_stay_roughly_flat_across_presets() {
        let pts = points();
        let t = fig11cde_microarch(&pts);
        let retiring: Vec<f64> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        let min = retiring.iter().cloned().fold(f64::MAX, f64::min);
        let max = retiring.iter().cloned().fold(0.0f64, f64::max);
        // Paper: "no noticeable trends" — allow a modest band.
        assert!(max - min < 0.2, "retiring varies too much: {retiring:?}");
    }
}
