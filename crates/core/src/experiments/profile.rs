//! Hot-kernel profiles — the gprof step of the paper's methodology
//! (§3.4: "GNU gprof is used for a function level profiling, i.e., find
//! hot functions, which is used for instruction tracing").

use super::ExperimentConfig;
use crate::table::{f1, Table};
use crate::workbench::WorkbenchError;
use vstress_codecs::{CodecId, EncoderParams};
use vstress_trace::Kernel;

/// Per-clip hot-kernel table (top kernels by instruction share).
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn table_hot_kernels(cfg: &ExperimentConfig) -> Result<Table, WorkbenchError> {
    let mut table = Table::new(
        "hot kernels (SVT-AV1, preset 4) — the gprof step that places trace windows",
        &["Video", "#1", "#2", "#3", "search share %"],
    );
    let specs: Vec<_> = cfg
        .clips
        .iter()
        .map(|&clip| cfg.spec(clip, CodecId::SvtAv1, EncoderParams::new(35, 4)).counting_only())
        .collect();
    let runs = cfg.run_specs(&specs)?;
    for (&clip_name, run) in cfg.clips.iter().zip(runs) {
        let top = run.profile.top(3);
        let fmt = |i: usize| {
            top.get(i).map(|(k, _, pct)| format!("{} {:.0}%", k.name(), pct)).unwrap_or_default()
        };
        let search_kernels = [Kernel::Sad, Kernel::Satd, Kernel::MotionSearch];
        let search_share: f64 = run
            .profile
            .top(Kernel::ALL.len())
            .iter()
            .filter(|(k, _, _)| search_kernels.contains(k))
            .map(|(_, _, pct)| *pct)
            .sum();
        table.push_row(vec![clip_name.to_owned(), fmt(0), fmt(1), fmt(2), f1(search_share)]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn search_dominates_every_clip() {
        let mut cfg = ExperimentConfig::quick();
        cfg.clips = vec!["game2", "desktop"];
        let t = table_hot_kernels(&cfg).unwrap();
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let share: f64 = row[4].parse().unwrap();
            assert!(share > 30.0, "{}: search share {share}%", row[0]);
            // The hottest kernel is one of the search kernels.
            assert!(
                row[1].starts_with("sad")
                    || row[1].starts_with("satd")
                    || row[1].starts_with("motion_search"),
                "{}: hottest was {}",
                row[0],
                row[1]
            );
        }
    }
}
