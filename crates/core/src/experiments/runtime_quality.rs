//! Figs. 1 and 2 — cross-codec runtime and quality/rate comparisons.

use super::ExperimentConfig;
use crate::table::{f1, f2, Table};
use crate::workbench::{equivalent_params, WorkbenchError};
use vstress_codecs::CodecId;
use vstress_video::bdrate::{bd_rate, RatePoint};

/// One (codec, crf) runtime measurement.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RuntimePoint {
    /// Codec measured.
    pub codec: CodecId,
    /// AV1-family CRF of the quality point.
    pub crf: u8,
    /// Modelled execution time in seconds.
    pub seconds: f64,
    /// Retired instructions.
    pub instructions: u64,
}

/// Fig. 1 — execution time of every codec across the CRF range on the
/// headline clip (`game1`), at preset-4-equivalent speed.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig01_runtime_vs_crf(
    cfg: &ExperimentConfig,
) -> Result<(Table, Vec<RuntimePoint>), WorkbenchError> {
    let mut grid = Vec::new();
    let mut specs = Vec::new();
    for &crf in &cfg.crf_points {
        for codec in CodecId::ALL {
            grid.push((crf, codec));
            specs.push(cfg.spec(cfg.headline_clip, codec, equivalent_params(codec, crf, 4)));
        }
    }
    let runs = cfg.run_specs(&specs)?;
    let mut points = Vec::new();
    let mut table = Table::new(
        format!("Fig. 1 — execution time vs CRF ({})", cfg.headline_clip),
        &["codec", "crf", "seconds", "instructions"],
    );
    for ((crf, codec), run) in grid.into_iter().zip(runs) {
        table.push_row(vec![
            codec.name().to_owned(),
            crf.to_string(),
            format!("{:.4}", run.seconds),
            run.core.instructions.to_string(),
        ]);
        points.push(RuntimePoint {
            codec,
            crf,
            seconds: run.seconds,
            instructions: run.core.instructions,
        });
    }
    Ok((table, points))
}

/// One codec's rate/quality curve plus its mean runtime.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BdCurve {
    /// Codec measured.
    pub codec: CodecId,
    /// Rate/quality ladder.
    pub points: Vec<RatePoint>,
    /// Mean modelled runtime across the ladder, seconds.
    pub mean_seconds: f64,
}

/// Fig. 2a — PSNR BD-Rate (vs the x264 anchor) against execution time.
///
/// # Errors
///
/// Propagates [`WorkbenchError`]; BD-Rate math errors are reported as
/// `"n/a"` cells (disjoint quality ranges can happen at tiny fidelity).
pub fn fig02a_bdrate(cfg: &ExperimentConfig) -> Result<(Table, Vec<BdCurve>), WorkbenchError> {
    // A four-point quality ladder spanning the usable range.
    let ladder: [u8; 4] = [12, 26, 40, 54];
    let specs: Vec<_> = CodecId::ALL
        .into_iter()
        .flat_map(|codec| ladder.iter().map(move |&crf| (codec, crf)))
        .map(|(codec, crf)| cfg.spec(cfg.headline_clip, codec, equivalent_params(codec, crf, 4)))
        .collect();
    let runs = cfg.run_specs(&specs)?;
    let mut curves = Vec::new();
    for (ci, codec) in CodecId::ALL.into_iter().enumerate() {
        let mut points = Vec::new();
        let mut secs = 0.0;
        for run in &runs[ci * ladder.len()..(ci + 1) * ladder.len()] {
            points.push(RatePoint { bitrate_kbps: run.bitrate_kbps, psnr_db: run.mean_psnr });
            secs += run.seconds;
        }
        curves.push(BdCurve { codec, points, mean_seconds: secs / ladder.len() as f64 });
    }
    let anchor =
        curves.iter().find(|c| c.codec == CodecId::X264).expect("x264 is in ALL").points.clone();
    let mut table = Table::new(
        format!("Fig. 2a — PSNR BD-Rate (anchor: x264) vs execution time ({})", cfg.headline_clip),
        &["codec", "bd-rate %", "mean seconds"],
    );
    for c in &curves {
        let bd = bd_rate(&anchor, &c.points).map(f1).unwrap_or_else(|_| "n/a".to_owned());
        table.push_row(vec![c.codec.name().to_owned(), bd, format!("{:.4}", c.mean_seconds)]);
    }
    Ok((table, curves))
}

/// Fig. 2b — PSNR vs execution time for SVT-AV1 at preset 4.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig02b_psnr_vs_time(cfg: &ExperimentConfig) -> Result<Table, WorkbenchError> {
    let specs: Vec<_> = cfg
        .crf_points
        .iter()
        .map(|&crf| {
            cfg.spec(cfg.headline_clip, CodecId::SvtAv1, vstress_codecs::EncoderParams::new(crf, 4))
        })
        .collect();
    let runs = cfg.run_specs(&specs)?;
    let mut table = Table::new(
        format!("Fig. 2b — PSNR vs execution time, SVT-AV1 preset 4 ({})", cfg.headline_clip),
        &["crf", "seconds", "psnr dB", "kbps"],
    );
    for (&crf, run) in cfg.crf_points.iter().zip(runs) {
        table.push_row(vec![
            crf.to_string(),
            format!("{:.4}", run.seconds),
            f2(run.mean_psnr),
            f1(run.bitrate_kbps),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.crf_points = vec![20, 55];
        c
    }

    #[test]
    fn fig01_svt_is_slowest_at_every_crf() {
        let (_, points) = fig01_runtime_vs_crf(&tiny_cfg()).unwrap();
        for &crf in &[20u8, 55] {
            let of = |codec| {
                points.iter().find(|p| p.codec == codec && p.crf == crf).map(|p| p.seconds).unwrap()
            };
            let svt = of(CodecId::SvtAv1);
            for other in [CodecId::LibvpxVp9, CodecId::X264, CodecId::X265] {
                assert!(svt > of(other), "crf {crf}: SVT {svt} must exceed {other} {}", of(other));
            }
            assert!(
                svt > of(CodecId::X264) * 4.0,
                "crf {crf}: the SVT/x264 gap should be large: {} vs {}",
                svt,
                of(CodecId::X264)
            );
        }
    }

    #[test]
    fn fig01_runtime_falls_with_crf() {
        let (_, points) = fig01_runtime_vs_crf(&tiny_cfg()).unwrap();
        let svt_lo =
            points.iter().find(|p| p.codec == CodecId::SvtAv1 && p.crf == 20).unwrap().seconds;
        let svt_hi =
            points.iter().find(|p| p.codec == CodecId::SvtAv1 && p.crf == 55).unwrap().seconds;
        assert!(svt_lo > svt_hi, "runtime must fall with CRF: {svt_lo} vs {svt_hi}");
    }

    #[test]
    fn fig02b_quality_falls_and_speeds_up_with_crf() {
        let t = fig02b_psnr_vs_time(&tiny_cfg()).unwrap();
        assert_eq!(t.rows.len(), 2);
        let psnr0: f64 = t.rows[0][2].parse().unwrap();
        let psnr1: f64 = t.rows[1][2].parse().unwrap();
        assert!(psnr0 > psnr1);
        let s0: f64 = t.rows[0][1].parse().unwrap();
        let s1: f64 = t.rows[1][1].parse().unwrap();
        assert!(s0 >= s1);
    }
}
