//! Table 1 — the vbench clip catalogue.

use crate::table::Table;
use vstress_video::vbench::CATALOGUE;

/// Reproduces the paper's Table 1: the list of vbench clips with
/// resolution, frame rate and entropy.
pub fn table1_vbench() -> Table {
    let mut t = Table::new(
        "Table 1 — the vbench clips (synthesized equivalents)",
        &["Video", "Resolution", "FPS", "Entropy", "Scene class"],
    );
    for spec in &CATALOGUE {
        t.push_row(vec![
            spec.name.to_owned(),
            spec.resolution.label().to_owned(),
            spec.fps.to_string(),
            format!("{:.2}", spec.entropy),
            format!("{:?}", spec.class),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_rows_matching_the_catalogue() {
        let t = table1_vbench();
        assert_eq!(t.rows.len(), 15);
        assert!(t.rows.iter().any(|r| r[0] == "game1" && r[1] == "1080p" && r[2] == "60"));
        assert!(t.rows.iter().any(|r| r[0] == "chicken" && r[1] == "2160p"));
    }

    #[test]
    fn entropy_column_is_ascendingish() {
        let t = table1_vbench();
        let first: f64 = t.rows.first().unwrap()[3].parse().unwrap();
        let last: f64 = t.rows.last().unwrap()[3].parse().unwrap();
        assert!(last > first);
    }
}
