//! Figs. 12–16 — the thread-scalability study.
//!
//! Instrumented encodes produce per-stage task costs
//! ([`vstress_codecs::taskgraph::TaskTrace`]), including the *measured*
//! per-unit costs of the tile/wavefront plan tasks the encoder actually
//! executed (`FrameTaskTrace::plan_units`, recorded by
//! `Encoder::encode_with` whether the run used one tile worker or
//! many); each codec's threading structure
//! ([`vstress_codecs::taskgraph::plan_layout`] plus the per-codec graph
//! builders) turns them into a dependency graph; `vstress-sched`
//! schedules the graph on 1..=N cores. The divergent curves — SVT-AV1
//! approaching ~6x at 8 threads while x265 stalls near ~1.3x — thus
//! fall out of real recorded task-graph contention, not a per-codec
//! lookup table. Fig. 16 applies the shared-LLC
//! [`vstress_sched::ContentionModel`] to the
//! single-thread top-down to obtain per-thread-count slot fractions.

use super::ExperimentConfig;
use crate::table::{f2, f3, Table};
use crate::workbench::WorkbenchError;
use vstress_codecs::taskgraph::build_task_graph;
use vstress_codecs::{CodecId, EncoderParams};
use vstress_pipeline::TopDownSlots;
use vstress_sched::{schedule, speedup_curve, ContentionModel};

/// The four encoders the paper scales (VP9 is excluded there too).
pub const SCALING_CODECS: [CodecId; 4] =
    [CodecId::SvtAv1, CodecId::Libaom, CodecId::X264, CodecId::X265];

/// One scalability scenario: the x264 settings the paper varies between
/// Figs. 12–15, with the AV1-family encoders at "highest CRF".
#[derive(Debug, Clone, Copy, serde::Serialize)]
pub struct ScalingScenario {
    /// Paper figure number (12–15).
    pub figure: u8,
    /// x264 preset for this figure.
    pub x264_preset: u8,
    /// x264 CRF for this figure.
    pub x264_crf: u8,
}

/// The paper's four scenarios (captions of Figs. 12–15).
pub const SCENARIOS: [ScalingScenario; 4] = [
    ScalingScenario { figure: 12, x264_preset: 0, x264_crf: 51 },
    ScalingScenario { figure: 13, x264_preset: 2, x264_crf: 51 },
    ScalingScenario { figure: 14, x264_preset: 5, x264_crf: 50 },
    ScalingScenario { figure: 15, x264_preset: 5, x264_crf: 30 },
];

fn params_for(codec: CodecId, scenario: ScalingScenario) -> EncoderParams {
    match codec {
        CodecId::X264 => EncoderParams::new(scenario.x264_crf, scenario.x264_preset),
        // "highest CRF" for the AV1-family encoders; x265 matched to x264.
        CodecId::SvtAv1 | CodecId::Libaom | CodecId::LibvpxVp9 => EncoderParams::new(63, 8),
        CodecId::X265 => EncoderParams::new(scenario.x264_crf, 4),
    }
}

/// Speedup curves of the four encoders for one scenario.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScalingResult {
    /// Which scenario.
    pub scenario: ScalingScenario,
    /// `(codec, speedups[1..=max_threads])`.
    pub curves: Vec<(CodecId, Vec<f64>)>,
}

/// Figs. 12–15 — thread-scalability curves for all four scenarios.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig12_15_thread_scaling(
    cfg: &ExperimentConfig,
) -> Result<(Vec<Table>, Vec<ScalingResult>), WorkbenchError> {
    // The instrumented single-thread encodes fan out over the executor;
    // the (cheap) graph construction and scheduling stay serial. Several
    // scenarios share the AV1-family "highest CRF" point, so the run
    // cache collapses those encodes to one each.
    let mut grid = Vec::new();
    let mut specs = Vec::new();
    for scenario in SCENARIOS {
        for codec in SCALING_CODECS {
            grid.push((scenario, codec));
            specs.push(
                cfg.spec(cfg.headline_clip, codec, params_for(codec, scenario)).counting_only(),
            );
        }
    }
    let runs = cfg.run_specs(&specs)?;
    let mut runs = runs.into_iter();
    let mut tables = Vec::new();
    let mut results = Vec::new();
    for scenario in SCENARIOS {
        let mut table = Table::new(
            format!(
                "Fig. {} — thread scalability ({}, x264 preset {}, CRF {})",
                scenario.figure, cfg.headline_clip, scenario.x264_preset, scenario.x264_crf
            ),
            &["codec", "1", "2", "3", "4", "5", "6", "7", "8"],
        );
        let mut curves = Vec::new();
        for codec in SCALING_CODECS {
            let run = runs.next().expect("one run per grid point");
            let graph = build_task_graph(codec, &run.tasks);
            let curve = speedup_curve(&graph, cfg.max_threads);
            let mut row = vec![codec.name().to_owned()];
            row.extend(curve.iter().map(|v| f2(*v)));
            row.resize(9, String::new());
            table.push_row(row);
            curves.push((codec, curve));
        }
        tables.push(table);
        results.push(ScalingResult { scenario, curves });
    }
    Ok((tables, results))
}

/// Fig. 16 — top-down fractions vs thread count for the four encoders.
///
/// The single-thread top-down comes from a pipeline-modelled encode; the
/// backend-memory component is inflated by the schedule's contention
/// factor at each thread count, then the fractions are renormalized —
/// slots spent waiting on the shared LLC grow at the expense of retiring.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig16_topdown_threads(cfg: &ExperimentConfig) -> Result<Table, WorkbenchError> {
    let model = ContentionModel::default();
    let mut table = Table::new(
        format!("Fig. 16 — top-down vs thread count ({})", cfg.headline_clip),
        &["codec", "threads", "retiring", "bad-spec", "frontend", "backend"],
    );
    let scenario = SCENARIOS[3];
    let specs: Vec<_> = SCALING_CODECS
        .into_iter()
        .map(|codec| cfg.spec(cfg.headline_clip, codec, params_for(codec, scenario)))
        .collect();
    let runs = cfg.run_specs(&specs)?;
    for (codec, run) in SCALING_CODECS.into_iter().zip(runs) {
        let graph = build_task_graph(codec, &run.tasks);
        let base = run.core.topdown();
        for &threads in &[1usize, 2, 4, 8] {
            let sched = schedule(&graph, threads);
            let inflation = model.backend_inflation(&sched);
            let td = inflate_backend(base, inflation);
            table.push_row(vec![
                codec.name().to_owned(),
                threads.to_string(),
                f3(td.retiring),
                f3(td.bad_speculation),
                f3(td.frontend),
                f3(td.backend),
            ]);
        }
    }
    Ok(table)
}

/// Scales the memory component of `backend` by `inflation` and
/// renormalizes all fractions to sum to 1.
pub fn inflate_backend(base: TopDownSlots, inflation: f64) -> TopDownSlots {
    let backend_memory = base.backend_memory * inflation;
    let total =
        base.retiring + base.bad_speculation + base.frontend + backend_memory + base.backend_core;
    TopDownSlots {
        retiring: base.retiring / total,
        bad_speculation: base.bad_speculation / total,
        frontend: base.frontend / total,
        backend: (backend_memory + base.backend_core) / total,
        backend_memory: backend_memory / total,
        backend_core: base.backend_core / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig::quick()
    }

    #[test]
    fn scaling_reproduces_the_papers_ordering() {
        let (_, results) = fig12_15_thread_scaling(&tiny_cfg()).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            let at8 = |codec| {
                r.curves.iter().find(|(c, _)| *c == codec).map(|(_, v)| *v.last().unwrap()).unwrap()
            };
            let svt = at8(CodecId::SvtAv1);
            let x264 = at8(CodecId::X264);
            let x265 = at8(CodecId::X265);
            let aom = at8(CodecId::Libaom);
            assert!(svt > 4.0, "fig {}: SVT should approach ~6x, got {svt}", r.scenario.figure);
            assert!(svt > aom, "fig {}: SVT {svt} vs libaom {aom}", r.scenario.figure);
            assert!(svt > x265, "fig {}: SVT {svt} vs x265 {x265}", r.scenario.figure);
            assert!(
                x265 < 2.0,
                "fig {}: x265 should stall near ~1.3x, got {x265}",
                r.scenario.figure
            );
            assert!(x264 > x265, "fig {}: x264 {x264} vs x265 {x265}", r.scenario.figure);
        }
    }

    #[test]
    fn fig16_x265_backend_grows_with_threads_others_stay_flat() {
        let t = fig16_topdown_threads(&tiny_cfg()).unwrap();
        let backend = |codec: &str, threads: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == codec && r[1] == threads)
                .map(|r| r[5].parse().unwrap())
                .unwrap()
        };
        let x265_growth = backend("x265", "8") - backend("x265", "1");
        let svt_growth = backend("SVT-AV1", "8") - backend("SVT-AV1", "1");
        let x264_growth = backend("x264", "8") - backend("x264", "1");
        assert!(x265_growth > 0.02, "x265 backend must grow: {x265_growth}");
        assert!(x265_growth > svt_growth * 2.0, "x265 {x265_growth} should dwarf SVT {svt_growth}");
        assert!(svt_growth.abs() < 0.05, "SVT stays flat: {svt_growth}");
        assert!(x264_growth.abs() < 0.08, "x264 stays flattish: {x264_growth}");
    }

    #[test]
    fn inflate_backend_preserves_normalization() {
        let base = TopDownSlots {
            retiring: 0.5,
            bad_speculation: 0.05,
            frontend: 0.15,
            backend: 0.3,
            backend_memory: 0.2,
            backend_core: 0.1,
        };
        let td = inflate_backend(base, 1.5);
        let sum = td.retiring + td.bad_speculation + td.frontend + td.backend;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(td.backend > base.backend);
        assert!(td.retiring < base.retiring);
    }
}
