//! Encode-vs-decode cost comparison.
//!
//! Not a numbered figure, but a direct check of the paper's §2.2 premise:
//! "compared to encoding, video decoding is a fairly straightforward
//! operation because there exists only one valid decoding for each
//! encoding method" — i.e. decode cost should be a small fraction of
//! encode cost, and roughly codec-independent, because the decoder never
//! searches.

use super::ExperimentConfig;
use crate::table::{f1, sci, Table};
use crate::workbench::{equivalent_params, WorkbenchError};
use vstress_codecs::CodecId;

/// One codec's encode/decode instruction costs.
#[derive(Debug, Clone, serde::Serialize)]
pub struct DecodeCostRow {
    /// Codec measured.
    pub codec: CodecId,
    /// Encode instructions.
    pub encode_instructions: u64,
    /// Decode instructions.
    pub decode_instructions: u64,
}

impl DecodeCostRow {
    /// encode/decode instruction ratio.
    pub fn ratio(&self) -> f64 {
        self.encode_instructions as f64 / self.decode_instructions.max(1) as f64
    }
}

/// Measures encode vs decode instruction counts for all five codecs on
/// the headline clip.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode/decode.
pub fn table_decode_vs_encode(
    cfg: &ExperimentConfig,
) -> Result<(Table, Vec<DecodeCostRow>), WorkbenchError> {
    let mut table = Table::new(
        format!("encode vs decode instruction cost ({})", cfg.headline_clip),
        &["codec", "encode insts", "decode insts", "encode/decode"],
    );
    // Each codec's encode+decode pair is independent; fan out. Going
    // through the cache's cost layer means a persistent store serves
    // repeat runs without re-encoding (the clip is only synthesized on
    // a store miss).
    let rows = vstress_codecs::batch::run_ordered(
        CodecId::ALL.len(),
        cfg.threads,
        |i| -> Result<DecodeCostRow, WorkbenchError> {
            let codec = CodecId::ALL[i];
            let params = equivalent_params(codec, 35, 4);
            let spec = cfg.spec(cfg.headline_clip, codec, params).counting_only();
            let cost = cfg.cache.encode_decode_cost(&spec)?;
            Ok(DecodeCostRow {
                codec,
                encode_instructions: cost.encode_instructions,
                decode_instructions: cost.decode_instructions,
            })
        },
    )?;
    for row in &rows {
        table.push_row(vec![
            row.codec.name().to_owned(),
            sci(row.encode_instructions),
            sci(row.decode_instructions),
            f1(row.ratio()),
        ]);
    }
    Ok((table, rows))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoding_is_cheap_and_codec_insensitive() {
        let mut cfg = ExperimentConfig::quick();
        cfg.headline_clip = "cat";
        let (_, rows) = table_decode_vs_encode(&cfg).unwrap();
        assert_eq!(rows.len(), 5);
        for row in &rows {
            assert!(
                row.ratio() > 3.0,
                "{}: decode should be far cheaper than encode (ratio {})",
                row.codec,
                row.ratio()
            );
        }
        // The encode gap between SVT-AV1 and x264 is much wider than the
        // decode gap — search explains the cost, not the bitstream.
        let svt = rows.iter().find(|r| r.codec == CodecId::SvtAv1).unwrap();
        let x264 = rows.iter().find(|r| r.codec == CodecId::X264).unwrap();
        let encode_gap = svt.encode_instructions as f64 / x264.encode_instructions as f64;
        let decode_gap = svt.decode_instructions as f64 / x264.decode_instructions as f64;
        assert!(
            encode_gap > decode_gap * 1.5,
            "encode gap {encode_gap} should dwarf decode gap {decode_gap}"
        );
    }
}
