//! Table 2 and Fig. 3 — instruction-mix analyses.

use super::ExperimentConfig;
use crate::table::{f1, sci, Table};
use crate::workbench::WorkbenchError;
use vstress_codecs::{CodecId, EncoderParams};
use vstress_trace::OpClass;

/// Table 2 — instruction mix of SVT-AV1 per clip at preset 8, CRF 63
/// (the paper's exact configuration).
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn table2_instruction_mix(cfg: &ExperimentConfig) -> Result<Table, WorkbenchError> {
    let mut table = Table::new(
        "Table 2 — instruction mix in % (SVT-AV1, preset 8, CRF 63)",
        &["Video", "# Insts.", "Branch", "Load", "Store", "AVX", "SSE", "Other"],
    );
    let specs: Vec<_> = cfg
        .clips
        .iter()
        .map(|&clip| cfg.spec(clip, CodecId::SvtAv1, EncoderParams::new(63, 8)).counting_only())
        .collect();
    let runs = cfg.run_specs(&specs)?;
    for (&clip_name, run) in cfg.clips.iter().zip(runs) {
        let m = run.mix;
        table.push_row(vec![
            clip_name.to_owned(),
            sci(m.total()),
            f1(m.percent(OpClass::Branch)),
            f1(m.percent(OpClass::Load)),
            f1(m.percent(OpClass::Store)),
            f1(m.percent(OpClass::Avx)),
            f1(m.percent(OpClass::Sse)),
            f1(m.percent(OpClass::Other)),
        ]);
    }
    Ok(table)
}

/// Fig. 3 — op mix per clip as CRF increases (SVT-AV1, preset 4).
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig03_opmix_sweep(cfg: &ExperimentConfig) -> Result<Table, WorkbenchError> {
    let mut table = Table::new(
        "Fig. 3 — op mix vs CRF (SVT-AV1, preset 4)",
        &["Video", "CRF", "Branch", "Load", "Store", "AVX", "SSE", "Other"],
    );
    let mut grid = Vec::new();
    let mut specs = Vec::new();
    for &clip_name in &cfg.clips {
        for &crf in &cfg.crf_points {
            grid.push((clip_name, crf));
            specs.push(
                cfg.spec(clip_name, CodecId::SvtAv1, EncoderParams::new(crf, 4)).counting_only(),
            );
        }
    }
    let runs = cfg.run_specs(&specs)?;
    for ((clip_name, crf), run) in grid.into_iter().zip(runs) {
        let m = run.mix;
        table.push_row(vec![
            clip_name.to_owned(),
            crf.to_string(),
            f1(m.percent(OpClass::Branch)),
            f1(m.percent(OpClass::Load)),
            f1(m.percent(OpClass::Store)),
            f1(m.percent(OpClass::Avx)),
            f1(m.percent(OpClass::Sse)),
            f1(m.percent(OpClass::Other)),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.clips = vec!["desktop", "game2"];
        c.crf_points = vec![15, 55];
        c
    }

    #[test]
    fn table2_mix_lands_in_paper_bands() {
        let t = table2_instruction_mix(&tiny_cfg()).unwrap();
        assert_eq!(t.rows.len(), 2);
        for row in &t.rows {
            let branch: f64 = row[2].parse().unwrap();
            let load: f64 = row[3].parse().unwrap();
            let store: f64 = row[4].parse().unwrap();
            let avx: f64 = row[5].parse().unwrap();
            // Paper bands: branch 3.3–6.9, load 25.8–29.4, store 12.9–15.5,
            // AVX 29.2–34.2 (tolerances widened for the tiny test clips).
            assert!((2.0..9.0).contains(&branch), "branch {branch}");
            assert!((19.0..33.0).contains(&load), "load {load}");
            assert!((8.0..19.0).contains(&store), "store {store}");
            assert!((26.0..40.0).contains(&avx), "avx {avx}");
        }
    }

    #[test]
    fn fig03_produces_one_row_per_clip_crf() {
        let t = fig03_opmix_sweep(&tiny_cfg()).unwrap();
        assert_eq!(t.rows.len(), 4);
        // Percentages sum to ~100.
        for row in &t.rows {
            let total: f64 = row[2..].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!((total - 100.0).abs() < 0.5, "row sums to {total}");
        }
    }
}
