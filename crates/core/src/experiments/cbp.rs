//! Figs. 8–10 — the Championship-Branch-Prediction study.
//!
//! For each clip, a mid-run branch-trace window is captured (the paper's
//! "interval of 1 billion instructions roughly halfway through the run",
//! scaled to this workbench's instruction counts) and replayed through
//! the four predictors the paper simulates: Gshare at 2 KB and 32 KB,
//! TAGE at 8 KB and 64 KB.

use super::ExperimentConfig;
use crate::table::{f1, f2, Table};
use crate::workbench::WorkbenchError;
use vstress_bpred::{harness, BranchPredictor, Gshare, Tage};
use vstress_codecs::{CodecId, EncoderParams};

/// Results for one clip under the four predictors.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CbpRow {
    /// Clip name.
    pub clip: String,
    /// Branches in the window.
    pub branches: u64,
    /// (label, miss rate, mpki) per predictor.
    pub predictors: Vec<(String, f64, f64)>,
}

/// Captures the mid-run branch window of one encode, via the config's
/// window cache (the counting pre-pass that places the window is shared
/// with any counting-only characterization of the same spec).
fn capture_window(
    cfg: &ExperimentConfig,
    clip_name: &'static str,
    params: EncoderParams,
) -> Result<(Vec<vstress_trace::BranchRecord>, u64), WorkbenchError> {
    let spec = cfg.spec(clip_name, CodecId::SvtAv1, params);
    let window = cfg.cache.branch_window(&spec, cfg.cbp_window)?;
    Ok((window.0.clone(), window.1))
}

/// The paper's four predictor configurations.
pub fn paper_predictors() -> Vec<Box<dyn BranchPredictor>> {
    vec![
        Box::new(Gshare::with_budget_bytes(2 << 10)),
        Box::new(Gshare::with_budget_bytes(32 << 10)),
        Box::new(Tage::seznec_8kb()),
        Box::new(Tage::seznec_64kb()),
    ]
}

/// Runs the CBP study at a given (preset, CRF) trace point.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn cbp_study(
    cfg: &ExperimentConfig,
    preset: u8,
    crf: u8,
) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    let mut table = Table::new(
        format!("CBP study — simulated predictors on branch windows (preset {preset}, CRF {crf})"),
        &[
            "Video",
            "branches",
            "gshare-2KB miss%",
            "gshare-2KB MPKI",
            "gshare-32KB miss%",
            "gshare-32KB MPKI",
            "tage-8KB miss%",
            "tage-8KB MPKI",
            "tage-64KB miss%",
            "tage-64KB MPKI",
        ],
    );
    // Window capture and predictor replay are both per-clip pure
    // functions, so the whole study fans out over the executor's queue.
    let per_clip = vstress_codecs::batch::run_ordered(
        cfg.clips.len(),
        cfg.threads,
        |i| -> Result<(Vec<String>, CbpRow), WorkbenchError> {
            let clip_name = cfg.clips[i];
            let (trace, window_instrs) =
                capture_window(cfg, clip_name, EncoderParams::new(crf, preset))?;
            let mut row = CbpRow {
                clip: clip_name.to_owned(),
                branches: trace.len() as u64,
                predictors: Vec::new(),
            };
            let mut cells = vec![clip_name.to_owned(), trace.len().to_string()];
            for mut p in paper_predictors() {
                let stats = harness::run_with_window(&mut p, &trace, window_instrs);
                cells.push(f1(stats.miss_rate() * 100.0));
                cells.push(f2(stats.mpki()));
                row.predictors.push((p.label(), stats.miss_rate(), stats.mpki()));
            }
            Ok((cells, row))
        },
    )?;
    let mut rows = Vec::new();
    for (cells, row) in per_clip {
        table.push_row(cells);
        rows.push(row);
    }
    Ok((table, rows))
}

/// Fig. 8 — traces from preset 8, CRF 63 (the paper's configuration).
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig08_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 8, 63)
}

/// Fig. 9 — traces from preset 4, CRF 10.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig09_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 4, 10)
}

/// Fig. 10 — traces from preset 4, CRF 60.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig10_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 4, 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        // Texture-rich clips give the window enough branch volume to warm
        // the large predictor tables; the paper's 1B-instruction windows
        // have the same property. Screen content (desktop) at the fastest
        // preset produces traces too short for a 32 KB gshare to train,
        // so it is exercised by the full profile instead.
        let mut c = ExperimentConfig::quick();
        c.clips = vec!["game2", "hall"];
        c.cbp_window = 4_000_000;
        c
    }

    #[test]
    fn bigger_and_smarter_predictors_win() {
        let (_, rows) = fig08_cbp(&tiny_cfg()).unwrap();
        for row in &rows {
            assert!(row.branches > 100, "{}: window too small ({})", row.clip, row.branches);
            let get = |label: &str| {
                row.predictors
                    .iter()
                    .find(|(l, _, _)| l == label)
                    .map(|&(_, miss, _)| miss)
                    .unwrap_or_else(|| panic!("predictor {label} missing"))
            };
            let g2 = get("gshare-2KB");
            let g32 = get("gshare-32KB");
            let t8 = get("tage-8KB");
            let t64 = get("tage-64KB");
            // The paper's two findings: size helps within a family, and
            // TAGE beats gshare.
            assert!(g32 <= g2 + 0.01, "{}: gshare-32 {g32} vs gshare-2 {g2}", row.clip);
            assert!(t64 <= t8 + 0.01, "{}: tage-64 {t64} vs tage-8 {t8}", row.clip);
            assert!(t8 < g2, "{}: tage-8 {t8} must beat gshare-2 {g2}", row.clip);
        }
    }

    #[test]
    fn window_capture_is_reproducible() {
        let cfg = tiny_cfg();
        let (a, wa) = capture_window(&cfg, "game2", EncoderParams::new(63, 8)).unwrap();
        let (b, wb) = capture_window(&cfg, "game2", EncoderParams::new(63, 8)).unwrap();
        assert_eq!(a, b, "branch windows must be deterministic");
        assert_eq!(wa, wb);
    }
}
