//! Figs. 8–10 — the Championship-Branch-Prediction study.
//!
//! For each clip, a mid-run branch-trace window is captured (the paper's
//! "interval of 1 billion instructions roughly halfway through the run",
//! scaled to this workbench's instruction counts) and replayed through
//! the four predictors the paper simulates: Gshare at 2 KB and 32 KB,
//! TAGE at 8 KB and 64 KB.

use super::ExperimentConfig;
use crate::exec::BranchWindow;
use crate::table::{f1, f2, Table};
use crate::workbench::WorkbenchError;
use std::sync::Arc;
use vstress_bpred::{harness, BranchPredictor, Gshare, Tage};
use vstress_codecs::{CodecId, EncoderParams};

/// Results for one clip under the four predictors.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct CbpRow {
    /// Clip name.
    pub clip: String,
    /// Branches in the window.
    pub branches: u64,
    /// (label, miss rate, mpki) per predictor.
    pub predictors: Vec<(String, f64, f64)>,
}

/// Captures the mid-run branch window of one encode, via the config's
/// window cache (the counting pre-pass that places the window is shared
/// with any counting-only characterization of the same spec). The
/// returned handle shares the cached records — an `Arc` bump, not a
/// copy of the record vector.
fn capture_window(
    cfg: &ExperimentConfig,
    clip_name: &'static str,
    params: EncoderParams,
) -> Result<Arc<BranchWindow>, WorkbenchError> {
    let spec = cfg.spec(clip_name, CodecId::SvtAv1, params);
    cfg.cache.branch_window(&spec, cfg.cbp_window)
}

/// Number of predictor configurations the paper simulates.
pub const PAPER_PREDICTOR_COUNT: usize = 4;

/// The `i`-th of the paper's predictor configurations, freshly
/// constructed (each replay needs untrained tables).
fn paper_predictor(i: usize) -> Box<dyn BranchPredictor> {
    match i {
        0 => Box::new(Gshare::with_budget_bytes(2 << 10)),
        1 => Box::new(Gshare::with_budget_bytes(32 << 10)),
        2 => Box::new(Tage::seznec_8kb()),
        _ => Box::new(Tage::seznec_64kb()),
    }
}

/// The paper's four predictor configurations.
pub fn paper_predictors() -> Vec<Box<dyn BranchPredictor>> {
    (0..PAPER_PREDICTOR_COUNT).map(paper_predictor).collect()
}

/// Runs the CBP study at a given (preset, CRF) trace point.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn cbp_study(
    cfg: &ExperimentConfig,
    preset: u8,
    crf: u8,
) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    let mut table = Table::new(
        format!("CBP study — simulated predictors on branch windows (preset {preset}, CRF {crf})"),
        &[
            "Video",
            "branches",
            "gshare-2KB miss%",
            "gshare-2KB MPKI",
            "gshare-32KB miss%",
            "gshare-32KB MPKI",
            "tage-8KB miss%",
            "tage-8KB MPKI",
            "tage-64KB miss%",
            "tage-64KB MPKI",
        ],
    );
    // Window capture and predictor replay are pure per-(clip, predictor)
    // functions, so the whole replay matrix fans out over the executor's
    // queue at its finest grain: job `i` replays predictor `i % 4` on
    // clip `i / 4`. Clip-major indexing keeps the first-failure contract
    // clip-ordered, and the window cache hands every job of a clip the
    // same `Arc`-shared record buffer (the first job computes it, the
    // other three block briefly on the memo slot instead of recapturing).
    let n = PAPER_PREDICTOR_COUNT;
    let matrix = vstress_codecs::batch::run_ordered(
        cfg.clips.len() * n,
        cfg.threads,
        |i| -> Result<(String, harness::BpredStats), WorkbenchError> {
            let clip_name = cfg.clips[i / n];
            let window = capture_window(cfg, clip_name, EncoderParams::new(crf, preset))?;
            let mut p = paper_predictor(i % n);
            let stats = harness::run_with_window(&mut p, &window.records, window.instructions);
            Ok((p.label(), stats))
        },
    )?;
    let mut rows = Vec::new();
    for (ci, clip_results) in matrix.chunks(n).enumerate() {
        let clip_name = cfg.clips[ci];
        // Every predictor replayed the same window, so any job's branch
        // count is the clip's window size.
        let branches = clip_results[0].1.branches;
        let mut row = CbpRow { clip: clip_name.to_owned(), branches, predictors: Vec::new() };
        let mut cells = vec![clip_name.to_owned(), branches.to_string()];
        for (label, stats) in clip_results {
            cells.push(f1(stats.miss_rate() * 100.0));
            cells.push(f2(stats.mpki()));
            row.predictors.push((label.clone(), stats.miss_rate(), stats.mpki()));
        }
        table.push_row(cells);
        rows.push(row);
    }
    Ok((table, rows))
}

/// Fig. 8 — traces from preset 8, CRF 63 (the paper's configuration).
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig08_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 8, 63)
}

/// Fig. 9 — traces from preset 4, CRF 10.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig09_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 4, 10)
}

/// Fig. 10 — traces from preset 4, CRF 60.
///
/// # Errors
///
/// Propagates [`WorkbenchError`] from any failing encode.
pub fn fig10_cbp(cfg: &ExperimentConfig) -> Result<(Table, Vec<CbpRow>), WorkbenchError> {
    cbp_study(cfg, 4, 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        // Texture-rich clips give the window enough branch volume to warm
        // the large predictor tables; the paper's 1B-instruction windows
        // have the same property. Screen content (desktop) at the fastest
        // preset produces traces too short for a 32 KB gshare to train,
        // so it is exercised by the full profile instead.
        let mut c = ExperimentConfig::quick();
        c.clips = vec!["game2", "hall"];
        c.cbp_window = 4_000_000;
        c
    }

    #[test]
    fn bigger_and_smarter_predictors_win() {
        let (_, rows) = fig08_cbp(&tiny_cfg()).unwrap();
        for row in &rows {
            assert!(row.branches > 100, "{}: window too small ({})", row.clip, row.branches);
            let get = |label: &str| {
                row.predictors
                    .iter()
                    .find(|(l, _, _)| l == label)
                    .map(|&(_, miss, _)| miss)
                    .unwrap_or_else(|| panic!("predictor {label} missing"))
            };
            let g2 = get("gshare-2KB");
            let g32 = get("gshare-32KB");
            let t8 = get("tage-8KB");
            let t64 = get("tage-64KB");
            // The paper's two findings: size helps within a family, and
            // TAGE beats gshare.
            assert!(g32 <= g2 + 0.01, "{}: gshare-32 {g32} vs gshare-2 {g2}", row.clip);
            assert!(t64 <= t8 + 0.01, "{}: tage-64 {t64} vs tage-8 {t8}", row.clip);
            assert!(t8 < g2, "{}: tage-8 {t8} must beat gshare-2 {g2}", row.clip);
        }
    }

    #[test]
    fn window_capture_is_reproducible() {
        let cfg = tiny_cfg();
        let a = capture_window(&cfg, "game2", EncoderParams::new(63, 8)).unwrap();
        let b = capture_window(&cfg, "game2", EncoderParams::new(63, 8)).unwrap();
        assert_eq!(a.records, b.records, "branch windows must be deterministic");
        assert_eq!(a.instructions, b.instructions);
        // The two handles share one cached allocation — the whole point
        // of the Arc-shaped window.
        assert!(Arc::ptr_eq(&a, &b), "repeat captures must share the cached window");
    }

    /// Satellite guarantee for the fanned-out replay matrix: the study's
    /// tables and rows are byte-identical no matter how many workers
    /// replay the (clip × predictor) jobs.
    #[test]
    fn parallel_replay_matrix_matches_serial() {
        let mut serial_cfg = tiny_cfg();
        serial_cfg.threads = 1;
        let (serial_table, serial_rows) = fig08_cbp(&serial_cfg).unwrap();
        for workers in [2, 4] {
            let mut cfg = tiny_cfg();
            cfg.threads = workers;
            let (table, rows) = fig08_cbp(&cfg).unwrap();
            assert_eq!(table, serial_table, "{workers}-worker table diverged from serial");
            assert_eq!(rows, serial_rows, "{workers}-worker rows diverged from serial");
        }
    }
}
