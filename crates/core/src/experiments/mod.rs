//! One runner per paper figure/table.
//!
//! Every runner takes an [`ExperimentConfig`] (scale knobs) and returns
//! [`Table`](crate::Table)s whose rows mirror what the paper plots. The
//! `vstress-repro` binary runs them all; `EXPERIMENTS.md` records the
//! paper-reported vs measured shapes.
//!
//! | Runner | Paper artifact |
//! |---|---|
//! | [`catalogue::table1_vbench`] | Table 1 — the vbench clip list |
//! | [`runtime_quality::fig01_runtime_vs_crf`] | Fig. 1 — runtime vs CRF per codec |
//! | [`runtime_quality::fig02a_bdrate`] | Fig. 2a — PSNR BD-Rate vs runtime |
//! | [`runtime_quality::fig02b_psnr_vs_time`] | Fig. 2b — PSNR vs runtime |
//! | [`mix::table2_instruction_mix`] | Table 2 — instruction mix per clip |
//! | [`mix::fig03_opmix_sweep`] | Fig. 3 — op mix vs CRF |
//! | [`crf_sweep::fig04_crf_sweep`] | Fig. 4 — instructions / time / IPC vs CRF |
//! | [`crf_sweep::fig05_topdown`] | Fig. 5 — top-down per clip vs CRF |
//! | [`crf_sweep::fig06_microarch`] | Fig. 6 — MPKI + resource stalls vs CRF |
//! | [`crf_sweep::fig07_missrate`] | Fig. 7 — branch miss rate vs CRF |
//! | [`cbp::fig08_cbp`] (+ fig09/fig10) | Figs. 8–10 — CBP predictor study |
//! | [`preset_sweep::preset_sweep`] + formatters | Fig. 11 — preset sweep |
//! | [`threads::fig12_15_thread_scaling`] | Figs. 12–15 — thread scalability |
//! | [`threads::fig16_topdown_threads`] | Fig. 16 — top-down vs threads |
//! | [`decode_cost::table_decode_vs_encode`] | §2.2's encode≫decode premise (extension) |
//! | [`profile::table_hot_kernels`] | §3.4's gprof hot-function step (extension) |

pub mod catalogue;
pub mod cbp;
pub mod crf_sweep;
pub mod decode_cost;
pub mod mix;
pub mod preset_sweep;
pub mod profile;
pub mod runtime_quality;
pub mod threads;

use crate::exec::{default_threads, RunCache, RunStore};
use std::sync::Arc;
use vstress_video::vbench::FidelityConfig;

/// Scale knobs shared by every experiment runner.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Worker threads for the experiment executor (≥ 1). Runners fan
    /// their independent encodes out over this many scoped threads;
    /// results are bit-identical at any value.
    pub threads: usize,
    /// Shared memoization cache for runs, clips and branch windows.
    /// `Clone` shares it, so runners invoked on clones of one config
    /// reuse each other's encodes.
    pub cache: Arc<RunCache>,
    /// Clip synthesis fidelity.
    pub fidelity: FidelityConfig,
    /// Cache scale divisor matching the fidelity.
    pub cache_divisor: usize,
    /// Clips used by the per-clip experiments (Table 2, Figs. 3–10).
    pub clips: Vec<&'static str>,
    /// The clip used by the single-clip experiments (Figs. 1, 2, 11–16);
    /// the paper uses `game1`.
    pub headline_clip: &'static str,
    /// CRF points for the AV1-family sweeps.
    pub crf_points: Vec<u8>,
    /// Preset points for the preset sweep (AV1-family direction).
    pub preset_points: Vec<u8>,
    /// Maximum thread count for the scalability study.
    pub max_threads: usize,
    /// Branch-trace window length (instructions) for the CBP study; the
    /// paper uses 1 B on native runs.
    pub cbp_window: u64,
    /// Tile workers per encode (`RunSpec::tile_workers`): the
    /// intra-encode tile/wavefront decomposition. Results are
    /// byte-identical at any value (the probe-merge contract), so this
    /// is purely a wall-clock knob.
    pub tile_workers: usize,
}

impl ExperimentConfig {
    /// Reduced-cost profile: smoke-fidelity clips, a 5-clip subset, 3 CRF
    /// points. Finishes in a couple of minutes on a laptop; used by tests
    /// and the default `vstress-repro` invocation.
    pub fn quick() -> Self {
        ExperimentConfig {
            threads: default_threads(),
            cache: Arc::new(RunCache::new()),
            fidelity: FidelityConfig::smoke(),
            cache_divisor: 16,
            clips: vec!["desktop", "bike", "game1", "cat", "hall"],
            headline_clip: "game1",
            crf_points: vec![10, 35, 60],
            preset_points: vec![0, 2, 4, 6, 8],
            max_threads: 8,
            cbp_window: 400_000,
            tile_workers: 1,
        }
    }

    /// The full profile: default fidelity, all fifteen clips, six CRF
    /// points — the configuration behind `EXPERIMENTS.md`.
    pub fn paper() -> Self {
        ExperimentConfig {
            threads: default_threads(),
            cache: Arc::new(RunCache::new()),
            fidelity: FidelityConfig::default(),
            cache_divisor: 8,
            clips: vstress_video::vbench::clip_names().collect(),
            headline_clip: "game1",
            crf_points: vec![10, 20, 30, 40, 50, 60],
            preset_points: vec![0, 1, 2, 3, 4, 5, 6, 7, 8],
            max_threads: 8,
            cbp_window: 4_000_000,
            tile_workers: 1,
        }
    }

    /// Sets the executor's worker-thread count (builder style).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        self.threads = threads;
        self
    }

    /// Sets the per-encode tile-worker count (builder style). See
    /// [`ExperimentConfig::tile_workers`].
    #[must_use]
    pub fn with_tile_workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "need at least one tile worker");
        self.tile_workers = workers;
        self
    }

    /// Replaces this config's cache with one backed by a persistent
    /// [`RunStore`] (builder style): completed runs, branch windows and
    /// decode-cost pairs are reloaded from `store` instead of being
    /// recomputed, so an interrupted or repeated profile resumes.
    ///
    /// Call this before sharing the config — the cache is swapped, so
    /// earlier clones keep the old (store-less) one.
    #[must_use]
    pub fn with_store(mut self, store: Arc<RunStore>) -> Self {
        self.cache = Arc::new(RunCache::with_store(store));
        self
    }

    /// Characterizes every spec in input order through this config's
    /// executor and run cache.
    ///
    /// # Errors
    ///
    /// Returns the first-by-index [`crate::workbench::WorkbenchError`].
    pub fn run_specs(
        &self,
        specs: &[crate::workbench::RunSpec],
    ) -> Result<Vec<Arc<crate::workbench::CharacterizationRun>>, crate::workbench::WorkbenchError>
    {
        crate::exec::run_all(&self.cache, self.threads, specs)
    }

    /// The synthesized clip for `name` at this config's fidelity, via
    /// the clip cache.
    ///
    /// # Errors
    ///
    /// Returns an error for unknown clip names.
    pub fn clip(
        &self,
        name: &'static str,
    ) -> Result<Arc<vstress_video::Clip>, crate::workbench::WorkbenchError> {
        self.cache.clip(name, &self.fidelity)
    }

    /// A [`crate::workbench::RunSpec`] for this config.
    pub fn spec(
        &self,
        clip: &'static str,
        codec: vstress_codecs::CodecId,
        params: vstress_codecs::EncoderParams,
    ) -> crate::workbench::RunSpec {
        crate::workbench::RunSpec {
            clip,
            codec,
            params,
            fidelity: self.fidelity.clone(),
            cache_divisor: self.cache_divisor,
            model_pipeline: true,
            tile_workers: self.tile_workers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_config_is_small() {
        let q = ExperimentConfig::quick();
        assert!(q.clips.len() <= 6);
        assert!(q.crf_points.len() <= 3);
        assert_eq!(q.headline_clip, "game1");
    }

    #[test]
    fn paper_config_covers_all_clips() {
        let p = ExperimentConfig::paper();
        assert_eq!(p.clips.len(), 15);
        assert_eq!(p.crf_points.len(), 6);
    }
}
